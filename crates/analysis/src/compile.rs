//! Compilation of normalized filters into flat predicate bytecode.
//!
//! [`crate::sat::normalize`] already canonicalizes every admitted filter;
//! until now the runtime still tree-walked the [`Filter`] per sample,
//! re-inspecting each condition's `serde_json::Value` (string/number
//! decoding, operator/domain checks) on every evaluation. [`compile`]
//! performs that inspection **once at admission time**, producing a flat
//! [`PredicateProgram`] — a `Vec` of pre-decoded comparison instructions
//! evaluated in `sensocial-core` with no JSON value in sight.
//!
//! The compiled program is semantically identical to the interpreter,
//! including its typed-error behaviour: a condition the interpreter would
//! fail with an [`EvalError`] compiles to [`PredicateOp::Fail`] carrying
//! the identical pre-rendered error, and error *precedence* (domain check
//! before missing-context short-circuit) is preserved because ill-typed
//! conditions error unconditionally in both worlds. Both evaluators fetch
//! actual values through the shared [`ConditionLhs::fetch_string`] /
//! [`ConditionLhs::fetch_number`] helpers, so the context-reading half of
//! the semantics agrees by construction; a proptest in `sensocial-core`
//! pins `compiled == interpreted` over the full plan space.

use sensocial_types::filter::{Condition, ConditionLhs, EvalErrorKind, Filter, Operator};
use sensocial_types::UserId;
use serde_json::Value;

/// One pre-decoded comparison instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateOp {
    /// Compare a categorical lhs against a pre-extracted string.
    /// `negate` encodes [`Operator::NotEquals`]. A missing actual value
    /// evaluates to `false` regardless of `negate`, mirroring the
    /// interpreter's "guard cannot be known to hold" rule.
    Str {
        /// What is inspected.
        lhs: ConditionLhs,
        /// The comparison string, extracted from the condition's JSON
        /// value at compile time.
        expect: String,
        /// `true` for `!=`, `false` for `==`.
        negate: bool,
    },
    /// Compare a numeric lhs against a pre-decoded `f64`.
    Num {
        /// What is inspected.
        lhs: ConditionLhs,
        /// The comparison operator (any of the four).
        op: Operator,
        /// The comparison value, decoded from JSON at compile time.
        rhs: f64,
    },
    /// The condition is statically ill-typed: evaluation always returns
    /// the same typed error the interpreter would produce. Analyzer-vetted
    /// plans never contain one; the variant exists so unvetted filters
    /// keep their fail-closed semantics under compilation.
    Fail {
        /// What the condition inspected.
        lhs: ConditionLhs,
        /// The operator applied.
        op: Operator,
        /// The offending value pre-rendered as JSON (the interpreter
        /// renders it per evaluation).
        rendered: String,
        /// Why evaluation fails.
        kind: EvalErrorKind,
    },
}

/// One compiled condition: the instruction plus its cross-user subject.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateInst {
    /// The comparison to run.
    pub op: PredicateOp,
    /// `Some(user)` for cross-user conditions — evaluated against that
    /// user's snapshot (server-side), skipped by local evaluation.
    pub subject: Option<UserId>,
}

impl PredicateInst {
    /// Whether this instruction references another user's context.
    pub fn is_cross_user(&self) -> bool {
        self.subject.is_some()
    }
}

/// A compiled filter: a flat conjunction of [`PredicateInst`]s in the
/// source filter's condition order. An empty program passes everything.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredicateProgram {
    /// The instructions; all must hold (short-circuiting in order).
    pub insts: Vec<PredicateInst>,
}

impl PredicateProgram {
    /// The always-pass program.
    #[must_use]
    pub fn pass_all() -> Self {
        PredicateProgram::default()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Whether any instruction references another user's context.
    pub fn has_cross_user(&self) -> bool {
        self.insts.iter().any(PredicateInst::is_cross_user)
    }
}

fn compile_condition(c: &Condition) -> PredicateOp {
    let fail = |kind| PredicateOp::Fail {
        lhs: c.lhs,
        op: c.op,
        rendered: c.value.to_string(),
        kind,
    };
    if c.lhs.is_numeric() {
        match c.value.as_f64() {
            Some(rhs) => PredicateOp::Num {
                lhs: c.lhs,
                op: c.op,
                rhs,
            },
            None => fail(EvalErrorKind::NonNumericValue),
        }
    } else {
        // Mirror the interpreter's precedence exactly: a non-string value
        // errors before the ordering check does.
        let expect = match &c.value {
            Value::String(s) => s.clone(),
            _ => return fail(EvalErrorKind::NonStringValue),
        };
        if c.op.is_ordering() {
            return fail(EvalErrorKind::OrderingOnCategorical);
        }
        PredicateOp::Str {
            lhs: c.lhs,
            expect,
            negate: c.op == Operator::NotEquals,
        }
    }
}

/// Compiles `filter` into a flat [`PredicateProgram`].
///
/// Compilation is total: ill-typed conditions become [`PredicateOp::Fail`]
/// rather than rejecting, so compiled evaluation reproduces interpreted
/// evaluation on *every* filter, vetted or not.
#[must_use]
pub fn compile(filter: &Filter) -> PredicateProgram {
    PredicateProgram {
        insts: filter
            .conditions
            .iter()
            .map(|c| PredicateInst {
                op: compile_condition(c),
                subject: c.subject.clone(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_condition_compiles_to_str_op() {
        let program = compile(&Filter::new(vec![Condition::new(
            ConditionLhs::PhysicalActivity,
            Operator::Equals,
            "walking",
        )]));
        assert_eq!(program.insts.len(), 1);
        assert_eq!(
            program.insts[0].op,
            PredicateOp::Str {
                lhs: ConditionLhs::PhysicalActivity,
                expect: "walking".to_owned(),
                negate: false,
            }
        );
        assert!(!program.has_cross_user());
    }

    #[test]
    fn numeric_condition_predecodes_rhs() {
        let program = compile(&Filter::new(vec![Condition::new(
            ConditionLhs::HourOfDay,
            Operator::GreaterThan,
            8,
        )]));
        assert_eq!(
            program.insts[0].op,
            PredicateOp::Num {
                lhs: ConditionLhs::HourOfDay,
                op: Operator::GreaterThan,
                rhs: 8.0,
            }
        );
    }

    #[test]
    fn ill_typed_conditions_compile_to_fail_with_interpreter_precedence() {
        // Non-string value on a categorical lhs under an ordering operator:
        // the interpreter reports NonStringValue first; so must we.
        let program = compile(&Filter::new(vec![Condition::new(
            ConditionLhs::Place,
            Operator::LessThan,
            3,
        )]));
        assert_eq!(
            program.insts[0].op,
            PredicateOp::Fail {
                lhs: ConditionLhs::Place,
                op: Operator::LessThan,
                rendered: "3".to_owned(),
                kind: EvalErrorKind::NonStringValue,
            }
        );

        let ordering = compile(&Filter::new(vec![Condition::new(
            ConditionLhs::Place,
            Operator::LessThan,
            "Paris",
        )]));
        assert!(matches!(
            &ordering.insts[0].op,
            PredicateOp::Fail {
                kind: EvalErrorKind::OrderingOnCategorical,
                ..
            }
        ));

        let non_numeric = compile(&Filter::new(vec![Condition::new(
            ConditionLhs::HourOfDay,
            Operator::Equals,
            "noon",
        )]));
        assert!(matches!(
            &non_numeric.insts[0].op,
            PredicateOp::Fail {
                kind: EvalErrorKind::NonNumericValue,
                ..
            }
        ));
    }

    #[test]
    fn cross_user_subject_is_preserved() {
        let program = compile(&Filter::new(vec![Condition::new(
            ConditionLhs::PhysicalActivity,
            Operator::Equals,
            "walking",
        )
        .about(UserId::new("bob"))]));
        assert_eq!(program.insts[0].subject, Some(UserId::new("bob")));
        assert!(program.has_cross_user());
    }

    #[test]
    fn empty_filter_compiles_to_empty_program() {
        assert!(compile(&Filter::pass_all()).is_empty());
        assert_eq!(compile(&Filter::pass_all()), PredicateProgram::pass_all());
    }
}
