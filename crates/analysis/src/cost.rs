//! Static plan cost model.
//!
//! A coarse, deterministic per-plan cost estimate computed from the
//! *normalized* filter — no runtime profiling involved. ROADMAP #1's
//! optimization pass uses it to rank hot plans (which plans to compile to
//! predicate bytecode first), and the [`crate::report::AnalysisReport`]
//! carries it so the ranking is reproducible byte-for-byte in CI.

use std::collections::BTreeSet;

use sensocial_types::filter::Filter;

use serde::Serialize;

/// Static cost estimate for one normalized filter plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PlanCost {
    /// Number of predicates after normalization — the per-sample work.
    pub predicates: usize,
    /// Number of distinct `(subject, lhs)` groups: how many context
    /// lookups one evaluation performs (conditions in the same group share
    /// a lookup; see [`crate::sat`]'s grouping).
    pub eval_depth: usize,
    /// Number of distinct *other* users whose context the plan joins in —
    /// each one is a cross-user context fetch (and, under sharding, a
    /// potential cross-shard hop).
    pub cross_user_joins: usize,
    /// Whether delivery is gated on OSN context: such plans sit on the
    /// OSN-trigger hot path, not just the sensing hot path.
    pub osn_gated: bool,
}

/// Estimates the static cost of a normalized filter.
#[must_use]
pub fn estimate(filter: &Filter) -> PlanCost {
    let mut groups: BTreeSet<(Option<&str>, &'static str)> = BTreeSet::new();
    let mut subjects: BTreeSet<&str> = BTreeSet::new();
    for c in &filter.conditions {
        let subject = c.subject.as_ref().map(sensocial_types::UserId::as_str);
        groups.insert((subject, c.lhs.name()));
        if let Some(s) = subject {
            subjects.insert(s);
        }
    }
    PlanCost {
        predicates: filter.conditions.len(),
        eval_depth: groups.len(),
        cross_user_joins: subjects.len(),
        osn_gated: filter.has_osn_condition(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::filter::{Condition, ConditionLhs, Operator};
    use sensocial_types::UserId;

    #[test]
    fn empty_filter_costs_nothing() {
        let cost = estimate(&Filter::pass_all());
        assert_eq!(
            cost,
            PlanCost {
                predicates: 0,
                eval_depth: 0,
                cross_user_joins: 0,
                osn_gated: false,
            }
        );
    }

    #[test]
    fn groups_collapse_same_subject_and_lhs() {
        let filter = Filter::new(vec![
            Condition::new(ConditionLhs::HourOfDay, Operator::GreaterThan, 8),
            Condition::new(ConditionLhs::HourOfDay, Operator::LessThan, 20),
            Condition::new(ConditionLhs::PhysicalActivity, Operator::Equals, "walking"),
        ]);
        let cost = estimate(&filter);
        assert_eq!(cost.predicates, 3);
        assert_eq!(cost.eval_depth, 2);
        assert_eq!(cost.cross_user_joins, 0);
        assert!(!cost.osn_gated);
    }

    #[test]
    fn cross_user_joins_count_distinct_subjects() {
        let filter = Filter::new(vec![
            Condition::new(ConditionLhs::PhysicalActivity, Operator::Equals, "walking")
                .about(UserId::new("bob")),
            Condition::new(ConditionLhs::HourOfDay, Operator::GreaterThan, 8)
                .about(UserId::new("bob")),
            Condition::new(ConditionLhs::OsnActivity, Operator::Equals, "active")
                .about(UserId::new("carol")),
        ]);
        let cost = estimate(&filter);
        assert_eq!(cost.predicates, 3);
        assert_eq!(cost.eval_depth, 3);
        assert_eq!(cost.cross_user_joins, 2);
        assert!(cost.osn_gated);
    }
}
