//! Value domains for filter condition left-hand sides.
//!
//! Every [`ConditionLhs`] draws its values from a small, statically known
//! domain. The type checker uses this mapping to reject operator/value
//! mismatches at registration time, and the satisfiability pass uses it to
//! reason about interval and set emptiness.

use sensocial_types::filter::ConditionLhs;

/// Physical-activity class names, in sync with
/// `sensocial_types::PhysicalActivity::name`.
pub const ACTIVITY_VALUES: &[&str] = &["still", "walking", "running"];

/// Audio-environment class names, in sync with
/// `sensocial_types::AudioEnvironment::name`.
pub const AUDIO_VALUES: &[&str] = &["silent", "not_silent"];

/// OSN activity states as produced on the trigger path.
pub const OSN_ACTIVITY_VALUES: &[&str] = &["active", "inactive"];

/// OSN action kinds, in sync with `sensocial_types::OsnActionKind::name`.
pub const OSN_KIND_VALUES: &[&str] = &["post", "comment", "like", "friendship_change"];

/// The value domain a condition's comparison value must live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDomain {
    /// A closed set of categorical string values.
    Enum(&'static [&'static str]),
    /// An hour of day: integers 0–23, always evaluable (the clock never
    /// goes missing).
    Hour,
    /// A non-negative integer count (WiFi APs, Bluetooth neighbours),
    /// evaluable only once the modality has produced classified context.
    Count,
    /// A free-form string (place names, OSN topics) — equality tests only.
    Text,
}

impl ValueDomain {
    /// Whether values are numbers (orderable) rather than strings.
    #[must_use]
    pub fn is_numeric(self) -> bool {
        matches!(self, ValueDomain::Hour | ValueDomain::Count)
    }
}

/// Maps a condition left-hand side to its value domain.
#[must_use]
pub fn domain_of(lhs: ConditionLhs) -> ValueDomain {
    match lhs {
        ConditionLhs::PhysicalActivity => ValueDomain::Enum(ACTIVITY_VALUES),
        ConditionLhs::AudioEnvironment => ValueDomain::Enum(AUDIO_VALUES),
        ConditionLhs::OsnActivity => ValueDomain::Enum(OSN_ACTIVITY_VALUES),
        ConditionLhs::OsnActionKind => ValueDomain::Enum(OSN_KIND_VALUES),
        ConditionLhs::Place | ConditionLhs::OsnTopic => ValueDomain::Text,
        ConditionLhs::HourOfDay => ValueDomain::Hour,
        ConditionLhs::WifiDensity | ConditionLhs::BluetoothDensity => ValueDomain::Count,
    }
}

/// Whether the left-hand side always has a value at evaluation time.
///
/// Conditions over a *non*-always-evaluable lhs are false while the backing
/// context is missing, so even a tautological condition (`WifiDensity > -1`)
/// acts as a presence gate and cannot be dropped by the normalizer. The
/// hour of day is read from the clock, `OsnActivity` defaults to
/// `inactive`, and a missing place reads as `"unknown"` — those three never
/// gate on presence.
#[must_use]
pub fn always_evaluable(lhs: ConditionLhs) -> bool {
    matches!(
        lhs,
        ConditionLhs::HourOfDay | ConditionLhs::OsnActivity | ConditionLhs::Place
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::{AudioEnvironment, OsnActionKind, PhysicalActivity};

    #[test]
    fn enum_domains_match_the_types_crate_names() {
        assert_eq!(
            ACTIVITY_VALUES,
            &[
                PhysicalActivity::Still.name(),
                PhysicalActivity::Walking.name(),
                PhysicalActivity::Running.name(),
            ]
        );
        assert_eq!(
            AUDIO_VALUES,
            &[
                AudioEnvironment::Silent.name(),
                AudioEnvironment::NotSilent.name(),
            ]
        );
        assert_eq!(
            OSN_KIND_VALUES,
            &[
                OsnActionKind::Post.name(),
                OsnActionKind::Comment.name(),
                OsnActionKind::Like.name(),
                OsnActionKind::FriendshipChange.name(),
            ]
        );
    }

    #[test]
    fn every_lhs_has_a_domain() {
        let all = [
            ConditionLhs::PhysicalActivity,
            ConditionLhs::AudioEnvironment,
            ConditionLhs::Place,
            ConditionLhs::WifiDensity,
            ConditionLhs::BluetoothDensity,
            ConditionLhs::HourOfDay,
            ConditionLhs::OsnActivity,
            ConditionLhs::OsnActionKind,
            ConditionLhs::OsnTopic,
        ];
        for lhs in all {
            let d = domain_of(lhs);
            if lhs.required_modality().is_none() && !lhs.is_osn() {
                assert_eq!(lhs, ConditionLhs::HourOfDay);
                assert!(d.is_numeric());
            }
        }
        assert!(always_evaluable(ConditionLhs::HourOfDay));
        assert!(!always_evaluable(ConditionLhs::WifiDensity));
        assert!(always_evaluable(ConditionLhs::Place));
    }
}
