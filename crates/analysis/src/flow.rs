//! Information-flow (taint) verification over filter plans.
//!
//! The passes in [`typeck`](crate::typeck), [`sat`](crate::sat) and
//! [`placement`](crate::placement) prove a plan well-formed in isolation;
//! this pass proves something about the *composition*: that no raw
//! sensitive modality can travel from a sensor source through an
//! OSN-coupled plan to an external sink without an authorized pass through
//! the privacy stage. Labels form a three-point lattice
//!
//! ```text
//! Aggregated  <  PrivacyFiltered  <  Raw      (ascending sensitivity)
//! ```
//!
//! and are propagated from every [`FlowSource`] through the plan's stages
//! (privacy screen, filter, optional aggregation) to its [`FlowSink`].
//! A `Raw` label at an external sink — or a merely `PrivacyFiltered`
//! sensitive label at the OSN-publish sink — is a
//! [`DiagnosticCode::PrivacyFlow`] error and rejects the plan, fail-closed.
//!
//! Who may authorize the privacy transition depends on where the plan is
//! admitted ([`PrivacyAuthority`]): client admission screens against the
//! device's live policy; a server-pushed device plan defers to the device,
//! which re-verifies at install time and nacks; a server-side plan over
//! uplinks has only *upstream* authority — the devices' screens ran before
//! this plan's OSN coupling existed, so they cannot have authorized it.

use sensocial_types::{DiagnosticCode, Granularity, Modality, PlanDiagnostic};

use serde::Serialize;

use crate::{AnalysisEnv, FilterPlan, Placement};

/// Sensitivity label of data flowing through a plan. `Ord` follows
/// ascending sensitivity, so [`FlowLabel::join`] is `max`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize,
)]
#[serde(rename_all = "snake_case")]
pub enum FlowLabel {
    /// Aggregated/joined data: safe for any sink, including OSN publish.
    Aggregated,
    /// Data that passed an authorized privacy screen.
    PrivacyFiltered,
    /// Raw sensor samples, unscreened.
    Raw,
}

impl FlowLabel {
    /// Least upper bound: the more sensitive of the two labels.
    #[must_use]
    pub fn join(self, other: FlowLabel) -> FlowLabel {
        self.max(other)
    }

    /// Short lowercase name, stable across serialization.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FlowLabel::Aggregated => "aggregated",
            FlowLabel::PrivacyFiltered => "privacy_filtered",
            FlowLabel::Raw => "raw",
        }
    }
}

/// A pipeline stage a label passes through on its way to the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStage {
    /// The privacy screen (paper §3.3): lowers `Raw` to `PrivacyFiltered`
    /// when an authority vouches for the plan's coupling.
    Privacy,
    /// Condition evaluation: labels pass through unchanged.
    Filter,
    /// Aggregation/join across streams: anything already screened becomes
    /// `Aggregated`; `Raw` stays `Raw` (aggregation is not laundering).
    Aggregate,
}

impl FlowStage {
    /// Transfer function of the stage. Monotone in `label` for any fixed
    /// `authorized` (the lattice proptests pin this down).
    #[must_use]
    pub fn apply(self, label: FlowLabel, authorized: bool) -> FlowLabel {
        match self {
            FlowStage::Privacy => {
                if label == FlowLabel::Raw && authorized {
                    FlowLabel::PrivacyFiltered
                } else {
                    label
                }
            }
            FlowStage::Filter => label,
            FlowStage::Aggregate => {
                if label <= FlowLabel::PrivacyFiltered {
                    FlowLabel::Aggregated
                } else {
                    label
                }
            }
        }
    }
}

/// Where a plan's output ends up.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize,
)]
#[serde(rename_all = "snake_case")]
pub enum FlowSink {
    /// Consumed on the device that sampled it; never leaves.
    DeviceLocal,
    /// Uplinked to the SenSocial server.
    Uplink,
    /// Delivered to a server-side subscriber (application callback).
    Subscriber,
    /// Published back to the online social network.
    OsnPublish,
}

impl FlowSink {
    /// Whether data leaves the device that sampled it.
    #[must_use]
    pub fn is_external(self) -> bool {
        !matches!(self, FlowSink::DeviceLocal)
    }

    /// Short lowercase name, stable across serialization.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FlowSink::DeviceLocal => "device_local",
            FlowSink::Uplink => "uplink",
            FlowSink::Subscriber => "subscriber",
            FlowSink::OsnPublish => "osn_publish",
        }
    }
}

/// One sensor-modality source feeding a plan.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize,
)]
pub struct FlowSource {
    /// The modality sampled.
    pub modality: Modality,
    /// The granularity it is sampled at.
    pub granularity: Granularity,
}

impl FlowSource {
    /// Creates a source.
    #[must_use]
    pub fn new(modality: Modality, granularity: Granularity) -> Self {
        FlowSource {
            modality,
            granularity,
        }
    }

    /// The label data carries when it enters the pipeline: raw samples are
    /// `Raw`; classified context already went through an on-device
    /// classifier and carries no raw payload.
    #[must_use]
    pub fn entry_label(self) -> FlowLabel {
        match self.granularity {
            Granularity::Raw => FlowLabel::Raw,
            Granularity::Classified => FlowLabel::PrivacyFiltered,
        }
    }
}

/// Who can vouch for a plan's privacy transition at this admission path.
#[derive(Clone, Copy)]
pub enum PrivacyAuthority<'a> {
    /// Client admission: the device's live policy screens the plan here
    /// and now. An OSN-coupled sensitive source is authorized only if the
    /// policy allows its raw disclosure — fail-closed, because the
    /// pause→resume path re-screens without re-running this analysis.
    Screened(&'a dyn crate::PrivacyView),
    /// A server-pushed device plan: the receiving device re-verifies at
    /// install time (and nacks on failure), so admission defers to it.
    DeferredToDevice,
    /// A server-side plan over existing uplinks: device screens ran before
    /// this plan's OSN coupling existed, so they cannot have authorized it.
    Upstream,
    /// No privacy stage exists on the path at all.
    Absent,
}

impl std::fmt::Debug for PrivacyAuthority<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PrivacyAuthority::Screened(_) => "Screened",
            PrivacyAuthority::DeferredToDevice => "DeferredToDevice",
            PrivacyAuthority::Upstream => "Upstream",
            PrivacyAuthority::Absent => "Absent",
        })
    }
}

impl PrivacyAuthority<'_> {
    /// Whether this authority vouches for `source` flowing through an
    /// OSN-coupled plan (`osn_coupled`). Uncoupled or non-sensitive
    /// sources are always authorized: the plain privacy screen already
    /// governs them (pause-don't-reject semantics).
    #[must_use]
    pub fn authorizes(&self, source: FlowSource, osn_coupled: bool) -> bool {
        let coupled_sensitive = osn_coupled && source.modality.is_sensitive();
        match self {
            PrivacyAuthority::Absent => false,
            PrivacyAuthority::DeferredToDevice => true,
            PrivacyAuthority::Screened(view) => {
                !coupled_sensitive || view.is_allowed(source.modality, Granularity::Raw)
            }
            PrivacyAuthority::Upstream => !coupled_sensitive,
        }
    }
}

/// The label one source ends up with at the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FlowTrace {
    /// The source.
    pub source: FlowSource,
    /// Its label on entry.
    pub entry: FlowLabel,
    /// Its label at the sink, after every stage.
    pub label: FlowLabel,
}

/// The flow verdict for one plan: every source's final label at the sink.
/// Recorded on accepted plans (and in the [`crate::report::AnalysisReport`])
/// so the taint result is auditable, not just pass/fail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Default)]
pub struct FlowVerdict {
    /// Where the plan's output goes.
    pub sink: Option<FlowSink>,
    /// Whether the plan is OSN-coupled (social-event-based sampling or an
    /// OSN condition gating delivery).
    pub osn_coupled: bool,
    /// Per-source final labels, in source order.
    pub traces: Vec<FlowTrace>,
}

impl FlowVerdict {
    /// The most sensitive label reaching the sink, if any source exists.
    #[must_use]
    pub fn peak_label(&self) -> Option<FlowLabel> {
        self.traces
            .iter()
            .map(|t| t.label)
            .reduce(FlowLabel::join)
    }
}

/// Derives the plan's sink: an explicit override wins, otherwise the
/// placement's natural sink.
fn sink_of(plan: &FilterPlan) -> FlowSink {
    plan.sink.unwrap_or(match plan.placement {
        Placement::DeviceLocal => FlowSink::DeviceLocal,
        Placement::DeviceUplinked => FlowSink::Uplink,
        Placement::Server | Placement::MulticastTemplate => FlowSink::Subscriber,
    })
}

/// Derives whether the plan is OSN-coupled: an explicit override wins
/// (clients pass the stream's effective mode), otherwise the filter's OSN
/// conditions decide. For a multicast template only the *cross-user* part
/// counts: the local part is re-verified by each member device at install.
fn coupling_of(plan: &FilterPlan) -> bool {
    if let Some(coupled) = plan.osn_coupled {
        return coupled;
    }
    match plan.placement {
        Placement::MulticastTemplate => {
            plan.filter.partition_cross_user().1.has_osn_condition()
        }
        _ => plan.filter.has_osn_condition(),
    }
}

/// Derives the authority that can vouch for the privacy transition at this
/// plan's admission path.
fn authority_of<'a>(plan: &FilterPlan, env: &AnalysisEnv<'a>) -> PrivacyAuthority<'a> {
    match plan.placement {
        Placement::DeviceLocal | Placement::DeviceUplinked => match env.privacy {
            Some(view) => PrivacyAuthority::Screened(view),
            None => PrivacyAuthority::DeferredToDevice,
        },
        Placement::Server => PrivacyAuthority::Upstream,
        Placement::MulticastTemplate => {
            if coupling_of(plan) {
                PrivacyAuthority::Upstream
            } else {
                PrivacyAuthority::DeferredToDevice
            }
        }
    }
}

/// Propagates labels from every source of `plan` to its sink.
///
/// Returns the verdict (always, so accepted plans carry an auditable
/// record) together with the error-severity [`DiagnosticCode::PrivacyFlow`]
/// diagnostics for sources whose label is still too sensitive at the sink.
pub fn check(plan: &FilterPlan, env: &AnalysisEnv<'_>) -> (FlowVerdict, Vec<PlanDiagnostic>) {
    let sink = sink_of(plan);
    let osn_coupled = coupling_of(plan);
    let authority = authority_of(plan, env);

    let mut sources: Vec<FlowSource> = Vec::new();
    if let Some((modality, granularity)) = plan.sampling {
        sources.push(FlowSource::new(modality, granularity));
    }
    sources.extend(plan.sources.iter().copied());
    sources.sort_unstable();
    sources.dedup();

    let mut traces = Vec::with_capacity(sources.len());
    let mut errors = Vec::new();
    for source in sources {
        let entry = source.entry_label();
        let authorized = authority.authorizes(source, osn_coupled);
        let mut label = FlowStage::Privacy.apply(entry, authorized);
        label = FlowStage::Filter.apply(label, authorized);
        if plan.aggregated {
            label = FlowStage::Aggregate.apply(label, authorized);
        }
        traces.push(FlowTrace {
            source,
            entry,
            label,
        });

        if sink.is_external() && label == FlowLabel::Raw {
            errors.push(PlanDiagnostic::error(
                DiagnosticCode::PrivacyFlow,
                format!(
                    "raw {} data reaches the {} sink through an OSN-coupled plan \
                     without an authorized pass through the privacy stage",
                    source.modality, sink.name(),
                ),
            ));
        } else if sink == FlowSink::OsnPublish
            && source.modality.is_sensitive()
            && label == FlowLabel::PrivacyFiltered
        {
            errors.push(PlanDiagnostic::error(
                DiagnosticCode::PrivacyFlow,
                format!(
                    "{} data must be aggregated before the {} sink; \
                     privacy-filtered samples still identify the user",
                    source.modality, sink.name(),
                ),
            ));
        }
    }

    (
        FlowVerdict {
            sink: Some(sink),
            osn_coupled,
            traces,
        },
        errors,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::filter::{Condition, ConditionLhs, Filter, Operator};

    struct DenyAll;
    impl crate::PrivacyView for DenyAll {
        fn is_allowed(&self, _m: Modality, _g: Granularity) -> bool {
            false
        }
    }

    struct AllowAll;
    impl crate::PrivacyView for AllowAll {
        fn is_allowed(&self, _m: Modality, _g: Granularity) -> bool {
            true
        }
    }

    fn osn_filter() -> Filter {
        Filter::new(vec![Condition::new(
            ConditionLhs::OsnActivity,
            Operator::Equals,
            "active",
        )])
    }

    #[test]
    fn join_is_max() {
        assert_eq!(
            FlowLabel::Raw.join(FlowLabel::Aggregated),
            FlowLabel::Raw
        );
        assert_eq!(
            FlowLabel::Aggregated.join(FlowLabel::PrivacyFiltered),
            FlowLabel::PrivacyFiltered
        );
        assert!(FlowLabel::Aggregated < FlowLabel::PrivacyFiltered);
        assert!(FlowLabel::PrivacyFiltered < FlowLabel::Raw);
    }

    #[test]
    fn screened_allowing_policy_authorizes_coupled_sensitive_source() {
        let allow = AllowAll;
        let plan = FilterPlan::device(Modality::Location, Granularity::Raw, osn_filter())
            .sinking(FlowSink::Uplink);
        let env = AnalysisEnv::new().with_privacy(&allow);
        let (verdict, errors) = check(&plan, &env);
        assert!(errors.is_empty(), "{errors:?}");
        assert!(verdict.osn_coupled);
        assert_eq!(verdict.peak_label(), Some(FlowLabel::PrivacyFiltered));
    }

    #[test]
    fn screened_denying_policy_rejects_coupled_sensitive_source() {
        let deny = DenyAll;
        let plan = FilterPlan::device(Modality::Location, Granularity::Raw, osn_filter())
            .sinking(FlowSink::Uplink);
        let env = AnalysisEnv::new().with_privacy(&deny);
        let (verdict, errors) = check(&plan, &env);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, DiagnosticCode::PrivacyFlow);
        assert_eq!(verdict.peak_label(), Some(FlowLabel::Raw));
    }

    #[test]
    fn uncoupled_raw_sensitive_stream_is_governed_by_the_plain_screen() {
        // No OSN coupling: the ordinary privacy screen (pause semantics)
        // governs; the flow pass must not reject.
        let deny = DenyAll;
        let plan = FilterPlan::device(Modality::Microphone, Granularity::Raw, Filter::pass_all());
        let env = AnalysisEnv::new().with_privacy(&deny);
        let (_, errors) = check(&plan, &env);
        assert!(errors.is_empty());
    }

    #[test]
    fn server_plan_over_raw_sensitive_uplink_is_rejected_when_coupled() {
        let plan = FilterPlan::server(osn_filter())
            .with_source(FlowSource::new(Modality::Location, Granularity::Raw));
        let (verdict, errors) = check(&plan, &AnalysisEnv::new());
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, DiagnosticCode::PrivacyFlow);
        assert_eq!(verdict.sink, Some(FlowSink::Subscriber));
    }

    #[test]
    fn server_plan_over_classified_uplink_is_fine() {
        let plan = FilterPlan::server(osn_filter()).with_source(FlowSource::new(
            Modality::Location,
            Granularity::Classified,
        ));
        let (_, errors) = check(&plan, &AnalysisEnv::new());
        assert!(errors.is_empty());
    }

    #[test]
    fn device_local_sink_never_flows_externally() {
        let deny = DenyAll;
        let plan = FilterPlan::device(Modality::Location, Granularity::Raw, osn_filter())
            .sinking(FlowSink::DeviceLocal);
        let env = AnalysisEnv::new().with_privacy(&deny);
        let (_, errors) = check(&plan, &env);
        assert!(errors.is_empty());
    }

    #[test]
    fn osn_publish_needs_aggregation_for_sensitive_modalities() {
        let allow = AllowAll;
        let env = AnalysisEnv::new().with_privacy(&allow);
        let plan = FilterPlan::device(Modality::Location, Granularity::Raw, Filter::pass_all())
            .sinking(FlowSink::OsnPublish);
        let (_, errors) = check(&plan, &env);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, DiagnosticCode::PrivacyFlow);

        let aggregated = FilterPlan::device(
            Modality::Location,
            Granularity::Raw,
            Filter::pass_all(),
        )
        .sinking(FlowSink::OsnPublish)
        .aggregating();
        let (verdict, errors) = check(&aggregated, &env);
        assert!(errors.is_empty());
        assert_eq!(verdict.peak_label(), Some(FlowLabel::Aggregated));
    }

    #[test]
    fn aggregation_does_not_launder_raw_labels() {
        assert_eq!(
            FlowStage::Aggregate.apply(FlowLabel::Raw, true),
            FlowLabel::Raw
        );
        assert_eq!(
            FlowStage::Aggregate.apply(FlowLabel::PrivacyFiltered, false),
            FlowLabel::Aggregated
        );
    }

    #[test]
    fn multicast_cross_user_osn_coupling_is_upstream_and_rejected() {
        let cross_osn = Filter::new(vec![Condition::new(
            ConditionLhs::OsnActivity,
            Operator::Equals,
            "active",
        )
        .about(sensocial_types::UserId::new("bob"))]);
        let plan = FilterPlan::multicast(Modality::Location, Granularity::Raw, cross_osn);
        let (_, errors) = check(&plan, &AnalysisEnv::new());
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, DiagnosticCode::PrivacyFlow);
    }

    #[test]
    fn multicast_local_osn_coupling_defers_to_member_devices() {
        // The OSN condition lands in the local part, which every member
        // device re-verifies against its own policy at install time.
        let plan = FilterPlan::multicast(Modality::Location, Granularity::Raw, osn_filter());
        let (_, errors) = check(&plan, &AnalysisEnv::new());
        assert!(errors.is_empty());
    }
}
