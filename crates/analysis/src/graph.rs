//! Cross-user dependency graph with cycle detection.
//!
//! A multicast filter "about" user B gates every member's stream on B's
//! context; if one of B's streams is in turn gated on a member of the first
//! multicast, delivery deadlocks: each side waits for context the other
//! side only uplinks once *its* filter passes. The server therefore keeps
//! the graph `owner → subject` over all multicasts and user-scoped
//! subscriptions and rejects any plan that would close a cycle.

use std::collections::{BTreeMap, BTreeSet};

use sensocial_types::{DiagnosticCode, PlanDiagnostic, UserId};

/// A directed graph of cross-user context dependencies.
#[derive(Debug, Clone, Default)]
pub struct DependencyGraph {
    edges: BTreeMap<UserId, BTreeSet<UserId>>,
}

impl DependencyGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        DependencyGraph::default()
    }

    /// Records that `owner`'s stream delivery depends on `subject`'s
    /// context. Self-dependencies are ignored: a condition about a user's
    /// own context is just a local condition with an explicit subject.
    pub fn depend(&mut self, owner: &UserId, subject: &UserId) {
        if owner == subject {
            return;
        }
        self.edges
            .entry(owner.clone())
            .or_default()
            .insert(subject.clone());
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Every user appearing as an owner or subject, sorted.
    pub fn nodes(&self) -> Vec<UserId> {
        let mut nodes: BTreeSet<&UserId> = BTreeSet::new();
        for (owner, subjects) in &self.edges {
            nodes.insert(owner);
            nodes.extend(subjects.iter());
        }
        nodes.into_iter().cloned().collect()
    }

    /// Every `owner → subject` edge, sorted by `(owner, subject)`.
    pub fn edge_list(&self) -> Vec<(UserId, UserId)> {
        self.edges
            .iter()
            .flat_map(|(owner, subjects)| {
                subjects.iter().map(move |s| (owner.clone(), s.clone()))
            })
            .collect()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// Finds a dependency cycle, returned as the users along it (first
    /// user repeated at the end), or `None` if the graph is acyclic.
    pub fn find_cycle(&self) -> Option<Vec<UserId>> {
        let mut color: BTreeMap<&UserId, u8> = BTreeMap::new();
        let mut path: Vec<&UserId> = Vec::new();
        for start in self.edges.keys() {
            if let Some(cycle) = self.dfs(start, &mut color, &mut path) {
                return Some(cycle);
            }
        }
        None
    }

    /// Colored DFS: 1 = on the current path, 2 = fully explored. Hitting a
    /// grey node closes a cycle; `path` reconstructs it.
    fn dfs<'a>(
        &'a self,
        node: &'a UserId,
        color: &mut BTreeMap<&'a UserId, u8>,
        path: &mut Vec<&'a UserId>,
    ) -> Option<Vec<UserId>> {
        match color.get(node).copied().unwrap_or(0) {
            1 => {
                let from = path.iter().position(|u| *u == node).unwrap_or(0);
                let mut cycle: Vec<UserId> = path[from..].iter().map(|u| (*u).clone()).collect();
                cycle.push(node.clone());
                return Some(cycle);
            }
            2 => return None,
            _ => {}
        }
        color.insert(node, 1);
        path.push(node);
        if let Some(subjects) = self.edges.get(node) {
            for next in subjects {
                if let Some(cycle) = self.dfs(next, color, path) {
                    return Some(cycle);
                }
            }
        }
        path.pop();
        color.insert(node, 2);
        None
    }

    /// The cycle as a [`PlanDiagnostic`], if one exists.
    pub fn cycle_diagnostic(&self) -> Option<PlanDiagnostic> {
        self.find_cycle().map(|cycle| {
            let path: Vec<String> = cycle.iter().map(ToString::to_string).collect();
            PlanDiagnostic::error(
                DiagnosticCode::DependencyCycle,
                format!(
                    "multicast/subscription filters form a cross-user dependency cycle: {}",
                    path.join(" -> ")
                ),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(name: &str) -> UserId {
        UserId::new(name)
    }

    #[test]
    fn acyclic_graph_has_no_cycle() {
        let mut g = DependencyGraph::new();
        g.depend(&u("a"), &u("b"));
        g.depend(&u("b"), &u("c"));
        g.depend(&u("a"), &u("c"));
        assert!(g.find_cycle().is_none());
        assert!(g.cycle_diagnostic().is_none());
    }

    #[test]
    fn two_node_cycle_is_found() {
        let mut g = DependencyGraph::new();
        g.depend(&u("a"), &u("b"));
        g.depend(&u("b"), &u("a"));
        let cycle = g.find_cycle().expect("cycle exists");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() == 3, "a -> b -> a");
        let diag = g.cycle_diagnostic().expect("diagnostic");
        assert_eq!(diag.code, DiagnosticCode::DependencyCycle);
        assert!(diag.message.contains(" -> "));
    }

    #[test]
    fn longer_cycle_is_found() {
        let mut g = DependencyGraph::new();
        g.depend(&u("a"), &u("b"));
        g.depend(&u("b"), &u("c"));
        g.depend(&u("c"), &u("a"));
        g.depend(&u("c"), &u("d"));
        let cycle = g.find_cycle().expect("cycle exists");
        assert_eq!(cycle.len(), 4);
    }

    #[test]
    fn accessors_expose_sorted_views() {
        let mut g = DependencyGraph::new();
        g.depend(&u("b"), &u("a"));
        g.depend(&u("a"), &u("c"));
        g.depend(&u("a"), &u("b"));
        assert_eq!(g.nodes(), vec![u("a"), u("b"), u("c")]);
        assert_eq!(
            g.edge_list(),
            vec![(u("a"), u("b")), (u("a"), u("c")), (u("b"), u("a"))]
        );
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn self_dependency_is_not_a_cycle() {
        let mut g = DependencyGraph::new();
        g.depend(&u("a"), &u("a"));
        assert!(g.is_empty());
        assert!(g.find_cycle().is_none());
    }
}
