//! Static verification of SenSocial filter/subscription/multicast plans.
//!
//! SenSocial's distributed filters (paper §3.1) are `(modality, operator,
//! value)` triples that historically were only exercised when a sample
//! arrived — an ill-typed comparison, an unsatisfiable condition set or a
//! privacy-violating conditional modality failed silently at stream time.
//! This crate moves those failures to registration time. [`analyze`] runs
//! five passes over a [`FilterPlan`]:
//!
//! 1. **Type checking** ([`typeck`]): every condition's operator/value pair
//!    must fit the left-hand side's [`domain::ValueDomain`].
//! 2. **Satisfiability + normalization** ([`sat`]): interval/set reasoning
//!    per `(subject, lhs)` group rejects provably-empty condition sets and
//!    emits a canonical, semantics-preserving plan.
//! 3. **Placement** ([`placement`]): cross-user conditions must live
//!    server-side, and every conditional modality must be samplable and
//!    privacy-permitted at the granularity it needs.
//! 4. **Information flow** ([`flow`]): sensitivity labels
//!    (`{aggregated, privacy_filtered, raw}`) propagate from every sensor
//!    source through the plan to its sink; a raw sensitive modality
//!    reaching an external sink through an OSN-coupled plan without an
//!    authorized privacy stage rejects with
//!    [`DiagnosticCode::PrivacyFlow`].
//! 5. **Dependency cycles** ([`graph`]): the server feeds multicast and
//!    subscription plans into a cross-user [`DependencyGraph`] and rejects
//!    plans that would close a cycle.
//!
//! Beyond verification, the crate now also *plans*: [`shard`] turns the
//! dependency graph into a deterministic shard-affinity hint, [`cost`]
//! estimates per-plan evaluation cost, [`compile`] lowers admitted
//! (normalized) filters into the flat [`compile::PredicateProgram`]
//! bytecode the runtime evaluates per sample instead of tree-walking,
//! and [`report`] renders plans plus
//! every flow verdict as a byte-stable JSON [`report::AnalysisReport`].
//!
//! Findings are [`PlanDiagnostic`]s (defined in `sensocial-types` so they
//! travel over the wire inside configuration acks); rejection surfaces as
//! [`sensocial_types::Error::PlanRejected`] through [`AnalysisError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod cost;
pub mod domain;
pub mod flow;
pub mod graph;
pub mod placement;
pub mod report;
pub mod sat;
pub mod shard;
pub mod typeck;

use sensocial_types::filter::Filter;
use sensocial_types::{Error, Granularity, Modality, PlanDiagnostic};

pub use compile::{compile, PredicateProgram};
pub use cost::PlanCost;
pub use flow::{FlowLabel, FlowSink, FlowSource, FlowVerdict};
pub use graph::DependencyGraph;
pub use report::AnalysisReport;
pub use sensocial_types::{DiagnosticCode, DiagnosticSeverity};
pub use shard::ShardPlan;

/// Where a filter plan will be evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// On the device, gating a locally-sunk stream.
    DeviceLocal,
    /// On the device, gating a stream uplinked to the server.
    DeviceUplinked,
    /// On the server: a subscription or aggregator filter over uplinks.
    Server,
    /// A multicast template: distributed to member devices with the
    /// cross-user part retained and enforced server-side.
    MulticastTemplate,
}

impl Placement {
    /// Whether cross-user conditions can be evaluated under this placement.
    /// Only the server's filter manager sees other users' context.
    #[must_use]
    pub fn allows_cross_user(self) -> bool {
        matches!(self, Placement::Server | Placement::MulticastTemplate)
    }

    /// Whether the plan samples a modality on a device.
    #[must_use]
    pub fn is_device(self) -> bool {
        matches!(self, Placement::DeviceLocal | Placement::DeviceUplinked)
    }
}

/// A filter plan submitted for verification: the filter, where it will
/// run, and — for device placements — what the stream samples. The flow
/// fields ([`FilterPlan::sink`], [`FilterPlan::osn_coupled`],
/// [`FilterPlan::sources`], [`FilterPlan::aggregated`]) refine the
/// information-flow pass; admission paths set them through the builders,
/// and conservative defaults are derived from the placement otherwise.
#[derive(Debug, Clone)]
pub struct FilterPlan {
    /// The conjunction of conditions to verify.
    pub filter: Filter,
    /// Where the filter will be evaluated.
    pub placement: Placement,
    /// The stream's own `(modality, granularity)` when the plan drives
    /// device sampling; `None` for pure server-side subscriptions.
    pub sampling: Option<(Modality, Granularity)>,
    /// Where the plan's output goes; `None` derives the placement's
    /// natural sink (device-local, uplink, subscriber).
    pub sink: Option<FlowSink>,
    /// Whether the plan is OSN-coupled; `None` derives it from the
    /// filter's OSN conditions. Clients pass the stream's effective mode
    /// here, which also covers social-event-based sampling without an OSN
    /// condition in the filter.
    pub osn_coupled: Option<bool>,
    /// Upstream sources feeding the plan beyond its own sampling — the
    /// server passes the specs of the uplinked streams a subscription or
    /// aggregator reads from.
    pub sources: Vec<FlowSource>,
    /// Whether the plan's output is aggregated across streams/users before
    /// the sink (lowers screened labels to `aggregated` in the flow pass).
    pub aggregated: bool,
}

impl FilterPlan {
    /// A plan for a device stream (uplinked or local — cross-user
    /// conditions are misplaced either way).
    #[must_use]
    pub fn device(modality: Modality, granularity: Granularity, filter: Filter) -> Self {
        FilterPlan {
            filter,
            placement: Placement::DeviceUplinked,
            sampling: Some((modality, granularity)),
            sink: None,
            osn_coupled: None,
            sources: Vec::new(),
            aggregated: false,
        }
    }

    /// A plan for a server-side subscription or aggregator filter.
    #[must_use]
    pub fn server(filter: Filter) -> Self {
        FilterPlan {
            filter,
            placement: Placement::Server,
            sampling: None,
            sink: None,
            osn_coupled: None,
            sources: Vec::new(),
            aggregated: false,
        }
    }

    /// A plan for a multicast template: sampled on member devices, with
    /// cross-user conditions allowed (they stay server-side when the
    /// template is distributed).
    #[must_use]
    pub fn multicast(modality: Modality, granularity: Granularity, filter: Filter) -> Self {
        FilterPlan {
            filter,
            placement: Placement::MulticastTemplate,
            sampling: Some((modality, granularity)),
            sink: None,
            osn_coupled: None,
            sources: Vec::new(),
            aggregated: false,
        }
    }

    /// Overrides the sink the flow pass checks against.
    #[must_use]
    pub fn sinking(mut self, sink: FlowSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Overrides the OSN-coupling the flow pass assumes (clients pass the
    /// stream's effective mode; the default derives it from the filter).
    #[must_use]
    pub fn coupled_to_osn(mut self, coupled: bool) -> Self {
        self.osn_coupled = Some(coupled);
        self
    }

    /// Adds an upstream source feeding the plan.
    #[must_use]
    pub fn with_source(mut self, source: FlowSource) -> Self {
        self.sources.push(source);
        self
    }

    /// Marks the plan's output as aggregated before the sink.
    #[must_use]
    pub fn aggregating(mut self) -> Self {
        self.aggregated = true;
        self
    }
}

/// Read-only view of a privacy policy, implemented by
/// `sensocial::PrivacyPolicyManager` (kept as a trait so this crate does
/// not depend on the middleware runtime).
pub trait PrivacyView {
    /// Whether `modality` may be disclosed at `granularity`.
    fn is_allowed(&self, modality: Modality, granularity: Granularity) -> bool;
}

/// The environment a plan is verified against.
#[derive(Default, Clone, Copy)]
pub struct AnalysisEnv<'a> {
    /// The device's privacy policy, when known.
    pub privacy: Option<&'a dyn PrivacyView>,
    /// The modalities the target device can sample, when known (`None`
    /// means "assume all").
    pub samplable: Option<&'a [Modality]>,
}

impl<'a> AnalysisEnv<'a> {
    /// An environment that checks types, satisfiability and placement
    /// only.
    #[must_use]
    pub fn new() -> Self {
        AnalysisEnv::default()
    }

    /// Adds a privacy policy to screen sampled modalities against.
    #[must_use]
    pub fn with_privacy(mut self, privacy: &'a dyn PrivacyView) -> Self {
        self.privacy = Some(privacy);
        self
    }

    /// Restricts the modalities the target device can sample.
    #[must_use]
    pub fn with_samplable(mut self, samplable: &'a [Modality]) -> Self {
        self.samplable = Some(samplable);
        self
    }
}

impl std::fmt::Debug for AnalysisEnv<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisEnv")
            .field("privacy", &self.privacy.is_some())
            .field("samplable", &self.samplable)
            .finish()
    }
}

/// A verified, normalized plan.
#[derive(Debug, Clone)]
#[must_use = "the normalized filter replaces the submitted one"]
pub struct Analysis {
    /// Canonical form of the submitted filter; install this, not the
    /// original.
    pub filter: Filter,
    /// Warning-severity findings (redundant or always-true conditions).
    pub warnings: Vec<PlanDiagnostic>,
    /// Privacy-policy violations. The plan is otherwise sound; SenSocial's
    /// client pauses such streams instead of rejecting them (the policy
    /// may later be relaxed), so these are reported separately. Strict
    /// callers use [`Analysis::require_privacy`].
    pub privacy_violations: Vec<PlanDiagnostic>,
    /// The information-flow verdict: per-source sensitivity labels at the
    /// plan's sink. Flow *violations* reject the plan outright (unlike
    /// `privacy_violations`, there is no pause-and-resume path that would
    /// re-run this analysis), so an `Analysis` always carries a clean
    /// verdict.
    pub flow: FlowVerdict,
}

impl Analysis {
    /// Whether the privacy policy permits the plan as submitted.
    pub fn passes_privacy(&self) -> bool {
        self.privacy_violations.is_empty()
    }

    /// Promotes privacy violations to a rejection.
    pub fn require_privacy(self) -> Result<Analysis, AnalysisError> {
        if self.privacy_violations.is_empty() {
            Ok(self)
        } else {
            Err(AnalysisError {
                diagnostics: self.privacy_violations,
            })
        }
    }
}

/// A rejected plan, carrying every error-severity diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisError {
    /// What was wrong, most fundamental findings first.
    pub diagnostics: Vec<PlanDiagnostic>,
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "filter plan rejected")?;
        for (i, d) in self.diagnostics.iter().enumerate() {
            let sep = if i == 0 { ": " } else { "; " };
            write!(f, "{sep}{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AnalysisError {}

impl From<AnalysisError> for Error {
    fn from(e: AnalysisError) -> Self {
        Error::PlanRejected(e.diagnostics)
    }
}

/// Verifies `plan` against `env`.
///
/// Returns the normalized [`Analysis`] when the plan is type-correct,
/// satisfiable and correctly placed. Privacy violations do *not* reject on
/// their own (see [`Analysis::privacy_violations`]) — but when the plan is
/// rejected for other reasons they are included in the diagnostics so the
/// author sees everything at once.
pub fn analyze(plan: &FilterPlan, env: &AnalysisEnv<'_>) -> Result<Analysis, AnalysisError> {
    let type_errors = typeck::check(&plan.filter);
    if !type_errors.is_empty() {
        // Satisfiability arithmetic assumes well-typed values; stop here.
        return Err(AnalysisError {
            diagnostics: type_errors,
        });
    }

    let placed = placement::check(plan, env);
    let mut errors = placed.errors;
    let (filter, warnings) = match sat::normalize(&plan.filter) {
        Ok(outcome) => (outcome.filter, outcome.warnings),
        Err(diags) => {
            errors.extend(diags);
            (Filter::pass_all(), Vec::new())
        }
    };

    // The flow pass describes the plan as it will be installed, so it runs
    // over the normalized filter (normalization preserves OSN presence
    // gates, so the coupling derivation sees the same truth either way).
    let flow_plan = FilterPlan {
        filter: filter.clone(),
        ..plan.clone()
    };
    let (flow, flow_errors) = flow::check(&flow_plan, env);
    errors.extend(flow_errors);

    if errors.is_empty() {
        Ok(Analysis {
            filter,
            warnings,
            privacy_violations: placed.privacy,
            flow,
        })
    } else {
        errors.extend(placed.privacy);
        Err(AnalysisError {
            diagnostics: errors,
        })
    }
}

/// Like [`analyze`], but privacy violations also reject the plan. Used by
/// server-side paths that have no pause semantics to fall back on.
pub fn analyze_strict(
    plan: &FilterPlan,
    env: &AnalysisEnv<'_>,
) -> Result<Analysis, AnalysisError> {
    analyze(plan, env).and_then(Analysis::require_privacy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::filter::{Condition, ConditionLhs, Operator};
    use sensocial_types::UserId;

    struct DenyAll;
    impl PrivacyView for DenyAll {
        fn is_allowed(&self, _m: Modality, _g: Granularity) -> bool {
            false
        }
    }

    fn device_plan(conditions: Vec<Condition>) -> FilterPlan {
        FilterPlan::device(
            Modality::Location,
            Granularity::Raw,
            Filter::new(conditions),
        )
    }

    #[test]
    fn accepts_and_normalizes_a_sound_plan() {
        let analysis = analyze(
            &device_plan(vec![
                Condition::new(ConditionLhs::HourOfDay, Operator::GreaterThan, 8),
                Condition::new(ConditionLhs::HourOfDay, Operator::GreaterThan, 5),
                Condition::new(ConditionLhs::PhysicalActivity, Operator::Equals, "walking"),
            ]),
            &AnalysisEnv::new(),
        )
        .expect("sound plan");
        assert_eq!(analysis.filter.conditions.len(), 2);
        assert!(analysis.passes_privacy());
        assert!(analysis
            .warnings
            .iter()
            .any(|w| w.code == DiagnosticCode::Redundant));
    }

    #[test]
    fn rejects_type_mismatch() {
        let err = analyze(
            &device_plan(vec![Condition::new(
                ConditionLhs::HourOfDay,
                Operator::GreaterThan,
                "walking",
            )]),
            &AnalysisEnv::new(),
        )
        .expect_err("ill-typed");
        assert_eq!(err.diagnostics[0].code, DiagnosticCode::TypeMismatch);
    }

    #[test]
    fn rejects_unsatisfiable_plan() {
        let err = analyze(
            &device_plan(vec![
                Condition::new(ConditionLhs::HourOfDay, Operator::GreaterThan, 20),
                Condition::new(ConditionLhs::HourOfDay, Operator::LessThan, 5),
            ]),
            &AnalysisEnv::new(),
        )
        .expect_err("unsatisfiable");
        assert_eq!(err.diagnostics[0].code, DiagnosticCode::Unsatisfiable);
    }

    #[test]
    fn rejects_misplaced_cross_user_condition() {
        let err = analyze(
            &device_plan(vec![Condition::new(
                ConditionLhs::PhysicalActivity,
                Operator::Equals,
                "walking",
            )
            .about(UserId::new("bob"))]),
            &AnalysisEnv::new(),
        )
        .expect_err("misplaced");
        assert_eq!(err.diagnostics[0].code, DiagnosticCode::MisplacedCondition);
    }

    #[test]
    fn privacy_violations_separate_from_rejection() {
        let deny = DenyAll;
        let env = AnalysisEnv::new().with_privacy(&deny);
        let analysis = analyze(&device_plan(Vec::new()), &env).expect("otherwise sound");
        assert!(!analysis.passes_privacy());
        assert_eq!(
            analysis.privacy_violations[0].code,
            DiagnosticCode::PrivacyViolation
        );
        let err = analyze_strict(&device_plan(Vec::new()), &env).expect_err("strict rejects");
        assert_eq!(err.diagnostics[0].code, DiagnosticCode::PrivacyViolation);
        let wire: Error = err.into();
        assert!(matches!(wire, Error::PlanRejected(_)));
    }

    #[test]
    fn privacy_flow_rejects_coupled_sensitive_plan_under_denying_policy() {
        struct AllowAll;
        impl PrivacyView for AllowAll {
            fn is_allowed(&self, _m: Modality, _g: Granularity) -> bool {
                true
            }
        }
        let osn_plan = || {
            FilterPlan::device(
                Modality::Location,
                Granularity::Raw,
                Filter::new(vec![Condition::new(
                    ConditionLhs::OsnActivity,
                    Operator::Equals,
                    "active",
                )]),
            )
            .sinking(FlowSink::Uplink)
            .coupled_to_osn(true)
        };

        let deny = DenyAll;
        let err = analyze(&osn_plan(), &AnalysisEnv::new().with_privacy(&deny))
            .expect_err("denying policy must fail the flow check, not pause");
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.code == DiagnosticCode::PrivacyFlow));

        let allow = AllowAll;
        let analysis = analyze(&osn_plan(), &AnalysisEnv::new().with_privacy(&allow))
            .expect("allowing policy authorizes the coupling");
        assert!(analysis.flow.osn_coupled);
        assert_eq!(
            analysis.flow.peak_label(),
            Some(FlowLabel::PrivacyFiltered)
        );
    }

    #[test]
    fn cyclic_multicast_dependency_is_rejected() {
        // Multicast 1: alice's members depend on bob; multicast 2 would
        // make bob depend on alice — the graph closes and must reject.
        let mut g = DependencyGraph::new();
        g.depend(&UserId::new("alice"), &UserId::new("bob"));
        g.depend(&UserId::new("bob"), &UserId::new("alice"));
        let diag = g.cycle_diagnostic().expect("cycle");
        assert_eq!(diag.code, DiagnosticCode::DependencyCycle);
    }
}
