//! Placement checking: proves the client/server filter split preserves
//! semantics, and screens conditional modalities against device
//! capabilities and the privacy policy.

use sensocial_types::{DiagnosticCode, Granularity, PlanDiagnostic};

use crate::{AnalysisEnv, FilterPlan};

/// Placement findings, split by kind: hard errors versus privacy findings
/// (which the client manager maps to the paper's pause-don't-reject
/// semantics).
#[derive(Debug, Default)]
pub struct PlacementOutcome {
    /// Misplaced cross-user conditions and unsamplable modalities.
    pub errors: Vec<PlanDiagnostic>,
    /// Privacy-policy violations for the stream or conditional modalities.
    pub privacy: Vec<PlanDiagnostic>,
}

/// Checks `plan` against its placement, the device's samplable modalities
/// and the privacy policy in `env`.
pub fn check(plan: &FilterPlan, env: &AnalysisEnv<'_>) -> PlacementOutcome {
    let mut out = PlacementOutcome::default();

    for (i, c) in plan.filter.conditions.iter().enumerate() {
        if c.is_cross_user() && !plan.placement.allows_cross_user() {
            out.errors.push(
                PlanDiagnostic::error(
                    DiagnosticCode::MisplacedCondition,
                    format!(
                        "condition about user `{}` references another user's context and can \
                         only be evaluated by the server's filter manager; attach it to a \
                         server subscription or a multicast template",
                        c.subject.as_ref().map(ToString::to_string).unwrap_or_default()
                    ),
                )
                .at(i),
            );
        }
    }

    let Some((modality, granularity)) = plan.sampling else {
        return out;
    };

    if let Some(samplable) = env.samplable {
        if !samplable.contains(&modality) {
            out.errors.push(PlanDiagnostic::error(
                DiagnosticCode::UnsamplableModality,
                format!("stream modality {modality} cannot be sampled on this device"),
            ));
        }
    }
    if let Some(privacy) = env.privacy {
        if !privacy.is_allowed(modality, granularity) {
            out.privacy.push(PlanDiagnostic::error(
                DiagnosticCode::PrivacyViolation,
                format!("privacy policy denies {granularity} data from {modality}"),
            ));
        }
    }

    // Own-user conditions over other modalities force those *conditional
    // modalities* to be sampled and classified on the device (paper §4):
    // they must be samplable and privacy-permitted at Classified
    // granularity. Cross-user conditions are evaluated server-side against
    // the subject's uplinked context and are screened by the subject's own
    // device, not this one.
    for (i, c) in plan.filter.conditions.iter().enumerate() {
        if c.is_cross_user() {
            continue;
        }
        let Some(m) = c.lhs.required_modality() else {
            continue;
        };
        if m == modality {
            continue;
        }
        if let Some(samplable) = env.samplable {
            if !samplable.contains(&m) {
                out.errors.push(
                    PlanDiagnostic::error(
                        DiagnosticCode::UnsamplableModality,
                        format!(
                            "conditional modality {m} (required by `{}`) cannot be sampled \
                             on this device",
                            c.lhs.name()
                        ),
                    )
                    .at(i),
                );
            }
        }
        if let Some(privacy) = env.privacy {
            if !privacy.is_allowed(m, Granularity::Classified) {
                out.privacy.push(
                    PlanDiagnostic::error(
                        DiagnosticCode::PrivacyViolation,
                        format!(
                            "privacy policy denies classified data from conditional \
                             modality {m} (required by `{}`)",
                            c.lhs.name()
                        ),
                    )
                    .at(i),
                );
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrivacyView;
    use sensocial_types::filter::{Condition, ConditionLhs, Filter, Operator};
    use sensocial_types::{Modality, UserId};

    struct DenyMicrophone;
    impl PrivacyView for DenyMicrophone {
        fn is_allowed(&self, modality: Modality, _granularity: Granularity) -> bool {
            modality != Modality::Microphone
        }
    }

    fn walking_about(user: &str) -> Condition {
        Condition::new(ConditionLhs::PhysicalActivity, Operator::Equals, "walking")
            .about(UserId::new(user))
    }

    #[test]
    fn cross_user_condition_on_device_plan_is_misplaced() {
        let plan = FilterPlan::device(
            Modality::Location,
            Granularity::Raw,
            Filter::new(vec![walking_about("bob")]),
        );
        let out = check(&plan, &AnalysisEnv::new());
        assert_eq!(out.errors.len(), 1);
        assert_eq!(out.errors[0].code, DiagnosticCode::MisplacedCondition);
        assert_eq!(out.errors[0].condition, Some(0));
    }

    #[test]
    fn cross_user_condition_is_fine_server_side() {
        let plan = FilterPlan::server(Filter::new(vec![walking_about("bob")]));
        let out = check(&plan, &AnalysisEnv::new());
        assert!(out.errors.is_empty());
        assert!(out.privacy.is_empty());
    }

    #[test]
    fn denied_conditional_modality_is_a_privacy_violation() {
        let deny = DenyMicrophone;
        let plan = FilterPlan::device(
            Modality::Location,
            Granularity::Raw,
            Filter::new(vec![Condition::new(
                ConditionLhs::AudioEnvironment,
                Operator::Equals,
                "silent",
            )]),
        );
        let env = AnalysisEnv::new().with_privacy(&deny);
        let out = check(&plan, &env);
        assert!(out.errors.is_empty());
        assert_eq!(out.privacy.len(), 1);
        assert_eq!(out.privacy[0].code, DiagnosticCode::PrivacyViolation);
    }

    #[test]
    fn unsamplable_conditional_modality_is_an_error() {
        let samplable = [Modality::Location, Modality::Accelerometer];
        let plan = FilterPlan::device(
            Modality::Location,
            Granularity::Raw,
            Filter::new(vec![Condition::new(
                ConditionLhs::WifiDensity,
                Operator::GreaterThan,
                3,
            )]),
        );
        let env = AnalysisEnv::new().with_samplable(&samplable);
        let out = check(&plan, &env);
        assert_eq!(out.errors.len(), 1);
        assert_eq!(out.errors[0].code, DiagnosticCode::UnsamplableModality);
    }
}
