//! Machine-readable, byte-stable analysis report.
//!
//! One JSON document per deployment summarizing what the static analysis
//! knows: every admitted plan's [`PlanCost`] and [`FlowVerdict`], the
//! cross-user dependency edges, and the [`ShardPlan`] placement hint.
//! `sensocial-bench --analysis-report` emits it and CI `cmp`s a double run
//! for byte identity, so every field must serialize in a deterministic
//! order — `Vec`s sorted by the builder, no hash-ordered containers.

use serde::Serialize;

use crate::cost::PlanCost;
use crate::flow::FlowVerdict;
use crate::shard::{GraphEdge, ShardPlan};
use crate::DependencyGraph;
use sensocial_types::UserId;

/// The static analysis of one admitted plan.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlanReport {
    /// What kind of plan this is (`device_stream`, `remote_stream`,
    /// `subscription`, `aggregator`, `multicast`), a stable sort key.
    pub kind: String,
    /// Identifier within the kind (stream/aggregator/multicast id or a
    /// subscription index), the secondary sort key.
    pub id: String,
    /// Static cost estimate of the normalized filter.
    pub cost: PlanCost,
    /// Information-flow verdict: per-source labels at the sink.
    pub flow: FlowVerdict,
    /// Number of flow diagnostics the re-check produced. Zero for every
    /// admitted plan unless authority was deferred to a device that has
    /// not re-verified yet.
    pub flow_violations: usize,
}

impl PlanReport {
    /// Analyzes one plan for the report: static cost of its (already
    /// normalized) filter plus a fresh information-flow check.
    #[must_use]
    pub fn for_plan(
        kind: impl Into<String>,
        id: impl Into<String>,
        plan: &crate::FilterPlan,
        env: &crate::AnalysisEnv<'_>,
    ) -> Self {
        let (verdict, errors) = crate::flow::check(plan, env);
        PlanReport {
            kind: kind.into(),
            id: id.into(),
            cost: crate::cost::estimate(&plan.filter),
            flow: verdict,
            flow_violations: errors.len(),
        }
    }
}

/// Aggregate totals over the report's plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub struct ReportTotals {
    /// Number of plans analyzed.
    pub plans: usize,
    /// Sum of per-plan predicate counts.
    pub predicates: usize,
    /// Number of plans gated on OSN context.
    pub osn_gated: usize,
    /// Number of plans with at least one cross-user join.
    pub cross_user: usize,
}

/// The whole-deployment static analysis report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AnalysisReport {
    /// Report format name, for consumers dispatching on content.
    pub report: &'static str,
    /// Format version; bump when the structure changes.
    pub version: u32,
    /// Every analyzed plan, sorted by `(kind, id)`.
    pub plans: Vec<PlanReport>,
    /// Aggregate totals over `plans`.
    pub totals: ReportTotals,
    /// The cross-user dependency edges the shard plan was computed from,
    /// sorted.
    pub dependency_edges: Vec<GraphEdge>,
    /// The shard-affinity placement hint for ROADMAP #2.
    pub shard_plan: ShardPlan,
}

impl AnalysisReport {
    /// Builds a report from collected plan analyses, the deployment's
    /// dependency graph, its known users and the target shard count.
    /// Plans are sorted here so callers may collect in any order.
    #[must_use]
    pub fn new(
        mut plans: Vec<PlanReport>,
        graph: &DependencyGraph,
        users: &[UserId],
        shard_count: usize,
    ) -> Self {
        plans.sort_by(|a, b| (&a.kind, &a.id).cmp(&(&b.kind, &b.id)));
        let totals = ReportTotals {
            plans: plans.len(),
            predicates: plans.iter().map(|p| p.cost.predicates).sum(),
            osn_gated: plans.iter().filter(|p| p.cost.osn_gated).count(),
            cross_user: plans.iter().filter(|p| p.cost.cross_user_joins > 0).count(),
        };
        let dependency_edges = graph
            .edge_list()
            .into_iter()
            .map(|(owner, subject)| GraphEdge { owner, subject })
            .collect();
        AnalysisReport {
            report: "sensocial_analysis",
            version: 1,
            plans,
            totals,
            dependency_edges,
            shard_plan: crate::shard::plan(graph, users, shard_count),
        }
    }

    /// Canonical JSON rendering: pretty-printed, trailing newline,
    /// byte-identical for equal reports.
    #[must_use]
    pub fn to_json(&self) -> String {
        // Serialize derives on plain structs cannot fail; fall back to an
        // empty object rather than panicking in shipping code.
        let mut json = serde_json::to_string_pretty(self).unwrap_or_else(|_| String::from("{}"));
        json.push('\n');
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowLabel, FlowSink, FlowSource, FlowTrace};
    use sensocial_types::{Granularity, Modality};

    fn sample_plan(kind: &str, id: &str) -> PlanReport {
        PlanReport {
            kind: kind.to_owned(),
            id: id.to_owned(),
            cost: PlanCost {
                predicates: 2,
                eval_depth: 1,
                cross_user_joins: 1,
                osn_gated: true,
            },
            flow: FlowVerdict {
                sink: Some(FlowSink::Subscriber),
                osn_coupled: true,
                traces: vec![FlowTrace {
                    source: FlowSource::new(Modality::Location, Granularity::Classified),
                    entry: FlowLabel::PrivacyFiltered,
                    label: FlowLabel::PrivacyFiltered,
                }],
            },
            flow_violations: 0,
        }
    }

    #[test]
    fn plans_are_sorted_and_totals_add_up() {
        let graph = DependencyGraph::new();
        let report = AnalysisReport::new(
            vec![
                sample_plan("subscription", "subscription#1"),
                sample_plan("aggregator", "aggregator#0"),
                sample_plan("subscription", "subscription#0"),
            ],
            &graph,
            &[],
            2,
        );
        let keys: Vec<&str> = report.plans.iter().map(|p| p.id.as_str()).collect();
        assert_eq!(
            keys,
            ["aggregator#0", "subscription#0", "subscription#1"]
        );
        assert_eq!(report.totals.plans, 3);
        assert_eq!(report.totals.predicates, 6);
        assert_eq!(report.totals.osn_gated, 3);
        assert_eq!(report.totals.cross_user, 3);
    }

    #[test]
    fn json_is_byte_stable_and_newline_terminated() {
        let mut graph = DependencyGraph::new();
        graph.depend(
            &sensocial_types::UserId::new("alice"),
            &sensocial_types::UserId::new("bob"),
        );
        let build = || {
            AnalysisReport::new(
                vec![sample_plan("multicast", "multicast#0")],
                &graph,
                &[sensocial_types::UserId::new("alice")],
                4,
            )
            .to_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        assert!(a.contains("\"report\": \"sensocial_analysis\""));
        assert!(a.contains("\"dependency_edges\""));
    }
}
