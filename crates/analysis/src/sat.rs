//! Satisfiability and normalization of well-typed condition sets.
//!
//! Conditions are grouped by `(subject, lhs)`; each group is solved over
//! its value domain — set intersection for categorical domains, integer
//! interval reasoning for the hour of day and the density counts — and
//! re-emitted in a canonical form. The pass rejects a plan only when
//! emptiness is *provable*; anything merely suspicious is a warning.
//!
//! One subtlety keeps normalization honest: a condition over a modality
//! that may have produced no context yet (`WifiDensity`, `BluetoothDensity`,
//! OSN kind/topic) evaluates to `false` while the context is missing, so
//! even a tautological condition acts as a *presence gate*. The normalizer
//! therefore never drops the last condition of such a group — it only
//! rewrites within the group, which preserves the gate.

use std::collections::{BTreeMap, BTreeSet};

use sensocial_types::filter::{Condition, ConditionLhs, Filter, Operator};
use sensocial_types::{DiagnosticCode, PlanDiagnostic, UserId};
use serde_json::Value;

use crate::domain::{always_evaluable, domain_of, ValueDomain};

/// The normalized filter plus any warning-severity findings.
#[derive(Debug, Clone)]
pub struct SatOutcome {
    /// Canonical, semantics-preserving form of the input filter.
    pub filter: Filter,
    /// `Redundant` / `AlwaysTrue` warnings raised while normalizing.
    pub warnings: Vec<PlanDiagnostic>,
}

/// Solves each `(subject, lhs)` group of a *well-typed* filter.
///
/// Returns the canonical plan, or `Unsatisfiable` diagnostics if any group
/// is provably empty. Must run after [`crate::typeck::check`] — ill-typed
/// values here would panic the arithmetic below.
pub fn normalize(filter: &Filter) -> Result<SatOutcome, Vec<PlanDiagnostic>> {
    let mut groups: BTreeMap<(Option<UserId>, ConditionLhs), Vec<Condition>> = BTreeMap::new();
    for c in &filter.conditions {
        groups
            .entry((c.subject.clone(), c.lhs))
            .or_default()
            .push(c.clone());
    }

    let mut out = Vec::new();
    let mut warnings = Vec::new();
    let mut errors = Vec::new();
    for ((subject, lhs), conditions) in groups {
        match normalize_group(subject.as_ref(), lhs, &conditions) {
            Ok(group) => {
                if group.conditions.len() < conditions.len() {
                    warnings.push(PlanDiagnostic::warning(
                        DiagnosticCode::Redundant,
                        format!(
                            "{} of {} conditions on {} were implied by the rest and were dropped",
                            conditions.len() - group.conditions.len(),
                            conditions.len(),
                            describe(subject.as_ref(), lhs),
                        ),
                    ));
                }
                warnings.extend(group.warnings);
                out.extend(group.conditions);
            }
            Err(diag) => errors.push(diag),
        }
    }
    if errors.is_empty() {
        Ok(SatOutcome {
            filter: Filter::new(out),
            warnings,
        })
    } else {
        Err(errors)
    }
}

struct GroupOutcome {
    conditions: Vec<Condition>,
    warnings: Vec<PlanDiagnostic>,
}

fn describe(subject: Option<&UserId>, lhs: ConditionLhs) -> String {
    match subject {
        Some(u) => format!("`{}` of user `{u}`", lhs.name()),
        None => format!("`{}`", lhs.name()),
    }
}

fn unsat(subject: Option<&UserId>, lhs: ConditionLhs, why: &str) -> PlanDiagnostic {
    PlanDiagnostic::error(
        DiagnosticCode::Unsatisfiable,
        format!("conditions on {} {why}", describe(subject, lhs)),
    )
}

fn cond(subject: Option<&UserId>, lhs: ConditionLhs, op: Operator, value: Value) -> Condition {
    let mut c = Condition::new(lhs, op, value);
    c.subject = subject.cloned();
    c
}

fn normalize_group(
    subject: Option<&UserId>,
    lhs: ConditionLhs,
    conditions: &[Condition],
) -> Result<GroupOutcome, PlanDiagnostic> {
    match domain_of(lhs) {
        ValueDomain::Enum(values) => normalize_enum(subject, lhs, conditions, values),
        ValueDomain::Text => normalize_text(subject, lhs, conditions),
        ValueDomain::Hour => normalize_numeric(subject, lhs, conditions, Some(23)),
        ValueDomain::Count => normalize_numeric(subject, lhs, conditions, None),
    }
}

fn str_value(c: &Condition) -> &str {
    match &c.value {
        Value::String(s) => s.as_str(),
        _ => "", // unreachable for well-typed filters; harmless fallback
    }
}

fn normalize_enum(
    subject: Option<&UserId>,
    lhs: ConditionLhs,
    conditions: &[Condition],
    values: &'static [&'static str],
) -> Result<GroupOutcome, PlanDiagnostic> {
    let full: BTreeSet<&str> = values.iter().copied().collect();
    let mut allowed = full.clone();
    for c in conditions {
        let v = str_value(c);
        match c.op {
            Operator::Equals => allowed.retain(|a| *a == v),
            Operator::NotEquals => {
                allowed.remove(v);
            }
            _ => {}
        }
    }
    if allowed.is_empty() {
        return Err(unsat(subject, lhs, "exclude every possible value"));
    }
    let conditions = if allowed.len() == full.len() {
        // Cannot happen for a non-empty, well-typed group, but stay sound.
        conditions.to_vec()
    } else if allowed.len() == 1 {
        let only = allowed.iter().next().copied().unwrap_or_default();
        vec![cond(subject, lhs, Operator::Equals, Value::from(only))]
    } else {
        full.difference(&allowed)
            .map(|v| cond(subject, lhs, Operator::NotEquals, Value::from(*v)))
            .collect()
    };
    Ok(GroupOutcome {
        conditions,
        warnings: Vec::new(),
    })
}

fn normalize_text(
    subject: Option<&UserId>,
    lhs: ConditionLhs,
    conditions: &[Condition],
) -> Result<GroupOutcome, PlanDiagnostic> {
    let mut eq: Option<&str> = None;
    let mut neq: BTreeSet<&str> = BTreeSet::new();
    for c in conditions {
        let v = str_value(c);
        match c.op {
            Operator::Equals => match eq {
                Some(prev) if prev != v => {
                    return Err(unsat(subject, lhs, "require two different values at once"));
                }
                _ => eq = Some(v),
            },
            Operator::NotEquals => {
                neq.insert(v);
            }
            _ => {}
        }
    }
    let conditions = if let Some(v) = eq {
        if neq.contains(v) {
            return Err(unsat(
                subject,
                lhs,
                "require and exclude the same value at once",
            ));
        }
        vec![cond(subject, lhs, Operator::Equals, Value::from(v))]
    } else {
        neq.iter()
            .map(|v| cond(subject, lhs, Operator::NotEquals, Value::from(*v)))
            .collect()
    };
    Ok(GroupOutcome {
        conditions,
        warnings: Vec::new(),
    })
}

/// Integer interval reasoning over `[0, dom_max]` (`dom_max = None` means
/// unbounded counts). Runtime comparison is on `f64`, but every actual
/// value is a non-negative integer, so `x > 2.5` is exactly `x >= 3`.
#[allow(clippy::too_many_lines)]
fn normalize_numeric(
    subject: Option<&UserId>,
    lhs: ConditionLhs,
    conditions: &[Condition],
    dom_max: Option<i64>,
) -> Result<GroupOutcome, PlanDiagnostic> {
    let dom_hi = dom_max.unwrap_or(i64::MAX);
    let mut lo: i64 = 0;
    let mut hi: i64 = dom_hi;
    let mut eq: Option<i64> = None;
    let mut neq: BTreeSet<i64> = BTreeSet::new();
    let mut warnings = Vec::new();

    for c in conditions {
        let v = c.value.as_f64().unwrap_or(f64::NAN);
        match c.op {
            Operator::GreaterThan => {
                // Integer actuals: `x > v` is `x >= floor(v) + 1`.
                let candidate = float_floor(v) + 1;
                lo = lo.max(candidate);
            }
            Operator::LessThan => {
                // `x < v` is `x <= ceil(v) - 1`.
                let candidate = float_ceil(v) - 1;
                hi = hi.min(candidate);
            }
            Operator::Equals => {
                let Some(n) = as_exact_int(v).filter(|n| *n >= 0 && *n <= dom_hi) else {
                    return Err(unsat(
                        subject,
                        lhs,
                        &format!("can never equal `{}`", c.value),
                    ));
                };
                if let Some(prev) = eq {
                    if prev != n {
                        return Err(unsat(subject, lhs, "require two different values at once"));
                    }
                }
                eq = Some(n);
            }
            Operator::NotEquals => {
                // Excluding a value outside the domain excludes nothing.
                if let Some(n) = as_exact_int(v).filter(|n| *n >= 0 && *n <= dom_hi) {
                    neq.insert(n);
                }
            }
        }
    }

    if let Some(n) = eq {
        if n < lo || n > hi {
            return Err(unsat(subject, lhs, "pin a value outside the allowed interval"));
        }
        if neq.contains(&n) {
            return Err(unsat(
                subject,
                lhs,
                "require and exclude the same value at once",
            ));
        }
        return Ok(GroupOutcome {
            conditions: vec![cond(subject, lhs, Operator::Equals, Value::from(n))],
            warnings,
        });
    }

    if lo > hi {
        return Err(unsat(subject, lhs, "describe an empty interval"));
    }
    let neq_in: BTreeSet<i64> = neq.into_iter().filter(|n| *n >= lo && *n <= hi).collect();
    // A small, fully-excluded interval is empty too (e.g. 0 < x < 2, x != 1).
    if hi != i64::MAX && (hi - lo) < 1024 && ((hi - lo + 1) as usize) == neq_in.len() {
        return Err(unsat(
            subject,
            lhs,
            "exclude every value of the allowed interval",
        ));
    }

    let constrained = lo > 0 || hi < dom_hi || !neq_in.is_empty();
    if !constrained {
        // A cross-user group additionally gates on the *subject's* snapshot
        // being known to the server (`evaluate_full` fails the condition
        // when the lookup misses), so it can never be dropped outright —
        // only own-user, always-evaluable groups can.
        if subject.is_none() && always_evaluable(lhs) {
            // The hour always has a value: a vacuous group constrains
            // nothing and is dropped outright.
            warnings.push(PlanDiagnostic::warning(
                DiagnosticCode::AlwaysTrue,
                format!(
                    "conditions on {} hold at every hour and were dropped",
                    describe(subject, lhs)
                ),
            ));
            return Ok(GroupOutcome {
                conditions: Vec::new(),
                warnings,
            });
        }
        // Counts gate on context presence even when tautological: keep the
        // (deduplicated) conditions so the gate survives, but tell the
        // author the comparison itself constrains nothing.
        warnings.push(PlanDiagnostic::warning(
            DiagnosticCode::AlwaysTrue,
            format!(
                "conditions on {} hold for every recorded value; they only gate on the \
                 modality having produced context",
                describe(subject, lhs)
            ),
        ));
        let mut seen = BTreeSet::new();
        let kept: Vec<Condition> = conditions
            .iter()
            .filter(|c| seen.insert((c.op, c.value.to_string())))
            .cloned()
            .collect();
        return Ok(GroupOutcome {
            conditions: kept,
            warnings,
        });
    }

    let mut out = Vec::new();
    if lo > 0 {
        out.push(cond(subject, lhs, Operator::GreaterThan, Value::from(lo - 1)));
    }
    if hi < dom_hi {
        out.push(cond(subject, lhs, Operator::LessThan, Value::from(hi + 1)));
    }
    for n in neq_in {
        out.push(cond(subject, lhs, Operator::NotEquals, Value::from(n)));
    }
    Ok(GroupOutcome {
        conditions: out,
        warnings,
    })
}

fn float_floor(v: f64) -> i64 {
    let f = v.floor();
    if f >= i64::MAX as f64 {
        i64::MAX - 1
    } else if f <= i64::MIN as f64 {
        i64::MIN + 1
    } else {
        f as i64
    }
}

fn float_ceil(v: f64) -> i64 {
    let c = v.ceil();
    if c >= i64::MAX as f64 {
        i64::MAX - 1
    } else if c <= i64::MIN as f64 {
        i64::MIN + 1
    } else {
        c as i64
    }
}

fn as_exact_int(v: f64) -> Option<i64> {
    (v.is_finite() && v.fract() == 0.0 && v.abs() < 2f64.powi(53)).then_some(v as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hour(op: Operator, v: impl Into<Value>) -> Condition {
        Condition::new(ConditionLhs::HourOfDay, op, v)
    }

    fn normalized(conditions: Vec<Condition>) -> SatOutcome {
        normalize(&Filter::new(conditions)).expect("satisfiable")
    }

    fn rejected(conditions: Vec<Condition>) -> Vec<PlanDiagnostic> {
        normalize(&Filter::new(conditions)).expect_err("unsatisfiable")
    }

    #[test]
    fn contradictory_hour_interval_is_unsatisfiable() {
        // The issue's acceptance example: Hour > 20 ∧ Hour < 5.
        let diags = rejected(vec![
            hour(Operator::GreaterThan, 20),
            hour(Operator::LessThan, 5),
        ]);
        assert_eq!(diags[0].code, DiagnosticCode::Unsatisfiable);
        assert!(diags[0].message.contains("empty interval"));
    }

    #[test]
    fn contradictory_enum_equalities_are_unsatisfiable() {
        let diags = rejected(vec![
            Condition::new(ConditionLhs::PhysicalActivity, Operator::Equals, "walking"),
            Condition::new(ConditionLhs::PhysicalActivity, Operator::Equals, "running"),
        ]);
        assert_eq!(diags[0].code, DiagnosticCode::Unsatisfiable);
    }

    #[test]
    fn excluding_the_whole_enum_is_unsatisfiable() {
        let diags = rejected(vec![
            Condition::new(ConditionLhs::AudioEnvironment, Operator::NotEquals, "silent"),
            Condition::new(
                ConditionLhs::AudioEnvironment,
                Operator::NotEquals,
                "not_silent",
            ),
        ]);
        assert_eq!(diags[0].code, DiagnosticCode::Unsatisfiable);
    }

    #[test]
    fn negative_count_is_unsatisfiable() {
        let diags = rejected(vec![Condition::new(
            ConditionLhs::WifiDensity,
            Operator::LessThan,
            0,
        )]);
        assert_eq!(diags[0].code, DiagnosticCode::Unsatisfiable);
    }

    #[test]
    fn weaker_bound_is_dropped_as_redundant() {
        let out = normalized(vec![
            hour(Operator::GreaterThan, 8),
            hour(Operator::GreaterThan, 5),
        ]);
        assert_eq!(
            out.filter.conditions,
            vec![hour(Operator::GreaterThan, 8)]
        );
        assert_eq!(out.warnings.len(), 1);
        assert_eq!(out.warnings[0].code, DiagnosticCode::Redundant);
    }

    #[test]
    fn vacuous_hour_condition_is_dropped_as_always_true() {
        let out = normalized(vec![hour(Operator::GreaterThan, -5)]);
        assert!(out.filter.conditions.is_empty());
        assert!(out
            .warnings
            .iter()
            .any(|w| w.code == DiagnosticCode::AlwaysTrue));
    }

    #[test]
    fn vacuous_count_condition_is_kept_as_presence_gate() {
        // WifiDensity > -1 holds for every recorded count, but it is false
        // while WiFi has produced no context — dropping it would change
        // semantics. It must survive, with a warning.
        let gate = Condition::new(ConditionLhs::WifiDensity, Operator::GreaterThan, -1);
        let out = normalized(vec![gate.clone()]);
        assert_eq!(out.filter.conditions, vec![gate]);
        assert!(out
            .warnings
            .iter()
            .any(|w| w.code == DiagnosticCode::AlwaysTrue));
    }

    #[test]
    fn excluding_all_but_one_enum_value_becomes_an_equality() {
        let out = normalized(vec![
            Condition::new(ConditionLhs::PhysicalActivity, Operator::NotEquals, "still"),
            Condition::new(
                ConditionLhs::PhysicalActivity,
                Operator::NotEquals,
                "walking",
            ),
        ]);
        assert_eq!(
            out.filter.conditions,
            vec![Condition::new(
                ConditionLhs::PhysicalActivity,
                Operator::Equals,
                "running"
            )]
        );
    }

    #[test]
    fn fully_excluded_small_interval_is_unsatisfiable() {
        let diags = rejected(vec![
            hour(Operator::GreaterThan, 10),
            hour(Operator::LessThan, 13),
            hour(Operator::NotEquals, 11),
            hour(Operator::NotEquals, 12),
        ]);
        assert_eq!(diags[0].code, DiagnosticCode::Unsatisfiable);
    }

    #[test]
    fn fractional_bounds_normalize_to_integers() {
        let out = normalized(vec![hour(Operator::GreaterThan, 8.5)]);
        // hour > 8.5 over integers is hour >= 9, canonically `> 8`.
        assert_eq!(out.filter.conditions, vec![hour(Operator::GreaterThan, 8)]);
    }

    #[test]
    fn cross_user_groups_are_solved_independently() {
        let bob = UserId::new("bob");
        let own = Condition::new(ConditionLhs::HourOfDay, Operator::GreaterThan, 8);
        let theirs = Condition::new(ConditionLhs::HourOfDay, Operator::LessThan, 5)
            .about(bob.clone());
        // Own-user `> 8` and bob's `< 5` do NOT contradict: different users.
        let out = normalized(vec![own.clone(), theirs.clone()]);
        assert_eq!(out.filter.conditions, vec![own, theirs]);
    }

    #[test]
    fn vacuous_cross_user_hour_condition_is_kept() {
        // `Hour > -5 about bob` holds at every hour, but `evaluate_full`
        // still fails it while bob's snapshot is unknown to the server —
        // the condition gates on the subject's presence and must survive.
        let c = hour(Operator::GreaterThan, -5).about(UserId::new("bob"));
        let out = normalized(vec![c.clone()]);
        assert_eq!(out.filter.conditions, vec![c]);
        assert!(out
            .warnings
            .iter()
            .any(|w| w.code == DiagnosticCode::AlwaysTrue));
    }

    #[test]
    fn normalization_is_idempotent_on_examples() {
        let cases = vec![
            vec![
                hour(Operator::GreaterThan, 8),
                hour(Operator::LessThan, 17),
                hour(Operator::NotEquals, 12),
            ],
            vec![
                Condition::new(ConditionLhs::PhysicalActivity, Operator::NotEquals, "still"),
                Condition::new(ConditionLhs::Place, Operator::Equals, "Paris"),
            ],
            vec![Condition::new(
                ConditionLhs::BluetoothDensity,
                Operator::GreaterThan,
                3,
            )],
        ];
        for conditions in cases {
            let once = normalized(conditions);
            let twice = normalized(once.filter.conditions.clone());
            assert_eq!(once.filter, twice.filter);
            assert!(twice.warnings.is_empty(), "canonical form re-checks clean");
        }
    }
}
