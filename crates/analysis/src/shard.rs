//! Static shard-affinity planner.
//!
//! ROADMAP #2 shards the server by user; a cross-user filter whose owner
//! and subject land on different shards needs a cross-shard context fetch
//! on every evaluation. The [`DependencyGraph`](crate::DependencyGraph)
//! already records exactly which user pairs must be co-resolved, so this
//! module turns it into a deterministic placement hint: connected
//! components of the (undirected) dependency relation are kept together
//! where capacity allows, components too large for one shard are split,
//! and every dependency edge the partition severs is accounted for as an
//! explicit cut edge — nothing is silently dropped.
//!
//! The planner is pure and ordered (BTree iteration, stable tie-breaks),
//! so the same graph + user set + shard count always yields a
//! byte-identical [`ShardPlan`] — the property the CI double-run gate and
//! the proptests pin down.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use sensocial_types::UserId;

use serde::Serialize;

use crate::DependencyGraph;

/// One directed dependency edge (`owner`'s delivery reads `subject`'s
/// context).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct GraphEdge {
    /// The user whose stream delivery is gated.
    pub owner: UserId,
    /// The user whose context the gate reads.
    pub subject: UserId,
}

/// One shard's user assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Shard {
    /// Shard index, `0..shard_count`.
    pub index: usize,
    /// Users placed on this shard, sorted.
    pub users: Vec<UserId>,
}

/// A deterministic user→shard partition with cut-edge accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ShardPlan {
    /// Number of shards planned for.
    pub shard_count: usize,
    /// Per-shard capacity used by the planner: `ceil(users / shards)`.
    pub capacity: usize,
    /// The shards, indexed `0..shard_count`. Every known user appears in
    /// exactly one.
    pub shards: Vec<Shard>,
    /// Dependency edges whose endpoints landed on different shards,
    /// sorted. Each one is a cross-shard context fetch at runtime.
    pub cut_edges: Vec<GraphEdge>,
    /// Dependency edges kept within one shard.
    pub intra_edges: usize,
}

impl ShardPlan {
    /// The shard index a user was assigned to, if the user is known.
    #[must_use]
    pub fn shard_of(&self, user: &UserId) -> Option<usize> {
        self.shards
            .iter()
            .find(|s| s.users.binary_search(user).is_ok())
            .map(|s| s.index)
    }

    /// Total users placed.
    #[must_use]
    pub fn user_count(&self) -> usize {
        self.shards.iter().map(|s| s.users.len()).sum()
    }
}

/// Plans a balanced partition of `users` (plus every user appearing in
/// `graph`) across `shard_count` shards, keeping dependency-connected
/// users together where capacity allows.
///
/// Algorithm: undirected connected components of the dependency relation
/// (BFS in sorted order), components larger than the per-shard capacity
/// split into BFS-order chunks, chunks placed greedily largest-first onto
/// the least-loaded shard (ties to the lowest index). Fully deterministic.
#[must_use]
pub fn plan(graph: &DependencyGraph, users: &[UserId], shard_count: usize) -> ShardPlan {
    let shard_count = shard_count.max(1);

    // Node set: every explicitly known user plus every graph endpoint.
    let mut nodes: BTreeSet<UserId> = users.iter().cloned().collect();
    let edges = graph.edge_list();
    for e in &edges {
        nodes.insert(e.0.clone());
        nodes.insert(e.1.clone());
    }

    // Undirected adjacency, sorted both ways.
    let mut adjacency: BTreeMap<&UserId, BTreeSet<&UserId>> = BTreeMap::new();
    for (owner, subject) in &edges {
        adjacency.entry(owner).or_default().insert(subject);
        adjacency.entry(subject).or_default().insert(owner);
    }

    let capacity = nodes.len().div_ceil(shard_count).max(1);

    // Connected components via BFS from each unvisited node in sorted
    // order; each component's member list is in BFS order so splitting an
    // oversized component keeps neighbors adjacent.
    let mut visited: BTreeSet<&UserId> = BTreeSet::new();
    let mut chunks: Vec<Vec<UserId>> = Vec::new();
    for start in &nodes {
        if visited.contains(start) {
            continue;
        }
        let mut component: Vec<UserId> = Vec::new();
        let mut queue: VecDeque<&UserId> = VecDeque::new();
        visited.insert(start);
        queue.push_back(start);
        while let Some(node) = queue.pop_front() {
            component.push(node.clone());
            if let Some(neighbors) = adjacency.get(node) {
                for next in neighbors {
                    if visited.insert(next) {
                        queue.push_back(next);
                    }
                }
            }
        }
        for chunk in component.chunks(capacity) {
            chunks.push(chunk.to_vec());
        }
    }

    // Largest chunk first; ties broken by smallest member for determinism.
    chunks.sort_by(|a, b| {
        b.len()
            .cmp(&a.len())
            .then_with(|| a.iter().min().cmp(&b.iter().min()))
    });

    let mut shards: Vec<Shard> = (0..shard_count)
        .map(|index| Shard {
            index,
            users: Vec::new(),
        })
        .collect();
    for chunk in chunks {
        let target = shards
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.users.len(), *i))
            .map(|(i, _)| i)
            .unwrap_or(0);
        shards[target].users.extend(chunk);
    }
    for shard in &mut shards {
        shard.users.sort_unstable();
    }

    let shard_of = |user: &UserId| -> Option<usize> {
        shards
            .iter()
            .find(|s| s.users.binary_search(user).is_ok())
            .map(|s| s.index)
    };
    let mut cut_edges: Vec<GraphEdge> = Vec::new();
    let mut intra_edges = 0usize;
    for (owner, subject) in &edges {
        if shard_of(owner) == shard_of(subject) {
            intra_edges += 1;
        } else {
            cut_edges.push(GraphEdge {
                owner: owner.clone(),
                subject: subject.clone(),
            });
        }
    }
    cut_edges.sort_unstable();

    ShardPlan {
        shard_count,
        capacity,
        shards,
        cut_edges,
        intra_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(name: &str) -> UserId {
        UserId::new(name)
    }

    fn users(names: &[&str]) -> Vec<UserId> {
        names.iter().map(|n| u(n)).collect()
    }

    #[test]
    fn dependency_pairs_stay_on_one_shard() {
        let mut g = DependencyGraph::new();
        g.depend(&u("a"), &u("b"));
        g.depend(&u("c"), &u("d"));
        let plan = plan(&g, &users(&["a", "b", "c", "d"]), 2);
        assert_eq!(plan.user_count(), 4);
        assert_eq!(plan.cut_edges.len(), 0);
        assert_eq!(plan.intra_edges, 2);
        assert_eq!(plan.shard_of(&u("a")), plan.shard_of(&u("b")));
        assert_eq!(plan.shard_of(&u("c")), plan.shard_of(&u("d")));
        // Balanced: two users per shard.
        assert!(plan.shards.iter().all(|s| s.users.len() == 2));
    }

    #[test]
    fn oversized_component_is_split_with_cut_edges_accounted() {
        // A chain a→b→c→d→e→f is one component of 6; capacity for 2
        // shards is 3, so it must split and sever at least one edge.
        let mut g = DependencyGraph::new();
        for pair in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f")] {
            g.depend(&u(pair.0), &u(pair.1));
        }
        let plan = plan(&g, &[], 2);
        assert_eq!(plan.user_count(), 6);
        assert_eq!(plan.capacity, 3);
        assert_eq!(plan.intra_edges + plan.cut_edges.len(), 5);
        assert!(!plan.cut_edges.is_empty());
        // Every edge is either intra-shard or explicitly a cut edge.
        for (owner, subject) in g.edge_list() {
            let same = plan.shard_of(&owner) == plan.shard_of(&subject);
            let listed = plan
                .cut_edges
                .iter()
                .any(|e| e.owner == owner && e.subject == subject);
            assert!(same != listed, "edge {owner} -> {subject} unaccounted");
        }
    }

    #[test]
    fn plan_is_deterministic_and_serializable() {
        let mut g = DependencyGraph::new();
        g.depend(&u("x"), &u("y"));
        let once = plan(&g, &users(&["x", "y", "z"]), 3);
        let twice = plan(&g, &users(&["x", "y", "z"]), 3);
        assert_eq!(once, twice);
        let a = serde_json::to_string(&once).expect("plan serializes");
        let b = serde_json::to_string(&twice).expect("plan serializes");
        assert_eq!(a, b);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let plan = plan(&DependencyGraph::new(), &users(&["a"]), 0);
        assert_eq!(plan.shard_count, 1);
        assert_eq!(plan.user_count(), 1);
    }

    #[test]
    fn empty_world_yields_empty_shards() {
        let plan = plan(&DependencyGraph::new(), &[], 4);
        assert_eq!(plan.user_count(), 0);
        assert_eq!(plan.shards.len(), 4);
        assert!(plan.cut_edges.is_empty());
    }
}
