//! Condition type checking: every operator/value pair must fit its
//! left-hand side's value domain.

use sensocial_types::filter::{Condition, Filter};
use sensocial_types::{DiagnosticCode, PlanDiagnostic};
use serde_json::Value;

use crate::domain::{domain_of, ValueDomain};

/// Checks every condition in `filter`, returning one [`PlanDiagnostic`]
/// per ill-typed condition (empty when the filter is well-typed).
///
/// A well-typed condition is exactly one whose runtime
/// [`Condition::evaluate`] can never return an
/// [`sensocial_types::EvalError`]; the satisfiability pass assumes this.
pub fn check(filter: &Filter) -> Vec<PlanDiagnostic> {
    filter
        .conditions
        .iter()
        .enumerate()
        .filter_map(|(i, c)| check_condition(c).map(|d| d.at(i)))
        .collect()
}

fn check_condition(c: &Condition) -> Option<PlanDiagnostic> {
    match domain_of(c.lhs) {
        ValueDomain::Enum(values) => check_categorical(c, Some(values)),
        ValueDomain::Text => check_categorical(c, None),
        ValueDomain::Hour | ValueDomain::Count => check_numeric(c),
    }
}

fn check_categorical(c: &Condition, values: Option<&'static [&'static str]>) -> Option<PlanDiagnostic> {
    let s = match &c.value {
        Value::String(s) => s.as_str(),
        other => {
            return Some(mismatch(
                c,
                format!(
                    "`{}` is categorical and expects a string value, got `{other}`",
                    c.lhs.name()
                ),
            ));
        }
    };
    if c.op.is_ordering() {
        return Some(mismatch(
            c,
            format!(
                "`{}` is categorical and has no ordering; `{}` is not applicable",
                c.lhs.name(),
                c.op.symbol()
            ),
        ));
    }
    if let Some(values) = values {
        if !values.contains(&s) {
            return Some(mismatch(
                c,
                format!(
                    "`{s}` is not a possible value of `{}` (expected one of: {})",
                    c.lhs.name(),
                    values.join(", ")
                ),
            ));
        }
    }
    None
}

fn check_numeric(c: &Condition) -> Option<PlanDiagnostic> {
    match c.value.as_f64() {
        Some(v) if v.is_finite() => None,
        _ => Some(mismatch(
            c,
            format!(
                "`{}` is numeric and expects a finite number, got `{}`",
                c.lhs.name(),
                c.value
            ),
        )),
    }
}

fn mismatch(_c: &Condition, message: String) -> PlanDiagnostic {
    PlanDiagnostic::error(DiagnosticCode::TypeMismatch, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::filter::{ConditionLhs, Operator};

    #[test]
    fn hour_compared_to_string_is_a_type_mismatch() {
        let f = Filter::new(vec![Condition::new(
            ConditionLhs::HourOfDay,
            Operator::GreaterThan,
            "walking",
        )]);
        let diags = check(&f);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagnosticCode::TypeMismatch);
        assert_eq!(diags[0].condition, Some(0));
    }

    #[test]
    fn ordering_on_categorical_is_a_type_mismatch() {
        let f = Filter::new(vec![Condition::new(
            ConditionLhs::Place,
            Operator::LessThan,
            "Paris",
        )]);
        assert_eq!(check(&f)[0].code, DiagnosticCode::TypeMismatch);
    }

    #[test]
    fn out_of_domain_enum_value_is_a_type_mismatch() {
        let f = Filter::new(vec![Condition::new(
            ConditionLhs::PhysicalActivity,
            Operator::Equals,
            "flying",
        )]);
        let diags = check(&f);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("still, walking, running"));
    }

    #[test]
    fn well_typed_filter_passes() {
        let f = Filter::new(vec![
            Condition::new(ConditionLhs::PhysicalActivity, Operator::Equals, "walking"),
            Condition::new(ConditionLhs::HourOfDay, Operator::LessThan, 22),
            Condition::new(ConditionLhs::WifiDensity, Operator::GreaterThan, 3),
            Condition::new(ConditionLhs::Place, Operator::NotEquals, "unknown"),
        ]);
        assert!(check(&f).is_empty());
    }

    #[test]
    fn non_finite_number_is_a_type_mismatch() {
        // f64::NAN serializes to JSON null, which is also not a number.
        let f = Filter::new(vec![Condition::new(
            ConditionLhs::WifiDensity,
            Operator::Equals,
            serde_json::Value::Null,
        )]);
        assert_eq!(check(&f).len(), 1);
    }
}
