//! Property tests for the static plan verifier.
//!
//! The two load-bearing guarantees:
//!
//! 1. **No runtime escape**: any plan accepted by `analyze()` never
//!    produces a runtime type/eval error, for any context snapshot, hour
//!    of day or in-flight OSN action.
//! 2. **Normalization is a fixpoint and preserves semantics**: re-analyzing
//!    a normalized plan returns it unchanged, and the normalized filter
//!    agrees with the original on every context.

use proptest::prelude::*;
use sensocial_analysis::{analyze, AnalysisEnv, FilterPlan};
use sensocial_runtime::Timestamp;
use sensocial_types::filter::{Condition, ConditionLhs, EvalContext, Filter, Operator};
use sensocial_types::{
    AudioEnvironment, ClassifiedContext, ContextData, ContextSnapshot, OsnAction,
    PhysicalActivity, UserId,
};

fn lhs_strategy() -> impl Strategy<Value = ConditionLhs> {
    prop_oneof![
        Just(ConditionLhs::PhysicalActivity),
        Just(ConditionLhs::AudioEnvironment),
        Just(ConditionLhs::Place),
        Just(ConditionLhs::WifiDensity),
        Just(ConditionLhs::BluetoothDensity),
        Just(ConditionLhs::HourOfDay),
        Just(ConditionLhs::OsnActivity),
        Just(ConditionLhs::OsnActionKind),
        Just(ConditionLhs::OsnTopic),
    ]
}

fn op_strategy() -> impl Strategy<Value = Operator> {
    prop_oneof![
        Just(Operator::Equals),
        Just(Operator::NotEquals),
        Just(Operator::GreaterThan),
        Just(Operator::LessThan),
    ]
}

/// A grab-bag of values: domain-correct strings, junk strings, integers
/// and fractional numbers — so the generator produces both plans the
/// analyzer accepts and plans it must reject.
fn value_strategy() -> impl Strategy<Value = serde_json::Value> {
    prop_oneof![
        prop_oneof![
            Just("still"),
            Just("walking"),
            Just("running"),
            Just("silent"),
            Just("not_silent"),
            Just("active"),
            Just("inactive"),
            Just("post"),
            Just("comment"),
            Just("like"),
            Just("friendship_change"),
            Just("Paris"),
            Just("unknown"),
            Just("football"),
        ]
        .prop_map(serde_json::Value::from),
        (-30i64..40).prop_map(serde_json::Value::from),
        (-5.0f64..30.0).prop_map(serde_json::Value::from),
    ]
}

fn condition_strategy() -> impl Strategy<Value = Condition> {
    (lhs_strategy(), op_strategy(), value_strategy(), 0u8..4).prop_map(|(lhs, op, value, subj)| {
        let c = Condition::new(lhs, op, value);
        // Bias toward own-user conditions; a few about other users.
        if subj == 0 {
            c.about(UserId::new("bob"))
        } else {
            c
        }
    })
}

fn filter_strategy() -> impl Strategy<Value = Filter> {
    proptest::collection::vec(condition_strategy(), 0..6).prop_map(Filter::new)
}

/// A random device context: each classified modality present or absent.
#[allow(clippy::type_complexity)]
fn snapshot_strategy() -> impl Strategy<Value = ContextSnapshot> {
    (
        proptest::option::of(0u8..3),
        proptest::option::of(0u8..2),
        proptest::option::of(prop_oneof![Just(None), Just(Some("Paris")), Just(Some("home"))]),
        proptest::option::of(0usize..12),
        proptest::option::of(0usize..12),
    )
        .prop_map(|(activity, audio, place, wifi, bt)| {
            let mut s = ContextSnapshot::new();
            let at = Timestamp::from_secs(1);
            if let Some(a) = activity {
                let a = [
                    PhysicalActivity::Still,
                    PhysicalActivity::Walking,
                    PhysicalActivity::Running,
                ][a as usize];
                s.record(at, ContextData::Classified(ClassifiedContext::Activity(a)));
            }
            if let Some(a) = audio {
                let a = [AudioEnvironment::Silent, AudioEnvironment::NotSilent][a as usize];
                s.record(at, ContextData::Classified(ClassifiedContext::Audio(a)));
            }
            if let Some(p) = place {
                s.record(
                    at,
                    ContextData::Classified(ClassifiedContext::Place(p.map(str::to_owned))),
                );
            }
            if let Some(n) = wifi {
                s.record(
                    at,
                    ContextData::Classified(ClassifiedContext::WifiDensity(n)),
                );
            }
            if let Some(n) = bt {
                s.record(
                    at,
                    ContextData::Classified(ClassifiedContext::BluetoothDensity(n)),
                );
            }
            s
        })
}

fn action_strategy() -> impl Strategy<Value = Option<OsnAction>> {
    proptest::option::of((0u8..2).prop_map(|topic| {
        let action = OsnAction::post(UserId::new("bob"), "hi", Timestamp::ZERO);
        if topic == 0 {
            action.with_topic("football")
        } else {
            action
        }
    }))
}

proptest! {
    /// Guarantee 1: accepted plans never hit a runtime eval error, on any
    /// context — neither the normalized filter nor the original.
    #[test]
    fn accepted_plans_never_eval_error(
        filter in filter_strategy(),
        snapshot in snapshot_strategy(),
        subject_snapshot in proptest::option::of(snapshot_strategy()),
        action in action_strategy(),
        hour in 0u64..24,
    ) {
        // Server placement accepts cross-user conditions, exercising the
        // full evaluation path.
        let plan = FilterPlan::server(filter.clone());
        if let Ok(analysis) = analyze(&plan, &AnalysisEnv::new()) {
            let ctx = EvalContext {
                snapshot: &snapshot,
                now: Timestamp::from_secs(hour * 3600),
                osn_action: action.as_ref(),
            };
            let lookup = |_: &UserId| subject_snapshot.clone();
            prop_assert!(analysis.filter.evaluate_full(&ctx, &lookup).is_ok());
            prop_assert!(filter.evaluate_full(&ctx, &lookup).is_ok());
            prop_assert!(analysis.filter.evaluate_local(&ctx).is_ok());
        }
    }

    /// Guarantee 2a: normalization is idempotent.
    #[test]
    fn normalization_is_idempotent(filter in filter_strategy()) {
        let plan = FilterPlan::server(filter);
        if let Ok(first) = analyze(&plan, &AnalysisEnv::new()) {
            let again = analyze(
                &FilterPlan::server(first.filter.clone()),
                &AnalysisEnv::new(),
            );
            let second = again.expect("canonical plans re-verify");
            prop_assert_eq!(first.filter, second.filter);
        }
    }

    /// Guarantee 2b: the normalized filter is observationally equivalent
    /// to the original on every context.
    #[test]
    fn normalization_preserves_semantics(
        filter in filter_strategy(),
        snapshot in snapshot_strategy(),
        subject_snapshot in proptest::option::of(snapshot_strategy()),
        action in action_strategy(),
        hour in 0u64..24,
    ) {
        let plan = FilterPlan::server(filter.clone());
        if let Ok(analysis) = analyze(&plan, &AnalysisEnv::new()) {
            let ctx = EvalContext {
                snapshot: &snapshot,
                now: Timestamp::from_secs(hour * 3600),
                osn_action: action.as_ref(),
            };
            let lookup = |_: &UserId| subject_snapshot.clone();
            let original = filter.evaluate_full(&ctx, &lookup);
            let normalized = analysis.filter.evaluate_full(&ctx, &lookup);
            prop_assert_eq!(original, normalized);
        }
    }
}
