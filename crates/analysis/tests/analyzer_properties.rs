//! Property tests for the static plan verifier.
//!
//! The two load-bearing guarantees:
//!
//! 1. **No runtime escape**: any plan accepted by `analyze()` never
//!    produces a runtime type/eval error, for any context snapshot, hour
//!    of day or in-flight OSN action.
//! 2. **Normalization is a fixpoint and preserves semantics**: re-analyzing
//!    a normalized plan returns it unchanged, and the normalized filter
//!    agrees with the original on every context.
//!
//! PR 9 adds the information-flow layer's guarantees:
//!
//! 3. **The taint lattice is a lattice**: `join` is commutative,
//!    associative and idempotent, and every stage transfer function is
//!    monotone — so the verifier's verdict cannot depend on the order
//!    sources or stages are visited in.
//! 4. **Normalization never changes the flow verdict**: the flow check
//!    over a normalized filter agrees with the original, so the analyzer
//!    may normalize first without weakening the privacy guarantee.
//! 5. **The shard planner is deterministic and accounts for every edge**:
//!    same graph + users + shard count → identical plan, and each
//!    dependency edge is intra-shard XOR listed as a cut edge.

use proptest::prelude::*;
use sensocial_analysis::{
    analyze, flow, shard, AnalysisEnv, DependencyGraph, FilterPlan, FlowLabel, FlowSource,
};
use sensocial_runtime::Timestamp;
use sensocial_types::{Granularity, Modality};
use sensocial_types::filter::{Condition, ConditionLhs, EvalContext, Filter, Operator};
use sensocial_types::{
    AudioEnvironment, ClassifiedContext, ContextData, ContextSnapshot, OsnAction,
    PhysicalActivity, UserId,
};

fn lhs_strategy() -> impl Strategy<Value = ConditionLhs> {
    prop_oneof![
        Just(ConditionLhs::PhysicalActivity),
        Just(ConditionLhs::AudioEnvironment),
        Just(ConditionLhs::Place),
        Just(ConditionLhs::WifiDensity),
        Just(ConditionLhs::BluetoothDensity),
        Just(ConditionLhs::HourOfDay),
        Just(ConditionLhs::OsnActivity),
        Just(ConditionLhs::OsnActionKind),
        Just(ConditionLhs::OsnTopic),
    ]
}

fn op_strategy() -> impl Strategy<Value = Operator> {
    prop_oneof![
        Just(Operator::Equals),
        Just(Operator::NotEquals),
        Just(Operator::GreaterThan),
        Just(Operator::LessThan),
    ]
}

/// A grab-bag of values: domain-correct strings, junk strings, integers
/// and fractional numbers — so the generator produces both plans the
/// analyzer accepts and plans it must reject.
fn value_strategy() -> impl Strategy<Value = serde_json::Value> {
    prop_oneof![
        prop_oneof![
            Just("still"),
            Just("walking"),
            Just("running"),
            Just("silent"),
            Just("not_silent"),
            Just("active"),
            Just("inactive"),
            Just("post"),
            Just("comment"),
            Just("like"),
            Just("friendship_change"),
            Just("Paris"),
            Just("unknown"),
            Just("football"),
        ]
        .prop_map(serde_json::Value::from),
        (-30i64..40).prop_map(serde_json::Value::from),
        (-5.0f64..30.0).prop_map(serde_json::Value::from),
    ]
}

fn condition_strategy() -> impl Strategy<Value = Condition> {
    (lhs_strategy(), op_strategy(), value_strategy(), 0u8..4).prop_map(|(lhs, op, value, subj)| {
        let c = Condition::new(lhs, op, value);
        // Bias toward own-user conditions; a few about other users.
        if subj == 0 {
            c.about(UserId::new("bob"))
        } else {
            c
        }
    })
}

fn filter_strategy() -> impl Strategy<Value = Filter> {
    proptest::collection::vec(condition_strategy(), 0..6).prop_map(Filter::new)
}

/// A random device context: each classified modality present or absent.
#[allow(clippy::type_complexity)]
fn snapshot_strategy() -> impl Strategy<Value = ContextSnapshot> {
    (
        proptest::option::of(0u8..3),
        proptest::option::of(0u8..2),
        proptest::option::of(prop_oneof![Just(None), Just(Some("Paris")), Just(Some("home"))]),
        proptest::option::of(0usize..12),
        proptest::option::of(0usize..12),
    )
        .prop_map(|(activity, audio, place, wifi, bt)| {
            let mut s = ContextSnapshot::new();
            let at = Timestamp::from_secs(1);
            if let Some(a) = activity {
                let a = [
                    PhysicalActivity::Still,
                    PhysicalActivity::Walking,
                    PhysicalActivity::Running,
                ][a as usize];
                s.record(at, ContextData::Classified(ClassifiedContext::Activity(a)));
            }
            if let Some(a) = audio {
                let a = [AudioEnvironment::Silent, AudioEnvironment::NotSilent][a as usize];
                s.record(at, ContextData::Classified(ClassifiedContext::Audio(a)));
            }
            if let Some(p) = place {
                s.record(
                    at,
                    ContextData::Classified(ClassifiedContext::Place(p.map(str::to_owned))),
                );
            }
            if let Some(n) = wifi {
                s.record(
                    at,
                    ContextData::Classified(ClassifiedContext::WifiDensity(n)),
                );
            }
            if let Some(n) = bt {
                s.record(
                    at,
                    ContextData::Classified(ClassifiedContext::BluetoothDensity(n)),
                );
            }
            s
        })
}

fn action_strategy() -> impl Strategy<Value = Option<OsnAction>> {
    proptest::option::of((0u8..2).prop_map(|topic| {
        let action = OsnAction::post(UserId::new("bob"), "hi", Timestamp::ZERO);
        if topic == 0 {
            action.with_topic("football")
        } else {
            action
        }
    }))
}

fn label_strategy() -> impl Strategy<Value = FlowLabel> {
    prop_oneof![
        Just(FlowLabel::Aggregated),
        Just(FlowLabel::PrivacyFiltered),
        Just(FlowLabel::Raw),
    ]
}

fn stage_strategy() -> impl Strategy<Value = flow::FlowStage> {
    prop_oneof![
        Just(flow::FlowStage::Privacy),
        Just(flow::FlowStage::Filter),
        Just(flow::FlowStage::Aggregate),
    ]
}

fn source_strategy() -> impl Strategy<Value = FlowSource> {
    (
        prop_oneof![
            Just(Modality::Location),
            Just(Modality::Accelerometer),
            Just(Modality::Microphone),
            Just(Modality::Wifi),
            Just(Modality::Bluetooth),
        ],
        prop_oneof![Just(Granularity::Raw), Just(Granularity::Classified)],
    )
        .prop_map(|(m, g)| FlowSource::new(m, g))
}

/// A policy that allows no raw disclosure at all — the adversarial
/// setting for the flow-verdict invariance property.
struct DenyAll;
impl sensocial_analysis::PrivacyView for DenyAll {
    fn is_allowed(&self, _m: Modality, _g: Granularity) -> bool {
        false
    }
}

proptest! {
    /// Guarantee 1: accepted plans never hit a runtime eval error, on any
    /// context — neither the normalized filter nor the original.
    #[test]
    fn accepted_plans_never_eval_error(
        filter in filter_strategy(),
        snapshot in snapshot_strategy(),
        subject_snapshot in proptest::option::of(snapshot_strategy()),
        action in action_strategy(),
        hour in 0u64..24,
    ) {
        // Server placement accepts cross-user conditions, exercising the
        // full evaluation path.
        let plan = FilterPlan::server(filter.clone());
        if let Ok(analysis) = analyze(&plan, &AnalysisEnv::new()) {
            let ctx = EvalContext {
                snapshot: &snapshot,
                now: Timestamp::from_secs(hour * 3600),
                osn_action: action.as_ref(),
            };
            let lookup = |_: &UserId| subject_snapshot.clone();
            prop_assert!(analysis.filter.evaluate_full(&ctx, &lookup).is_ok());
            prop_assert!(filter.evaluate_full(&ctx, &lookup).is_ok());
            prop_assert!(analysis.filter.evaluate_local(&ctx).is_ok());
        }
    }

    /// Guarantee 2a: normalization is idempotent.
    #[test]
    fn normalization_is_idempotent(filter in filter_strategy()) {
        let plan = FilterPlan::server(filter);
        if let Ok(first) = analyze(&plan, &AnalysisEnv::new()) {
            let again = analyze(
                &FilterPlan::server(first.filter.clone()),
                &AnalysisEnv::new(),
            );
            let second = again.expect("canonical plans re-verify");
            prop_assert_eq!(first.filter, second.filter);
        }
    }

    /// Guarantee 2b: the normalized filter is observationally equivalent
    /// to the original on every context.
    #[test]
    fn normalization_preserves_semantics(
        filter in filter_strategy(),
        snapshot in snapshot_strategy(),
        subject_snapshot in proptest::option::of(snapshot_strategy()),
        action in action_strategy(),
        hour in 0u64..24,
    ) {
        let plan = FilterPlan::server(filter.clone());
        if let Ok(analysis) = analyze(&plan, &AnalysisEnv::new()) {
            let ctx = EvalContext {
                snapshot: &snapshot,
                now: Timestamp::from_secs(hour * 3600),
                osn_action: action.as_ref(),
            };
            let lookup = |_: &UserId| subject_snapshot.clone();
            let original = filter.evaluate_full(&ctx, &lookup);
            let normalized = analysis.filter.evaluate_full(&ctx, &lookup);
            prop_assert_eq!(original, normalized);
        }
    }

    /// Guarantee 3a: `join` is a semilattice operation — commutative,
    /// associative, idempotent — so folding source labels in any order
    /// yields the same peak label.
    #[test]
    fn flow_join_is_a_semilattice(
        a in label_strategy(),
        b in label_strategy(),
        c in label_strategy(),
    ) {
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        prop_assert_eq!(a.join(a), a);
        // join is an upper bound of both operands.
        prop_assert!(a.join(b) >= a && a.join(b) >= b);
    }

    /// Guarantee 3b: every stage transfer function is monotone in the
    /// label for any fixed authorization, and never *raises* sensitivity —
    /// a stage can only screen data down, never taint it up.
    #[test]
    fn flow_stages_are_monotone_and_never_raise(
        stage in stage_strategy(),
        a in label_strategy(),
        b in label_strategy(),
        authorized in proptest::bool::ANY,
    ) {
        if a <= b {
            prop_assert!(stage.apply(a, authorized) <= stage.apply(b, authorized));
        }
        prop_assert!(stage.apply(a, authorized) <= a);
    }

    /// Guarantee 4: the flow verdict is invariant under filter
    /// normalization — at the upstream-authority server placement and at
    /// the adversarial device placement (raw sensitive sampling under a
    /// deny-everything screen) alike. Normalization preserves OSN presence
    /// gates, so the derived coupling (and with it every authorization
    /// decision) must not move.
    #[test]
    fn normalization_never_changes_flow_verdict(
        filter in filter_strategy(),
        sources in proptest::collection::vec(source_strategy(), 0..4),
    ) {
        let normalized = match analyze(&FilterPlan::server(filter.clone()), &AnalysisEnv::new()) {
            Ok(analysis) => analysis.filter,
            Err(_) => return Ok(()), // ill-typed plan: nothing to compare
        };

        // Server placement over random uplink sources.
        let server_plan = |f: Filter| {
            let mut plan = FilterPlan::server(f);
            for source in &sources {
                plan = plan.with_source(*source);
            }
            plan
        };
        let env = AnalysisEnv::new();
        let (verdict_a, errors_a) = flow::check(&server_plan(filter.clone()), &env);
        let (verdict_b, errors_b) = flow::check(&server_plan(normalized.clone()), &env);
        prop_assert_eq!(&verdict_a, &verdict_b);
        prop_assert_eq!(errors_a.len(), errors_b.len());

        // Device placement: raw sensitive sampling under a denying screen,
        // uplinked — the strictest admission path.
        let deny = DenyAll;
        let env = AnalysisEnv::new().with_privacy(&deny);
        let device_plan = |f: Filter| {
            FilterPlan::device(Modality::Location, Granularity::Raw, f)
                .sinking(sensocial_analysis::FlowSink::Uplink)
        };
        let (verdict_a, errors_a) = flow::check(&device_plan(filter.clone()), &env);
        let (verdict_b, errors_b) = flow::check(&device_plan(normalized), &env);
        prop_assert_eq!(&verdict_a, &verdict_b);
        prop_assert_eq!(errors_a.len(), errors_b.len());
    }

    /// Guarantee 5: the shard planner is a pure function of its inputs,
    /// places every user exactly once, and accounts for every dependency
    /// edge as intra-shard XOR cut — nothing silently dropped.
    #[test]
    fn shard_plan_is_deterministic_and_accounts_for_every_edge(
        edges in proptest::collection::vec((0u8..12, 0u8..12), 0..20),
        extra_users in proptest::collection::vec(0u8..12, 0..6),
        shard_count in 0usize..6,
    ) {
        let name = |i: u8| UserId::new(format!("user-{i:02}"));
        let mut graph = DependencyGraph::new();
        for (a, b) in &edges {
            graph.depend(&name(*a), &name(*b));
        }
        let users: Vec<UserId> = extra_users.iter().map(|i| name(*i)).collect();

        let once = shard::plan(&graph, &users, shard_count);
        let twice = shard::plan(&graph, &users, shard_count);
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(
            serde_json::to_string(&once).ok(),
            serde_json::to_string(&twice).ok()
        );

        let mut seen = std::collections::BTreeSet::new();
        for shard in &once.shards {
            for user in &shard.users {
                prop_assert!(seen.insert(user.clone()), "user {} placed twice", user);
            }
        }
        for user in &users {
            prop_assert!(seen.contains(user), "user {} never placed", user);
        }

        let mut intra = 0usize;
        for (owner, subject) in graph.edge_list() {
            let same = once.shard_of(&owner) == once.shard_of(&subject);
            let listed = once
                .cut_edges
                .iter()
                .any(|e| e.owner == owner && e.subject == subject);
            prop_assert!(same != listed, "edge {} -> {} unaccounted", owner, subject);
            if same {
                intra += 1;
            }
        }
        prop_assert_eq!(once.intra_edges, intra);
        prop_assert_eq!(once.cut_edges.len() + intra, graph.edge_list().len());
    }
}
