//! ConWeb, the contextual Web browser (paper §6.2), in both variants.
//!
//! The Web-serving substrate itself ([`web`]) — page templates,
//! context-adaptive rendering, the request/response exchange and the
//! auto-refreshing browser — is shared by both variants and excluded from
//! the Table 5 counts, like the paper's Web server hosting the pages.

pub mod web;
pub mod with_middleware;
pub mod without_middleware;
