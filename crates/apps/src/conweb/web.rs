//! The Web substrate shared by both ConWeb variants: a small
//! context-adaptive page server and an auto-refreshing browser, exchanging
//! request/response messages over the simulated network.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_net::{EndpointId, Network};
use sensocial_runtime::{Scheduler, SimDuration, Timer, TimerHandle};
use sensocial_store::{Collection, Query};
use sensocial_types::UserId;
use serde_json::{json, Value};

/// Rendering contrast — the paper's example adaptation ("displaying higher
/// contrast colors when … a user is outside").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contrast {
    /// Normal indoor rendering.
    Normal,
    /// High-contrast rendering for outdoor/moving users.
    High,
}

/// A page rendered for one user at one moment.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedPage {
    /// Page title.
    pub title: String,
    /// Adapted body text.
    pub body: String,
    /// The chosen contrast.
    pub contrast: Contrast,
    /// A social-context suggestion, when the user's OSN activity implies
    /// one (the paper's birthday-gift example; ours keys off post topics).
    pub suggestion: Option<String>,
}

/// The per-user context row the server adapts against. Which variant
/// *fills* this row is exactly what Table 5 compares.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UserWebContext {
    /// Latest classified activity.
    pub activity: Option<String>,
    /// Latest classified audio environment.
    pub audio: Option<String>,
    /// Latest classified place.
    pub place: Option<String>,
    /// Topic of the user's latest OSN post.
    pub last_topic: Option<String>,
}

/// The context-adaptive Web server.
///
/// Hosts named pages; a request for `page?user=<id>` renders the template
/// against the user's latest context from the `conweb_context` collection.
pub struct WebServer {
    endpoint: EndpointId,
    net: Network,
    context: Collection,
    pages: Arc<Mutex<HashMap<String, String>>>,
    served: Arc<Mutex<u64>>,
}

impl std::fmt::Debug for WebServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebServer")
            .field("endpoint", &self.endpoint)
            .field("served", &*self.served.lock())
            .finish_non_exhaustive()
    }
}

impl WebServer {
    /// Starts the server at `endpoint`, rendering against `context`
    /// (a collection of `{user, activity?, audio?, place?, last_topic?}`
    /// rows).
    pub fn start(net: &Network, endpoint: impl Into<EndpointId>, context: Collection) -> Arc<Self> {
        let endpoint = endpoint.into();
        let server = Arc::new(WebServer {
            endpoint: endpoint.clone(),
            net: net.clone(),
            context,
            pages: Arc::new(Mutex::new(HashMap::new())),
            served: Arc::new(Mutex::new(0)),
        });
        let handler = server.clone();
        net.register(endpoint, move |s, msg| {
            handler.on_request(s, &msg);
        });
        server
    }

    /// Publishes a page template. `{{body}}` placeholders are not needed;
    /// adaptation wraps the whole body.
    pub fn add_page(&self, name: impl Into<String>, body: impl Into<String>) {
        self.pages.lock().insert(name.into(), body.into());
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        *self.served.lock()
    }

    /// Renders `page` for `user` right now (also used directly by tests).
    pub fn render(&self, page: &str, user: &UserId) -> Option<RenderedPage> {
        let template = self.pages.lock().get(page)?.clone();
        let ctx = self.user_context(user);
        Some(adapt(page, &template, &ctx))
    }

    /// Reads the user's context row.
    pub fn user_context(&self, user: &UserId) -> UserWebContext {
        let row = self
            .context
            .find_one(&Query::eq("user", user.as_str()))
            .map(|d| d.body);
        let get = |row: &Option<Value>, key: &str| -> Option<String> {
            row.as_ref()?
                .get(key)?
                .as_str()
                .map(str::to_owned)
        };
        UserWebContext {
            activity: get(&row, "activity"),
            audio: get(&row, "audio"),
            place: get(&row, "place"),
            last_topic: get(&row, "last_topic"),
        }
    }

    fn on_request(&self, sched: &mut Scheduler, msg: &sensocial_net::Message) {
        let Ok(request): Result<Value, _> = serde_json::from_slice(&msg.payload) else {
            return;
        };
        let (Some(page), Some(user)) = (
            request.get("page").and_then(Value::as_str),
            request.get("user").and_then(Value::as_str),
        ) else {
            return;
        };
        *self.served.lock() += 1;
        let rendered = self.render(page, &UserId::new(user));
        let response = match rendered {
            Some(p) => json!({
                "status": 200,
                "title": p.title,
                "body": p.body,
                "contrast": match p.contrast { Contrast::High => "high", Contrast::Normal => "normal" },
                "suggestion": p.suggestion,
            }),
            None => json!({"status": 404}),
        };
        let _ = self.net.send(
            sched,
            &self.endpoint,
            &msg.from,
            response.to_string().into_bytes(),
        );
    }
}

/// The adaptation rules: outdoor/moving → high contrast; noisy → terse
/// body; a recent post topic → a shopping suggestion.
fn adapt(page: &str, template: &str, ctx: &UserWebContext) -> RenderedPage {
    let moving = matches!(ctx.activity.as_deref(), Some("walking") | Some("running"));
    let outside = ctx.place.is_some() && moving;
    let contrast = if outside || moving {
        Contrast::High
    } else {
        Contrast::Normal
    };
    let noisy = ctx.audio.as_deref() == Some("not_silent");
    let body = if noisy {
        // Terse rendering for distracted users.
        let first_sentence: String = template.chars().take(80).collect();
        format!("{first_sentence}…")
    } else {
        template.to_owned()
    };
    let suggestion = ctx
        .last_topic
        .as_deref()
        .map(|topic| format!("Because you posted about {topic}: see our {topic} picks"));
    RenderedPage {
        title: page.to_owned(),
        body,
        contrast,
        suggestion,
    }
}

/// The ConWeb browser: requests a page every `refresh` interval ("a page
/// is automatically refreshed every T seconds", §6.2) and keeps the last
/// rendering.
pub struct ConWebBrowser {
    endpoint: EndpointId,
    last_page: Arc<Mutex<Option<Value>>>,
    pages_loaded: Arc<Mutex<u64>>,
    timer: TimerHandle,
}

impl std::fmt::Debug for ConWebBrowser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConWebBrowser")
            .field("endpoint", &self.endpoint)
            .field("pages_loaded", &*self.pages_loaded.lock())
            .finish_non_exhaustive()
    }
}

impl ConWebBrowser {
    /// Opens the browser at its own endpoint and starts auto-refreshing
    /// `page` for `user` from the server at `server_endpoint`.
    pub fn open(
        sched: &mut Scheduler,
        net: &Network,
        endpoint: impl Into<EndpointId>,
        server_endpoint: impl Into<EndpointId>,
        user: UserId,
        page: impl Into<String>,
        refresh: SimDuration,
    ) -> Self {
        let endpoint = endpoint.into();
        let server_endpoint = server_endpoint.into();
        let page = page.into();
        let last_page: Arc<Mutex<Option<Value>>> = Arc::new(Mutex::new(None));
        let pages_loaded = Arc::new(Mutex::new(0u64));

        let sink = last_page.clone();
        let counter = pages_loaded.clone();
        net.register(endpoint.clone(), move |_s, msg| {
            if let Ok(response) = serde_json::from_slice::<Value>(&msg.payload) {
                *counter.lock() += 1;
                *sink.lock() = Some(response);
            }
        });

        let request = json!({"page": page, "user": user.as_str()}).to_string();
        let net = net.clone();
        let from = endpoint.clone();
        let timer = Timer::start_with_phase(
            sched,
            SimDuration::ZERO,
            refresh,
            move |s| {
                let _ = net.send(s, &from, &server_endpoint, request.clone().into_bytes());
            },
        );

        ConWebBrowser {
            endpoint,
            last_page,
            pages_loaded,
            timer,
        }
    }

    /// The last response received, if any.
    pub fn last_page(&self) -> Option<Value> {
        self.last_page.lock().clone()
    }

    /// Page loads completed.
    pub fn pages_loaded(&self) -> u64 {
        *self.pages_loaded.lock()
    }

    /// Stops auto-refreshing (the paper: streams pause "once the ConWeb
    /// browser is killed by the user").
    pub fn close(&self) {
        self.timer.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_net::{LatencyModel, LinkSpec};

    fn web_fixture() -> (Scheduler, Network, Arc<WebServer>, Collection) {
        let sched = Scheduler::new();
        let net = Network::new(3);
        net.set_default_link(LinkSpec::with_latency(LatencyModel::constant_ms(30)));
        let context = Collection::new("conweb_context");
        let server = WebServer::start(&net, "web", context.clone());
        server.add_page("news", "All the day's headlines in full detail and length");
        (sched, net, server, context)
    }

    #[test]
    fn renders_default_for_unknown_user() {
        let (_sched, _net, server, _ctx) = web_fixture();
        let page = server.render("news", &UserId::new("ghost")).unwrap();
        assert_eq!(page.contrast, Contrast::Normal);
        assert!(page.suggestion.is_none());
        assert!(page.body.contains("headlines"));
        assert!(server.render("missing", &UserId::new("ghost")).is_none());
    }

    #[test]
    fn adapts_to_context_rows() {
        let (_sched, _net, server, ctx) = web_fixture();
        ctx.insert(json!({
            "user": "alice",
            "activity": "running",
            "audio": "not_silent",
            "place": "Paris",
            "last_topic": "music",
        }))
        .unwrap();
        let page = server.render("news", &UserId::new("alice")).unwrap();
        assert_eq!(page.contrast, Contrast::High);
        assert!(page.body.ends_with('…'), "noisy → terse body");
        assert_eq!(
            page.suggestion.as_deref(),
            Some("Because you posted about music: see our music picks")
        );
    }

    #[test]
    fn browser_auto_refreshes_over_the_network() {
        let (mut sched, net, server, ctx) = web_fixture();
        let browser = ConWebBrowser::open(
            &mut sched,
            &net,
            "alice-browser",
            "web",
            UserId::new("alice"),
            "news",
            SimDuration::from_secs(30),
        );
        sched.run_for(SimDuration::from_secs(95));
        assert_eq!(browser.pages_loaded(), 4, "t=0,30,60,90");
        assert_eq!(server.requests_served(), 4);
        let first = browser.last_page().unwrap();
        assert_eq!(first["contrast"], "normal");

        // Context changes; the next refresh shows it.
        ctx.insert(json!({"user": "alice", "activity": "walking"})).unwrap();
        sched.run_for(SimDuration::from_secs(30));
        let adapted = browser.last_page().unwrap();
        assert_eq!(adapted["contrast"], "high");

        browser.close();
        sched.run_for(SimDuration::from_mins(5));
        assert_eq!(browser.pages_loaded(), 5);
    }
}
