//! ConWeb built **on** SenSocial — the paper's 23-line mobile app plus a
//! small server app.
//!
//! The mobile side is nothing but stream creation: SenSocial's remote
//! management, classification, filtering and uplink do the rest. The
//! server side subscribes once and writes each user's latest context into
//! the `conweb_context` collection the Web server renders from.

use sensocial::client::ClientManager;
use sensocial::server::{ServerManager, StreamSelector};
use sensocial::{Filter, Granularity, Modality, StreamId, StreamSink, StreamSpec};
use sensocial_runtime::Scheduler;
use sensocial_store::{Collection, Query};
use sensocial_types::{ContextData, UserId};
use serde_json::json;

/// The mobile part: three context streams plus one OSN-coupled stream,
/// all uplinked. That's all — "the ConWeb application can be configured to
/// receive data streams only related to physical context or the OSN
/// actions associated to it as well" (paper §6.2); this is the latter
/// configuration.
#[derive(Debug)]
pub struct ConWebMobile {
    /// The created streams.
    pub streams: [StreamId; 4],
}

impl ConWebMobile {
    /// Installs the streams (the paper's entire mobile implementation).
    pub fn install(sched: &mut Scheduler, manager: &ClientManager) -> sensocial::Result<Self> {
        let s1 = manager.create_stream(
            sched,
            StreamSpec::continuous(Modality::Accelerometer, Granularity::Classified)
                .with_sink(StreamSink::Server),
        )?;
        let s2 = manager.create_stream(
            sched,
            StreamSpec::continuous(Modality::Microphone, Granularity::Classified)
                .with_sink(StreamSink::Server),
        )?;
        let s3 = manager.create_stream(
            sched,
            StreamSpec::continuous(Modality::Location, Granularity::Classified)
                .with_sink(StreamSink::Server),
        )?;
        // The OSN-coupled stream: senses once per OSN action, so the
        // action (and its topic) reaches the server paired with context.
        let s4 = manager.create_stream(
            sched,
            StreamSpec::social_event_based(Modality::Accelerometer, Granularity::Classified)
                .with_sink(StreamSink::Server),
        )?;
        Ok(ConWebMobile {
            streams: [s1, s2, s3, s4],
        })
    }
}

/// The server part: one listener overwriting each user's context row
/// ("the SenSocial server component directs the incoming data streams to
/// the database where it overwrites the latest context information").
#[derive(Debug)]
pub struct ConWebServer {
    /// The context rows the Web server renders from.
    pub context: Collection,
}

impl ConWebServer {
    /// Installs the server-side application.
    ///
    /// # Errors
    ///
    /// Returns [`sensocial::Error::PlanRejected`] if the subscription plan
    /// fails the server's static verification.
    pub fn install(server: &ServerManager) -> sensocial::Result<Self> {
        let context = server.db().collection("conweb_context");
        let rows = context.clone();
        server.register_listener(StreamSelector::AllUplinks, Filter::pass_all(), move |_s, event| {
            let field = match &event.data {
                ContextData::Classified(c) => match c.modality() {
                    Modality::Accelerometer => Some(("activity", c.value_string())),
                    Modality::Microphone => Some(("audio", c.value_string())),
                    Modality::Location => Some(("place", c.value_string())),
                    _ => None,
                },
                ContextData::Raw(_) => None,
            };
            let topic = event
                .osn_action
                .as_ref()
                .and_then(|a| a.topic.clone())
                .map(|t| ("last_topic", t));
            upsert(&rows, &event.user, field.into_iter().chain(topic));
        })?;
        Ok(ConWebServer { context })
    }
}

/// Writes fields into the user's single context row, creating it if
/// needed.
fn upsert(rows: &Collection, user: &UserId, fields: impl Iterator<Item = (&'static str, String)>) {
    let fields: Vec<(&str, serde_json::Value)> = fields
        .map(|(k, v)| (k, serde_json::Value::String(v)))
        .collect();
    if fields.is_empty() {
        return;
    }
    let query = Query::eq("user", user.as_str());
    if rows.update_set(&query, &fields) == 0 {
        let mut doc = json!({"user": user.as_str()});
        for (k, v) in fields {
            doc[k] = v;
        }
        let _ = rows.insert(doc);
    }
}
