//! The no-middleware ConWeb server-side ingest.
//!
//! Parses the hand-rolled context protocol, validates rows, resolves
//! out-of-order updates by timestamp, maintains the context table the Web
//! server renders from, and hooks the OSN plug-in to feed post topics in —
//! all of which the middleware variant gets from one `register_listener`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_broker::{BrokerClient, QoS};
use sensocial_osn::PushPlugin;
use sensocial_runtime::Scheduler;
use sensocial_store::{Collection, Query};
use sensocial_types::{OsnActionKind, UserId};
use serde_json::json;

use super::protocol::{ContextUpdate, CONTEXT_WILDCARD};

struct IngestState {
    /// Last-applied timestamp per (user, field): stale updates dropped.
    last_applied: HashMap<(UserId, String), u64>,
    updates_applied: u64,
    updates_dropped: u64,
}

/// The no-middleware ConWeb ingest service.
pub struct RawConWebIngest {
    /// The context rows the Web server renders from.
    pub context: Collection,
    state: Arc<Mutex<IngestState>>,
}

impl std::fmt::Debug for RawConWebIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("RawConWebIngest")
            .field("applied", &state.updates_applied)
            .field("dropped", &state.updates_dropped)
            .finish_non_exhaustive()
    }
}

impl RawConWebIngest {
    /// Installs the ingest: broker subscription plus OSN plug-in hook.
    pub fn install(
        sched: &mut Scheduler,
        broker: BrokerClient,
        context: Collection,
        plugin: &PushPlugin,
    ) -> Arc<Self> {
        let ingest = Arc::new(RawConWebIngest {
            context,
            state: Arc::new(Mutex::new(IngestState {
                last_applied: HashMap::new(),
                updates_applied: 0,
                updates_dropped: 0,
            })),
        });

        broker.connect(sched);
        let handler = ingest.clone();
        broker.subscribe(
            sched,
            CONTEXT_WILDCARD,
            QoS::AtMostOnce,
            move |_s, _topic, payload| {
                handler.on_update(payload);
            },
        );

        // Manual OSN integration: topics of posts feed the suggestion
        // engine.
        let handler = ingest.clone();
        plugin.set_receiver(move |s, action| {
            if action.kind == OsnActionKind::Post {
                if let Some(topic) = &action.topic {
                    handler.apply(&ContextUpdate {
                        user: action.user.clone(),
                        field: "last_topic".into(),
                        value: topic.clone(),
                        at_ms: s.now().as_millis(),
                    });
                }
            }
        });
        ingest
    }

    /// Updates applied so far.
    pub fn updates_applied(&self) -> u64 {
        self.state.lock().updates_applied
    }

    /// Stale/malformed updates dropped so far.
    pub fn updates_dropped(&self) -> u64 {
        self.state.lock().updates_dropped
    }

    fn on_update(&self, payload: &str) {
        match ContextUpdate::decode(payload) {
            Some(update) => self.apply(&update),
            None => {
                self.state.lock().updates_dropped += 1;
            }
        }
    }

    fn apply(&self, update: &ContextUpdate) {
        {
            let mut state = self.state.lock();
            let key = (update.user.clone(), update.field.clone());
            match state.last_applied.get(&key) {
                Some(last) if *last > update.at_ms => {
                    state.updates_dropped += 1;
                    return; // Out-of-order: a newer value already applied.
                }
                _ => {
                    state.last_applied.insert(key, update.at_ms);
                    state.updates_applied += 1;
                }
            }
        }
        let query = Query::eq("user", update.user.as_str());
        let value = serde_json::Value::String(update.value.clone());
        if self
            .context
            .update_set(&query, &[(update.field.as_str(), value.clone())])
            == 0
        {
            let mut doc = json!({"user": update.user.as_str()});
            doc[update.field.as_str()] = value;
            let _ = self.context.insert(doc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare_ingest() -> RawConWebIngest {
        RawConWebIngest {
            context: Collection::new("ctx"),
            state: Arc::new(Mutex::new(IngestState {
                last_applied: HashMap::new(),
                updates_applied: 0,
                updates_dropped: 0,
            })),
        }
    }

    #[test]
    fn applies_updates_and_upserts_rows() {
        let ingest = bare_ingest();
        ingest.apply(&ContextUpdate {
            user: UserId::new("alice"),
            field: "activity".into(),
            value: "walking".into(),
            at_ms: 10,
        });
        ingest.apply(&ContextUpdate {
            user: UserId::new("alice"),
            field: "audio".into(),
            value: "silent".into(),
            at_ms: 11,
        });
        assert_eq!(ingest.updates_applied(), 2);
        let row = ingest
            .context
            .find_one(&Query::eq("user", "alice"))
            .unwrap();
        assert_eq!(row.body["activity"], "walking");
        assert_eq!(row.body["audio"], "silent");
        assert_eq!(ingest.context.len(), 1, "single row per user");
    }

    #[test]
    fn stale_updates_dropped() {
        let ingest = bare_ingest();
        ingest.apply(&ContextUpdate {
            user: UserId::new("alice"),
            field: "activity".into(),
            value: "running".into(),
            at_ms: 100,
        });
        ingest.apply(&ContextUpdate {
            user: UserId::new("alice"),
            field: "activity".into(),
            value: "still".into(),
            at_ms: 50, // Older than what's applied.
        });
        assert_eq!(ingest.updates_dropped(), 1);
        let row = ingest
            .context
            .find_one(&Query::eq("user", "alice"))
            .unwrap();
        assert_eq!(row.body["activity"], "running");
    }

    #[test]
    fn malformed_payloads_counted_as_dropped() {
        let ingest = bare_ingest();
        ingest.on_update("not json at all");
        assert_eq!(ingest.updates_dropped(), 1);
        assert_eq!(ingest.updates_applied(), 0);
    }
}
