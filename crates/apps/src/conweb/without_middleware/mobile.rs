//! The no-middleware ConWeb mobile side.
//!
//! Everything SenSocial's three `create_stream` calls imply is spelled out
//! here: per-modality sampling timers with their own duty cycles, manual
//! classifier construction and invocation, manual change detection (only
//! transmit when the classified value changed, to keep the data plan
//! alive), manual energy accounting, manual privacy gates, and manual
//! pause/resume so sampling stops when the browser closes.

use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_broker::{BrokerClient, QoS};
use sensocial_classify::{
    ActivityClassifier, AudioClassifier, Classifier, PlaceClassifier,
};
use sensocial_energy::{BatteryMeter, EnergyComponent, EnergyProfile};
use sensocial_runtime::{Scheduler, SimDuration};
use sensocial_sensors::{SensorConfig, SensorManager, SensorSubscriptionId};
use sensocial_types::{DeviceId, Modality, Place, UserId};

use super::protocol::{context_topic, ContextUpdate};

/// Manual privacy gates per modality.
#[derive(Debug, Clone)]
pub struct RawConWebPrivacy {
    /// Allow activity sensing.
    pub allow_activity: bool,
    /// Allow audio sensing.
    pub allow_audio: bool,
    /// Allow place sensing.
    pub allow_place: bool,
}

impl Default for RawConWebPrivacy {
    fn default() -> Self {
        RawConWebPrivacy {
            allow_activity: true,
            allow_audio: true,
            allow_place: true,
        }
    }
}

struct MobileState {
    last_activity: Option<String>,
    last_audio: Option<String>,
    last_place: Option<String>,
    subscriptions: Vec<SensorSubscriptionId>,
    updates_sent: u64,
    running: bool,
}

/// The no-middleware ConWeb mobile service.
pub struct RawConWebMobile {
    user: UserId,
    device: DeviceId,
    sensors: SensorManager,
    broker: BrokerClient,
    battery: BatteryMeter,
    profile: EnergyProfile,
    state: Arc<Mutex<MobileState>>,
}

impl std::fmt::Debug for RawConWebMobile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawConWebMobile")
            .field("user", &self.user)
            .field("updates_sent", &self.state.lock().updates_sent)
            .finish_non_exhaustive()
    }
}

impl RawConWebMobile {
    /// Installs the service and starts sampling.
    #[allow(clippy::too_many_arguments)]
    pub fn install(
        sched: &mut Scheduler,
        user: UserId,
        device: DeviceId,
        sensors: SensorManager,
        broker: BrokerClient,
        battery: BatteryMeter,
        profile: EnergyProfile,
        privacy: RawConWebPrivacy,
        places: Vec<Place>,
        interval: SimDuration,
    ) -> Arc<Self> {
        let app = Arc::new(RawConWebMobile {
            user,
            device,
            sensors,
            broker: broker.clone(),
            battery,
            profile,
            state: Arc::new(Mutex::new(MobileState {
                last_activity: None,
                last_audio: None,
                last_place: None,
                subscriptions: Vec::new(),
                updates_sent: 0,
                running: false,
            })),
        });
        broker.connect(sched);
        app.resume(sched, &privacy, places, interval);
        app
    }

    /// Context updates transmitted so far.
    pub fn updates_sent(&self) -> u64 {
        self.state.lock().updates_sent
    }

    /// Whether sampling is currently running.
    pub fn is_running(&self) -> bool {
        self.state.lock().running
    }

    /// Stops all sampling (the browser was closed).
    pub fn pause(&self) {
        let mut state = self.state.lock();
        for sub in state.subscriptions.drain(..) {
            self.sensors.unsubscribe(sub);
        }
        state.running = false;
    }

    /// (Re)starts sampling with the given gates, gazetteer and duty cycle.
    pub fn resume(
        &self,
        sched: &mut Scheduler,
        privacy: &RawConWebPrivacy,
        places: Vec<Place>,
        interval: SimDuration,
    ) {
        self.pause();
        let mut subs = Vec::new();

        if privacy.allow_activity {
            self.sensors
                .set_config(Modality::Accelerometer, SensorConfig::with_interval(interval));
            let this = self.handle();
            let classifier = ActivityClassifier::default();
            subs.push(
                self.sensors
                    .subscribe(sched, Modality::Accelerometer, move |s, raw| {
                        this.battery.charge(
                            EnergyComponent::Classification(Modality::Accelerometer),
                            this.profile.classification_uah(Modality::Accelerometer),
                        );
                        let Some(c) = classifier.classify(&raw) else {
                            return;
                        };
                        let value = c.value_string();
                        let changed = {
                            let mut state = this.state.lock();
                            if state.last_activity.as_deref() != Some(value.as_str()) {
                                state.last_activity = Some(value.clone());
                                true
                            } else {
                                false
                            }
                        };
                        if changed {
                            this.transmit(s, "activity", &value);
                        }
                    }),
            );
        }

        if privacy.allow_audio {
            self.sensors
                .set_config(Modality::Microphone, SensorConfig::with_interval(interval));
            let this = self.handle();
            let classifier = AudioClassifier::default();
            subs.push(
                self.sensors
                    .subscribe(sched, Modality::Microphone, move |s, raw| {
                        this.battery.charge(
                            EnergyComponent::Classification(Modality::Microphone),
                            this.profile.classification_uah(Modality::Microphone),
                        );
                        let Some(c) = classifier.classify(&raw) else {
                            return;
                        };
                        let value = c.value_string();
                        let changed = {
                            let mut state = this.state.lock();
                            if state.last_audio.as_deref() != Some(value.as_str()) {
                                state.last_audio = Some(value.clone());
                                true
                            } else {
                                false
                            }
                        };
                        if changed {
                            this.transmit(s, "audio", &value);
                        }
                    }),
            );
        }

        if privacy.allow_place {
            self.sensors
                .set_config(Modality::Location, SensorConfig::with_interval(interval));
            let this = self.handle();
            let classifier = PlaceClassifier::new(places);
            subs.push(
                self.sensors
                    .subscribe(sched, Modality::Location, move |s, raw| {
                        this.battery.charge(
                            EnergyComponent::Classification(Modality::Location),
                            this.profile.classification_uah(Modality::Location),
                        );
                        let Some(c) = classifier.classify(&raw) else {
                            return;
                        };
                        let value = c.value_string();
                        let changed = {
                            let mut state = this.state.lock();
                            if state.last_place.as_deref() != Some(value.as_str()) {
                                state.last_place = Some(value.clone());
                                true
                            } else {
                                false
                            }
                        };
                        if changed {
                            this.transmit(s, "place", &value);
                        }
                    }),
            );
        }

        let mut state = self.state.lock();
        state.subscriptions = subs;
        state.running = true;
    }

    /// Shares the app's meters/state into a sampling closure. (With the
    /// middleware this plumbing does not exist.)
    fn handle(&self) -> Arc<RawConWebMobileHandle> {
        Arc::new(RawConWebMobileHandle {
            user: self.user.clone(),
            device: self.device.clone(),
            broker: self.broker.clone(),
            battery: self.battery.clone(),
            profile: self.profile.clone(),
            state: self.state.clone(),
        })
    }

}

/// The cloneable inner handle used by sampling closures.
struct RawConWebMobileHandle {
    user: UserId,
    device: DeviceId,
    broker: BrokerClient,
    battery: BatteryMeter,
    profile: EnergyProfile,
    state: Arc<Mutex<MobileState>>,
}

impl RawConWebMobileHandle {
    fn transmit(&self, sched: &mut Scheduler, field: &str, value: &str) {
        let update = ContextUpdate {
            user: self.user.clone(),
            field: field.to_owned(),
            value: value.to_owned(),
            at_ms: sched.now().as_millis(),
        };
        let wire = update.encode();
        self.battery.charge(
            EnergyComponent::Transmission,
            self.profile.transmission_uah(wire.len()),
        );
        self.battery
            .charge(EnergyComponent::RadioTail, self.profile.radio_tail_uah);
        self.broker.publish(
            sched,
            &context_topic(&self.device),
            &wire,
            QoS::AtMostOnce,
            false,
        );
        self.state.lock().updates_sent += 1;
    }
}
