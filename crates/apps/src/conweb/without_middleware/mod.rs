//! ConWeb built **without** SenSocial.
//!
//! The mobile side ([`mobile`]) re-derives by hand everything the
//! middleware otherwise provides: its own sampling timers per modality,
//! manual classifier invocation, a hand-written context uplink protocol
//! ([`protocol`]), manual energy metering and a manual pause/resume tied
//! to the browser lifecycle. The server side ([`ingest`]) parses the
//! uplink protocol, validates rows and maintains the context table the Web
//! server renders from, plus its own OSN plug-in handling to feed post
//! topics in.

pub mod ingest;
pub mod mobile;
pub mod protocol;

pub use ingest::RawConWebIngest;
pub use mobile::RawConWebMobile;
