//! Hand-rolled context-uplink protocol for the no-middleware ConWeb.

use serde_json::{json, Value};
use sensocial_types::{DeviceId, UserId};

/// Protocol version guard.
pub const PROTOCOL_VERSION: u32 = 1;

/// Topic carrying one device's context updates.
pub fn context_topic(device: &DeviceId) -> String {
    format!("rawconweb/context/{}", device.as_str())
}

/// Wildcard over every device's context updates.
pub const CONTEXT_WILDCARD: &str = "rawconweb/context/+";

/// One context update: a single field of the user's row.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextUpdate {
    /// The user whose row to update.
    pub user: UserId,
    /// Field name: `activity`, `audio`, `place` or `last_topic`.
    pub field: String,
    /// New value.
    pub value: String,
    /// Sampling time, epoch milliseconds.
    pub at_ms: u64,
}

/// Fields the ingest accepts; anything else is rejected as malformed.
pub const ALLOWED_FIELDS: [&str; 4] = ["activity", "audio", "place", "last_topic"];

impl ContextUpdate {
    /// Serializes to the wire.
    pub fn encode(&self) -> String {
        json!({
            "v": PROTOCOL_VERSION,
            "user": self.user.as_str(),
            "field": self.field,
            "value": self.value,
            "at_ms": self.at_ms,
        })
        .to_string()
    }

    /// Parses and validates from the wire.
    pub fn decode(payload: &str) -> Option<ContextUpdate> {
        let value: Value = serde_json::from_str(payload).ok()?;
        if value.get("v")?.as_u64()? != u64::from(PROTOCOL_VERSION) {
            return None;
        }
        let field = value.get("field")?.as_str()?.to_owned();
        if !ALLOWED_FIELDS.contains(&field.as_str()) {
            return None;
        }
        Some(ContextUpdate {
            user: UserId::new(value.get("user")?.as_str()?),
            field,
            value: value.get("value")?.as_str()?.to_owned(),
            at_ms: value.get("at_ms")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let u = ContextUpdate {
            user: UserId::new("alice"),
            field: "activity".into(),
            value: "walking".into(),
            at_ms: 42,
        };
        assert_eq!(ContextUpdate::decode(&u.encode()).unwrap(), u);
    }

    #[test]
    fn rejects_unknown_fields_and_versions() {
        let raw = "{\"v\":1,\"user\":\"u\",\"field\":\"password\",\"value\":\"x\",\"at_ms\":1}";
        assert!(ContextUpdate::decode(raw).is_none());
        let raw = "{\"v\":2,\"user\":\"u\",\"field\":\"activity\",\"value\":\"x\",\"at_ms\":1}";
        assert!(ContextUpdate::decode(raw).is_none());
        assert!(ContextUpdate::decode("junk").is_none());
    }
}
