//! Geo-aware social notifications — the paper's Figure 2 running example.
//!
//! "The application notifies a user when one of his/her OSN friends visit
//! his/her home town": the server tracks every friend's location through a
//! multicast stream over the user's OSN links, filtered to the home town;
//! when a friend's stream reports the home place, a notification is
//! delivered to the user's phone.

use std::sync::Arc;

use parking_lot::Mutex;
use sensocial::server::{MulticastId, MulticastSelector, ServerManager};
use sensocial::{
    Condition, ConditionLhs, Filter, Granularity, Modality, Operator, StreamSink, StreamSpec,
};
use sensocial_analysis::{analyze, AnalysisEnv, FilterPlan};
use sensocial_runtime::{Scheduler, SimDuration, Timestamp};
use sensocial_types::UserId;

/// One delivered notification.
#[derive(Debug, Clone, PartialEq)]
pub struct FriendArrival {
    /// The user being notified.
    pub notified: UserId,
    /// The friend who arrived.
    pub friend: UserId,
    /// The place they arrived at.
    pub place: String,
    /// When the arrival was sensed.
    pub at: Timestamp,
}

/// The geo-notification app, installed on the server for one user.
pub struct GeoNotifyApp {
    /// The user this instance notifies.
    pub user: UserId,
    /// Their home town.
    pub home: String,
    multicast: MulticastId,
    notifications: Arc<Mutex<Vec<FriendArrival>>>,
}

impl std::fmt::Debug for GeoNotifyApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeoNotifyApp")
            .field("user", &self.user)
            .field("home", &self.home)
            .field("notifications", &self.notifications.lock().len())
            .finish_non_exhaustive()
    }
}

impl GeoNotifyApp {
    /// Installs the app: a multicast stream over `user`'s OSN friends,
    /// sampling classified location every `interval`, filtered (on the
    /// devices, by the distributed filter) to reports from `home`.
    ///
    /// # Errors
    ///
    /// Returns [`sensocial::Error::PlanRejected`] if the home-town filter
    /// plan fails static verification or the multicast would close a
    /// cross-user dependency cycle.
    pub fn install(
        sched: &mut Scheduler,
        server: &ServerManager,
        user: UserId,
        home: impl Into<String>,
        interval: SimDuration,
    ) -> sensocial::Result<Self> {
        let home = home.into();
        // Pre-flight the distributed plan through the static verifier: the
        // multicast template is exactly what every member device will run.
        let plan = FilterPlan::multicast(
            Modality::Location,
            Granularity::Classified,
            Filter::new(vec![Condition::new(
                ConditionLhs::Place,
                Operator::Equals,
                home.clone(),
            )]),
        );
        let filter = analyze(&plan, &AnalysisEnv::new())
            .map_err(sensocial::Error::from)?
            .filter;
        let template = StreamSpec::continuous(Modality::Location, Granularity::Classified)
            .with_interval(interval)
            .with_filter(filter)
            .with_sink(StreamSink::Server);
        let multicast = server.create_multicast(
            sched,
            MulticastSelector::FriendsOf(user.clone()),
            template,
        )?;

        let notifications: Arc<Mutex<Vec<FriendArrival>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = notifications.clone();
        let notified = user.clone();
        let place = home.clone();
        let own = user.clone();
        // A visit is continuous while reports keep arriving within a few
        // sampling cycles of each other; a gap means the friend left and a
        // later report is a *new* arrival.
        let visit_gap = interval * 4;
        let last_seen: Arc<Mutex<std::collections::HashMap<UserId, Timestamp>>> =
            Arc::new(Mutex::new(std::collections::HashMap::new()));
        server.register_multicast_listener(multicast, move |_s, event| {
            // A friend's device reported the home place (device-side filter
            // already guaranteed the place matches).
            if event.user == own {
                return;
            }
            let arrived = {
                let mut seen = last_seen.lock();
                let arrived = seen
                    .get(&event.user)
                    .is_none_or(|t| event.at.saturating_since(*t) > visit_gap);
                seen.insert(event.user.clone(), event.at);
                arrived
            };
            if arrived {
                sink.lock().push(FriendArrival {
                    notified: notified.clone(),
                    friend: event.user.clone(),
                    place: place.clone(),
                    at: event.at,
                });
            }
        });

        Ok(GeoNotifyApp {
            user,
            home,
            multicast,
            notifications,
        })
    }

    /// Re-evaluates the friend set (call after OSN link changes).
    pub fn refresh(&self, sched: &mut Scheduler, server: &ServerManager) {
        server.refresh_multicast(sched, self.multicast);
    }

    /// Notifications delivered so far.
    pub fn notifications(&self) -> Vec<FriendArrival> {
        self.notifications.lock().clone()
    }
}
