//! The paper's two prototype applications, each implemented **twice**:
//! on top of the SenSocial middleware and directly against the raw
//! substrates. The pairs exist so Table 5's programming-effort comparison
//! can be measured on real, runnable code:
//!
//! * **Facebook Sensor Map** (§6.1) — traces users' Facebook activity,
//!   couples each action with the physical context sensed at that moment,
//!   and plots the joined records on a map.
//!   [`sensor_map::with_middleware`] vs. [`sensor_map::without_middleware`].
//! * **ConWeb** (§6.2) — a contextual Web browser: pages re-render against
//!   the user's momentary physical + social context.
//!   [`conweb::with_middleware`] vs. [`conweb::without_middleware`].
//! * **Geo-notify** (Figure 2) — "notify user A when an OSN friend enters
//!   Paris" — the paper's running example, built on the middleware's
//!   multicast streams. [`geo_notify`].
//!
//! The `without_middleware` variants deliberately re-derive everything the
//! middleware otherwise provides — trigger handling, duty-cycling, context
//! snapshots, filtering, privacy checks, uplink protocol, server-side
//! registry and context tables — the way the paper's comparison apps had
//! to. They still use the ESSensorManager-equivalent sensor library and
//! the broker, exactly as the paper's versions used ESSensorManager and
//! Mosquitto (and exactly those substrate LOC are excluded from Table 5's
//! counts, as in the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conweb;
pub mod geo_notify;
pub mod map;
pub mod sensor_map;
