//! The map view shared by both Facebook Sensor Map variants.
//!
//! "Each marker corresponds to a user's OSN action, and merges geographic,
//! audio and physical information with the type and content of the OSN
//! action" (paper Figure 6).

use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_runtime::Timestamp;
use sensocial_types::{GeoPoint, UserId};

/// One marker on the sensor map.
#[derive(Debug, Clone, PartialEq)]
pub struct Marker {
    /// Whose action this is.
    pub user: UserId,
    /// Where they were (from the raw location stream), if known.
    pub position: Option<GeoPoint>,
    /// Their classified physical activity, if known.
    pub activity: Option<String>,
    /// Their classified audio environment, if known.
    pub audio: Option<String>,
    /// The OSN action kind (post/comment/like).
    pub action_kind: String,
    /// The OSN action content.
    pub action_content: String,
    /// When the context was sensed.
    pub at: Timestamp,
}

/// An updatable collection of markers (the Google-map stand-in).
///
/// Cloneable handle; the app's listeners push, the UI (here: tests and
/// examples) reads.
#[derive(Debug, Clone, Default)]
pub struct MapView {
    markers: Arc<Mutex<Vec<Marker>>>,
}

impl MapView {
    /// Creates an empty map.
    pub fn new() -> Self {
        MapView::default()
    }

    /// Adds a marker.
    pub fn add(&self, marker: Marker) {
        self.markers.lock().push(marker);
    }

    /// All markers so far.
    pub fn markers(&self) -> Vec<Marker> {
        self.markers.lock().clone()
    }

    /// Number of markers.
    pub fn len(&self) -> usize {
        self.markers.lock().len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.markers.lock().is_empty()
    }

    /// Markers for one user.
    pub fn markers_for(&self, user: &UserId) -> Vec<Marker> {
        self.markers
            .lock()
            .iter()
            .filter(|m| &m.user == user)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::geo::cities;

    fn marker(user: &str) -> Marker {
        Marker {
            user: UserId::new(user),
            position: Some(cities::paris()),
            activity: Some("walking".into()),
            audio: None,
            action_kind: "post".into(),
            action_content: "hi".into(),
            at: Timestamp::ZERO,
        }
    }

    #[test]
    fn add_and_filter() {
        let map = MapView::new();
        assert!(map.is_empty());
        map.add(marker("alice"));
        map.add(marker("bob"));
        map.add(marker("alice"));
        assert_eq!(map.len(), 3);
        assert_eq!(map.markers_for(&UserId::new("alice")).len(), 2);
        assert_eq!(map.markers().len(), 3);
    }

    #[test]
    fn clones_share_markers() {
        let map = MapView::new();
        map.clone().add(marker("x"));
        assert_eq!(map.len(), 1);
    }
}
