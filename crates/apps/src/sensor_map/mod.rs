//! Facebook Sensor Map (paper §6.1), in both variants.

pub mod with_middleware;
pub mod without_middleware;
