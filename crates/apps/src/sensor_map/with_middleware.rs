//! Facebook Sensor Map built **on** SenSocial.
//!
//! This is the paper's Figure 7 code, transliterated: three streams
//! (classified accelerometer, classified microphone, raw location), all
//! filtered on `facebook_activity equals active`, so the middleware samples
//! and couples context exactly when the user acts on the OSN. The mobile
//! side renders coupled events onto a local map and the stream sink also
//! uplinks them; the server side stores every coupled record in the
//! database for multi-user querying and keeps a global map.

use sensocial::client::ClientManager;
use sensocial::server::{ServerManager, StreamSelector};
use sensocial::{
    Condition, ConditionLhs, Filter, Granularity, Modality, Operator, StreamEvent, StreamId,
    StreamSink, StreamSpec,
};
use sensocial_analysis::{analyze, AnalysisEnv, FilterPlan};
use sensocial_runtime::Scheduler;
use sensocial_store::Collection;
use sensocial_types::{ContextData, RawSample};
use serde_json::json;

use crate::map::{MapView, Marker};

/// The mobile part: the paper's `FacebookSensorMapService`.
#[derive(Debug)]
pub struct SensorMapMobile {
    /// The three streams created on the device.
    pub streams: [StreamId; 3],
    /// The local map the app renders into.
    pub map: MapView,
}

impl SensorMapMobile {
    /// Installs the app on a device — the direct equivalent of the
    /// paper's Figure 7 snippet.
    pub fn install(sched: &mut Scheduler, manager: &ClientManager) -> sensocial::Result<Self> {
        // Create list of filter condition(s): facebook_activity == active.
        // The plan is pre-flighted through the static verifier so a typo in
        // the filter surfaces here as diagnostics, not as a stream that
        // silently never fires; all three streams share the normalized form.
        let plan = FilterPlan::device(
            Modality::Accelerometer,
            Granularity::Classified,
            Filter::new(vec![Condition::new(
                ConditionLhs::OsnActivity,
                Operator::Equals,
                "active",
            )]),
        );
        let filter = analyze(&plan, &AnalysisEnv::new())
            .map_err(sensocial::Error::from)?
            .filter;

        // Three streams — classified accelerometer, classified microphone,
        // raw location — with the filter set on each.
        let s1 = manager.create_stream(
            sched,
            StreamSpec::continuous(Modality::Accelerometer, Granularity::Classified)
                .with_filter(filter.clone())
                .with_sink(StreamSink::Server),
        )?;
        let s2 = manager.create_stream(
            sched,
            StreamSpec::continuous(Modality::Microphone, Granularity::Classified)
                .with_filter(filter.clone())
                .with_sink(StreamSink::Server),
        )?;
        let s3 = manager.create_stream(
            sched,
            StreamSpec::continuous(Modality::Location, Granularity::Raw)
                .with_filter(filter)
                .with_sink(StreamSink::Server),
        )?;

        // Subscribe and render coupled events onto the local map.
        let map = MapView::new();
        for stream in [s1, s2, s3] {
            let map = map.clone();
            manager.register_listener(stream, move |_s, event| {
                map.add(event_to_marker(event));
            });
        }

        Ok(SensorMapMobile {
            streams: [s1, s2, s3],
            map,
        })
    }
}

/// The server part: stores coupled records and keeps a global map.
#[derive(Debug)]
pub struct SensorMapServer {
    /// Global map over all users.
    pub map: MapView,
    /// The `sensor_map` collection holding every coupled record.
    pub records: Collection,
}

impl SensorMapServer {
    /// Installs the server-side application.
    ///
    /// # Errors
    ///
    /// Returns [`sensocial::Error::PlanRejected`] if the subscription plan
    /// fails the server's static verification (it cannot: `pass_all` is
    /// trivially sound — the `Result` exists for signature honesty).
    pub fn install(server: &ServerManager) -> sensocial::Result<Self> {
        let map = MapView::new();
        let records = server.db().collection("sensor_map");
        let (m, r) = (map.clone(), records.clone());
        server.register_listener(StreamSelector::AllUplinks, Filter::pass_all(), move |_s, event| {
            // Only OSN-coupled events belong on the sensor map.
            if event.osn_action.is_none() {
                return;
            }
            m.add(event_to_marker(event));
            let marker = event_to_marker(event);
            let _ = r.insert(json!({
                "user": event.user.as_str(),
                "kind": marker.action_kind,
                "content": marker.action_content,
                "activity": marker.activity,
                "audio": marker.audio,
                "lat": marker.position.map(|p| p.lat),
                "lon": marker.position.map(|p| p.lon),
                "at_ms": event.at.as_millis(),
            }));
        })?;
        Ok(SensorMapServer { map, records })
    }
}

/// Projects a coupled stream event onto a map marker.
fn event_to_marker(event: &StreamEvent) -> Marker {
    let action = event.osn_action.as_ref();
    let mut marker = Marker {
        user: event.user.clone(),
        position: None,
        activity: None,
        audio: None,
        action_kind: action.map(|a| a.kind.name().to_owned()).unwrap_or_default(),
        action_content: action.map(|a| a.content.clone()).unwrap_or_default(),
        at: event.at,
    };
    match &event.data {
        ContextData::Raw(RawSample::Location(fix)) => marker.position = Some(fix.position),
        ContextData::Classified(c) => match c.modality() {
            Modality::Accelerometer => marker.activity = Some(c.value_string()),
            Modality::Microphone => marker.audio = Some(c.value_string()),
            _ => {}
        },
        _ => {}
    }
    marker
}
