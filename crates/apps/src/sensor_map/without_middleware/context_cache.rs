//! A hand-rolled device context cache with staleness rules.
//!
//! SenSocial's `ContextSnapshot` plus its trigger-gap logic, re-derived
//! for the no-middleware app: the device keeps its freshest classified
//! values and decides whether a new sensing round is needed or cached
//! context may be coupled with an incoming OSN action.

use sensocial_runtime::{SimDuration, Timestamp};
use sensocial_types::GeoPoint;

/// Freshest-known context for one device.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawContextCache {
    activity: Option<(Timestamp, String)>,
    audio: Option<(Timestamp, String)>,
    position: Option<(Timestamp, GeoPoint)>,
}

impl RawContextCache {
    /// An empty cache.
    pub fn new() -> Self {
        RawContextCache::default()
    }

    /// Records a classified activity.
    pub fn record_activity(&mut self, at: Timestamp, activity: String) {
        self.activity = Some((at, activity));
    }

    /// Records a classified audio environment.
    pub fn record_audio(&mut self, at: Timestamp, audio: String) {
        self.audio = Some((at, audio));
    }

    /// Records a position fix.
    pub fn record_position(&mut self, at: Timestamp, position: GeoPoint) {
        self.position = Some((at, position));
    }

    /// Latest activity, if any.
    pub fn activity(&self) -> Option<&str> {
        self.activity.as_deref_inner()
    }

    /// Latest audio environment, if any.
    pub fn audio(&self) -> Option<&str> {
        self.audio.as_deref_inner()
    }

    /// Latest position, if any.
    pub fn position(&self) -> Option<GeoPoint> {
        self.position.map(|(_, p)| p)
    }

    /// The time of the *oldest* of the three entries, i.e. how stale the
    /// cache is as a coupled whole. `None` until all three are present.
    pub fn coherent_since(&self) -> Option<Timestamp> {
        let a = self.activity.as_ref()?.0;
        let b = self.audio.as_ref()?.0;
        let c = self.position.as_ref()?.0;
        Some(a.min(b).min(c))
    }

    /// Whether the cached triple is fresh enough (younger than `max_age`)
    /// to couple with an action at `now` without re-sensing.
    pub fn is_fresh(&self, now: Timestamp, max_age: SimDuration) -> bool {
        match self.coherent_since() {
            Some(oldest) => now.saturating_since(oldest) < max_age,
            None => false,
        }
    }
}

/// Small helper: `Option<(T, String)> → Option<&str>`.
trait AsDerefInner {
    fn as_deref_inner(&self) -> Option<&str>;
}

impl AsDerefInner for Option<(Timestamp, String)> {
    fn as_deref_inner(&self) -> Option<&str> {
        self.as_ref().map(|(_, s)| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::geo::cities;

    #[test]
    fn empty_cache_is_never_fresh() {
        let cache = RawContextCache::new();
        assert!(!cache.is_fresh(Timestamp::from_secs(100), SimDuration::from_secs(60)));
        assert_eq!(cache.coherent_since(), None);
    }

    #[test]
    fn freshness_follows_oldest_entry() {
        let mut cache = RawContextCache::new();
        cache.record_activity(Timestamp::from_secs(10), "walking".into());
        cache.record_audio(Timestamp::from_secs(50), "silent".into());
        cache.record_position(Timestamp::from_secs(55), cities::paris());
        assert_eq!(cache.coherent_since(), Some(Timestamp::from_secs(10)));
        assert!(cache.is_fresh(Timestamp::from_secs(60), SimDuration::from_secs(60)));
        assert!(!cache.is_fresh(Timestamp::from_secs(71), SimDuration::from_secs(60)));
    }

    #[test]
    fn accessors_return_latest() {
        let mut cache = RawContextCache::new();
        cache.record_activity(Timestamp::from_secs(1), "still".into());
        cache.record_activity(Timestamp::from_secs(2), "running".into());
        assert_eq!(cache.activity(), Some("running"));
        assert_eq!(cache.audio(), None);
        cache.record_position(Timestamp::from_secs(3), cities::bordeaux());
        assert_eq!(cache.position(), Some(cities::bordeaux()));
    }
}
