//! The no-middleware mobile side.
//!
//! Without SenSocial the app must itself: keep the broker session and the
//! trigger subscription; deduplicate redelivered commands; check its own
//! privacy checklist before touching each sensor; run one-off sampling and
//! invoke the classifiers by hand; decide, with its own staleness rule,
//! whether to re-sense or reuse cached context; build the uplink payload;
//! meter its own energy; and render the local map. Compare with
//! [`with_middleware`](crate::sensor_map::with_middleware), where all of
//! this is three `create_stream` calls and a filter.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_broker::{BrokerClient, QoS};
use sensocial_classify::{ActivityClassifier, AudioClassifier, Classifier};
use sensocial_energy::{BatteryMeter, EnergyComponent, EnergyProfile};
use sensocial_runtime::{Scheduler, SimDuration, Timestamp};
use sensocial_sensors::SensorManager;
use sensocial_types::{ClassifiedContext, DeviceId, Modality, RawSample, UserId};

use crate::map::{MapView, Marker};

use super::context_cache::RawContextCache;
use super::protocol::{report_topic, trigger_topic, ContextReport, SenseCommand};

/// A manually maintained per-modality privacy checklist (what the
/// middleware's PrivacyPolicyManager screens automatically).
#[derive(Debug, Clone)]
pub struct RawPrivacyChecklist {
    /// Allow accelerometer sampling + activity classification.
    pub allow_activity: bool,
    /// Allow microphone sampling + audio classification.
    pub allow_audio: bool,
    /// Allow raw GPS sampling.
    pub allow_location: bool,
}

impl Default for RawPrivacyChecklist {
    fn default() -> Self {
        RawPrivacyChecklist {
            allow_activity: true,
            allow_audio: true,
            allow_location: true,
        }
    }
}

struct MobileState {
    cache: RawContextCache,
    seen_seqs: HashSet<u64>,
    privacy: RawPrivacyChecklist,
    reports_sent: u64,
}

/// The no-middleware Facebook Sensor Map mobile app.
pub struct RawSensorMapMobile {
    user: UserId,
    device: DeviceId,
    sensors: SensorManager,
    broker: BrokerClient,
    battery: BatteryMeter,
    profile: EnergyProfile,
    activity_classifier: ActivityClassifier,
    audio_classifier: AudioClassifier,
    /// The local map, as in the middleware variant.
    pub map: MapView,
    state: Arc<Mutex<MobileState>>,
    /// Staleness bound below which cached context is coupled instead of
    /// re-sensing (the trade-off §7 of the paper describes).
    max_context_age: SimDuration,
}

impl std::fmt::Debug for RawSensorMapMobile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawSensorMapMobile")
            .field("user", &self.user)
            .field("device", &self.device)
            .finish_non_exhaustive()
    }
}

impl RawSensorMapMobile {
    /// Installs the app: connects the broker session and subscribes to the
    /// device's trigger topic.
    #[allow(clippy::too_many_arguments)]
    pub fn install(
        sched: &mut Scheduler,
        user: UserId,
        device: DeviceId,
        sensors: SensorManager,
        broker: BrokerClient,
        battery: BatteryMeter,
        profile: EnergyProfile,
        privacy: RawPrivacyChecklist,
    ) -> Arc<Self> {
        let app = Arc::new(RawSensorMapMobile {
            user,
            device: device.clone(),
            sensors,
            broker: broker.clone(),
            battery,
            profile,
            activity_classifier: ActivityClassifier::default(),
            audio_classifier: AudioClassifier::default(),
            map: MapView::new(),
            state: Arc::new(Mutex::new(MobileState {
                cache: RawContextCache::new(),
                seen_seqs: HashSet::new(),
                privacy,
                reports_sent: 0,
            })),
            max_context_age: SimDuration::from_secs(60),
        });

        broker.connect(sched);
        let handler = app.clone();
        broker.subscribe(
            sched,
            trigger_topic(&device).as_str(),
            QoS::AtLeastOnce,
            move |s, _topic, payload| {
                handler.on_trigger(s, payload);
            },
        );
        app
    }

    /// Reports uplinked so far.
    pub fn reports_sent(&self) -> u64 {
        self.state.lock().reports_sent
    }

    /// Updates the privacy checklist (no automatic stream pause/resume
    /// here — the next trigger simply skips denied sensors).
    pub fn set_privacy(&self, privacy: RawPrivacyChecklist) {
        self.state.lock().privacy = privacy;
    }

    fn on_trigger(&self, sched: &mut Scheduler, payload: &str) {
        self.battery
            .charge(EnergyComponent::TriggerReception, self.profile.trigger_rx_uah);
        let Some(command) = SenseCommand::decode(payload) else {
            return;
        };
        // Deduplicate QoS-1 redelivery by sequence number.
        {
            let mut state = self.state.lock();
            if !state.seen_seqs.insert(command.seq) {
                return;
            }
            // Bound memory: forget far-past sequence numbers.
            if state.seen_seqs.len() > 4_096 {
                let min = command.seq.saturating_sub(2_048);
                state.seen_seqs.retain(|s| *s >= min);
            }
        }
        // Wrong-user commands (e.g. stale retained messages) are ignored.
        if command.user != self.user {
            return;
        }

        let now = sched.now();
        let fresh_enough = self.state.lock().cache.is_fresh(now, self.max_context_age);
        let sensed_at = if fresh_enough {
            self.state
                .lock()
                .cache
                .coherent_since()
                .unwrap_or(now)
        } else {
            self.sense_all(sched, now);
            now
        };

        let (activity, audio, position) = {
            let state = self.state.lock();
            (
                state.cache.activity().map(str::to_owned),
                state.cache.audio().map(str::to_owned),
                state.cache.position(),
            )
        };

        // Render locally.
        self.map.add(Marker {
            user: self.user.clone(),
            position,
            activity: activity.clone(),
            audio: audio.clone(),
            action_kind: command.action_kind.clone(),
            action_content: command.action_content.clone(),
            at: sensed_at,
        });

        // Build and uplink the report.
        let report = ContextReport {
            seq: command.seq,
            user: self.user.clone(),
            device: self.device.clone(),
            action_kind: command.action_kind,
            action_content: command.action_content,
            activity,
            audio,
            position,
            sensed_at_ms: sensed_at.as_millis(),
        };
        let wire = report.encode();
        self.battery.charge(
            EnergyComponent::Transmission,
            self.profile.transmission_uah(wire.len()),
        );
        self.battery
            .charge(EnergyComponent::RadioTail, self.profile.radio_tail_uah);
        self.broker.publish(
            sched,
            &report_topic(&self.device),
            &wire,
            QoS::AtMostOnce,
            false,
        );
        self.state.lock().reports_sent += 1;
    }

    /// One-off senses every allowed modality, classifies by hand, updates
    /// the cache.
    fn sense_all(&self, sched: &mut Scheduler, now: Timestamp) {
        let privacy = self.state.lock().privacy.clone();

        if privacy.allow_activity {
            let burst = self.sensors.sample_once(sched, Modality::Accelerometer);
            self.battery.charge(
                EnergyComponent::Classification(Modality::Accelerometer),
                self.profile.classification_uah(Modality::Accelerometer),
            );
            if let Some(ClassifiedContext::Activity(a)) = self.activity_classifier.classify(&burst)
            {
                self.state
                    .lock()
                    .cache
                    .record_activity(now, a.name().to_owned());
            }
        }
        if privacy.allow_audio {
            let frame = self.sensors.sample_once(sched, Modality::Microphone);
            self.battery.charge(
                EnergyComponent::Classification(Modality::Microphone),
                self.profile.classification_uah(Modality::Microphone),
            );
            if let Some(ClassifiedContext::Audio(a)) = self.audio_classifier.classify(&frame) {
                self.state
                    .lock()
                    .cache
                    .record_audio(now, a.name().to_owned());
            }
        }
        if privacy.allow_location {
            let fix = self.sensors.sample_once(sched, Modality::Location);
            if let RawSample::Location(fix) = fix {
                self.state.lock().cache.record_position(now, fix.position);
            }
        }
    }
}
