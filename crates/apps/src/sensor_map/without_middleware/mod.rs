//! Facebook Sensor Map built **without** SenSocial.
//!
//! Everything the middleware would otherwise provide is re-derived by hand
//! here, as the paper's comparison version had to: a wire protocol for
//! triggers and context uplink ([`protocol`]), a device-side context cache
//! with staleness rules ([`context_cache`]), an ad-hoc privacy checklist,
//! manual one-off sensing and classification on trigger receipt
//! ([`mobile`]), and a server that keeps its own user/device registry,
//! receives plug-in callbacks, compiles and retries triggers, parses
//! uplinks and maintains the map and database ([`server`]).
//!
//! Only the substrate libraries are used (the sensor library, the broker,
//! the classifiers, the document store) — exactly the dependencies the
//! paper's "without SenSocial" apps kept (ESSensorManager, Mosquitto,
//! MongoDB) and excluded from the Table 5 line counts.

pub mod context_cache;
pub mod mobile;
pub mod protocol;
pub mod server;

pub use mobile::RawSensorMapMobile;
pub use server::RawSensorMapServer;
