//! Hand-rolled wire protocol for the no-middleware Sensor Map.
//!
//! With SenSocial this entire module disappears: the middleware's trigger
//! and uplink formats are part of the platform. Without it, the
//! application defines, versions, serializes, validates and parses its own
//! message formats.

use serde_json::{json, Value};
use sensocial_types::{DeviceId, GeoPoint, UserId};

/// Protocol version stamped into every message so mismatched deployments
/// fail loudly instead of silently misparsing.
pub const PROTOCOL_VERSION: u32 = 1;

/// Topic carrying sensing commands for one device.
pub fn trigger_topic(device: &DeviceId) -> String {
    format!("rawmap/trigger/{}", device.as_str())
}

/// Topic carrying one device's context reports.
pub fn report_topic(device: &DeviceId) -> String {
    format!("rawmap/report/{}", device.as_str())
}

/// Wildcard over all devices' reports (the server's subscription).
pub const REPORT_WILDCARD: &str = "rawmap/report/+";

/// A sensing command: "the user just acted on the OSN — sample now".
#[derive(Debug, Clone, PartialEq)]
pub struct SenseCommand {
    /// Command sequence number (deduplication under QoS-1 redelivery).
    pub seq: u64,
    /// Acting user.
    pub user: UserId,
    /// Kind of OSN action ("post"/"comment"/"like").
    pub action_kind: String,
    /// OSN action content.
    pub action_content: String,
    /// Action timestamp, epoch milliseconds.
    pub action_at_ms: u64,
}

impl SenseCommand {
    /// Serializes to the wire.
    pub fn encode(&self) -> String {
        json!({
            "v": PROTOCOL_VERSION,
            "type": "sense",
            "seq": self.seq,
            "user": self.user.as_str(),
            "kind": self.action_kind,
            "content": self.action_content,
            "at_ms": self.action_at_ms,
        })
        .to_string()
    }

    /// Parses from the wire, rejecting unknown versions and malformed
    /// fields.
    pub fn decode(payload: &str) -> Option<SenseCommand> {
        let value: Value = serde_json::from_str(payload).ok()?;
        if value.get("v")?.as_u64()? != u64::from(PROTOCOL_VERSION) {
            return None;
        }
        if value.get("type")?.as_str()? != "sense" {
            return None;
        }
        Some(SenseCommand {
            seq: value.get("seq")?.as_u64()?,
            user: UserId::new(value.get("user")?.as_str()?),
            action_kind: value.get("kind")?.as_str()?.to_owned(),
            action_content: value.get("content")?.as_str()?.to_owned(),
            action_at_ms: value.get("at_ms")?.as_u64()?,
        })
    }
}

/// A coupled context report uplinked by a device.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextReport {
    /// Echo of the command's sequence number.
    pub seq: u64,
    /// Reporting user.
    pub user: UserId,
    /// Reporting device.
    pub device: DeviceId,
    /// The OSN action this context was coupled with.
    pub action_kind: String,
    /// Its content.
    pub action_content: String,
    /// Classified activity, if sensed.
    pub activity: Option<String>,
    /// Classified audio environment, if sensed.
    pub audio: Option<String>,
    /// Raw position, if sensed.
    pub position: Option<GeoPoint>,
    /// When the context was sampled, epoch milliseconds.
    pub sensed_at_ms: u64,
}

impl ContextReport {
    /// Serializes to the wire.
    pub fn encode(&self) -> String {
        json!({
            "v": PROTOCOL_VERSION,
            "type": "report",
            "seq": self.seq,
            "user": self.user.as_str(),
            "device": self.device.as_str(),
            "kind": self.action_kind,
            "content": self.action_content,
            "activity": self.activity,
            "audio": self.audio,
            "lat": self.position.map(|p| p.lat),
            "lon": self.position.map(|p| p.lon),
            "sensed_at_ms": self.sensed_at_ms,
        })
        .to_string()
    }

    /// Parses from the wire.
    pub fn decode(payload: &str) -> Option<ContextReport> {
        let value: Value = serde_json::from_str(payload).ok()?;
        if value.get("v")?.as_u64()? != u64::from(PROTOCOL_VERSION) {
            return None;
        }
        if value.get("type")?.as_str()? != "report" {
            return None;
        }
        let lat = value.get("lat").and_then(Value::as_f64);
        let lon = value.get("lon").and_then(Value::as_f64);
        let position = match (lat, lon) {
            (Some(lat), Some(lon))
                if (-90.0..=90.0).contains(&lat) && (-180.0..=180.0).contains(&lon) =>
            {
                Some(GeoPoint::new(lat, lon))
            }
            _ => None,
        };
        Some(ContextReport {
            seq: value.get("seq")?.as_u64()?,
            user: UserId::new(value.get("user")?.as_str()?),
            device: DeviceId::new(value.get("device")?.as_str()?),
            action_kind: value.get("kind")?.as_str()?.to_owned(),
            action_content: value.get("content")?.as_str()?.to_owned(),
            activity: value
                .get("activity")
                .and_then(Value::as_str)
                .map(str::to_owned),
            audio: value.get("audio").and_then(Value::as_str).map(str::to_owned),
            position,
            sensed_at_ms: value.get("sensed_at_ms")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::geo::cities;

    #[test]
    fn sense_command_round_trips() {
        let cmd = SenseCommand {
            seq: 7,
            user: UserId::new("alice"),
            action_kind: "post".into(),
            action_content: "hello".into(),
            action_at_ms: 1234,
        };
        assert_eq!(SenseCommand::decode(&cmd.encode()).unwrap(), cmd);
    }

    #[test]
    fn report_round_trips_with_and_without_position() {
        let mut report = ContextReport {
            seq: 1,
            user: UserId::new("alice"),
            device: DeviceId::new("alice-phone"),
            action_kind: "like".into(),
            action_content: "page".into(),
            activity: Some("walking".into()),
            audio: None,
            position: Some(cities::paris()),
            sensed_at_ms: 99,
        };
        assert_eq!(ContextReport::decode(&report.encode()).unwrap(), report);
        report.position = None;
        assert_eq!(ContextReport::decode(&report.encode()).unwrap(), report);
    }

    #[test]
    fn malformed_and_mismatched_messages_rejected() {
        assert!(SenseCommand::decode("not json").is_none());
        assert!(SenseCommand::decode("{\"v\":99,\"type\":\"sense\"}").is_none());
        let cmd = SenseCommand {
            seq: 1,
            user: UserId::new("u"),
            action_kind: "post".into(),
            action_content: "c".into(),
            action_at_ms: 0,
        };
        // A command is not a report.
        assert!(ContextReport::decode(&cmd.encode()).is_none());
    }

    #[test]
    fn invalid_coordinates_dropped() {
        let raw = "{\"v\":1,\"type\":\"report\",\"seq\":1,\"user\":\"u\",\"device\":\"d\",\
                   \"kind\":\"post\",\"content\":\"c\",\"lat\":200.0,\"lon\":0.0,\
                   \"sensed_at_ms\":5}";
        let report = ContextReport::decode(raw).unwrap();
        assert_eq!(report.position, None);
    }

    #[test]
    fn topics_are_per_device() {
        assert_ne!(
            trigger_topic(&DeviceId::new("a")),
            trigger_topic(&DeviceId::new("b"))
        );
        assert!(report_topic(&DeviceId::new("a")).starts_with("rawmap/report/"));
    }
}
