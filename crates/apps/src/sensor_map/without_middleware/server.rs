//! The no-middleware server side.
//!
//! Without SenSocial the server application must itself: keep a
//! user/device registry; receive the OSN plug-in callback; model the
//! processing pipeline; compile, sequence and publish sensing commands per
//! device; subscribe to and parse every device's reports; keep the global
//! map and persist records for querying. Compare with the middleware
//! variant's single `register_listener` call.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_broker::{BrokerClient, QoS};
use sensocial_net::LatencyModel;
use sensocial_osn::PushPlugin;
use sensocial_runtime::{Scheduler, SimRng, Timestamp};
use sensocial_store::{Collection, Database, Query};
use sensocial_types::{DeviceId, OsnAction, UserId};
use serde_json::json;

use crate::map::{MapView, Marker};

use super::protocol::{trigger_topic, ContextReport, SenseCommand, REPORT_WILDCARD};

struct ServerState {
    devices_by_user: HashMap<UserId, Vec<DeviceId>>,
    next_seq: u64,
    commands_sent: u64,
    reports_received: u64,
    processing_delay: LatencyModel,
    rng: SimRng,
    action_log: Vec<(Timestamp, Timestamp)>,
}

/// The no-middleware Facebook Sensor Map server app.
pub struct RawSensorMapServer {
    broker: BrokerClient,
    /// The global map over all users.
    pub map: MapView,
    /// Persistent coupled records (for the "complex OSN and context-based
    /// multiuser querying" the paper mentions).
    pub records: Collection,
    state: Arc<Mutex<ServerState>>,
}

impl std::fmt::Debug for RawSensorMapServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("RawSensorMapServer")
            .field("commands_sent", &state.commands_sent)
            .field("reports_received", &state.reports_received)
            .finish_non_exhaustive()
    }
}

impl RawSensorMapServer {
    /// Installs the server app: connects the broker session, subscribes to
    /// all report topics and hooks the OSN push plug-in.
    pub fn install(
        sched: &mut Scheduler,
        broker: BrokerClient,
        db: &Database,
        plugin: &PushPlugin,
        rng: SimRng,
    ) -> Arc<Self> {
        let app = Arc::new(RawSensorMapServer {
            broker: broker.clone(),
            map: MapView::new(),
            records: db.collection("raw_sensor_map"),
            state: Arc::new(Mutex::new(ServerState {
                devices_by_user: HashMap::new(),
                next_seq: 0,
                commands_sent: 0,
                reports_received: 0,
                processing_delay: LatencyModel::Normal {
                    mean_s: 8.8,
                    std_s: 0.9,
                    min_s: 0.5,
                },
                rng,
                action_log: Vec::new(),
            })),
        });

        broker.connect(sched);
        let handler = app.clone();
        broker.subscribe(
            sched,
            REPORT_WILDCARD,
            QoS::AtMostOnce,
            move |s, _topic, payload| {
                handler.on_report(s, payload);
            },
        );
        let handler = app.clone();
        plugin.set_receiver(move |s, action| {
            handler.on_osn_action(s, action);
        });
        app
    }

    /// Registers a user's device so actions can be routed to it.
    pub fn register_device(&self, user: UserId, device: DeviceId) {
        self.state
            .lock()
            .devices_by_user
            .entry(user)
            .or_default()
            .push(device);
    }

    /// Commands published so far.
    pub fn commands_sent(&self) -> u64 {
        self.state.lock().commands_sent
    }

    /// Reports parsed so far.
    pub fn reports_received(&self) -> u64 {
        self.state.lock().reports_received
    }

    /// The `(action time, receive time)` log, as the middleware server
    /// keeps for Table 3.
    pub fn action_log(&self) -> Vec<(Timestamp, Timestamp)> {
        self.state.lock().action_log.clone()
    }

    /// Coupled records for one user (the multi-user query path).
    pub fn records_for(&self, user: &UserId) -> usize {
        self.records.count(&Query::eq("user", user.as_str()))
    }

    fn on_osn_action(&self, sched: &mut Scheduler, action: OsnAction) {
        let now = sched.now();
        let delay = {
            let mut state = self.state.lock();
            state.action_log.push((action.at, now));
            let mut rng = state.rng.split("processing");
            state.processing_delay.sample(&mut rng)
        };
        let this = self.state.clone();
        let broker = self.broker.clone();
        sched.schedule_after(delay, move |s| {
            let commands: Vec<(DeviceId, SenseCommand)> = {
                let mut state = this.lock();
                let devices = state
                    .devices_by_user
                    .get(&action.user)
                    .cloned()
                    .unwrap_or_default();
                devices
                    .into_iter()
                    .map(|device| {
                        let seq = state.next_seq;
                        state.next_seq += 1;
                        state.commands_sent += 1;
                        (
                            device,
                            SenseCommand {
                                seq,
                                user: action.user.clone(),
                                action_kind: action.kind.name().to_owned(),
                                action_content: action.content.clone(),
                                action_at_ms: action.at.as_millis(),
                            },
                        )
                    })
                    .collect()
            };
            for (device, command) in commands {
                broker.publish(
                    s,
                    &trigger_topic(&device),
                    &command.encode(),
                    QoS::AtLeastOnce,
                    false,
                );
            }
        });
    }

    fn on_report(&self, _sched: &mut Scheduler, payload: &str) {
        let Some(report) = ContextReport::decode(payload) else {
            return;
        };
        self.state.lock().reports_received += 1;
        self.map.add(Marker {
            user: report.user.clone(),
            position: report.position,
            activity: report.activity.clone(),
            audio: report.audio.clone(),
            action_kind: report.action_kind.clone(),
            action_content: report.action_content.clone(),
            at: Timestamp::from_millis(report.sensed_at_ms),
        });
        let _ = self.records.insert(json!({
            "user": report.user.as_str(),
            "device": report.device.as_str(),
            "kind": report.action_kind,
            "content": report.action_content,
            "activity": report.activity,
            "audio": report.audio,
            "lat": report.position.map(|p| p.lat),
            "lon": report.position.map(|p| p.lon),
            "sensed_at_ms": report.sensed_at_ms,
        }));
    }
}
