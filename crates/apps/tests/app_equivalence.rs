//! The prototype applications run end-to-end — in both variants — and
//! produce the same observable behaviour, which is what makes Table 5's
//! LOC comparison meaningful.

use sensocial_apps::conweb::web::{ConWebBrowser, WebServer};
use sensocial_apps::conweb::with_middleware::{ConWebMobile, ConWebServer};
use sensocial_apps::conweb::without_middleware::{
    mobile::RawConWebPrivacy, RawConWebIngest, RawConWebMobile,
};
use sensocial_apps::geo_notify::GeoNotifyApp;
use sensocial_apps::sensor_map::with_middleware::{SensorMapMobile, SensorMapServer};
use sensocial_apps::sensor_map::without_middleware::{
    mobile::RawPrivacyChecklist, RawSensorMapMobile, RawSensorMapServer,
};
use sensocial_broker::BrokerClient;
use sensocial_energy::EnergyProfile;
use sensocial_runtime::{SimDuration, SimRng};
use sensocial_sim::{World, WorldConfig};
use sensocial_types::geo::cities;
use sensocial_types::{DeviceId, PhysicalActivity, UserId};

#[test]
fn sensor_map_with_middleware_end_to_end() {
    let mut world = World::new(WorldConfig::default());
    world.add_device("alice", "alice-phone", cities::paris());
    world.device("alice-phone").unwrap().env.set_activity(PhysicalActivity::Walking);

    let (mobile, server_app) = {
        let manager = world.device("alice-phone").unwrap().manager.clone();
        let mobile = SensorMapMobile::install(&mut world.sched, &manager).unwrap();
        let server_app = SensorMapServer::install(&world.server).unwrap();
        (mobile, server_app)
    };

    world.run_for(SimDuration::from_secs(5));
    world.post("alice", "walking to the match!");
    world.run_for(SimDuration::from_mins(3));

    // Three streams → three coupled markers locally (activity, audio,
    // location) and three on the server.
    assert_eq!(mobile.map.len(), 3, "local map: {:?}", mobile.map.markers());
    assert_eq!(server_app.map.len(), 3);
    let markers = server_app.map.markers();
    assert!(markers.iter().any(|m| m.activity.as_deref() == Some("walking")));
    assert!(markers.iter().any(|m| m.position.is_some()));
    assert!(markers.iter().all(|m| m.action_content == "walking to the match!"));
    assert_eq!(server_app.records.len(), 3);
}

#[test]
fn sensor_map_without_middleware_end_to_end() {
    // Same scenario, no middleware: manual wiring of every component.
    let mut world = World::new(WorldConfig::default());
    world.add_device("alice", "alice-phone", cities::paris());
    world.device("alice-phone").unwrap().env.set_activity(PhysicalActivity::Walking);

    let server_broker = BrokerClient::new(&world.net, "rawmap-server-ep", "broker", "rawmap-server");
    let server_app = RawSensorMapServer::install(
        &mut world.sched,
        server_broker,
        world.server.db(),
        &world.push_plugin, // takes over the plug-in receiver
        SimRng::seed_from(77),
    );
    server_app.register_device(UserId::new("alice"), DeviceId::new("alice-phone"));

    let (sensors, battery) = {
        let device = world.device("alice-phone").unwrap();
        (device.sensors.clone(), device.battery.clone())
    };
    let mobile_broker =
        BrokerClient::new(&world.net, "rawmap-alice-ep", "broker", "rawmap-alice-phone");
    let mobile = RawSensorMapMobile::install(
        &mut world.sched,
        UserId::new("alice"),
        DeviceId::new("alice-phone"),
        sensors,
        mobile_broker,
        battery,
        EnergyProfile::default(),
        RawPrivacyChecklist::default(),
    );

    world.run_for(SimDuration::from_secs(5));
    world.post("alice", "walking to the match!");
    world.run_for(SimDuration::from_mins(3));

    assert_eq!(server_app.commands_sent(), 1);
    assert_eq!(mobile.reports_sent(), 1);
    assert_eq!(server_app.reports_received(), 1);
    // One combined marker carrying all three context dimensions.
    let markers = server_app.map.markers();
    assert_eq!(markers.len(), 1);
    assert_eq!(markers[0].activity.as_deref(), Some("walking"));
    assert!(markers[0].position.is_some());
    assert_eq!(markers[0].action_content, "walking to the match!");
    assert_eq!(server_app.records_for(&UserId::new("alice")), 1);
    assert_eq!(mobile.map.len(), 1);
}

#[test]
fn conweb_with_middleware_adapts_pages() {
    let mut world = World::new(WorldConfig::default());
    world.add_device("alice", "alice-phone", cities::paris());

    let manager = world.device("alice-phone").unwrap().manager.clone();
    ConWebMobile::install(&mut world.sched, &manager).unwrap();
    let server_app = ConWebServer::install(&world.server).unwrap();

    let web = WebServer::start(&world.net, "web", server_app.context.clone());
    web.add_page("news", "A long and detailed article about everything that happened today");
    let browser = ConWebBrowser::open(
        &mut world.sched,
        &world.net,
        "alice-browser",
        "web",
        UserId::new("alice"),
        "news",
        SimDuration::from_secs(30),
    );

    // Still and quiet: normal contrast.
    world.run_for(SimDuration::from_mins(2));
    assert_eq!(browser.last_page().unwrap()["contrast"], "normal");

    // Start running somewhere loud: page re-renders high-contrast + terse.
    {
        let device = world.device("alice-phone").unwrap();
        device.env.set_activity(PhysicalActivity::Running);
        device.env.set_ambient_audio(0.6);
    }
    world.run_for(SimDuration::from_mins(3));
    let page = browser.last_page().unwrap();
    assert_eq!(page["contrast"], "high");
    assert!(page["body"].as_str().unwrap().ends_with('…'));

    // A topical post feeds the suggestion engine.
    world.post_about("alice", "music", "I love this new album!");
    world.run_for(SimDuration::from_mins(3));
    let page = browser.last_page().unwrap();
    assert!(page["suggestion"].as_str().unwrap().contains("music"));
    browser.close();
}

#[test]
fn conweb_without_middleware_adapts_pages() {
    let mut world = World::new(WorldConfig::default());
    world.add_device("alice", "alice-phone", cities::paris());

    let context = world.server.db().collection("rawconweb_context");
    let ingest_broker =
        BrokerClient::new(&world.net, "rawconweb-ingest-ep", "broker", "rawconweb-ingest");
    let _ingest = RawConWebIngest::install(
        &mut world.sched,
        ingest_broker,
        context.clone(),
        &world.push_plugin,
    );

    let (sensors, battery) = {
        let device = world.device("alice-phone").unwrap();
        (device.sensors.clone(), device.battery.clone())
    };
    let mobile_broker =
        BrokerClient::new(&world.net, "rawconweb-alice-ep", "broker", "rawconweb-alice");
    let mobile = RawConWebMobile::install(
        &mut world.sched,
        UserId::new("alice"),
        DeviceId::new("alice-phone"),
        sensors,
        mobile_broker,
        battery,
        EnergyProfile::default(),
        RawConWebPrivacy::default(),
        vec![cities::paris_place(), cities::bordeaux_place()],
        SimDuration::from_secs(30),
    );
    assert!(mobile.is_running());

    let web = WebServer::start(&world.net, "rawweb", context);
    web.add_page("news", "A long and detailed article about everything that happened today");
    let browser = ConWebBrowser::open(
        &mut world.sched,
        &world.net,
        "alice-raw-browser",
        "rawweb",
        UserId::new("alice"),
        "news",
        SimDuration::from_secs(30),
    );

    world.run_for(SimDuration::from_mins(2));
    assert_eq!(browser.last_page().unwrap()["contrast"], "normal");

    {
        let device = world.device("alice-phone").unwrap();
        device.env.set_activity(PhysicalActivity::Running);
    }
    world.run_for(SimDuration::from_mins(3));
    assert_eq!(browser.last_page().unwrap()["contrast"], "high");

    world.post_about("alice", "music", "I love this new album!");
    world.run_for(SimDuration::from_mins(3));
    let page = browser.last_page().unwrap();
    assert!(page["suggestion"].as_str().unwrap().contains("music"));

    // Closing the browser pauses sampling (the paper's lifecycle).
    browser.close();
    mobile.pause();
    let sent = mobile.updates_sent();
    world.run_for(SimDuration::from_mins(5));
    assert_eq!(mobile.updates_sent(), sent);
}

#[test]
fn geo_notify_reproduces_figure2() {
    let mut world = World::new(WorldConfig::default());
    // Users A and B live in Paris; C, D and E in Bordeaux.
    world.add_device("a", "a-phone", cities::paris());
    world.add_device("b", "b-phone", cities::paris());
    world.add_device("c", "c-phone", cities::bordeaux());
    world.add_device("d", "d-phone", cities::bordeaux());
    world.add_device("e", "e-phone", cities::bordeaux());
    // A has OSN links with C and D.
    world.server.record_friendship(&UserId::new("a"), &UserId::new("c"));
    world.server.record_friendship(&UserId::new("a"), &UserId::new("d"));

    let app = GeoNotifyApp::install(
        &mut world.sched,
        &world.server,
        UserId::new("a"),
        "Paris",
        SimDuration::from_secs(60),
    )
    .unwrap();

    // Nobody travels for a while: no notifications.
    world.run_for(SimDuration::from_mins(10));
    assert!(app.notifications().is_empty());

    // C travels from Bordeaux to Paris.
    world.device("c-phone").unwrap().env.set_position(cities::paris());
    world.run_for(SimDuration::from_mins(10));

    let notifications = app.notifications();
    assert_eq!(notifications.len(), 1, "{notifications:?}");
    assert_eq!(notifications[0].friend, UserId::new("c"));
    assert_eq!(notifications[0].place, "Paris");
    assert_eq!(notifications[0].notified, UserId::new("a"));

    // E also goes to Paris, but E is not A's friend: still one notification.
    world.device("e-phone").unwrap().env.set_position(cities::paris());
    world.run_for(SimDuration::from_mins(10));
    let notifications = app.notifications();
    let friends_seen: Vec<&str> = notifications.iter().map(|n| n.friend.as_str()).collect();
    assert!(!friends_seen.contains(&"e"), "{friends_seen:?}");
}
