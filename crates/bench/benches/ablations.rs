//! Ablation report: push vs poll, filter placement, classification
//! placement.

use sensocial_bench::{ablations, experiments, header};

fn main() {
    header("Ablation A: trigger delivery — MQTT push vs HTTP-style polling (1 h, 6 actions)");
    println!("{:<24} {:>16} {:>16}", "Variant", "Device [uAH]", "Mean delay [s]");
    for v in ablations::push_vs_poll(6, &[30, 60, 300, 600]) {
        println!("{:<24} {:>16.1} {:>16.1}", v.label, v.device_uah, v.mean_delay_s);
    }
    println!("Paper claim: push avoids continuous polling and lowers battery consumption.");

    header("Ablation B: filter placement — on-mobile vs on-server (2 h, walking 25% of time)");
    println!(
        "{:<20} {:>16} {:>12} {:>10} {:>16}",
        "Variant", "GPS sample [uAH]", "Tx [uAH]", "Uplinks", "App deliveries"
    );
    for v in ablations::filter_placement() {
        println!(
            "{:<20} {:>16.1} {:>12.1} {:>10} {:>16}",
            v.label, v.gps_sampling_uah, v.device_tx_uah, v.uplink_events, v.delivered_events
        );
    }
    println!("Paper claims: on-mobile filtering cuts transmission energy and data-plan usage,");
    println!("and gates energy-costly sensors on cheaper ones (GPS only when accel says walking).");

    header("Ablation C: classification placement — raw upload vs classify-on-device (1 h)");
    println!("{:<24} {:>16} {:>14}", "Variant", "Device [uAH]", "Bytes sent");
    for v in ablations::classification_placement() {
        println!("{:<24} {:>16.1} {:>14}", v.label, v.device_uah, v.bytes_sent);
    }
    println!("Paper claim: classification halves the accelerometer stream's total energy.");

    header("Extension: stock activity-classifier accuracy vs ground truth (200/class)");
    println!("{:<12} {:>10} {:>12}", "Truth", "Samples", "Accuracy");
    for row in experiments::activity_classifier_accuracy(200) {
        println!("{:<12} {:>10} {:>11.1}%", row.truth, row.samples, row.accuracy * 100.0);
    }
    println!("(The paper ships these classifiers as unoptimized proofs of concept.)");
}
