//! Regenerates Figure 4: average battery charge per sensing cycle.

use sensocial_bench::{experiments, header};

fn main() {
    header("Figure 4: battery charge per sensing cycle [mAH] (1 h runs, 60 s cycles)");
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>10}",
        "Stream", "Sampling", "Classification", "Transmission", "Total"
    );
    let bars = experiments::fig4();
    for bar in &bars {
        println!(
            "{:<10} {:>10.4} {:>14.4} {:>14.4} {:>10.4}",
            bar.label,
            bar.sampling_mah,
            bar.classification_mah,
            bar.transmission_mah,
            bar.total_mah()
        );
    }
    println!();
    let get = |label: &str| bars.iter().find(|b| b.label == label).unwrap();
    println!(
        "Acc raw/classified ratio: {:.2}x (paper: classification halves the accelerometer total)",
        get("Acc R").total_mah() / get("Acc C").total_mah()
    );
    println!(
        "GAR saving vs classified Acc: {:.0}% (paper: ~25% lower)",
        100.0 * (1.0 - get("Acc-GAR").total_mah() / get("Acc C").total_mah())
    );
}
