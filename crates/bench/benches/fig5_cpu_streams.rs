//! Regenerates Figure 5: CPU load vs number of sensor data streams.

use sensocial_bench::{experiments, header};

fn main() {
    header("Figure 5: CPU consumed [%] vs number of streams (10 min windows)");
    println!("{:>8} {:>14} {:>14}", "Streams", "Local [%]", "Server [%]");
    let points = experiments::fig5(&[0, 5, 10, 20, 30, 40, 50]);
    for p in &points {
        println!("{:>8} {:>14.2} {:>14.2}", p.streams, p.local_pct, p.server_pct);
    }
    println!();
    println!("Paper shape: server-transmitted streams grow steeply; local streams stay low;");
    println!("CPU load below 10% with five streams (one per supported modality).");

    header("Companion (§5.5): heap occupancy vs number of streams");
    println!("{:>8} {:>14}", "Streams", "Heap [MB]");
    for (n, mb) in experiments::memory_vs_streams(&[0, 10, 25, 50]) {
        println!("{n:>8} {mb:>14.3}");
    }
    println!("Paper: \"the number of streams does not affect the memory consumption\"");
    println!("(per-stream footprint is ~1% of the app heap — below DDMS resolution).");
}
