//! Criterion micro-benchmarks: the "micro-benchmarks" the paper's abstract
//! refers to, measured as real wall time on the substrates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sensocial::{Condition, ConditionLhs, Filter, Operator};
use sensocial_bench::experiments::pipeline_fixture;
use sensocial_runtime::{SimDuration, Timestamp};
use sensocial_store::{Collection, Query};
use serde_json::json;

fn bench_filter_eval(c: &mut Criterion) {
    use sensocial_types::{ClassifiedContext, ContextData, ContextSnapshot, PhysicalActivity};
    let filter = Filter::new(vec![
        Condition::new(ConditionLhs::PhysicalActivity, Operator::Equals, "walking"),
        Condition::new(ConditionLhs::HourOfDay, Operator::GreaterThan, 8),
        Condition::new(ConditionLhs::HourOfDay, Operator::LessThan, 20),
    ]);
    let mut snapshot = ContextSnapshot::new();
    snapshot.record(
        Timestamp::from_secs(1),
        ContextData::Classified(ClassifiedContext::Activity(PhysicalActivity::Walking)),
    );
    c.bench_function("filter_eval_3_conditions", |b| {
        b.iter(|| {
            let ctx = sensocial::EvalContext {
                snapshot: &snapshot,
                now: Timestamp::from_secs(10 * 3600),
                osn_action: None,
            };
            std::hint::black_box(filter.evaluate_local(&ctx))
        })
    });
}

fn bench_broker_routing(c: &mut Criterion) {
    use sensocial_broker::{Broker, BrokerClient, QoS};
    use sensocial_net::Network;
    use sensocial_runtime::Scheduler;

    c.bench_function("broker_publish_route_deliver", |b| {
        b.iter_batched(
            || {
                let mut sched = Scheduler::new();
                let net = Network::new(1);
                let broker = Broker::new(&net, "broker");
                let publisher = BrokerClient::new(&net, "pub-ep", "broker", "pub");
                publisher.connect(&mut sched);
                for i in 0..20 {
                    let sub =
                        BrokerClient::new(&net, format!("sub{i}-ep"), "broker", format!("sub{i}"));
                    sub.connect(&mut sched);
                    sub.subscribe(&mut sched, "ctx/#", QoS::AtMostOnce, |_s, _t, _p| {});
                }
                sched.run();
                (sched, broker, publisher)
            },
            |(mut sched, broker, publisher)| {
                for i in 0..50 {
                    publisher.publish(
                        &mut sched,
                        &format!("ctx/location/{i}"),
                        "payload",
                        QoS::AtMostOnce,
                        false,
                    );
                }
                sched.run();
                std::hint::black_box(broker.stats().delivered)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_store_queries(c: &mut Criterion) {
    let collection = Collection::new("bench");
    collection.create_index("city");
    collection.create_geo_index("loc");
    for i in 0..5_000 {
        let city = ["Paris", "Bordeaux", "Lyon", "Lille"][i % 4];
        let lat = 44.0 + (i % 600) as f64 * 0.01;
        collection
            .insert(json!({"user": i, "city": city, "loc": {"lat": lat, "lon": 2.0}}))
            .unwrap();
    }
    c.bench_function("store_indexed_eq_5k_docs", |b| {
        b.iter(|| std::hint::black_box(collection.count(&Query::eq("city", "Paris"))))
    });
    c.bench_function("store_geo_near_5k_docs", |b| {
        let paris = sensocial_types::geo::cities::paris();
        b.iter(|| std::hint::black_box(collection.count(&Query::near("loc", paris, 50_000.0))))
    });
}

fn bench_trigger_pipeline(c: &mut Criterion) {
    c.bench_function("osn_action_to_coupled_uplink", |b| {
        b.iter_batched(
            pipeline_fixture,
            |mut world| {
                world.post("alice", "bench post");
                world.run_for(SimDuration::from_mins(3));
                std::hint::black_box(
                    world
                        .server
                        .telemetry()
                        .snapshot()
                        .counter("server.uplink_events"),
                )
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_filter_eval, bench_broker_routing, bench_store_queries, bench_trigger_pipeline
);
criterion_main!(benches);
