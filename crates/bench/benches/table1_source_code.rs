//! Regenerates Table 1: SenSocial source code details.

use sensocial_bench::{experiments, header};

fn main() {
    header("Table 1: SenSocial source code details (CLOC-style counts)");
    println!("{:<22} {:>8} {:>12}", "Component", "Files", "Code lines");
    for row in experiments::table1() {
        println!("{:<22} {:>8} {:>12}", row.component, row.files, row.code_lines);
    }
    println!();
    println!("Paper: mobile 77 files / 2635 LOC; server 46 Java + 2 PHP / 1185 LOC.");
    println!("Shape to check: the mobile middleware is the larger component.");
}
