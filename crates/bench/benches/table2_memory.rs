//! Regenerates Table 2: memory footprint of the stub SenSocial app vs GAR.

use sensocial_bench::{experiments, header};

fn main() {
    header("Table 2: memory footprint (DDMS-style)");
    println!("{:<12} {:>18} {:>10}", "Application", "Heap allocated (MB)", "Objects");
    let rows = experiments::table2();
    for row in &rows {
        println!("{:<12} {:>18.3} {:>10}", row.application, row.heap_mb, row.objects);
    }
    println!();
    println!(
        "Extra memory for the full middleware vs the GAR stub: {:.3} MB ({} objects)",
        rows[0].heap_mb - rows[1].heap_mb,
        rows[0].objects - rows[1].objects
    );
    println!("Paper: SenSocial 12.342 MB / 51419 objects; GAR 11.126 MB / 46210; Δ ≈ 1.216 MB.");
}
