//! Regenerates Table 3: time delay in receiving OSN notifications.

use sensocial_bench::{experiments, header};

fn main() {
    header("Table 3: time delay in receiving OSN notifications (50 actions)");
    let result = experiments::table3(50);
    println!("{:<18} {:>14} {:>18}", "Notification", "Average [s]", "Standard deviation");
    println!(
        "{:<18} {:>14.3} {:>18.3}",
        "OSN to Server", result.osn_to_server.mean, result.osn_to_server.std_dev
    );
    println!(
        "{:<18} {:>14.3} {:>18.3}",
        "OSN to Mobile", result.osn_to_mobile.mean, result.osn_to_mobile.std_dev
    );
    println!();
    println!(
        "Middleware processing + push delivery adds {:.1} s on top of the OSN's own latency.",
        result.osn_to_mobile.mean - result.osn_to_server.mean
    );
    println!("Paper: 46.466 s (σ 2.768) to server; 55.388 s (σ 2.495) to mobile; Δ ≈ 9 s.");
}
