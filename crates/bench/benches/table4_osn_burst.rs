//! Regenerates Table 4: battery consumption vs number of OSN actions.

use sensocial_bench::{experiments, header};

fn main() {
    header("Table 4: battery in a 20-minute window vs OSN actions (all 5 modalities per trigger)");
    let rows = experiments::table4(7);
    print!("{:<22}", "OSN actions");
    for (n, _) in &rows {
        print!(" {n:>8}");
    }
    println!();
    print!("{:<22}", "Charge consumed [uAH]");
    for (_, uah) in &rows {
        print!(" {uah:>8.1}");
    }
    println!();
    println!();
    let increments: Vec<f64> = rows.windows(2).map(|w| w[1].1 - w[0].1).collect();
    let mean_inc = increments.iter().sum::<f64>() / increments.len() as f64;
    println!("Mean increment per action: {mean_inc:.1} uAH (paper: ~45.4 uAH, linear growth).");
    println!("Paper row: 51.7  97.1  142.5  187.8  233.2  278.5  324.3 uAH.");
}
