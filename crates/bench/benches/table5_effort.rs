//! Regenerates Table 5: programming effort with and without SenSocial.

use sensocial_bench::{experiments, header};

fn main() {
    header("Table 5: lines of code, with vs without SenSocial (shared substrate excluded)");
    println!("{:<42} {:>6} {:>8}", "Application", "Files", "LOC");
    let rows = experiments::table5();
    for row in &rows {
        println!("{:<42} {:>6} {:>8}", row.application, row.files, row.code_lines);
    }
    println!();
    println!(
        "Sensor Map reduction: {:.1}x (paper: 3423/316 = 10.8x over mobile+server)",
        rows[1].code_lines as f64 / rows[0].code_lines as f64
    );
    println!(
        "ConWeb reduction: {:.1}x (paper: 3223/130 = 24.8x over mobile+server)",
        rows[3].code_lines as f64 / rows[2].code_lines as f64
    );
}
