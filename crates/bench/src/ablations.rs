//! Ablation studies of the design choices the paper argues for.
//!
//! * **Push vs. poll triggering** — the paper chooses MQTT push over HTTP
//!   polling "due to the fact that MQTT is based on the push paradigm …
//!   resulting in a lower battery consumption" (§4). We measure both on
//!   the same workload.
//! * **Filter placement** — "by restricting sensor sampling and data
//!   transmission, stream filtering on a mobile can reduce the phone's
//!   energy consumption and the data plan usage" (§3.1). We run the same
//!   gated workload with the filter on the device and with the filter on
//!   the server.
//! * **Classification placement** — Figure 4's classified-vs-raw trade-off
//!   restated as bytes on the wire.

use sensocial::server::StreamSelector;
use sensocial::{
    Condition, ConditionLhs, Filter, Granularity, Modality, Operator, StreamSink, StreamSpec,
};
use sensocial_energy::{EnergyComponent, EnergyProfile};
use sensocial_runtime::{SimDuration, Timer};
use sensocial_sim::{World, WorldConfig};
use sensocial_types::geo::cities;
use sensocial_types::PhysicalActivity;

/// Result of one trigger-delivery variant.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerVariant {
    /// Variant label.
    pub label: String,
    /// Device charge over the hour, µAH.
    pub device_uah: f64,
    /// Mean action→sensing delay, seconds.
    pub mean_delay_s: f64,
}

/// Push (MQTT trigger) vs. poll (device asks the server for pending
/// actions every `poll_interval`): one hour, `actions` OSN actions.
pub fn push_vs_poll(actions: usize, poll_intervals_s: &[u64]) -> Vec<TriggerVariant> {
    let mut out = vec![measure_push(actions)];
    for interval in poll_intervals_s {
        out.push(measure_poll(actions, SimDuration::from_secs(*interval)));
    }
    out
}

fn spaced_posts(world: &mut World, actions: usize) {
    let start = world.sched.now();
    let spacing = 3_600 / actions.max(1) as u64;
    for i in 0..actions {
        world
            .sched
            .run_until(start + SimDuration::from_secs(5 + i as u64 * spacing));
        world.post("alice", &format!("action {i}"));
    }
    world.sched.run_until(start + SimDuration::from_secs(3_600));
}

fn measure_push(actions: usize) -> TriggerVariant {
    let mut world = World::new(WorldConfig::default());
    world.add_device("alice", "alice-phone", cities::paris());
    let stream = world
        .create_stream(
            "alice-phone",
            StreamSpec::social_event_based(Modality::Wifi, Granularity::Raw)
                .with_sink(StreamSink::Server),
        )
        .expect("stream installs");
    let delays = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
    {
        let sink = delays.clone();
        let manager = world.device("alice-phone").unwrap().manager.clone();
        manager.register_listener(stream, move |_s, event| {
            if let Some(action) = &event.osn_action {
                sink.lock().push((event.at - action.at).as_secs_f64());
            }
        });
    }
    let battery = world.device("alice-phone").unwrap().battery.clone();
    battery.reset();
    spaced_posts(&mut world, actions);
    let delays = delays.lock();
    TriggerVariant {
        label: "push (MQTT trigger)".into(),
        device_uah: battery.total_uah(),
        mean_delay_s: delays.iter().sum::<f64>() / delays.len().max(1) as f64,
    }
}

/// The poll variant: no triggers; the device asks the server for pending
/// actions every `interval` (each poll costs an HTTP-sized request and
/// response) and senses when the response carries actions.
fn measure_poll(actions: usize, interval: SimDuration) -> TriggerVariant {
    let mut world = World::new(WorldConfig::default());
    world.add_device("alice", "alice-phone", cities::paris());

    // Server side: queue OSN actions; answer polls with (and clear) the
    // queue. Uses the broker as a stand-in HTTP channel.
    let pending: std::sync::Arc<parking_lot::Mutex<Vec<sensocial_types::OsnAction>>> =
        Default::default();
    {
        let queue = pending.clone();
        world
            .server
            .register_listener(
                StreamSelector::AllUplinks,
                Filter::pass_all(),
                move |_s, _e| {},
            )
            .expect("pass-all subscription is always sound");
        let queue2 = queue.clone();
        world.push_plugin.set_receiver(move |_s, action| {
            queue2.lock().push(action);
        });
    }

    let (sensors, battery) = {
        let device = world.device("alice-phone").unwrap();
        (device.sensors.clone(), device.battery.clone())
    };
    let profile = EnergyProfile::default();
    let delays: std::sync::Arc<parking_lot::Mutex<Vec<f64>>> = Default::default();

    // Device side: the poll loop. An HTTP poll costs a ~200 B request and
    // ~300 B response on the radio plus the radio tail — the cost the paper
    // avoids by using push.
    {
        let battery = battery.clone();
        let sensors = sensors.clone();
        let profile = profile.clone();
        let pending = pending.clone();
        let delays = delays.clone();
        Timer::start(&mut world.sched, interval, move |s| {
            battery.charge(EnergyComponent::Transmission, profile.transmission_uah(200));
            battery.charge(EnergyComponent::Transmission, profile.transmission_uah(300));
            battery.charge(EnergyComponent::RadioTail, profile.radio_tail_uah);
            let drained: Vec<_> = pending.lock().drain(..).collect();
            for action in drained {
                let raw = sensors.sample_once(s, Modality::Wifi);
                battery.charge(
                    EnergyComponent::Transmission,
                    profile.transmission_uah(raw.payload_bytes()),
                );
                battery.charge(EnergyComponent::RadioTail, profile.radio_tail_uah);
                delays.lock().push((s.now() - action.at).as_secs_f64());
            }
        });
    }

    battery.reset();
    spaced_posts(&mut world, actions);
    let delays = delays.lock();
    TriggerVariant {
        label: format!("poll every {}s", interval.as_secs()),
        device_uah: battery.total_uah(),
        mean_delay_s: delays.iter().sum::<f64>() / delays.len().max(1) as f64,
    }
}

/// Result of one filter-placement variant.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterPlacementVariant {
    /// Variant label.
    pub label: String,
    /// Device GPS sampling charge over the run, µAH (on-mobile filters
    /// gate expensive sampling: paper §5.5).
    pub gps_sampling_uah: f64,
    /// Device transmission (+ tail) charge over the run, µAH.
    pub device_tx_uah: f64,
    /// Uplink messages that crossed the network.
    pub uplink_events: u64,
    /// Events that ultimately reached the application listener.
    pub delivered_events: u64,
}

/// The same gated workload — GPS only while walking, walking ~25 % of the
/// time — with the filter evaluated on the mobile vs. on the server.
pub fn filter_placement() -> Vec<FilterPlacementVariant> {
    let gate = || {
        Filter::new(vec![Condition::new(
            ConditionLhs::PhysicalActivity,
            Operator::Equals,
            "walking",
        )])
    };
    vec![
        measure_placement("filter on mobile", Some(gate()), None),
        measure_placement("filter on server", None, Some(gate())),
    ]
}

fn measure_placement(
    label: &str,
    mobile_filter: Option<Filter>,
    server_filter: Option<Filter>,
) -> FilterPlacementVariant {
    let mut world = World::new(WorldConfig {
        charge_idle: false,
        ..WorldConfig::default()
    });
    world.add_device("alice", "alice-phone", cities::paris());

    let mut spec = StreamSpec::continuous(Modality::Location, Granularity::Raw)
        .with_interval(SimDuration::from_secs(60))
        .with_sink(StreamSink::Server);
    if let Some(filter) = mobile_filter {
        spec = spec.with_filter(filter);
    }
    // The server-side variant still needs the activity context on the
    // server, so the device also uplinks classified activity — exactly the
    // cost asymmetry the ablation is about.
    world
        .create_stream("alice-phone", spec)
        .expect("gps stream");
    world
        .create_stream(
            "alice-phone",
            StreamSpec::continuous(Modality::Accelerometer, Granularity::Classified)
                .with_interval(SimDuration::from_secs(60))
                .with_sink(StreamSink::Server),
        )
        .expect("activity stream");

    let delivered = std::sync::Arc::new(parking_lot::Mutex::new(0u64));
    {
        let sink = delivered.clone();
        world
            .server
            .register_listener(
                StreamSelector::AllUplinks,
                server_filter.unwrap_or_default(),
                move |_s, event| {
                    if event.data.modality() == Modality::Location {
                        *sink.lock() += 1;
                    }
                },
            )
            .expect("ablation filters are verifier-sound");
    }

    // Walk for a quarter of each 20-minute block.
    let env = world.device("alice-phone").unwrap().env.clone();
    {
        let env = env.clone();
        Timer::start_with_phase(
            &mut world.sched,
            SimDuration::ZERO,
            SimDuration::from_mins(20),
            move |_| env.set_activity(PhysicalActivity::Walking),
        );
        let env2 = world.device("alice-phone").unwrap().env.clone();
        Timer::start_with_phase(
            &mut world.sched,
            SimDuration::from_mins(5),
            SimDuration::from_mins(20),
            move |_| env2.set_activity(PhysicalActivity::Still),
        );
    }

    let battery = world.device("alice-phone").unwrap().battery.clone();
    battery.reset();
    world.run_for(SimDuration::from_mins(120));

    let delivered_events = *delivered.lock();
    let breakdown = battery.breakdown();
    FilterPlacementVariant {
        label: label.to_owned(),
        gps_sampling_uah: breakdown.component_uah(sensocial_energy::EnergyComponent::Sampling(
            Modality::Location,
        )),
        device_tx_uah: breakdown.transmission_uah(),
        uplink_events: world
            .server
            .telemetry()
            .snapshot()
            .counter("server.uplink_events"),
        delivered_events,
    }
}

/// Result of one classification-placement variant.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationVariant {
    /// Variant label.
    pub label: String,
    /// Device charge over the hour, µAH.
    pub device_uah: f64,
    /// Bytes that crossed the network.
    pub bytes_sent: u64,
}

/// Raw accelerometer upload vs. on-device classification: energy and
/// bytes on the wire over one hour of 60-second cycles.
pub fn classification_placement() -> Vec<ClassificationVariant> {
    [
        (Granularity::Raw, "raw upload"),
        (Granularity::Classified, "classify on device"),
    ]
    .into_iter()
    .map(|(granularity, label)| {
        let mut world = World::new(WorldConfig {
            charge_idle: false,
            ..WorldConfig::default()
        });
        world.add_device("alice", "alice-phone", cities::paris());
        world
            .create_stream(
                "alice-phone",
                StreamSpec::continuous(Modality::Accelerometer, granularity)
                    .with_interval(SimDuration::from_secs(60))
                    .with_sink(StreamSink::Server),
            )
            .expect("stream installs");
        let battery = world.device("alice-phone").unwrap().battery.clone();
        battery.reset();
        let bytes_before = world.net.telemetry().counter("bytes_sent");
        world.run_for(SimDuration::from_mins(60));
        ClassificationVariant {
            label: label.to_owned(),
            device_uah: battery.total_uah(),
            bytes_sent: world.net.telemetry().counter("bytes_sent") - bytes_before,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_beats_frequent_polling_on_energy() {
        let variants = push_vs_poll(6, &[30]);
        let push = &variants[0];
        let poll30 = &variants[1];
        assert!(
            poll30.device_uah > push.device_uah,
            "push {} vs poll30 {}",
            push.device_uah,
            poll30.device_uah
        );
    }

    #[test]
    fn slow_polling_saves_energy_but_adds_delay() {
        let variants = push_vs_poll(6, &[30, 600]);
        let (poll30, poll600) = (&variants[1], &variants[2]);
        assert!(poll600.device_uah < poll30.device_uah);
        assert!(poll600.mean_delay_s > poll30.mean_delay_s);
    }

    #[test]
    fn mobile_filtering_cuts_transmission() {
        let variants = filter_placement();
        let (mobile, server) = (&variants[0], &variants[1]);
        // Both deliver only walking-gated GPS to the app...
        assert!(mobile.delivered_events > 0);
        assert!(server.delivered_events > 0);
        // ...but server-side filtering ships every cycle over the radio
        // AND samples GPS every cycle, while the mobile filter also gates
        // the expensive sensor itself (paper §5.5).
        assert!(server.uplink_events > mobile.uplink_events);
        assert!(
            server.gps_sampling_uah > mobile.gps_sampling_uah * 1.5,
            "server {} vs mobile {}",
            server.gps_sampling_uah,
            mobile.gps_sampling_uah
        );
        assert!(
            server.device_tx_uah > mobile.device_tx_uah * 1.2,
            "server {} vs mobile {}",
            server.device_tx_uah,
            mobile.device_tx_uah
        );
    }

    #[test]
    fn on_device_classification_slashes_bytes() {
        let variants = classification_placement();
        let (raw, classified) = (&variants[0], &variants[1]);
        assert!(raw.bytes_sent > 10 * classified.bytes_sent);
        assert!(raw.device_uah > classified.device_uah);
    }
}
