//! The experiment implementations.

use std::path::{Path, PathBuf};

use sensocial::server::StreamSelector;
use sensocial::{Filter, Granularity, Modality, StreamSink, StreamSpec};
use sensocial_energy::EnergyProfile;
use sensocial_loc::{count_tree, FileCounts};
use sensocial_runtime::{SimDuration, Timestamp};
use sensocial_sim::baseline::GarApp;
use sensocial_sim::metrics::{summarize, Summary};
use sensocial_sim::{World, WorldConfig};
use sensocial_types::geo::cities;
use sensocial_types::UserId;

/// Repository root (the bench crate lives at `crates/bench`).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench crate lives two levels under the repo root")
        .to_path_buf()
}

fn count(paths: &[&str]) -> (usize, FileCounts) {
    let root = repo_root();
    let mut files = 0;
    let mut totals = FileCounts::default();
    for path in paths {
        let report = count_tree(&root.join(path)).expect("source tree readable");
        files += report.file_count();
        totals += report.totals;
    }
    (files, totals)
}

// ---------------------------------------------------------------------
// Table 1 — source code details
// ---------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Component name.
    pub component: String,
    /// Source files.
    pub files: usize,
    /// Code lines (CLOC-style, comments and blanks excluded).
    pub code_lines: usize,
}

/// Table 1: size of the middleware itself, split like the paper into the
/// mobile middleware and the server component. The sensor library
/// (ESSensorManager substitute) is excluded, as in the paper; the
/// classifiers ship in the mobile library and count towards it.
pub fn table1() -> Vec<Table1Row> {
    let (mobile_files, mobile) = count(&[
        "crates/core/src/client",
        "crates/core/src/filter.rs",
        "crates/core/src/config.rs",
        "crates/core/src/privacy.rs",
        "crates/core/src/event.rs",
        "crates/classify/src",
    ]);
    let (server_files, server) = count(&["crates/core/src/server"]);
    vec![
        Table1Row {
            component: "Mobile middleware".into(),
            files: mobile_files,
            code_lines: mobile.code,
        },
        Table1Row {
            component: "Server component".into(),
            files: server_files,
            code_lines: server.code,
        },
    ]
}

// ---------------------------------------------------------------------
// Table 2 — memory footprint
// ---------------------------------------------------------------------

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Application name.
    pub application: String,
    /// Allocated heap, in MB (the DDMS "heap-size allocated" column).
    pub heap_mb: f64,
    /// Live object count.
    pub objects: u64,
}

/// The Dalvik runtime floor DDMS reports inside every app's heap (see
/// `sensocial-energy`'s `MemoryFloor`).
fn floor() -> sensocial_energy::MemoryFloor {
    sensocial_energy::MemoryFloor::default()
}

/// Table 2: the stub SenSocial app (continuous streams on all five
/// modalities plus a listener) against the GAR baseline.
pub fn table2() -> Vec<Table2Row> {
    let floor = floor();
    let to_row = |name: &str, snapshot: sensocial_energy::MemorySnapshot| Table2Row {
        application: name.into(),
        heap_mb: (floor.runtime_bytes + snapshot.total_bytes()) as f64 / (1024.0 * 1024.0),
        objects: floor.runtime_objects + snapshot.total_objects(),
    };

    // Stub SenSocial app.
    let mut world = World::new(WorldConfig {
        charge_idle: false,
        ..WorldConfig::default()
    });
    world.add_device("stub", "stub-phone", cities::paris());
    for modality in Modality::ALL {
        let stream = world
            .create_stream(
                "stub-phone",
                StreamSpec::continuous(modality, Granularity::Raw).with_sink(StreamSink::Server),
            )
            .expect("streams install");
        let manager = world.device("stub-phone").unwrap().manager.clone();
        manager.register_listener(stream, |_s, _e| {});
    }
    world.run_for(SimDuration::from_mins(5));
    let sensocial_snapshot = world.device("stub-phone").unwrap().memory.snapshot();

    // GAR baseline app.
    let mut world = World::new(WorldConfig {
        charge_idle: false,
        ..WorldConfig::default()
    });
    world.add_device("gar", "gar-phone", cities::paris());
    let gar = {
        let device = world.device("gar-phone").unwrap();
        let (env, battery, memory) = (
            device.env.clone(),
            device.battery.clone(),
            device.memory.clone(),
        );
        // The GAR comparison app allocates its own structures; the
        // middleware-managed device memory is not reused, so start from a
        // fresh profiler the way DDMS profiles a fresh process.
        let memory = {
            let _ = memory;
            sensocial_energy::MemoryProfiler::new()
        };
        let gar = GarApp::start(
            &mut world.sched,
            UserId::new("gar"),
            env,
            battery,
            memory.clone(),
            EnergyProfile::default(),
            None,
            SimDuration::from_secs(60),
        );
        (gar, memory)
    };
    world.run_for(SimDuration::from_mins(5));
    gar.0.stop();
    let gar_snapshot = gar.1.snapshot();

    vec![
        to_row("SenSocial", sensocial_snapshot),
        to_row("GAR", gar_snapshot),
    ]
}

// ---------------------------------------------------------------------
// Table 3 — trigger delay
// ---------------------------------------------------------------------

/// Table 3's two measured rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Result {
    /// OSN action → server reaction.
    pub osn_to_server: Summary,
    /// OSN action → mobile sensing commences.
    pub osn_to_mobile: Summary,
}

/// Table 3: delay between an OSN action and (a) the server reacting,
/// (b) the mobile sampling, measured over `actions` Facebook-style posts.
pub fn table3(actions: usize) -> Table3Result {
    let mut world = World::new(WorldConfig::default());
    world.add_device("alice", "alice-phone", cities::paris());
    let stream = world
        .create_stream(
            "alice-phone",
            StreamSpec::social_event_based(Modality::Microphone, Granularity::Classified)
                .with_sink(StreamSink::Server),
        )
        .expect("stream installs");

    let sensed: std::sync::Arc<parking_lot::Mutex<Vec<(Timestamp, Timestamp)>>> =
        std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
    {
        let sensed = sensed.clone();
        let manager = world.device("alice-phone").unwrap().manager.clone();
        manager.register_listener(stream, move |_s, event| {
            if let Some(action) = &event.osn_action {
                sensed.lock().push((action.at, event.at));
            }
        });
    }

    // Posts spaced widely, as in the paper's measurement campaign.
    for i in 0..actions {
        world.sched.run_until(Timestamp::from_secs(i as u64 * 300));
        world.post("alice", &format!("measurement post {i}"));
    }
    world.run_for(SimDuration::from_mins(10));

    let server_delays: Vec<f64> = world
        .server
        .action_log()
        .iter()
        .map(|(at, received)| (*received - *at).as_secs_f64())
        .collect();
    let mobile_delays: Vec<f64> = sensed
        .lock()
        .iter()
        .map(|(action_at, sensed_at)| (*sensed_at - *action_at).as_secs_f64())
        .collect();

    Table3Result {
        osn_to_server: summarize(&server_delays),
        osn_to_mobile: summarize(&mobile_delays),
    }
}

// ---------------------------------------------------------------------
// Table 4 — battery vs number of OSN actions
// ---------------------------------------------------------------------

/// Table 4: total charge consumed in a 20-minute window as the number of
/// OSN actions (each triggering one-off sensing of all five modalities)
/// grows from 1 to `max_actions`.
pub fn table4(max_actions: usize) -> Vec<(usize, f64)> {
    (1..=max_actions)
        .map(|n| (n, battery_for_actions(n)))
        .collect()
}

fn battery_for_actions(actions: usize) -> f64 {
    let mut world = World::new(WorldConfig::default());
    world.add_device("alice", "alice-phone", cities::paris());
    for modality in Modality::ALL {
        world
            .create_stream(
                "alice-phone",
                StreamSpec::social_event_based(modality, Granularity::Raw)
                    .with_sink(StreamSink::Server),
            )
            .expect("stream installs");
    }
    // Setup settles, then measurement starts from a clean meter. Posts are
    // placed so their ~46 s notification latency still lands the sensing
    // round inside the 20-minute window, each trigger ≈120 s apart (the
    // paper: "each trigger takes approximately 120 seconds to complete").
    world.run_for(SimDuration::from_secs(2));
    let battery = world.device("alice-phone").unwrap().battery.clone();
    battery.reset();
    let start = world.sched.now();
    for i in 0..actions {
        world.sched.run_until(start + SimDuration::from_secs(i as u64 * 120));
        world.post("alice", &format!("burst action {i}"));
    }
    world.sched.run_until(start + SimDuration::from_mins(20));
    battery.total_uah()
}

// ---------------------------------------------------------------------
// Figure 4 — energy per sensing cycle
// ---------------------------------------------------------------------

/// One bar of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Bar {
    /// Bar label, e.g. `"Acc R"`.
    pub label: String,
    /// Sampling charge per cycle, mAH.
    pub sampling_mah: f64,
    /// Classification charge per cycle, mAH.
    pub classification_mah: f64,
    /// Transmission (+ radio tail) charge per cycle, mAH.
    pub transmission_mah: f64,
}

impl Fig4Bar {
    /// The bar's total height, mAH.
    pub fn total_mah(&self) -> f64 {
        self.sampling_mah + self.classification_mah + self.transmission_mah
    }
}

/// Figure 4: average battery charge per sensing cycle for every modality,
/// raw (R) and classified (C), plus the Acc-GAR baseline. One-hour runs,
/// 60-second cycles, as in the paper.
pub fn fig4() -> Vec<Fig4Bar> {
    let mut bars = Vec::new();
    let labels = [
        (Modality::Location, "Loc"),
        (Modality::Accelerometer, "Acc"),
        (Modality::Microphone, "Mic"),
        (Modality::Bluetooth, "Bt"),
        (Modality::Wifi, "Wi-Fi"),
    ];
    for (modality, label) in labels {
        for (granularity, suffix) in [(Granularity::Raw, "R"), (Granularity::Classified, "C")] {
            bars.push(measure_cycle(modality, granularity, &format!("{label} {suffix}")));
        }
    }
    bars.push(measure_gar());
    bars
}

fn measure_cycle(modality: Modality, granularity: Granularity, label: &str) -> Fig4Bar {
    let mut world = World::new(WorldConfig {
        charge_idle: false,
        ..WorldConfig::default()
    });
    world.add_device("m", "m-phone", cities::paris());
    world
        .create_stream(
            "m-phone",
            StreamSpec::continuous(modality, granularity)
                .with_interval(SimDuration::from_secs(60))
                .with_sink(StreamSink::Server),
        )
        .expect("stream installs");
    let battery = world.device("m-phone").unwrap().battery.clone();
    battery.reset();
    world.run_for(SimDuration::from_mins(60));
    let cycles = 60.0;
    let breakdown = battery.breakdown();
    Fig4Bar {
        label: label.to_owned(),
        sampling_mah: breakdown.sampling_uah() / cycles / 1_000.0,
        classification_mah: breakdown.classification_uah() / cycles / 1_000.0,
        transmission_mah: breakdown.transmission_uah() / cycles / 1_000.0,
    }
}

fn measure_gar() -> Fig4Bar {
    let mut world = World::new(WorldConfig {
        charge_idle: false,
        ..WorldConfig::default()
    });
    world.add_device("g", "g-phone", cities::paris());
    let (env, battery) = {
        let device = world.device("g-phone").unwrap();
        (device.env.clone(), device.battery.clone())
    };
    let memory = sensocial_energy::MemoryProfiler::new();
    let gar = GarApp::start(
        &mut world.sched,
        UserId::new("g"),
        env,
        battery.clone(),
        memory,
        EnergyProfile::default(),
        None,
        SimDuration::from_secs(60),
    );
    battery.reset();
    world.run_for(SimDuration::from_mins(60));
    gar.stop();
    // GAR's flat per-cycle cost is charged under "sampling" (play services
    // hide the split from the profiler, as the paper notes).
    Fig4Bar {
        label: "Acc-GAR".into(),
        sampling_mah: battery.total_uah() / 60.0 / 1_000.0,
        classification_mah: 0.0,
        transmission_mah: 0.0,
    }
}

// ---------------------------------------------------------------------
// Figure 5 — CPU load vs number of streams
// ---------------------------------------------------------------------

/// One point series of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Point {
    /// Number of active streams.
    pub streams: usize,
    /// CPU consumed (%) with local-sink streams.
    pub local_pct: f64,
    /// CPU consumed (%) with server-sink streams.
    pub server_pct: f64,
}

/// Figure 5: CPU load as the number of active raw streams grows, local
/// versus server-transmitted. 10-minute windows, 60-second cycles.
pub fn fig5(points: &[usize]) -> Vec<Fig5Point> {
    points
        .iter()
        .map(|n| Fig5Point {
            streams: *n,
            local_pct: cpu_for_streams(*n, StreamSink::Local),
            server_pct: cpu_for_streams(*n, StreamSink::Server),
        })
        .collect()
}

fn cpu_for_streams(n: usize, sink: StreamSink) -> f64 {
    let mut world = World::new(WorldConfig {
        charge_idle: false,
        ..WorldConfig::default()
    });
    world.add_device("c", "c-phone", cities::paris());
    for _ in 0..n {
        world
            .create_stream(
                "c-phone",
                StreamSpec::continuous(Modality::Accelerometer, Granularity::Raw)
                    .with_interval(SimDuration::from_secs(60))
                    .with_sink(sink),
            )
            .expect("stream installs");
    }
    let cpu = world.device("c-phone").unwrap().cpu.clone();
    cpu.reset();
    let window = SimDuration::from_mins(10);
    world.run_for(window);
    cpu.utilization_percent(window)
}

// ---------------------------------------------------------------------
// Table 5 — programming effort
// ---------------------------------------------------------------------

/// One row of Table 5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table5Row {
    /// Application + variant name.
    pub application: String,
    /// Source files.
    pub files: usize,
    /// Code lines.
    pub code_lines: usize,
}

/// Table 5: lines of code of both prototype applications, with and
/// without SenSocial. Shared substrate (the Web server, the map widget,
/// the sensor library) is excluded from both sides, as in the paper.
pub fn table5() -> Vec<Table5Row> {
    let row = |name: &str, paths: &[&str]| {
        let (files, counts) = count(paths);
        Table5Row {
            application: name.into(),
            files,
            code_lines: counts.code,
        }
    };
    vec![
        row(
            "Facebook Sensor Map (with SenSocial)",
            &["crates/apps/src/sensor_map/with_middleware.rs"],
        ),
        row(
            "Facebook Sensor Map (without SenSocial)",
            &["crates/apps/src/sensor_map/without_middleware"],
        ),
        row(
            "ConWeb (with SenSocial)",
            &["crates/apps/src/conweb/with_middleware.rs"],
        ),
        row(
            "ConWeb (without SenSocial)",
            &["crates/apps/src/conweb/without_middleware"],
        ),
    ]
}

// ---------------------------------------------------------------------
// §5.5 "Impact of Multiple Streams": memory vs stream count
// ---------------------------------------------------------------------

/// Heap occupancy (MB, floor included) as a function of active streams —
/// the paper observes via DDMS that "the number of streams does not affect
/// the memory consumption"; here we quantify how small the per-stream
/// footprint is relative to the app heap.
pub fn memory_vs_streams(points: &[usize]) -> Vec<(usize, f64)> {
    let floor = floor();
    points
        .iter()
        .map(|n| {
            let mut world = World::new(WorldConfig {
                charge_idle: false,
                ..WorldConfig::default()
            });
            world.add_device("m", "m-phone", cities::paris());
            for _ in 0..*n {
                world
                    .create_stream(
                        "m-phone",
                        StreamSpec::continuous(Modality::Wifi, Granularity::Raw)
                            .with_interval(SimDuration::from_secs(60)),
                    )
                    .expect("stream installs");
            }
            let snapshot = world.device("m-phone").unwrap().memory.snapshot();
            let heap_mb =
                (floor.runtime_bytes + snapshot.total_bytes()) as f64 / (1024.0 * 1024.0);
            (*n, heap_mb)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Extension: classifier accuracy against ground truth
// ---------------------------------------------------------------------

/// Accuracy of one stock classifier against the simulation's ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Ground-truth class label.
    pub truth: String,
    /// Samples classified.
    pub samples: usize,
    /// Fraction classified correctly.
    pub accuracy: f64,
}

/// Measures the stock activity classifier against the ground-truth
/// activity across `samples_per_class` synthetic bursts per class. The
/// paper ships its classifiers "as proofs of concept"; this quantifies
/// how good the proof of concept actually is on our substrate.
pub fn activity_classifier_accuracy(samples_per_class: usize) -> Vec<AccuracyRow> {
    use sensocial_classify::{ActivityClassifier, Classifier};
    use sensocial_runtime::{Scheduler, SimRng};
    use sensocial_sensors::{DeviceEnvironment, SensorManager};
    use sensocial_types::{ClassifiedContext, PhysicalActivity};

    let mut sched = Scheduler::new();
    let env = DeviceEnvironment::new(cities::paris());
    let sensors = SensorManager::new(env.clone(), SimRng::seed_from(99));
    let classifier = ActivityClassifier::default();
    [
        PhysicalActivity::Still,
        PhysicalActivity::Walking,
        PhysicalActivity::Running,
    ]
    .into_iter()
    .map(|truth| {
        env.set_activity(truth);
        let correct = (0..samples_per_class)
            .filter(|_| {
                let sample = sensors.sample_once(&mut sched, Modality::Accelerometer);
                classifier.classify(&sample)
                    == Some(ClassifiedContext::Activity(truth))
            })
            .count();
        AccuracyRow {
            truth: truth.name().to_owned(),
            samples: samples_per_class,
            accuracy: correct as f64 / samples_per_class as f64,
        }
    })
    .collect()
}

// ---------------------------------------------------------------------
// Shared fixtures for the Criterion micro-benchmarks
// ---------------------------------------------------------------------

/// A ready deployment with one device and one server-sink stream, used by
/// the end-to-end pipeline micro-benchmark.
pub fn pipeline_fixture() -> World {
    let mut world = World::new(WorldConfig::default());
    world.add_device("alice", "alice-phone", cities::paris());
    world
        .create_stream(
            "alice-phone",
            StreamSpec::social_event_based(Modality::Wifi, Granularity::Raw)
                .with_sink(StreamSink::Server),
        )
        .expect("stream installs");
    world
        .server
        .register_listener(StreamSelector::AllUplinks, Filter::pass_all(), |_s, _e| {})
        .expect("pass-all subscription is always sound");
    world
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_both_components() {
        let rows = table1();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].code_lines > 500, "{rows:?}");
        assert!(rows[1].code_lines > 300, "{rows:?}");
        // Shape: the mobile middleware is the larger component, as in the
        // paper (2635 vs 1185).
        assert!(rows[0].code_lines > rows[1].code_lines);
    }

    #[test]
    fn table2_sensocial_slightly_above_gar() {
        let rows = table2();
        let (sensocial, gar) = (&rows[0], &rows[1]);
        assert!(sensocial.heap_mb > gar.heap_mb);
        // "uses only 1.216 MB of extra memory": ours lands in the same
        // band (0.5–2.5 MB extra).
        let extra = sensocial.heap_mb - gar.heap_mb;
        assert!((0.5..=2.5).contains(&extra), "extra {extra}");
        assert!(sensocial.objects > gar.objects);
        assert!(sensocial.objects < gar.objects + 10_000);
    }

    #[test]
    fn table3_shape_matches_paper() {
        let result = table3(20);
        assert_eq!(result.osn_to_server.count, 20);
        assert_eq!(result.osn_to_mobile.count, 20);
        // OSN → server ≈ 46.5 s; OSN → mobile ≈ +9 s on top.
        assert!((40.0..=53.0).contains(&result.osn_to_server.mean));
        let gap = result.osn_to_mobile.mean - result.osn_to_server.mean;
        assert!((6.0..=13.0).contains(&gap), "gap {gap}");
        assert!(result.osn_to_server.std_dev < 6.0);
    }

    #[test]
    fn table4_grows_linearly() {
        let rows = table4(4);
        assert_eq!(rows.len(), 4);
        // Increments between consecutive action counts are near-constant.
        let increments: Vec<f64> = rows.windows(2).map(|w| w[1].1 - w[0].1).collect();
        let mean_inc = increments.iter().sum::<f64>() / increments.len() as f64;
        for inc in &increments {
            assert!((inc - mean_inc).abs() < 0.15 * mean_inc, "{increments:?}");
        }
        // ≈45 µAH per action, ≈6 µAH idle base — the paper's 51.7 µAH at
        // one action and ≈45.4 µAH increments.
        assert!((35.0..=60.0).contains(&mean_inc), "increment {mean_inc}");
        assert!((40.0..=70.0).contains(&rows[0].1), "first {}", rows[0].1);
    }

    #[test]
    fn fig4_shape_matches_paper() {
        let bars = fig4();
        let get = |label: &str| {
            bars.iter()
                .find(|b| b.label == label)
                .unwrap_or_else(|| panic!("missing bar {label}"))
                .clone()
        };
        // Raw accelerometer transmission dominates its bar.
        let acc_r = get("Acc R");
        assert!(acc_r.transmission_mah > acc_r.sampling_mah);
        // Classification roughly halves the accelerometer total.
        let acc_c = get("Acc C");
        let ratio = acc_r.total_mah() / acc_c.total_mah();
        assert!((1.6..=2.5).contains(&ratio), "ratio {ratio}");
        // GAR ≈ 25 % below classified accelerometer.
        let gar = get("Acc-GAR");
        let saving = 1.0 - gar.total_mah() / acc_c.total_mah();
        assert!((0.10..=0.40).contains(&saving), "saving {saving}");
        // GPS is the costliest sampler.
        let loc_r = get("Loc R");
        for label in ["Acc R", "Mic R", "Bt R", "Wi-Fi R"] {
            assert!(loc_r.sampling_mah > get(label).sampling_mah, "{label}");
        }
    }

    #[test]
    fn fig5_server_streams_dominate_cpu() {
        let points = fig5(&[0, 5, 25]);
        assert_eq!(points[0].local_pct, 0.0);
        assert_eq!(points[0].server_pct, 0.0);
        // Paper: "CPU load is less than 10% even with five streams".
        assert!(points[1].server_pct < 10.0, "{points:?}");
        // Server streams grow much faster than local ones.
        let p25 = &points[2];
        assert!(p25.server_pct > 3.0 * p25.local_pct, "{points:?}");
    }

    /// §5.5: the heap grows by well under 10 % across 0→10 streams — the
    /// level at which the paper's DDMS readings show "no effect".
    #[test]
    fn memory_barely_moves_with_stream_count() {
        let points = memory_vs_streams(&[0, 10]);
        let growth = (points[1].1 - points[0].1) / points[0].1;
        assert!(growth < 0.20, "growth {growth}");
        assert!(points[1].1 > points[0].1, "but it is not literally zero");
    }

    #[test]
    fn activity_classifier_is_accurate_on_substrate() {
        let rows = activity_classifier_accuracy(50);
        assert_eq!(rows.len(), 3);
        for row in rows {
            assert!(row.accuracy >= 0.9, "{}: {}", row.truth, row.accuracy);
        }
    }

    #[test]
    fn table5_middleware_slashes_loc() {
        let rows = table5();
        let loc = |name: &str| {
            rows.iter()
                .find(|r| r.application.starts_with(name) && r.application.contains("with "))
                .map(|r| r.code_lines)
                .unwrap_or(0)
        };
        let map_with = rows[0].code_lines as f64;
        let map_without = rows[1].code_lines as f64;
        let conweb_with = rows[2].code_lines as f64;
        let conweb_without = rows[3].code_lines as f64;
        let _ = loc;
        assert!(map_without / map_with > 3.0, "sensor map ratio {}", map_without / map_with);
        assert!(
            conweb_without / conweb_with > 3.0,
            "conweb ratio {}",
            conweb_without / conweb_with
        );
        // And in absolute terms the with-variants are small.
        assert!(map_with < 250.0);
        assert!(conweb_with < 150.0);
    }
}
