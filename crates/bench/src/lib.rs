//! Experiment harnesses regenerating every table and figure of the
//! SenSocial evaluation (paper §5 and §6.3).
//!
//! Each experiment is a plain function returning structured results, so
//! the `cargo bench` report targets, the integration tests and
//! `EXPERIMENTS.md` all draw from the same code:
//!
//! | Paper result | Function | Bench target |
//! |---|---|---|
//! | Table 1 (source code size) | [`experiments::table1`] | `table1_source_code` |
//! | Table 2 (memory footprint) | [`experiments::table2`] | `table2_memory` |
//! | Table 3 (trigger delay) | [`experiments::table3`] | `table3_delay` |
//! | Table 4 (battery vs OSN actions) | [`experiments::table4`] | `table4_osn_burst` |
//! | Figure 4 (energy per cycle) | [`experiments::fig4`] | `fig4_energy` |
//! | Figure 5 (CPU vs streams) | [`experiments::fig5`] | `fig5_cpu_streams` |
//! | Table 5 (programming effort) | [`experiments::table5`] | `table5_effort` |
//!
//! Wall-clock micro-benchmarks of the substrates (filter evaluation,
//! broker routing, store queries, end-to-end trigger pipeline) live in the
//! Criterion target `micro`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod experiments;

/// Prints a paper-style table header.
pub fn header(title: &str) {
    println!();
    println!("{title}");
    println!("{}", "-".repeat(title.len().max(24)));
}
