//! `cargo run -p sensocial-bench` — the PR-5 telemetry benchmark.
//!
//! Drives one deterministic chaos scenario (two phones, continuous +
//! social-event streams, a mid-run partition) and emits `BENCH_5.json`:
//! per-stage pipeline latency summaries (sense → privacy → filter →
//! uplink → broker → server → subscriber), every drop-cause counter, and
//! the backlog gauges' high-water marks — all read from the merged
//! deployment-wide telemetry snapshot.
//!
//! With `--snapshot-out <path>` the canonical wire form of the merged
//! snapshot is also written there; CI runs the binary twice with the same
//! (fixed) seed and fails if the two files differ by a single byte.

use sensocial::server::StreamSelector;
use sensocial::{Filter, Granularity, Modality, StreamSink, StreamSpec};
use sensocial_runtime::{SimDuration, Timestamp};
use sensocial_sim::metrics::summarize_histogram;
use sensocial_sim::{World, WorldConfig};
use sensocial_telemetry::{Snapshot, Stage};
use sensocial_types::geo::cities;
use serde_json::{json, Value};

/// One full run of the benchmark scenario, returning the merged
/// deployment-wide telemetry snapshot.
fn run_scenario() -> Snapshot {
    let mut world = World::new(WorldConfig::default());
    world.add_device("alice", "alice-phone", cities::paris());
    world.add_device("bob", "bob-phone", cities::bordeaux());

    world
        .create_stream(
            "alice-phone",
            StreamSpec::continuous(Modality::Wifi, Granularity::Raw)
                .with_interval(SimDuration::from_secs(5))
                .with_sink(StreamSink::Server),
        )
        .expect("continuous stream installs");
    world
        .create_stream(
            "alice-phone",
            StreamSpec::social_event_based(Modality::Bluetooth, Granularity::Raw)
                .with_sink(StreamSink::Server),
        )
        .expect("event stream installs");
    world
        .create_stream(
            "bob-phone",
            StreamSpec::continuous(Modality::Location, Granularity::Classified)
                .with_interval(SimDuration::from_secs(10))
                .with_sink(StreamSink::Server),
        )
        .expect("classified stream installs");

    // A server-side subscriber, so the last pipeline stage sees traffic.
    world
        .server
        .register_listener(StreamSelector::AllUplinks, Filter::pass_all(), |_s, _e| {})
        .expect("pass-all listener installs");

    world.run_for(SimDuration::from_secs(30));
    world.post("alice", "benchmark post");
    // A 60-second partition mid-stream exercises store-and-forward
    // buffering, drop counters and the backlog gauges.
    world.net.partition(
        &"alice-phone-ep".into(),
        &"broker".into(),
        Timestamp::from_secs(100),
    );
    world.run_for(SimDuration::from_secs(60));
    world.post("bob", "second post");
    world.run_for(SimDuration::from_secs(150));

    world.telemetry_snapshot()
}

/// Per-stage latency summaries in pipeline order.
fn stage_summaries(snap: &Snapshot) -> Value {
    let mut stages = serde_json::Map::new();
    for stage in Stage::ALL {
        let summary = snap
            .stage(stage)
            .map(summarize_histogram)
            .unwrap_or_default();
        stages.insert(
            stage.as_str().to_owned(),
            json!({
                "mean_ms": summary.mean,
                "std_dev_ms": summary.std_dev,
                "min_ms": summary.min,
                "max_ms": summary.max,
                "count": summary.count,
            }),
        );
    }
    Value::Object(stages)
}

/// Every drop-cause counter (counters whose key names a drop, an abandoned
/// retry budget, or an unroutable publish).
fn drop_counters(snap: &Snapshot) -> Value {
    let mut drops = serde_json::Map::new();
    for (key, value) in &snap.counters {
        if key.contains("drop") || key.contains("abandoned") || key.contains("unrouted") {
            drops.insert(key.clone(), json!(value));
        }
    }
    Value::Object(drops)
}

/// Backlog gauges: final value and high-water mark.
fn backlog_high_water(snap: &Snapshot) -> Value {
    let mut backlogs = serde_json::Map::new();
    for (key, gauge) in &snap.gauges {
        backlogs.insert(
            key.clone(),
            json!({"value": gauge.value, "high_water": gauge.high_water}),
        );
    }
    Value::Object(backlogs)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut snapshot_out: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--snapshot-out" => {
                snapshot_out = Some(args.next().expect("--snapshot-out needs a path"));
            }
            other => panic!("unknown argument {other:?} (expected --snapshot-out <path>)"),
        }
    }

    let snap = run_scenario();
    if let Some(path) = &snapshot_out {
        std::fs::write(path, snap.to_wire()).expect("write snapshot wire file");
        eprintln!("wrote canonical snapshot to {path}");
    }

    let report = json!({
        "benchmark": "BENCH_5",
        "description": "per-stage pipeline latency, drop causes and backlog high-water marks",
        "stages": stage_summaries(&snap),
        "drops": drop_counters(&snap),
        "backlogs": backlog_high_water(&snap),
        "totals": {
            "uplink_events": snap.counter("server.uplink_events"),
            "triggers_sent": snap.counter("server.triggers_sent"),
            "broker_published": snap.counter("broker.published"),
            "net_delivered": snap.counter("net.delivered"),
        },
    });
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_5.json", &rendered).expect("write BENCH_5.json");
    println!("{rendered}");
}
