//! `cargo run -p sensocial-bench` — the PR-6 storage + telemetry benchmark.
//!
//! Drives one deterministic chaos scenario (two phones, continuous +
//! social-event streams, a mid-run partition) and emits `BENCH_6.json`:
//! per-stage pipeline latency summaries (sense → privacy → filter →
//! uplink → broker → server → subscriber), every drop-cause counter, the
//! backlog gauges' high-water marks, and the storage engine's ingest /
//! scan profile (batch-size and flush-wait histograms, partition pruning
//! counters, backend footprint) — all read from the merged
//! deployment-wide telemetry snapshot.
//!
//! With `--snapshot-out <path>` the canonical wire form of the merged
//! snapshot is also written there; CI runs the binary twice with the same
//! (fixed) seed and fails if the two files differ by a single byte.
//!
//! With `--baseline <path>` the freshly measured per-stage means are
//! compared against a previously committed report (e.g. `BENCH_5.json`);
//! a stage regressing beyond the noise threshold fails the run unless the
//! baseline is marked `"provisional": true`, in which case mismatches are
//! reported as warnings only (a provisional baseline records structure,
//! not trusted numbers — regenerate it on CI hardware to arm the gate).

use sensocial::server::StreamSelector;
use sensocial::{Filter, Granularity, Modality, SampleQuery, StreamSink, StreamSpec};
use sensocial_runtime::{SimDuration, Timestamp};
use sensocial_sim::metrics::summarize_histogram;
use sensocial_sim::{World, WorldConfig};
use sensocial_telemetry::{Snapshot, Stage};
use sensocial_types::geo::cities;
use serde_json::{json, Value};

/// Relative headroom a stage mean may grow over its baseline before the
/// gate fails: mean must stay below `baseline * (1 + NOISE_REL) +
/// NOISE_ABS_MS`.
const NOISE_REL: f64 = 0.30;
/// Absolute slack (ms) added on top of the relative headroom, so stages
/// with near-zero baselines are not failed by scheduler jitter.
const NOISE_ABS_MS: f64 = 25.0;

/// One full run of the benchmark scenario, returning the merged
/// deployment-wide telemetry snapshot plus the storage section of the
/// report (which needs the live engine for its footprint).
fn run_scenario() -> (Snapshot, Value) {
    let mut world = World::new(WorldConfig::default());
    world.add_device("alice", "alice-phone", cities::paris());
    world.add_device("bob", "bob-phone", cities::bordeaux());

    world
        .create_stream(
            "alice-phone",
            StreamSpec::continuous(Modality::Wifi, Granularity::Raw)
                .with_interval(SimDuration::from_secs(5))
                .with_sink(StreamSink::Server),
        )
        .expect("continuous stream installs");
    world
        .create_stream(
            "alice-phone",
            StreamSpec::social_event_based(Modality::Bluetooth, Granularity::Raw)
                .with_sink(StreamSink::Server),
        )
        .expect("event stream installs");
    world
        .create_stream(
            "bob-phone",
            StreamSpec::continuous(Modality::Location, Granularity::Classified)
                .with_interval(SimDuration::from_secs(10))
                .with_sink(StreamSink::Server),
        )
        .expect("classified stream installs");

    // A server-side subscriber, so the last pipeline stage sees traffic.
    world
        .server
        .register_listener(StreamSelector::AllUplinks, Filter::pass_all(), |_s, _e| {})
        .expect("pass-all listener installs");

    world.run_for(SimDuration::from_secs(30));
    world.post("alice", "benchmark post");
    // A 60-second partition mid-stream exercises store-and-forward
    // buffering, drop counters and the backlog gauges.
    world.net.partition(
        &"alice-phone-ep".into(),
        &"broker".into(),
        Timestamp::from_secs(100),
    );
    world.run_for(SimDuration::from_secs(60));
    world.post("bob", "second post");
    world.run_for(SimDuration::from_secs(150));

    // Exercise the scan path (partition pruning shows up in the
    // telemetry): one per-user scan and one narrow time-window scan.
    let storage = world.server.storage();
    let all_alice = storage.scan(&SampleQuery::all().for_user("alice"));
    let windowed = storage.scan(
        &SampleQuery::all()
            .for_user("bob")
            .between(Timestamp::from_secs(60), Timestamp::from_secs(120)),
    );

    let snap = world.telemetry_snapshot();
    let footprint = storage.footprint();
    let storage_section = json!({
        "backend": storage.kind().name(),
        "samples_appended": snap.counter("storage.ingest.appended"),
        "batches_flushed": snap.counter("storage.ingest.batches"),
        "samples_flushed": snap.counter("storage.ingest.flushed"),
        "partitions_created": snap.counter("storage.partition.created"),
        "batch_size": histogram_summary(&snap, "storage.ingest.batch_size"),
        "flush_wait_ms": histogram_summary(&snap, "storage.ingest.flush_wait_ms"),
        "scan": {
            "requests": snap.counter("storage.scan.requests"),
            "partitions_scanned": snap.counter("storage.scan.partitions_scanned"),
            "partitions_pruned": snap.counter("storage.scan.partitions_pruned"),
            "rows": snap.counter("storage.scan.rows"),
            "probe_rows_user": all_alice.len(),
            "probe_rows_windowed": windowed.len(),
        },
        "footprint": {
            "rows": footprint.rows,
            "chunks": footprint.chunks,
            "payload_bytes": footprint.payload_bytes,
        },
    });
    (snap, storage_section)
}

/// Summary of one named histogram, `null` if it never recorded.
fn histogram_summary(snap: &Snapshot, name: &str) -> Value {
    match snap.histogram(name) {
        Some(hist) => {
            let summary = summarize_histogram(hist);
            json!({
                "mean": summary.mean,
                "std_dev": summary.std_dev,
                "min": summary.min,
                "max": summary.max,
                "count": summary.count,
            })
        }
        None => Value::Null,
    }
}

/// Per-stage latency summaries in pipeline order.
fn stage_summaries(snap: &Snapshot) -> Value {
    let mut stages = serde_json::Map::new();
    for stage in Stage::ALL {
        let summary = snap
            .stage(stage)
            .map(summarize_histogram)
            .unwrap_or_default();
        stages.insert(
            stage.as_str().to_owned(),
            json!({
                "mean_ms": summary.mean,
                "std_dev_ms": summary.std_dev,
                "min_ms": summary.min,
                "max_ms": summary.max,
                "count": summary.count,
            }),
        );
    }
    Value::Object(stages)
}

/// Every drop-cause counter (counters whose key names a drop, an abandoned
/// retry budget, or an unroutable publish).
fn drop_counters(snap: &Snapshot) -> Value {
    let mut drops = serde_json::Map::new();
    for (key, value) in &snap.counters {
        if key.contains("drop") || key.contains("abandoned") || key.contains("unrouted") {
            drops.insert(key.clone(), json!(value));
        }
    }
    Value::Object(drops)
}

/// Backlog gauges: final value and high-water mark.
fn backlog_high_water(snap: &Snapshot) -> Value {
    let mut backlogs = serde_json::Map::new();
    for (key, gauge) in &snap.gauges {
        backlogs.insert(
            key.clone(),
            json!({"value": gauge.value, "high_water": gauge.high_water}),
        );
    }
    Value::Object(backlogs)
}

/// Compares this run's per-stage means against a committed baseline
/// report. Returns the list of regressions (empty means the gate passes).
fn compare_stages(report: &Value, baseline: &Value) -> Vec<String> {
    let mut regressions = Vec::new();
    let (Some(new_stages), Some(old_stages)) =
        (report["stages"].as_object(), baseline["stages"].as_object())
    else {
        return vec!["baseline or report is missing the \"stages\" section".to_owned()];
    };
    for (stage, old) in old_stages {
        let Some(new) = new_stages.get(stage) else {
            regressions.push(format!("stage {stage} disappeared from the report"));
            continue;
        };
        let old_count = old["count"].as_u64().unwrap_or(0);
        let new_count = new["count"].as_u64().unwrap_or(0);
        if old_count == 0 {
            continue; // nothing measured back then: no reference point
        }
        if new_count == 0 {
            regressions.push(format!(
                "stage {stage}: baseline had {old_count} observations, this run has none"
            ));
            continue;
        }
        let old_mean = old["mean_ms"].as_f64().unwrap_or(0.0);
        let new_mean = new["mean_ms"].as_f64().unwrap_or(0.0);
        let limit = old_mean * (1.0 + NOISE_REL) + NOISE_ABS_MS;
        if new_mean > limit {
            regressions.push(format!(
                "stage {stage}: mean {new_mean:.2} ms exceeds {limit:.2} ms \
                 (baseline {old_mean:.2} ms + noise threshold)"
            ));
        }
    }
    regressions
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut snapshot_out: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut report_out = "BENCH_6.json".to_owned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--snapshot-out" => {
                snapshot_out = Some(args.next().expect("--snapshot-out needs a path"));
            }
            "--baseline" => {
                baseline_path = Some(args.next().expect("--baseline needs a path"));
            }
            "--out" => {
                report_out = args.next().expect("--out needs a path");
            }
            other => panic!(
                "unknown argument {other:?} \
                 (expected --snapshot-out <path>, --baseline <path> or --out <path>)"
            ),
        }
    }

    let (snap, storage_section) = run_scenario();
    if let Some(path) = &snapshot_out {
        std::fs::write(path, snap.to_wire()).expect("write snapshot wire file");
        eprintln!("wrote canonical snapshot to {path}");
    }

    let report = json!({
        "benchmark": "BENCH_6",
        "description": "per-stage pipeline latency, drop causes, backlog high-water marks and storage engine profile",
        "stages": stage_summaries(&snap),
        "drops": drop_counters(&snap),
        "backlogs": backlog_high_water(&snap),
        "storage": storage_section,
        "totals": {
            "uplink_events": snap.counter("server.uplink_events"),
            "triggers_sent": snap.counter("server.triggers_sent"),
            "broker_published": snap.counter("broker.published"),
            "net_delivered": snap.counter("net.delivered"),
        },
    });
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&report_out, &rendered).expect("write benchmark report");
    println!("{rendered}");

    if let Some(path) = &baseline_path {
        let text = std::fs::read_to_string(path).expect("read baseline report");
        let baseline: Value = serde_json::from_str(&text).expect("baseline parses as JSON");
        let provisional = baseline["provisional"].as_bool().unwrap_or(false);
        let regressions = compare_stages(&report, &baseline);
        if regressions.is_empty() {
            eprintln!("perf gate: all stage means within noise threshold of {path}");
        } else if provisional {
            eprintln!("perf gate: baseline {path} is provisional; reporting only:");
            for line in &regressions {
                eprintln!("  warning: {line}");
            }
        } else {
            eprintln!("perf gate: regressions against {path}:");
            for line in &regressions {
                eprintln!("  FAIL: {line}");
            }
            std::process::exit(1);
        }
    }
}
