//! `cargo run -p sensocial-bench` — the storage + telemetry benchmark.
//!
//! Drives one deterministic chaos scenario (two phones, continuous +
//! social-event streams, a mid-run partition) and emits `BENCH_10.json`:
//! per-stage pipeline latency summaries (sense → privacy → filter →
//! uplink → broker → server → subscriber), every drop-cause counter, the
//! backlog gauges' high-water marks, the hot-path batching profile
//! (broker fan-out and client uplink batch-size histograms), and the
//! storage engine's ingest / scan profile (batch-size and flush-wait
//! histograms, partition pruning counters, backend footprint) — all read
//! from the merged deployment-wide telemetry snapshot.
//!
//! With `--snapshot-out <path>` the canonical wire form of the merged
//! snapshot is also written there; CI runs the binary twice with the same
//! (fixed) seed and fails if the two files differ by a single byte.
//!
//! With `--baseline <path>` the freshly measured per-stage means are
//! compared against a previously committed report (e.g. `BENCH_5.json`);
//! a stage regressing beyond the noise threshold fails the run unless the
//! baseline is marked `"provisional": true`, in which case mismatches are
//! reported as warnings only. Stages the baseline never measured
//! (count = 0) are skipped and called out on stderr — commit a baseline
//! written by `--write-baseline <path>` to arm them.
//!
//! With `--scenario <name>` the run replays one of the named city-scale
//! scenarios from `sensocial_sim::scenarios` (stadium-egress,
//! commute-cascade, churn-wave, soak, campaign-storm, campaign-quota,
//! campaign-crash) instead of the default two-phone chaos scenario,
//! checks its committed acceptance thresholds, and adds a `"scenario"`
//! section to the report; threshold violations fail the run.
//! Per-stage latencies are virtual-time figures, so every number in the
//! report is machine-independent.
//!
//! With `--analysis-report <path>` the whole-deployment static analysis
//! report (per-plan cost and information-flow verdicts, dependency edges
//! and the shard-affinity plan) is written there as canonical JSON; CI
//! runs the binary twice and `cmp`s the two files for byte identity.
//!
//! With `--require-armed` a baseline stage with zero observations is a
//! gate FAILURE instead of a skip — used by CI against a baseline it just
//! regenerated, so a stage silently falling out of measurement cannot
//! turn the gate vacuous.

use sensocial::server::StreamSelector;
use sensocial::{Filter, Granularity, Modality, SampleQuery, StreamSink, StreamSpec};
use sensocial_runtime::{SimDuration, Timestamp};
use sensocial_sim::metrics::summarize_histogram;
use sensocial_sim::scenarios::{run_schedule, ScenarioName, ScenarioSpec};
use sensocial_sim::{World, WorldConfig};
use sensocial_telemetry::{Snapshot, Stage};
use sensocial_types::geo::cities;
use serde_json::{json, Value};

/// Relative headroom a stage mean may grow over its baseline before the
/// gate fails: mean must stay below `baseline * (1 + NOISE_REL) +
/// NOISE_ABS_MS`.
const NOISE_REL: f64 = 0.30;
/// Absolute slack (ms) added on top of the relative headroom, so stages
/// with near-zero baselines are not failed by scheduler jitter.
const NOISE_ABS_MS: f64 = 25.0;

/// Shard count the `--analysis-report` shard plan targets. Fixed so the
/// report bytes are a pure function of the deployment.
const ANALYSIS_SHARD_COUNT: usize = 4;

/// One full run of the benchmark scenario, returning the merged
/// deployment-wide telemetry snapshot, the storage section of the
/// report (which needs the live engine for its footprint), and the
/// canonical JSON of the static analysis report.
fn run_scenario() -> (Snapshot, Value, String) {
    let mut world = World::new(WorldConfig::default());
    world.add_device("alice", "alice-phone", cities::paris());
    world.add_device("bob", "bob-phone", cities::bordeaux());

    world
        .create_stream(
            "alice-phone",
            StreamSpec::continuous(Modality::Wifi, Granularity::Raw)
                .with_interval(SimDuration::from_secs(5))
                .with_sink(StreamSink::Server),
        )
        .expect("continuous stream installs");
    world
        .create_stream(
            "alice-phone",
            StreamSpec::social_event_based(Modality::Bluetooth, Granularity::Raw)
                .with_sink(StreamSink::Server),
        )
        .expect("event stream installs");
    world
        .create_stream(
            "bob-phone",
            StreamSpec::continuous(Modality::Location, Granularity::Classified)
                .with_interval(SimDuration::from_secs(10))
                .with_sink(StreamSink::Server),
        )
        .expect("classified stream installs");

    // A server-side subscriber, so the last pipeline stage sees traffic.
    world
        .server
        .register_listener(StreamSelector::AllUplinks, Filter::pass_all(), |_s, _e| {})
        .expect("pass-all listener installs");

    world.run_for(SimDuration::from_secs(30));
    world.post("alice", "benchmark post");
    // A 60-second partition mid-stream exercises store-and-forward
    // buffering, drop counters and the backlog gauges.
    world.net.partition(
        &"alice-phone-ep".into(),
        &"broker".into(),
        Timestamp::from_secs(100),
    );
    world.run_for(SimDuration::from_secs(60));
    world.post("bob", "second post");
    world.run_for(SimDuration::from_secs(150));

    // Exercise the scan path (partition pruning shows up in the
    // telemetry): one per-user scan and one narrow time-window scan.
    let storage = world.server.storage();
    let all_alice = storage.scan(&SampleQuery::all().for_user("alice"));
    let windowed = storage.scan(
        &SampleQuery::all()
            .for_user("bob")
            .between(Timestamp::from_secs(60), Timestamp::from_secs(120)),
    );

    let snap = world.telemetry_snapshot();
    let footprint = storage.footprint();
    let storage_section = json!({
        "backend": storage.kind().name(),
        "samples_appended": snap.counter("storage.ingest.appended"),
        "batches_flushed": snap.counter("storage.ingest.batches"),
        "samples_flushed": snap.counter("storage.ingest.flushed"),
        "partitions_created": snap.counter("storage.partition.created"),
        "batch_size": histogram_summary(&snap, "storage.ingest.batch_size"),
        "flush_wait_ms": histogram_summary(&snap, "storage.ingest.flush_wait_ms"),
        "scan": {
            "requests": snap.counter("storage.scan.requests"),
            "partitions_scanned": snap.counter("storage.scan.partitions_scanned"),
            "partitions_pruned": snap.counter("storage.scan.partitions_pruned"),
            "rows": snap.counter("storage.scan.rows"),
            "probe_rows_user": all_alice.len(),
            "probe_rows_windowed": windowed.len(),
        },
        "footprint": {
            "rows": footprint.rows,
            "chunks": footprint.chunks,
            "payload_bytes": footprint.payload_bytes,
        },
    });
    let analysis = world.analysis_report(ANALYSIS_SHARD_COUNT).to_json();
    (snap, storage_section, analysis)
}

/// Summary of one named histogram, `null` if it never recorded.
fn histogram_summary(snap: &Snapshot, name: &str) -> Value {
    match snap.histogram(name) {
        Some(hist) => {
            let summary = summarize_histogram(hist);
            json!({
                "mean": summary.mean,
                "std_dev": summary.std_dev,
                "min": summary.min,
                "max": summary.max,
                "count": summary.count,
            })
        }
        None => Value::Null,
    }
}

/// Per-stage latency summaries in pipeline order.
fn stage_summaries(snap: &Snapshot) -> Value {
    let mut stages = serde_json::Map::new();
    for stage in Stage::ALL {
        let summary = snap
            .stage(stage)
            .map(summarize_histogram)
            .unwrap_or_default();
        stages.insert(
            stage.as_str().to_owned(),
            json!({
                "mean_ms": summary.mean,
                "std_dev_ms": summary.std_dev,
                "min_ms": summary.min,
                "max_ms": summary.max,
                "count": summary.count,
            }),
        );
    }
    Value::Object(stages)
}

/// Every drop-cause counter (counters whose key names a drop, an abandoned
/// retry budget, or an unroutable publish).
fn drop_counters(snap: &Snapshot) -> Value {
    let mut drops = serde_json::Map::new();
    for (key, value) in &snap.counters {
        if key.contains("drop") || key.contains("abandoned") || key.contains("unrouted") {
            drops.insert(key.clone(), json!(value));
        }
    }
    Value::Object(drops)
}

/// Backlog gauges: final value and high-water mark.
fn backlog_high_water(snap: &Snapshot) -> Value {
    let mut backlogs = serde_json::Map::new();
    for (key, gauge) in &snap.gauges {
        backlogs.insert(
            key.clone(),
            json!({"value": gauge.value, "high_water": gauge.high_water}),
        );
    }
    Value::Object(backlogs)
}

/// Compares this run's per-stage means against a committed baseline
/// report. Returns the list of regressions (empty means the gate passes)
/// plus the list of stages the baseline never measured — those are
/// skipped, not gated, and the caller prints them so a silently vacuous
/// gate is visible in CI logs.
fn compare_stages(report: &Value, baseline: &Value) -> (Vec<String>, Vec<String>) {
    let mut regressions = Vec::new();
    let mut unarmed = Vec::new();
    let (Some(new_stages), Some(old_stages)) =
        (report["stages"].as_object(), baseline["stages"].as_object())
    else {
        return (
            vec!["baseline or report is missing the \"stages\" section".to_owned()],
            unarmed,
        );
    };
    for (stage, old) in old_stages {
        let Some(new) = new_stages.get(stage) else {
            regressions.push(format!("stage {stage} disappeared from the report"));
            continue;
        };
        let old_count = old["count"].as_u64().unwrap_or(0);
        let new_count = new["count"].as_u64().unwrap_or(0);
        if old_count == 0 {
            unarmed.push(stage.clone()); // nothing measured back then: no reference point
            continue;
        }
        if new_count == 0 {
            regressions.push(format!(
                "stage {stage}: baseline had {old_count} observations, this run has none"
            ));
            continue;
        }
        let old_mean = old["mean_ms"].as_f64().unwrap_or(0.0);
        let new_mean = new["mean_ms"].as_f64().unwrap_or(0.0);
        let limit = old_mean * (1.0 + NOISE_REL) + NOISE_ABS_MS;
        if new_mean > limit {
            regressions.push(format!(
                "stage {stage}: mean {new_mean:.2} ms exceeds {limit:.2} ms \
                 (baseline {old_mean:.2} ms + noise threshold)"
            ));
        }
    }
    (regressions, unarmed)
}

/// Runs one named city-scale scenario and checks its committed acceptance
/// thresholds. Returns the merged snapshot, a storage section (counters
/// only — the runner owns the world, so no live footprint probe), the
/// `"scenario"` report section, the canonical static-analysis JSON, and
/// whether acceptance failed.
fn run_named_scenario(name: &str) -> (Snapshot, Value, Value, String, bool) {
    let scenario: ScenarioName = name
        .parse()
        .unwrap_or_else(|err| panic!("--scenario: {err}"));
    let spec = ScenarioSpec::named(scenario);
    let schedule = spec.generate();
    let outcome = run_schedule(&spec, &schedule).expect("scenario schedule replays");
    let report = spec.thresholds().check(&outcome);
    let snap = outcome.snapshot.clone();
    let storage_section = json!({
        "samples_appended": snap.counter("storage.ingest.appended"),
        "batches_flushed": snap.counter("storage.ingest.batches"),
        "samples_flushed": snap.counter("storage.ingest.flushed"),
        "partitions_created": snap.counter("storage.partition.created"),
        "batch_size": histogram_summary(&snap, "storage.ingest.batch_size"),
        "flush_wait_ms": histogram_summary(&snap, "storage.ingest.flush_wait_ms"),
    });
    let scenario_section = json!({
        "name": scenario.as_str(),
        "seed": spec.seed,
        "devices": outcome.device_count,
        "duration_s": outcome.duration.as_secs(),
        "schedule_events": schedule.len(),
        "posts": schedule.post_count(),
        "subscriber_deliveries": outcome.subscriber_deliveries,
        "backlog_probes": outcome.backlog_samples,
        "acceptance": {
            "passed": report.passed(),
            "violations": report.violations,
        },
    });
    let analysis = outcome.analysis.to_json();
    (
        snap,
        storage_section,
        scenario_section,
        analysis,
        !report.passed(),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut snapshot_out: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut scenario_name: Option<String> = None;
    let mut analysis_out: Option<String> = None;
    let mut require_armed = false;
    let mut report_out = "BENCH_10.json".to_owned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--snapshot-out" => {
                snapshot_out = Some(args.next().expect("--snapshot-out needs a path"));
            }
            "--analysis-report" => {
                analysis_out = Some(args.next().expect("--analysis-report needs a path"));
            }
            "--require-armed" => {
                require_armed = true;
            }
            "--baseline" => {
                baseline_path = Some(args.next().expect("--baseline needs a path"));
            }
            "--write-baseline" => {
                write_baseline = Some(args.next().expect("--write-baseline needs a path"));
            }
            "--scenario" => {
                scenario_name = Some(args.next().expect("--scenario needs a name"));
            }
            "--out" => {
                report_out = args.next().expect("--out needs a path");
            }
            other => panic!(
                "unknown argument {other:?} (expected --snapshot-out <path>, \
                 --analysis-report <path>, --require-armed, --baseline <path>, \
                 --write-baseline <path>, --scenario <name> or --out <path>)"
            ),
        }
    }

    let (snap, storage_section, scenario_section, analysis_json, acceptance_failed) =
        match &scenario_name {
            Some(name) => run_named_scenario(name),
            None => {
                let (snap, storage_section, analysis_json) = run_scenario();
                (snap, storage_section, Value::Null, analysis_json, false)
            }
        };
    if let Some(path) = &snapshot_out {
        std::fs::write(path, snap.to_wire()).expect("write snapshot wire file");
        eprintln!("wrote canonical snapshot to {path}");
    }
    if let Some(path) = &analysis_out {
        std::fs::write(path, &analysis_json).expect("write analysis report");
        eprintln!("wrote static analysis report to {path}");
    }

    let mut report = json!({
        "benchmark": "BENCH_10",
        "description": "per-stage pipeline latency, drop causes, backlog high-water marks, hot-path batching profile and storage engine profile",
        "stages": stage_summaries(&snap),
        "drops": drop_counters(&snap),
        "backlogs": backlog_high_water(&snap),
        "batching": {
            "broker_batch_size": histogram_summary(&snap, "broker.batch_size"),
            "uplink_batch_size": histogram_summary(&snap, "client.uplink.batch_size"),
        },
        "storage": storage_section,
        "totals": {
            "uplink_events": snap.counter("server.uplink_events"),
            "triggers_sent": snap.counter("server.triggers_sent"),
            "broker_published": snap.counter("broker.published"),
            "net_delivered": snap.counter("net.delivered"),
        },
    });
    if !scenario_section.is_null() {
        report["scenario"] = scenario_section;
    }
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&report_out, &rendered).expect("write benchmark report");
    println!("{rendered}");

    if let Some(path) = &write_baseline {
        let baseline = json!({
            "benchmark": "BENCH_5",
            "description": "committed perf baseline: per-stage virtual-time latency means \
                            measured by sensocial-bench (regenerate with --write-baseline)",
            "stages": report["stages"].clone(),
        });
        let text = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
        std::fs::write(path, text).expect("write baseline report");
        eprintln!("wrote non-provisional perf baseline to {path}");
    }

    if let Some(path) = &baseline_path {
        let text = std::fs::read_to_string(path).expect("read baseline report");
        let baseline: Value = serde_json::from_str(&text).expect("baseline parses as JSON");
        let provisional = baseline["provisional"].as_bool().unwrap_or(false);
        let (mut regressions, unarmed) = compare_stages(&report, &baseline);
        if !unarmed.is_empty() {
            if require_armed {
                // CI regenerated this baseline moments ago: a stage with
                // zero observations means measurement itself broke, and
                // skipping it would make the gate silently vacuous.
                regressions.push(format!(
                    "baseline {path} has no observations for {} \
                     (--require-armed forbids skipping unarmed stages)",
                    unarmed.join(", ")
                ));
            } else {
                eprintln!(
                    "perf gate: baseline {path} has no observations for {} \
                     (gate skips them; regenerate with --write-baseline to arm)",
                    unarmed.join(", ")
                );
            }
        }
        if regressions.is_empty() {
            eprintln!("perf gate: all stage means within noise threshold of {path}");
        } else if provisional {
            eprintln!("perf gate: baseline {path} is provisional; reporting only:");
            for line in &regressions {
                eprintln!("  warning: {line}");
            }
        } else {
            eprintln!("perf gate: regressions against {path}:");
            for line in &regressions {
                eprintln!("  FAIL: {line}");
            }
            std::process::exit(1);
        }
    }

    if acceptance_failed {
        eprintln!("scenario acceptance: thresholds violated (see report \"scenario\" section)");
        std::process::exit(1);
    }
}
