//! The broker itself: sessions, routing, retained messages, QoS-1 retries.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_net::{EndpointId, Network};
use sensocial_runtime::{Scheduler, SimDuration};
use sensocial_telemetry::{Registry, Stage};

use crate::packet::{Packet, QoS};
use crate::topic::TopicFilter;

/// Tunables for broker behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct BrokerConfig {
    /// How long to wait for a `PubAck` before retransmitting a QoS-1
    /// delivery.
    pub retry_timeout: SimDuration,
    /// Retransmissions attempted before giving up on a delivery.
    pub max_retries: u32,
    /// Maximum messages queued for a disconnected session; older messages
    /// are dropped first when the queue overflows.
    pub offline_queue_limit: usize,
    /// When a QoS-1 delivery exhausts its retries, requeue it on the
    /// session's offline queue (and mark the session disconnected, since
    /// the client is evidently unreachable) instead of abandoning it. The
    /// message is then delivered on the client's next connect, so triggers
    /// survive outages longer than the whole retry budget.
    pub requeue_on_exhaust: bool,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            retry_timeout: SimDuration::from_secs(5),
            max_retries: 5,
            offline_queue_limit: 1_000,
            requeue_on_exhaust: true,
        }
    }
}

/// Counters describing broker activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Publishes accepted from clients.
    pub published: u64,
    /// Deliveries sent towards subscribers (excluding retries).
    pub delivered: u64,
    /// Messages queued for disconnected sessions.
    pub queued_offline: u64,
    /// QoS-1 retransmissions performed.
    pub retries: u64,
    /// Publishes that matched no subscription.
    pub unrouted: u64,
    /// QoS-1 deliveries abandoned after exhausting retries.
    pub abandoned: u64,
    /// QoS-1 deliveries requeued to the offline queue after exhausting
    /// retries ([`BrokerConfig::requeue_on_exhaust`]).
    pub requeued: u64,
    /// Inbound QoS-1 publishes dropped as duplicates of an
    /// already-processed `(sender, message_id)` pair (a client retry whose
    /// first copy was routed but whose ack was lost).
    pub duplicate_publishes: u64,
    /// Keepalive probes answered.
    pub pings: u64,
}

/// Per-sender window of inbound QoS-1 message ids already routed, mirroring
/// the client-side dedup window.
const INBOUND_DEDUP_WINDOW: usize = 1_024;

#[derive(Debug)]
struct Session {
    endpoint: EndpointId,
    connected: bool,
    subscriptions: Vec<(TopicFilter, QoS)>,
    offline: VecDeque<(String, String, QoS)>,
}

/// Total messages parked in offline queues across every session — the
/// value behind the `broker.offline_backlog` gauge (its high-water mark is
/// the figure scenario acceptance thresholds bound).
fn offline_backlog(sessions: &HashMap<String, Session>) -> u64 {
    sessions.values().map(|s| s.offline.len() as u64).sum()
}

#[derive(Debug, Clone)]
struct PendingDelivery {
    client_id: String,
    topic: String,
    payload: String,
    retries_left: u32,
}

/// Dedup window for one publishing client: the set of routed message ids
/// and their arrival order for eviction.
#[derive(Debug, Default)]
struct InboundWindow {
    seen: HashSet<u64>,
    order: VecDeque<u64>,
}

impl InboundWindow {
    /// Records `mid`; returns `true` if it was already in the window.
    fn check_duplicate(&mut self, mid: u64) -> bool {
        if !self.seen.insert(mid) {
            return true;
        }
        self.order.push_back(mid);
        if self.order.len() > INBOUND_DEDUP_WINDOW {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        false
    }
}

struct Inner {
    endpoint: EndpointId,
    sessions: HashMap<String, Session>,
    retained: HashMap<String, String>,
    pending: HashMap<u64, PendingDelivery>,
    inbound_seen: HashMap<String, InboundWindow>,
    next_message_id: u64,
    config: BrokerConfig,
    stats: BrokerStats,
}

/// An MQTT-style broker attached to a network endpoint.
///
/// Construct with [`Broker::new`]; the broker then serves packets arriving
/// at its endpoint for as long as the handle (or any clone) is alive. See
/// the [crate-level example](crate).
#[derive(Clone)]
pub struct Broker {
    inner: Arc<Mutex<Inner>>,
    network: Network,
    telemetry: Registry,
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Broker")
            .field("endpoint", &inner.endpoint)
            .field("sessions", &inner.sessions.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl Broker {
    /// Creates a broker and registers it at `endpoint` on `network`.
    pub fn new(network: &Network, endpoint: impl Into<EndpointId>) -> Self {
        let endpoint = endpoint.into();
        let broker = Broker {
            inner: Arc::new(Mutex::new(Inner {
                endpoint: endpoint.clone(),
                sessions: HashMap::new(),
                retained: HashMap::new(),
                pending: HashMap::new(),
                inbound_seen: HashMap::new(),
                next_message_id: 1,
                config: BrokerConfig::default(),
                stats: BrokerStats::default(),
            })),
            network: network.clone(),
            telemetry: Registry::new("broker"),
        };
        let handle = broker.clone();
        network.register(endpoint, move |sched, msg| {
            if let Ok(packet) = Packet::from_wire(&msg.payload) {
                if matches!(packet, Packet::Publish { .. }) {
                    // Ingress transit: how long the publish spent on the
                    // wire between the client and the broker.
                    let transit = sched
                        .now()
                        .as_millis()
                        .saturating_sub(msg.sent_at.as_millis());
                    handle.telemetry.observe(Stage::Broker, transit);
                }
                handle.handle_packet(sched, msg.from.clone(), packet);
            }
        });
        broker
    }

    /// The broker's telemetry registry (scope `broker`): activity counters
    /// mirroring [`BrokerStats`] plus the [`Stage::Broker`] ingress-transit
    /// histogram, the `broker.offline_backlog` gauge (messages parked in
    /// offline queues, with high-water mark) and the
    /// `broker.offline_dropped` counter (oldest-message evictions when an
    /// offline queue overflows its limit).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Replaces the broker configuration.
    pub fn set_config(&self, config: BrokerConfig) {
        self.inner.lock().config = config;
    }

    /// A snapshot of the activity counters.
    pub fn stats(&self) -> BrokerStats {
        self.inner.lock().stats
    }

    /// Number of known sessions (connected or not).
    pub fn session_count(&self) -> usize {
        self.inner.lock().sessions.len()
    }

    fn handle_packet(&self, sched: &mut Scheduler, from: EndpointId, packet: Packet) {
        match packet {
            Packet::Connect { client_id } => self.on_connect(sched, from, client_id),
            Packet::Disconnect { client_id } => {
                if let Some(session) = self.inner.lock().sessions.get_mut(&client_id) {
                    session.connected = false;
                }
            }
            Packet::Subscribe {
                client_id,
                filter,
                qos,
            } => self.on_subscribe(sched, client_id, filter, qos),
            Packet::Unsubscribe { client_id, filter } => {
                if let Some(session) = self.inner.lock().sessions.get_mut(&client_id) {
                    session.subscriptions.retain(|(f, _)| *f != filter);
                }
            }
            Packet::Publish {
                topic,
                payload,
                qos,
                message_id,
                retain,
                sender,
            } => self.on_publish(sched, from, topic, payload, qos, message_id, retain, sender),
            Packet::PubAck { message_id, .. } => {
                self.inner.lock().pending.remove(&message_id);
            }
            Packet::PingReq { client_id } => self.on_ping(sched, client_id),
            // Broker → client packets looping back are ignored.
            Packet::ConnAck { .. } | Packet::PingResp { .. } => {}
        }
    }

    fn on_connect(&self, sched: &mut Scheduler, from: EndpointId, client_id: String) {
        let (flush, ack, broker_endpoint, endpoint) = {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let session_present = inner.sessions.contains_key(&client_id);
            let session = inner.sessions.entry(client_id.clone()).or_insert(Session {
                endpoint: from.clone(),
                connected: true,
                subscriptions: Vec::new(),
                offline: VecDeque::new(),
            });
            session.endpoint = from;
            session.connected = true;
            let ack = Packet::ConnAck {
                client_id: client_id.clone(),
                session_present,
            };
            let flush: Vec<(String, String, QoS)> = session.offline.drain(..).collect();
            let endpoint = session.endpoint.clone();
            let backlog = offline_backlog(&inner.sessions);
            self.telemetry.gauge_set("offline_backlog", backlog);
            (flush, ack, inner.endpoint.clone(), endpoint)
        };
        // The ConnAck leaves before the offline flush so a resuming client
        // confirms its session ahead of the queued deliveries.
        let _ = self
            .network
            .send(sched, &broker_endpoint, &endpoint, ack.to_wire());
        for (topic, payload, qos) in flush {
            self.deliver(sched, &client_id, &topic, &payload, qos);
        }
    }

    fn on_ping(&self, sched: &mut Scheduler, client_id: String) {
        let reply = {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            match inner.sessions.get(&client_id) {
                Some(session) if session.connected => {
                    inner.stats.pings += 1;
                    self.telemetry.count("pings");
                    Some((inner.endpoint.clone(), session.endpoint.clone()))
                }
                // Unknown or disconnected session: stay silent so the
                // client's keepalive declares the connection lost and
                // re-connects from scratch.
                _ => None,
            }
        };
        if let Some((broker_endpoint, endpoint)) = reply {
            let resp = Packet::PingResp { client_id };
            let _ = self
                .network
                .send(sched, &broker_endpoint, &endpoint, resp.to_wire());
        }
    }

    fn on_subscribe(
        &self,
        sched: &mut Scheduler,
        client_id: String,
        filter: TopicFilter,
        qos: QoS,
    ) {
        let retained: Vec<(String, String)> = {
            let mut inner = self.inner.lock();
            let Some(session) = inner.sessions.get_mut(&client_id) else {
                return; // Subscribe before connect: ignored, like Mosquitto.
            };
            session.subscriptions.retain(|(f, _)| *f != filter);
            session.subscriptions.push((filter.clone(), qos));
            inner
                .retained
                .iter()
                .filter(|(topic, _)| filter.matches(topic))
                .map(|(t, p)| (t.clone(), p.clone()))
                .collect()
        };
        for (topic, payload) in retained {
            self.deliver(sched, &client_id, &topic, &payload, qos);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_publish(
        &self,
        sched: &mut Scheduler,
        from: EndpointId,
        topic: String,
        payload: String,
        qos: QoS,
        message_id: Option<u64>,
        retain: bool,
        sender: Option<String>,
    ) {
        // Acknowledge the inbound leg first, then drop duplicates: a client
        // whose first copy was routed but whose ack was lost will retry
        // with the same (sender, message_id); re-routing that copy would
        // hand subscribers a *fresh* downstream message id, defeating their
        // dedup window and duplicating app-level deliveries.
        if qos == QoS::AtLeastOnce {
            if let Some(mid) = message_id {
                let ack = Packet::PubAck {
                    message_id: mid,
                    client_id: None,
                };
                let (endpoint, duplicate) = {
                    let mut inner = self.inner.lock();
                    let inner = &mut *inner;
                    let duplicate = match &sender {
                        Some(sender) => inner
                            .inbound_seen
                            .entry(sender.clone())
                            .or_default()
                            .check_duplicate(mid),
                        None => false,
                    };
                    if duplicate {
                        inner.stats.duplicate_publishes += 1;
                        self.telemetry.count("duplicate_publishes");
                    }
                    (inner.endpoint.clone(), duplicate)
                };
                let _ = self.network.send(sched, &endpoint, &from, ack.to_wire());
                if duplicate {
                    return;
                }
            }
        }

        let targets: Vec<(String, QoS, bool)> = {
            let mut inner = self.inner.lock();
            inner.stats.published += 1;
            self.telemetry.count("published");
            if retain {
                if payload.is_empty() {
                    inner.retained.remove(&topic);
                } else {
                    inner.retained.insert(topic.clone(), payload.clone());
                }
            }
            // Like Mosquitto, the publisher receives its own message when
            // subscribed to a matching filter, so no sender exclusion here.
            let _ = &sender;
            let targets: Vec<(String, QoS, bool)> = inner
                .sessions
                .iter()
                .filter_map(|(cid, session)| {
                    session
                        .subscriptions
                        .iter()
                        .filter(|(f, _)| f.matches(&topic))
                        .map(|(_, sub_qos)| (*sub_qos).min(qos))
                        .max()
                        .map(|q| (cid.clone(), q, session.connected))
                })
                .collect();
            if targets.is_empty() {
                inner.stats.unrouted += 1;
                self.telemetry.count("unrouted");
            }
            for (cid, q, connected) in &targets {
                if !connected {
                    inner.stats.queued_offline += 1;
                    self.telemetry.count("queued_offline");
                    let limit = inner.config.offline_queue_limit;
                    if let Some(session) = inner.sessions.get_mut(cid) {
                        if session.offline.len() >= limit {
                            session.offline.pop_front();
                            self.telemetry.count("offline_dropped");
                        }
                        session
                            .offline
                            .push_back((topic.clone(), payload.clone(), *q));
                    }
                }
            }
            if targets.iter().any(|(_, _, connected)| !connected) {
                let backlog = offline_backlog(&inner.sessions);
                self.telemetry.gauge_set("offline_backlog", backlog);
            }
            targets
        };

        for (cid, q, connected) in targets {
            if connected {
                self.deliver(sched, &cid, &topic, &payload, q);
            }
        }
    }

    /// Sends one delivery towards a connected client, installing retry
    /// state when the effective QoS demands acknowledgement.
    fn deliver(
        &self,
        sched: &mut Scheduler,
        client_id: &str,
        topic: &str,
        payload: &str,
        qos: QoS,
    ) {
        let (endpoint, broker_endpoint, message_id, retry_timeout) = {
            let mut inner = self.inner.lock();
            inner.stats.delivered += 1;
            self.telemetry.count("delivered");
            let Some(session) = inner.sessions.get(client_id) else {
                return;
            };
            let endpoint = session.endpoint.clone();
            let broker_endpoint = inner.endpoint.clone();
            let message_id = if qos == QoS::AtLeastOnce {
                let mid = inner.next_message_id;
                inner.next_message_id += 1;
                let retries_left = inner.config.max_retries;
                inner.pending.insert(
                    mid,
                    PendingDelivery {
                        client_id: client_id.to_owned(),
                        topic: topic.to_owned(),
                        payload: payload.to_owned(),
                        retries_left,
                    },
                );
                Some(mid)
            } else {
                None
            };
            (
                endpoint,
                broker_endpoint,
                message_id,
                inner.config.retry_timeout,
            )
        };

        let packet = Packet::Publish {
            topic: topic.to_owned(),
            payload: payload.to_owned(),
            qos,
            message_id,
            retain: false,
            sender: None,
        };
        let _ = self
            .network
            .send(sched, &broker_endpoint, &endpoint, packet.to_wire());

        if let Some(mid) = message_id {
            self.schedule_retry(sched, mid, retry_timeout);
        }
    }

    fn schedule_retry(&self, sched: &mut Scheduler, message_id: u64, timeout: SimDuration) {
        let broker = self.clone();
        sched.schedule_after(timeout, move |s| {
            broker.retry(s, message_id);
        });
    }

    fn retry(&self, sched: &mut Scheduler, message_id: u64) {
        let (action, retry_timeout) = {
            let mut inner = self.inner.lock();
            let retry_timeout = inner.config.retry_timeout;
            let Some(pending) = inner.pending.get_mut(&message_id) else {
                return; // Acked in the meantime.
            };
            if pending.retries_left == 0 {
                let pending = inner
                    .pending
                    .remove(&message_id)
                    .expect("pending entry just matched"); // lint:allow(expect) — guarded by the match on the line above
                if inner.config.requeue_on_exhaust {
                    let limit = inner.config.offline_queue_limit;
                    match inner.sessions.get_mut(&pending.client_id) {
                        Some(session) => {
                            // The client never acked across the whole retry
                            // budget: treat its connection as dead and park
                            // the delivery for its next connect.
                            session.connected = false;
                            if session.offline.len() >= limit {
                                session.offline.pop_front();
                                self.telemetry.count("offline_dropped");
                            }
                            session.offline.push_back((
                                pending.topic,
                                pending.payload,
                                QoS::AtLeastOnce,
                            ));
                            inner.stats.requeued += 1;
                            self.telemetry.count("requeued");
                            let backlog = offline_backlog(&inner.sessions);
                            self.telemetry.gauge_set("offline_backlog", backlog);
                        }
                        None => {
                            inner.stats.abandoned += 1;
                            self.telemetry.count("abandoned");
                        }
                    }
                } else {
                    inner.stats.abandoned += 1;
                    self.telemetry.count("abandoned");
                }
                (None, retry_timeout)
            } else {
                pending.retries_left -= 1;
                let pending = pending.clone();
                inner.stats.retries += 1;
                self.telemetry.count("retries");
                let endpoint = inner
                    .sessions
                    .get(&pending.client_id)
                    .map(|s| (s.endpoint.clone(), s.connected));
                let broker_endpoint = inner.endpoint.clone();
                (
                    endpoint.map(|e| (pending, e, broker_endpoint)),
                    retry_timeout,
                )
            }
        };

        if let Some((pending, (endpoint, connected), broker_endpoint)) = action {
            if connected {
                let packet = Packet::Publish {
                    topic: pending.topic,
                    payload: pending.payload,
                    qos: QoS::AtLeastOnce,
                    message_id: Some(message_id),
                    retain: false,
                    sender: None,
                };
                let _ = self
                    .network
                    .send(sched, &broker_endpoint, &endpoint, packet.to_wire());
            }
            self.schedule_retry(sched, message_id, retry_timeout);
        }
    }
}
