//! The broker itself: sessions, routing, retained messages, QoS-1 retries.
//!
//! Hot-path memory discipline (see DESIGN.md §7): topics are interned
//! `Arc<str>` newtypes and payloads are shared [`Payload`] allocations, so
//! fan-out to N subscribers bumps reference counts instead of cloning
//! strings N times. Deliveries are batched per virtual instant through a
//! [`Scheduler::schedule_now`] flush (the `broker.batch_size` histogram
//! records amortization), which preserves virtual-time latencies and
//! delivery order exactly.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_net::{EndpointId, Network};
use sensocial_runtime::{Scheduler, SimDuration};
use sensocial_telemetry::{Registry, Stage};
use sensocial_types::intern::intern;

use crate::packet::{Envelope, Packet, Payload, QoS};
use crate::topic::TopicFilter;

/// Tunables for broker behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct BrokerConfig {
    /// How long to wait for a `PubAck` before retransmitting a QoS-1
    /// delivery.
    pub retry_timeout: SimDuration,
    /// Retransmissions attempted before giving up on a delivery.
    pub max_retries: u32,
    /// Maximum messages queued for a disconnected session; older messages
    /// are dropped first when the queue overflows.
    pub offline_queue_limit: usize,
    /// When a QoS-1 delivery exhausts its retries, requeue it on the
    /// session's offline queue (and mark the session disconnected, since
    /// the client is evidently unreachable) instead of abandoning it. The
    /// message is then delivered on the client's next connect, so triggers
    /// survive outages longer than the whole retry budget.
    pub requeue_on_exhaust: bool,
    /// Batch deliveries accumulated within one virtual instant and flush
    /// them through a single scheduler event (recorded in the
    /// `broker.batch_size` histogram). Batching is virtual-time-neutral:
    /// the flush fires at the same instant the messages were published,
    /// in publish order, so latencies, delivery order and drop-cause
    /// counters are unchanged — only the per-message scheduler overhead is
    /// amortized. Disable to deliver inline per message.
    pub batch_delivery: bool,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            retry_timeout: SimDuration::from_secs(5),
            max_retries: 5,
            offline_queue_limit: 1_000,
            requeue_on_exhaust: true,
            batch_delivery: true,
        }
    }
}

/// Counters describing broker activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Publishes accepted from clients.
    pub published: u64,
    /// Deliveries sent towards subscribers (excluding retries).
    pub delivered: u64,
    /// Messages queued for disconnected sessions.
    pub queued_offline: u64,
    /// QoS-1 retransmissions performed.
    pub retries: u64,
    /// Publishes that matched no subscription.
    pub unrouted: u64,
    /// QoS-1 deliveries abandoned after exhausting retries.
    pub abandoned: u64,
    /// QoS-1 deliveries requeued to the offline queue after exhausting
    /// retries ([`BrokerConfig::requeue_on_exhaust`]).
    pub requeued: u64,
    /// Inbound QoS-1 publishes dropped as duplicates of an
    /// already-processed `(sender, message_id)` pair (a client retry whose
    /// first copy was routed but whose ack was lost).
    pub duplicate_publishes: u64,
    /// Keepalive probes answered.
    pub pings: u64,
}

/// Per-sender window of inbound QoS-1 message ids already routed, mirroring
/// the client-side dedup window.
const INBOUND_DEDUP_WINDOW: usize = 1_024;

#[derive(Debug)]
struct Session {
    endpoint: EndpointId,
    connected: bool,
    subscriptions: Vec<(TopicFilter, QoS)>,
    /// Messages parked for a disconnected session. Envelope clones are
    /// refcount bumps: a message queued for N offline subscribers shares
    /// one topic and one payload allocation.
    offline: VecDeque<Envelope>,
}

/// Total messages parked in offline queues across every session — the
/// value behind the `broker.offline_backlog` gauge (its high-water mark is
/// the figure scenario acceptance thresholds bound).
fn offline_backlog(sessions: &BTreeMap<Arc<str>, Session>) -> u64 {
    sessions.values().map(|s| s.offline.len() as u64).sum()
}

#[derive(Debug, Clone)]
struct PendingDelivery {
    client_id: Arc<str>,
    envelope: Envelope,
    retries_left: u32,
}

/// Dedup window for one publishing client: the set of routed message ids
/// and their arrival order for eviction.
#[derive(Debug, Default)]
struct InboundWindow {
    seen: HashSet<u64>,
    order: VecDeque<u64>,
}

impl InboundWindow {
    /// Records `mid`; returns `true` if it was already in the window.
    fn check_duplicate(&mut self, mid: u64) -> bool {
        if !self.seen.insert(mid) {
            return true;
        }
        self.order.push_back(mid);
        if self.order.len() > INBOUND_DEDUP_WINDOW {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        false
    }
}

struct Inner {
    endpoint: EndpointId,
    /// Sessions keyed by interned client id. A `BTreeMap` (not hash) so
    /// fan-out iterates in a deterministic, seed-independent order.
    sessions: BTreeMap<Arc<str>, Session>,
    /// Retained message per topic, shared allocations on both sides.
    retained: BTreeMap<sensocial_types::InternedTopic, Payload>,
    pending: HashMap<u64, PendingDelivery>,
    inbound_seen: HashMap<String, InboundWindow>,
    next_message_id: u64,
    /// Deliveries accumulated within the current virtual instant, drained
    /// FIFO by one scheduled flush ([`BrokerConfig::batch_delivery`]).
    batch: VecDeque<(Arc<str>, Envelope)>,
    /// Whether a batch flush is already scheduled for this instant.
    flush_scheduled: bool,
    config: BrokerConfig,
    stats: BrokerStats,
}

/// An MQTT-style broker attached to a network endpoint.
///
/// Construct with [`Broker::new`]; the broker then serves packets arriving
/// at its endpoint for as long as the handle (or any clone) is alive. See
/// the [crate-level example](crate).
#[derive(Clone)]
pub struct Broker {
    inner: Arc<Mutex<Inner>>,
    network: Network,
    telemetry: Registry,
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Broker")
            .field("endpoint", &inner.endpoint)
            .field("sessions", &inner.sessions.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl Broker {
    /// Creates a broker and registers it at `endpoint` on `network`.
    pub fn new(network: &Network, endpoint: impl Into<EndpointId>) -> Self {
        let endpoint = endpoint.into();
        let broker = Broker {
            inner: Arc::new(Mutex::new(Inner {
                endpoint: endpoint.clone(),
                sessions: BTreeMap::new(),
                retained: BTreeMap::new(),
                pending: HashMap::new(),
                inbound_seen: HashMap::new(),
                next_message_id: 1,
                batch: VecDeque::new(),
                flush_scheduled: false,
                config: BrokerConfig::default(),
                stats: BrokerStats::default(),
            })),
            network: network.clone(),
            telemetry: Registry::new("broker"),
        };
        let handle = broker.clone();
        network.register(endpoint, move |sched, msg| {
            if let Ok(packet) = Packet::from_wire(&msg.payload) {
                if matches!(packet, Packet::Publish { .. }) {
                    // Ingress transit: how long the publish spent on the
                    // wire between the client and the broker.
                    let transit = sched
                        .now()
                        .as_millis()
                        .saturating_sub(msg.sent_at.as_millis());
                    handle.telemetry.observe(Stage::Broker, transit);
                }
                handle.handle_packet(sched, msg.from.clone(), packet);
            }
        });
        broker
    }

    /// The broker's telemetry registry (scope `broker`): activity counters
    /// mirroring [`BrokerStats`] plus the [`Stage::Broker`] ingress-transit
    /// histogram, the `broker.batch_size` histogram (messages drained per
    /// per-instant delivery flush, recording how much scheduler overhead
    /// batching amortizes), the `broker.offline_backlog` gauge (messages
    /// parked in offline queues, with high-water mark) and the
    /// `broker.offline_dropped` counter (oldest-message evictions when an
    /// offline queue overflows its limit).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Replaces the broker configuration.
    pub fn set_config(&self, config: BrokerConfig) {
        self.inner.lock().config = config;
    }

    /// A snapshot of the activity counters.
    pub fn stats(&self) -> BrokerStats {
        self.inner.lock().stats
    }

    /// Number of known sessions (connected or not).
    pub fn session_count(&self) -> usize {
        self.inner.lock().sessions.len()
    }

    fn handle_packet(&self, sched: &mut Scheduler, from: EndpointId, packet: Packet) {
        match packet {
            Packet::Connect { client_id } => self.on_connect(sched, from, client_id),
            Packet::Disconnect { client_id } => {
                if let Some(session) = self.inner.lock().sessions.get_mut(client_id.as_str()) {
                    session.connected = false;
                }
            }
            Packet::Subscribe {
                client_id,
                filter,
                qos,
            } => self.on_subscribe(sched, client_id, filter, qos),
            Packet::Unsubscribe { client_id, filter } => {
                if let Some(session) = self.inner.lock().sessions.get_mut(client_id.as_str()) {
                    session.subscriptions.retain(|(f, _)| *f != filter);
                }
            }
            Packet::Publish {
                topic,
                payload,
                qos,
                message_id,
                retain,
                sender,
            } => self.on_publish(sched, from, topic, payload, qos, message_id, retain, sender),
            Packet::PubAck { message_id, .. } => {
                self.inner.lock().pending.remove(&message_id);
            }
            Packet::PingReq { client_id } => self.on_ping(sched, client_id),
            // Broker → client packets looping back are ignored.
            Packet::ConnAck { .. } | Packet::PingResp { .. } => {}
        }
    }

    fn on_connect(&self, sched: &mut Scheduler, from: EndpointId, client_id: String) {
        let cid = intern(&client_id);
        let (flush, ack, broker_endpoint, endpoint) = {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let session_present = inner.sessions.contains_key(&*cid);
            let session = inner.sessions.entry(Arc::clone(&cid)).or_insert(Session {
                endpoint: from.clone(),
                connected: true,
                subscriptions: Vec::new(),
                offline: VecDeque::new(),
            });
            session.endpoint = from;
            session.connected = true;
            let ack = Packet::ConnAck {
                client_id,
                session_present,
            };
            let flush: Vec<Envelope> = session.offline.drain(..).collect();
            let endpoint = session.endpoint.clone();
            let backlog = offline_backlog(&inner.sessions);
            self.telemetry.gauge_set("offline_backlog", backlog);
            (flush, ack, inner.endpoint.clone(), endpoint)
        };
        // The ConnAck leaves before the offline flush so a resuming client
        // confirms its session ahead of the queued deliveries (the batch
        // flush fires later within the same instant, keeping that order).
        let _ = self
            .network
            .send(sched, &broker_endpoint, &endpoint, ack.to_wire());
        for envelope in flush {
            self.enqueue_delivery(sched, Arc::clone(&cid), envelope);
        }
    }

    fn on_ping(&self, sched: &mut Scheduler, client_id: String) {
        let reply = {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            match inner.sessions.get(client_id.as_str()) {
                Some(session) if session.connected => {
                    inner.stats.pings += 1;
                    self.telemetry.count("pings");
                    Some((inner.endpoint.clone(), session.endpoint.clone()))
                }
                // Unknown or disconnected session: stay silent so the
                // client's keepalive declares the connection lost and
                // re-connects from scratch.
                _ => None,
            }
        };
        if let Some((broker_endpoint, endpoint)) = reply {
            let resp = Packet::PingResp { client_id };
            let _ = self
                .network
                .send(sched, &broker_endpoint, &endpoint, resp.to_wire());
        }
    }

    fn on_subscribe(
        &self,
        sched: &mut Scheduler,
        client_id: String,
        filter: TopicFilter,
        qos: QoS,
    ) {
        let cid = intern(&client_id);
        let retained: Vec<Envelope> = {
            let mut inner = self.inner.lock();
            let Some(session) = inner.sessions.get_mut(&*cid) else {
                return; // Subscribe before connect: ignored, like Mosquitto.
            };
            session.subscriptions.retain(|(f, _)| *f != filter);
            session.subscriptions.push((filter.clone(), qos));
            inner
                .retained
                .iter()
                .filter(|(topic, _)| filter.matches(topic.as_str()))
                // Refcount bumps, not string clones: the retained entry
                // keeps its allocations.
                .map(|(t, p)| Envelope::new(t.clone(), p.clone(), qos))
                .collect()
        };
        for envelope in retained {
            self.enqueue_delivery(sched, Arc::clone(&cid), envelope);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_publish(
        &self,
        sched: &mut Scheduler,
        from: EndpointId,
        topic: sensocial_types::InternedTopic,
        payload: Payload,
        qos: QoS,
        message_id: Option<u64>,
        retain: bool,
        sender: Option<String>,
    ) {
        // Acknowledge the inbound leg first, then drop duplicates: a client
        // whose first copy was routed but whose ack was lost will retry
        // with the same (sender, message_id); re-routing that copy would
        // hand subscribers a *fresh* downstream message id, defeating their
        // dedup window and duplicating app-level deliveries.
        if qos == QoS::AtLeastOnce {
            if let Some(mid) = message_id {
                let ack = Packet::PubAck {
                    message_id: mid,
                    client_id: None,
                };
                let (endpoint, duplicate) = {
                    let mut inner = self.inner.lock();
                    let inner = &mut *inner;
                    let duplicate = match &sender {
                        Some(sender) => inner
                            .inbound_seen
                            .entry(sender.clone())
                            .or_default()
                            .check_duplicate(mid),
                        None => false,
                    };
                    if duplicate {
                        inner.stats.duplicate_publishes += 1;
                        self.telemetry.count("duplicate_publishes");
                    }
                    (inner.endpoint.clone(), duplicate)
                };
                let _ = self.network.send(sched, &endpoint, &from, ack.to_wire());
                if duplicate {
                    return;
                }
            }
        }

        let targets: Vec<(Arc<str>, QoS, bool)> = {
            let mut inner = self.inner.lock();
            inner.stats.published += 1;
            self.telemetry.count("published");
            if retain {
                if payload.is_empty() {
                    inner.retained.remove(&topic);
                } else {
                    // Refcount bumps: the retained entry shares the
                    // publish's allocations.
                    inner.retained.insert(topic.clone(), payload.clone());
                }
            }
            // Like Mosquitto, the publisher receives its own message when
            // subscribed to a matching filter, so no sender exclusion here.
            let _ = &sender;
            let targets: Vec<(Arc<str>, QoS, bool)> = inner
                .sessions
                .iter()
                .filter_map(|(cid, session)| {
                    session
                        .subscriptions
                        .iter()
                        .filter(|(f, _)| f.matches(topic.as_str()))
                        .map(|(_, sub_qos)| (*sub_qos).min(qos))
                        .max()
                        .map(|q| (Arc::clone(cid), q, session.connected))
                })
                .collect();
            if targets.is_empty() {
                inner.stats.unrouted += 1;
                self.telemetry.count("unrouted");
            }
            for (cid, q, connected) in &targets {
                if !connected {
                    inner.stats.queued_offline += 1;
                    self.telemetry.count("queued_offline");
                    let limit = inner.config.offline_queue_limit;
                    if let Some(session) = inner.sessions.get_mut(&**cid) {
                        if session.offline.len() >= limit {
                            session.offline.pop_front();
                            self.telemetry.count("offline_dropped");
                        }
                        // One interned topic and one shared payload per
                        // message, however many sessions queue it.
                        session
                            .offline
                            .push_back(Envelope::new(topic.clone(), payload.clone(), *q));
                    }
                }
            }
            if targets.iter().any(|(_, _, connected)| !connected) {
                let backlog = offline_backlog(&inner.sessions);
                self.telemetry.gauge_set("offline_backlog", backlog);
            }
            targets
        };

        for (cid, q, connected) in targets {
            if connected {
                self.enqueue_delivery(sched, cid, Envelope::new(topic.clone(), payload.clone(), q));
            }
        }
    }

    /// Queues one delivery on the per-instant batch, scheduling the flush
    /// if this is the instant's first message. With batching disabled the
    /// delivery goes out inline, exactly as before the batch existed.
    fn enqueue_delivery(&self, sched: &mut Scheduler, client_id: Arc<str>, envelope: Envelope) {
        let flush_now = {
            let mut inner = self.inner.lock();
            if !inner.config.batch_delivery {
                drop(inner);
                self.deliver(sched, &client_id, envelope);
                return;
            }
            inner.batch.push_back((client_id, envelope));
            if inner.flush_scheduled {
                false
            } else {
                inner.flush_scheduled = true;
                true
            }
        };
        if flush_now {
            let broker = self.clone();
            // Fires at the *current* instant, after the events already
            // queued for it: every publish routed in this instant lands in
            // the same batch, and virtual-time latency is unchanged.
            sched.schedule_now(move |s| broker.flush_batch(s));
        }
    }

    /// Drains the per-instant delivery batch FIFO — one scheduler event
    /// however many messages this instant routed.
    fn flush_batch(&self, sched: &mut Scheduler) {
        let batch: Vec<(Arc<str>, Envelope)> = {
            let mut inner = self.inner.lock();
            inner.flush_scheduled = false;
            inner.batch.drain(..).collect()
        };
        self.telemetry.observe_named("batch_size", batch.len() as u64);
        for (client_id, envelope) in batch {
            self.deliver(sched, &client_id, envelope);
        }
    }

    /// Sends one delivery towards a connected client, installing retry
    /// state when the effective QoS demands acknowledgement.
    fn deliver(&self, sched: &mut Scheduler, client_id: &str, envelope: Envelope) {
        let qos = envelope.qos;
        let (endpoint, broker_endpoint, message_id, retry_timeout) = {
            let mut inner = self.inner.lock();
            inner.stats.delivered += 1;
            self.telemetry.count("delivered");
            let Some(session) = inner.sessions.get(client_id) else {
                return;
            };
            let endpoint = session.endpoint.clone();
            let broker_endpoint = inner.endpoint.clone();
            let message_id = if qos == QoS::AtLeastOnce {
                let mid = inner.next_message_id;
                inner.next_message_id += 1;
                let retries_left = inner.config.max_retries;
                inner.pending.insert(
                    mid,
                    PendingDelivery {
                        client_id: intern(client_id),
                        // Refcount bumps; retry state shares the message's
                        // allocations.
                        envelope: envelope.clone(),
                        retries_left,
                    },
                );
                Some(mid)
            } else {
                None
            };
            (
                endpoint,
                broker_endpoint,
                message_id,
                inner.config.retry_timeout,
            )
        };

        let packet = Packet::Publish {
            topic: envelope.topic,
            payload: envelope.payload,
            qos,
            message_id,
            retain: false,
            sender: None,
        };
        let _ = self
            .network
            .send(sched, &broker_endpoint, &endpoint, packet.to_wire());

        if let Some(mid) = message_id {
            self.schedule_retry(sched, mid, retry_timeout);
        }
    }

    fn schedule_retry(&self, sched: &mut Scheduler, message_id: u64, timeout: SimDuration) {
        let broker = self.clone();
        sched.schedule_after(timeout, move |s| {
            broker.retry(s, message_id);
        });
    }

    fn retry(&self, sched: &mut Scheduler, message_id: u64) {
        let (action, retry_timeout) = {
            let mut inner = self.inner.lock();
            let retry_timeout = inner.config.retry_timeout;
            let Some(pending) = inner.pending.get_mut(&message_id) else {
                return; // Acked in the meantime.
            };
            if pending.retries_left == 0 {
                let pending = inner
                    .pending
                    .remove(&message_id)
                    .expect("pending entry just matched"); // lint:allow(expect) — guarded by the match on the line above
                if inner.config.requeue_on_exhaust {
                    let limit = inner.config.offline_queue_limit;
                    match inner.sessions.get_mut(&pending.client_id) {
                        Some(session) => {
                            // The client never acked across the whole retry
                            // budget: treat its connection as dead and park
                            // the delivery for its next connect. The
                            // envelope moves as-is — the one interned topic
                            // and shared payload are reused, no per-requeue
                            // clone (its QoS is already at-least-once,
                            // retry state only exists for QoS 1).
                            session.connected = false;
                            if session.offline.len() >= limit {
                                session.offline.pop_front();
                                self.telemetry.count("offline_dropped");
                            }
                            session.offline.push_back(pending.envelope);
                            inner.stats.requeued += 1;
                            self.telemetry.count("requeued");
                            let backlog = offline_backlog(&inner.sessions);
                            self.telemetry.gauge_set("offline_backlog", backlog);
                        }
                        None => {
                            inner.stats.abandoned += 1;
                            self.telemetry.count("abandoned");
                        }
                    }
                } else {
                    inner.stats.abandoned += 1;
                    self.telemetry.count("abandoned");
                }
                (None, retry_timeout)
            } else {
                pending.retries_left -= 1;
                let pending = pending.clone();
                inner.stats.retries += 1;
                self.telemetry.count("retries");
                let endpoint = inner
                    .sessions
                    .get(&pending.client_id)
                    .map(|s| (s.endpoint.clone(), s.connected));
                let broker_endpoint = inner.endpoint.clone();
                (
                    endpoint.map(|e| (pending, e, broker_endpoint)),
                    retry_timeout,
                )
            }
        };

        if let Some((pending, (endpoint, connected), broker_endpoint)) = action {
            if connected {
                let packet = Packet::Publish {
                    topic: pending.envelope.topic,
                    payload: pending.envelope.payload,
                    qos: QoS::AtLeastOnce,
                    message_id: Some(message_id),
                    retain: false,
                    sender: None,
                };
                let _ = self
                    .network
                    .send(sched, &broker_endpoint, &endpoint, packet.to_wire());
            }
            self.schedule_retry(sched, message_id, retry_timeout);
        }
    }
}
