//! The client-side broker binding.
//!
//! On the paper's mobile side this role is played by the `MQTTService`
//! class: it keeps the connection to the Mosquitto broker, receives
//! configuration pushes and sensing triggers, and acknowledges them. The
//! server side uses the same client type to publish triggers.
//!
//! # Connection lifecycle
//!
//! A bare client is optimistic: [`BrokerClient::connect`] marks it
//! connected and trusts the link. Enabling the lifecycle machinery —
//! [`BrokerClient::set_keepalive`] and/or
//! [`BrokerClient::set_reconnect_policy`] — turns the connection into a
//! supervised state machine: the session is only *confirmed* once the
//! broker's `ConnAck` arrives, periodic `PingReq`/`PingResp` probes detect
//! a dead link, and losses trigger reconnection with capped exponential
//! backoff plus deterministic per-client jitter. On a confirmed reconnect
//! the client resumes the session: re-subscribes when the broker lost its
//! state (`session_present == false`), immediately retransmits every
//! unacknowledged QoS-1 publish, and notifies connection listeners so
//! higher layers can flush their own store-and-forward buffers.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_net::{EndpointId, Network};
use sensocial_runtime::{Scheduler, SimDuration, SimRng};

use sensocial_types::InternedTopic;

use crate::packet::{Packet, Payload, QoS};
use crate::topic::TopicFilter;

/// Callback invoked with `(scheduler, topic, payload)` for each message
/// matching a subscription.
type Subscriber = Arc<dyn Fn(&mut Scheduler, &str, &str) + Send + Sync>;

/// Callback invoked with `(scheduler, message_id, topic, payload)` when a
/// QoS-1 publish exhausts its retries.
type DeadLetterHandler = Arc<dyn Fn(&mut Scheduler, u64, &str, &str) + Send + Sync>;

/// Callback invoked with `(scheduler, online)` when the session is
/// confirmed (`true`) or lost (`false`).
type ConnectionListener = Arc<dyn Fn(&mut Scheduler, bool) + Send + Sync>;

/// How many broker-assigned message ids to remember for QoS-1
/// deduplication.
const DEDUP_WINDOW: usize = 1_024;

/// Consecutive unanswered keepalive probes before the connection is
/// declared lost.
const MAX_MISSED_PINGS: u32 = 2;

/// Reconnection backoff: capped exponential with uniform jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconnectPolicy {
    /// Delay before the first reconnection attempt.
    pub initial_backoff: SimDuration,
    /// Ceiling on the exponential backoff.
    pub max_backoff: SimDuration,
    /// Jitter fraction: each delay gains a uniform sample from
    /// `[0, delay * jitter)`, de-synchronizing reconnect storms across a
    /// fleet of clients.
    pub jitter: f64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            initial_backoff: SimDuration::from_secs(1),
            max_backoff: SimDuration::from_secs(60),
            jitter: 0.1,
        }
    }
}

impl ReconnectPolicy {
    /// The delay before reconnection attempt number `attempt` (0-based),
    /// drawing jitter from `rng`.
    fn delay(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let base = self
            .initial_backoff
            .as_millis()
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_backoff.as_millis())
            .max(1);
        let bound = base as f64 * self.jitter;
        let jitter = if bound > 0.0 {
            rng.uniform(0.0, bound) as u64
        } else {
            0
        };
        SimDuration::from_millis(base + jitter)
    }
}

/// Counters describing a client's lifecycle and delivery behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// QoS-1 publishes that exhausted their retries (see
    /// [`BrokerClient::set_dead_letter_handler`]).
    pub dead_lettered: u64,
    /// Times the connection was declared lost (missed pings or a missing
    /// `ConnAck`).
    pub connection_losses: u64,
    /// `ConnAck`s received — confirmed connects, including the first.
    pub connacks: u64,
    /// Keepalive probes sent.
    pub pings_sent: u64,
    /// Keepalive probes that went unanswered.
    pub pings_missed: u64,
    /// Duplicate QoS-1 deliveries suppressed by the dedup window.
    pub duplicates_suppressed: u64,
}

struct PendingPublish {
    packet: Packet,
    retries_left: u32,
}

struct Inner {
    client_id: String,
    subscriptions: Vec<(TopicFilter, QoS, Subscriber)>,
    seen_ids: HashSet<u64>,
    seen_order: VecDeque<u64>,
    pending: HashMap<u64, PendingPublish>,
    next_message_id: u64,
    retry_timeout: SimDuration,
    max_retries: u32,
    connected: bool,
    confirmed: bool,
    /// Bumped on every lifecycle transition; scheduled timers capture the
    /// epoch and no-op when it has moved on, so stale pings/reconnects from
    /// a previous incarnation of the connection cannot fire.
    session_epoch: u64,
    keepalive: Option<SimDuration>,
    awaiting_ping: bool,
    missed_pings: u32,
    auto_reconnect: bool,
    reconnect: ReconnectPolicy,
    backoff_attempt: u32,
    rng: SimRng,
    stats: ClientStats,
    dead_letter: Option<DeadLetterHandler>,
    connection_listeners: Vec<ConnectionListener>,
}

impl Inner {
    fn lifecycle_enabled(&self) -> bool {
        self.keepalive.is_some() || self.auto_reconnect
    }
}

/// A broker client bound to a network endpoint.
///
/// Cloneable handle. Incoming publishes are dispatched to the callbacks
/// registered with [`BrokerClient::subscribe`]; QoS-1 messages are
/// acknowledged and deduplicated automatically. See the
/// [crate-level example](crate) and the [module docs](self) for the
/// supervised connection lifecycle.
#[derive(Clone)]
pub struct BrokerClient {
    inner: Arc<Mutex<Inner>>,
    network: Network,
    endpoint: EndpointId,
    broker: EndpointId,
}

impl std::fmt::Debug for BrokerClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("BrokerClient")
            .field("client_id", &inner.client_id)
            .field("endpoint", &self.endpoint)
            .field("subscriptions", &inner.subscriptions.len())
            .field("connected", &inner.connected)
            .field("confirmed", &inner.confirmed)
            .finish()
    }
}

impl BrokerClient {
    /// Creates a client that will speak to the broker at `broker_endpoint`
    /// from its own `endpoint`, registering the endpoint on `network`.
    ///
    /// The client starts disconnected; call [`BrokerClient::connect`].
    pub fn new(
        network: &Network,
        endpoint: impl Into<EndpointId>,
        broker_endpoint: impl Into<EndpointId>,
        client_id: impl Into<String>,
    ) -> Self {
        let endpoint = endpoint.into();
        let client_id = client_id.into();
        // A deterministic per-client jitter stream, derived from the client
        // id so two same-seed runs reconnect at identical instants.
        let mut seed = 0xcbf29ce484222325u64;
        for byte in client_id.as_bytes() {
            seed = seed
                .wrapping_mul(0x100000001b3)
                .wrapping_add(u64::from(*byte));
        }
        let client = BrokerClient {
            inner: Arc::new(Mutex::new(Inner {
                client_id,
                subscriptions: Vec::new(),
                seen_ids: HashSet::new(),
                seen_order: VecDeque::new(),
                pending: HashMap::new(),
                next_message_id: 1,
                retry_timeout: SimDuration::from_secs(5),
                max_retries: 5,
                connected: false,
                confirmed: false,
                session_epoch: 0,
                keepalive: None,
                awaiting_ping: false,
                missed_pings: 0,
                auto_reconnect: false,
                reconnect: ReconnectPolicy::default(),
                backoff_attempt: 0,
                rng: SimRng::seed_from(seed),
                stats: ClientStats::default(),
                dead_letter: None,
                connection_listeners: Vec::new(),
            })),
            network: network.clone(),
            endpoint: endpoint.clone(),
            broker: broker_endpoint.into(),
        };
        let handle = client.clone();
        network.register(endpoint, move |sched, msg| {
            if let Ok(packet) = Packet::from_wire(&msg.payload) {
                handle.handle_packet(sched, packet);
            }
        });
        client
    }

    /// The client's stable identifier.
    pub fn client_id(&self) -> String {
        self.inner.lock().client_id.clone()
    }

    /// The endpoint this client is reachable at.
    pub fn endpoint(&self) -> &EndpointId {
        &self.endpoint
    }

    /// Whether [`BrokerClient::connect`] has been called (and not
    /// superseded by [`BrokerClient::disconnect`] or a detected loss).
    pub fn is_connected(&self) -> bool {
        self.inner.lock().connected
    }

    /// Whether the broker has confirmed the current connection with a
    /// `ConnAck`. Always implies [`BrokerClient::is_connected`].
    pub fn is_session_confirmed(&self) -> bool {
        self.inner.lock().confirmed
    }

    /// A snapshot of the lifecycle counters.
    pub fn stats(&self) -> ClientStats {
        self.inner.lock().stats
    }

    /// Enables keepalive probing: every `interval` the client pings the
    /// broker, and [`MAX_MISSED_PINGS`] consecutive unanswered probes
    /// declare the connection lost. Probing starts at the next `ConnAck`.
    pub fn set_keepalive(&self, interval: SimDuration) {
        self.inner.lock().keepalive = Some(interval);
    }

    /// Enables automatic reconnection with the given backoff policy after
    /// a detected connection loss.
    pub fn set_reconnect_policy(&self, policy: ReconnectPolicy) {
        let mut inner = self.inner.lock();
        inner.auto_reconnect = true;
        inner.reconnect = policy;
    }

    /// Sets the QoS-1 retransmission parameters (defaults: 5 s, 5 retries).
    pub fn set_retry_policy(&self, timeout: SimDuration, max_retries: u32) {
        let mut inner = self.inner.lock();
        inner.retry_timeout = timeout;
        inner.max_retries = max_retries;
    }

    /// Installs the handler invoked when a QoS-1 publish exhausts its
    /// retries. Replaces any previous handler. The publish is also counted
    /// under [`ClientStats::dead_lettered`] whether or not a handler is
    /// installed.
    pub fn set_dead_letter_handler<F>(&self, handler: F)
    where
        F: Fn(&mut Scheduler, u64, &str, &str) + Send + Sync + 'static,
    {
        self.inner.lock().dead_letter = Some(Arc::new(handler));
    }

    /// Registers a listener invoked with `true` when the session is
    /// confirmed by the broker and `false` when the connection is lost or
    /// deliberately closed.
    pub fn on_connection_change<F>(&self, listener: F)
    where
        F: Fn(&mut Scheduler, bool) + Send + Sync + 'static,
    {
        self.inner
            .lock()
            .connection_listeners
            .push(Arc::new(listener));
    }

    /// Opens (or resumes) the session with the broker. Queued offline
    /// messages are delivered by the broker after the connect packet
    /// arrives.
    ///
    /// With the lifecycle enabled, a missing `ConnAck` within the retry
    /// timeout counts as a connection loss (and triggers backoff when
    /// auto-reconnect is on).
    pub fn connect(&self, sched: &mut Scheduler) {
        let (client_id, lifecycle, epoch, timeout) = {
            let mut inner = self.inner.lock();
            inner.connected = true;
            inner.confirmed = false;
            inner.awaiting_ping = false;
            inner.missed_pings = 0;
            inner.session_epoch += 1;
            (
                inner.client_id.clone(),
                inner.lifecycle_enabled(),
                inner.session_epoch,
                inner.retry_timeout,
            )
        };
        self.send(sched, &Packet::Connect { client_id });
        if lifecycle {
            let client = self.clone();
            sched.schedule_after(timeout, move |s| {
                let lost = {
                    let inner = client.inner.lock();
                    inner.session_epoch == epoch && inner.connected && !inner.confirmed
                };
                if lost {
                    client.connection_lost(s);
                }
            });
        }
    }

    /// Closes the connection; the broker queues matching messages until the
    /// next connect. Cancels any scheduled reconnect.
    pub fn disconnect(&self, sched: &mut Scheduler) {
        let (client_id, notify) = {
            let mut inner = self.inner.lock();
            let was_confirmed = inner.confirmed;
            inner.connected = false;
            inner.confirmed = false;
            inner.session_epoch += 1;
            let notify = if was_confirmed {
                inner.connection_listeners.clone()
            } else {
                Vec::new()
            };
            (inner.client_id.clone(), notify)
        };
        self.send(sched, &Packet::Disconnect { client_id });
        for listener in notify {
            listener(sched, false);
        }
    }

    /// Subscribes to `filter`, routing matching messages to `callback`.
    ///
    /// Accepts a parsed [`TopicFilter`], anything with a typed conversion
    /// into one (e.g. `sensocial-core`'s `Topic`), or a `&str` literal via
    /// the panicking [`From<&str>`] conversion.
    ///
    /// # Panics
    ///
    /// Panics if a `&str` `filter` is not a valid topic filter —
    /// subscriptions are developer-written constants, so malformed ones
    /// are programming errors. Pre-parsed [`TopicFilter`]s cannot panic.
    pub fn subscribe<F>(
        &self,
        sched: &mut Scheduler,
        filter: impl Into<TopicFilter>,
        qos: QoS,
        callback: F,
    ) where
        F: Fn(&mut Scheduler, &str, &str) + Send + Sync + 'static,
    {
        let filter: TopicFilter = filter.into();
        let client_id = {
            let mut inner = self.inner.lock();
            inner
                .subscriptions
                .push((filter.clone(), qos, Arc::new(callback)));
            inner.client_id.clone()
        };
        self.send(
            sched,
            &Packet::Subscribe {
                client_id,
                filter,
                qos,
            },
        );
    }

    /// Removes the subscription for `filter` (exact filter match), both
    /// locally and on the broker.
    pub fn unsubscribe(&self, sched: &mut Scheduler, filter: impl Into<TopicFilter>) {
        let filter = filter.into();
        let client_id = {
            let mut inner = self.inner.lock();
            inner.subscriptions.retain(|(f, _, _)| *f != filter);
            inner.client_id.clone()
        };
        self.send(sched, &Packet::Unsubscribe { client_id, filter });
    }

    /// Deprecated stringly [`BrokerClient::subscribe`]: parses `filter` at
    /// the call site and panics on malformed input, exactly as `subscribe`
    /// itself did before the typed API.
    #[deprecated(note = "pass a `TopicFilter` (or `&str` literal) to `subscribe`")]
    pub fn subscribe_str<F>(&self, sched: &mut Scheduler, filter: &str, qos: QoS, callback: F)
    where
        F: Fn(&mut Scheduler, &str, &str) + Send + Sync + 'static,
    {
        self.subscribe(sched, filter, qos, callback);
    }

    /// Deprecated stringly [`BrokerClient::unsubscribe`]: silently ignores
    /// a malformed `filter`, preserving the old lenient behaviour.
    #[deprecated(note = "pass a `TopicFilter` (or `&str` literal) to `unsubscribe`")]
    pub fn unsubscribe_str(&self, sched: &mut Scheduler, filter: &str) {
        if let Ok(filter) = filter.parse::<TopicFilter>() {
            self.unsubscribe(sched, filter);
        }
    }

    /// Publishes `payload` to `topic`.
    ///
    /// Accepts an [`InternedTopic`] (or anything converting into one — a
    /// `&str`, a `String`, a typed `Topic`) and a [`Payload`] or anything
    /// converting into one; repeated publishes to the same topic share one
    /// interned allocation, and the payload is never copied again after
    /// this call (retries and the broker's fan-out all share it).
    ///
    /// With [`QoS::AtLeastOnce`] the publish is retransmitted until the
    /// broker acknowledges it (bounded retries), so triggers survive a
    /// lossy link. While the connection is down retries are held, not
    /// spent; on a confirmed reconnect all unacknowledged publishes are
    /// retransmitted immediately.
    pub fn publish(
        &self,
        sched: &mut Scheduler,
        topic: impl Into<InternedTopic>,
        payload: impl Into<Payload>,
        qos: QoS,
        retain: bool,
    ) {
        let topic = topic.into();
        let payload = payload.into();
        let (packet, retry) = {
            let mut inner = self.inner.lock();
            let message_id = if qos == QoS::AtLeastOnce {
                let mid = inner.next_message_id;
                inner.next_message_id += 1;
                Some(mid)
            } else {
                None
            };
            let packet = Packet::Publish {
                topic,
                payload,
                qos,
                message_id,
                retain,
                sender: Some(inner.client_id.clone()),
            };
            if let Some(mid) = message_id {
                let retries_left = inner.max_retries;
                inner.pending.insert(
                    mid,
                    PendingPublish {
                        packet: packet.clone(),
                        retries_left,
                    },
                );
                (packet, Some((mid, inner.retry_timeout)))
            } else {
                (packet, None)
            }
        };
        self.send(sched, &packet);
        if let Some((mid, timeout)) = retry {
            self.schedule_retry(sched, mid, timeout);
        }
    }

    /// Deprecated stringly [`BrokerClient::publish`]: copies both strings
    /// into fresh shared allocations on every call.
    #[deprecated(note = "pass an `InternedTopic`/`Payload` (or `&str`) to `publish`")]
    pub fn publish_str(
        &self,
        sched: &mut Scheduler,
        topic: &str,
        payload: &str,
        qos: QoS,
        retain: bool,
    ) {
        self.publish(sched, topic, payload, qos, retain);
    }

    /// Number of QoS-1 publishes awaiting acknowledgement.
    pub fn pending_count(&self) -> usize {
        self.inner.lock().pending.len()
    }

    fn schedule_retry(&self, sched: &mut Scheduler, message_id: u64, timeout: SimDuration) {
        enum RetryAction {
            Done,
            Hold,
            Resend(Packet),
            DeadLetter(Packet, Option<DeadLetterHandler>),
        }

        let client = self.clone();
        sched.schedule_after(timeout, move |s| {
            let (action, timeout) = {
                let mut inner = client.inner.lock();
                let timeout = inner.retry_timeout;
                let connected = inner.connected;
                let action = match inner.pending.get_mut(&message_id) {
                    None => RetryAction::Done,
                    // The link is down: hold the retry budget so nothing is
                    // dead-lettered during an outage it could survive.
                    Some(_) if !connected => RetryAction::Hold,
                    Some(p) if p.retries_left == 0 => {
                        let p = inner
                            .pending
                            .remove(&message_id)
                            .expect("pending entry just matched"); // lint:allow(expect) — guarded by the match on the line above
                        inner.stats.dead_lettered += 1;
                        RetryAction::DeadLetter(p.packet, inner.dead_letter.clone())
                    }
                    Some(p) => {
                        p.retries_left -= 1;
                        RetryAction::Resend(p.packet.clone())
                    }
                };
                (action, timeout)
            };
            match action {
                RetryAction::Done => {}
                RetryAction::Hold => client.schedule_retry(s, message_id, timeout),
                RetryAction::Resend(packet) => {
                    client.send(s, &packet);
                    client.schedule_retry(s, message_id, timeout);
                }
                RetryAction::DeadLetter(packet, handler) => {
                    if let (Some(handler), Packet::Publish { topic, payload, .. }) =
                        (handler, &packet)
                    {
                        handler(s, message_id, topic.as_str(), payload.as_str());
                    }
                }
            }
        });
    }

    fn handle_packet(&self, sched: &mut Scheduler, packet: Packet) {
        match packet {
            Packet::Publish {
                topic,
                payload,
                qos,
                message_id,
                ..
            } => {
                // Acknowledge first, then dedupe redeliveries.
                if qos == QoS::AtLeastOnce {
                    if let Some(mid) = message_id {
                        let (client_id, duplicate) = {
                            let mut inner = self.inner.lock();
                            let duplicate = !inner.seen_ids.insert(mid);
                            if duplicate {
                                inner.stats.duplicates_suppressed += 1;
                            } else {
                                inner.seen_order.push_back(mid);
                                if inner.seen_order.len() > DEDUP_WINDOW {
                                    if let Some(old) = inner.seen_order.pop_front() {
                                        inner.seen_ids.remove(&old);
                                    }
                                }
                            }
                            (inner.client_id.clone(), duplicate)
                        };
                        self.send(
                            sched,
                            &Packet::PubAck {
                                message_id: mid,
                                client_id: Some(client_id),
                            },
                        );
                        if duplicate {
                            return;
                        }
                    }
                }
                let callbacks: Vec<Subscriber> = {
                    let inner = self.inner.lock();
                    inner
                        .subscriptions
                        .iter()
                        .filter(|(f, _, _)| f.matches(topic.as_str()))
                        .map(|(_, _, cb)| cb.clone())
                        .collect()
                };
                for cb in callbacks {
                    cb(sched, topic.as_str(), payload.as_str());
                }
            }
            Packet::PubAck { message_id, .. } => {
                self.inner.lock().pending.remove(&message_id);
            }
            Packet::ConnAck {
                session_present, ..
            } => self.on_connack(sched, session_present),
            Packet::PingResp { .. } => {
                let mut inner = self.inner.lock();
                inner.awaiting_ping = false;
                inner.missed_pings = 0;
            }
            // Clients ignore the remaining session-management packets.
            _ => {}
        }
    }

    fn on_connack(&self, sched: &mut Scheduler, session_present: bool) {
        let (resubscribe, resend, notify, keepalive, epoch, client_id) = {
            let mut inner = self.inner.lock();
            if !inner.connected || inner.confirmed {
                return; // Stale or duplicate ConnAck.
            }
            inner.confirmed = true;
            inner.backoff_attempt = 0;
            inner.stats.connacks += 1;
            inner.session_epoch += 1;
            // Re-subscribe only when *resuming* against a broker that lost
            // our session (e.g. it restarted). On the very first ConnAck the
            // subscribe packets sent right after connect() are still in
            // flight — re-sending them would double retained deliveries.
            let resubscribe: Vec<(TopicFilter, QoS)> =
                if session_present || inner.stats.connacks == 1 {
                    Vec::new()
                } else {
                    inner
                        .subscriptions
                        .iter()
                        .map(|(f, q, _)| (f.clone(), *q))
                        .collect()
                };
            // Drain the pending queue in message-id order so resumed
            // publishes leave deterministically and oldest-first.
            let mut mids: Vec<u64> = inner.pending.keys().copied().collect();
            mids.sort_unstable();
            let resend: Vec<Packet> = mids
                .iter()
                .filter_map(|m| inner.pending.get(m).map(|p| p.packet.clone()))
                .collect();
            (
                resubscribe,
                resend,
                inner.connection_listeners.clone(),
                inner.keepalive,
                inner.session_epoch,
                inner.client_id.clone(),
            )
        };
        for (filter, qos) in resubscribe {
            self.send(
                sched,
                &Packet::Subscribe {
                    client_id: client_id.clone(),
                    filter,
                    qos,
                },
            );
        }
        for packet in resend {
            self.send(sched, &packet);
        }
        for listener in notify {
            listener(sched, true);
        }
        if let Some(interval) = keepalive {
            self.schedule_ping(sched, epoch, interval);
        }
    }

    fn schedule_ping(&self, sched: &mut Scheduler, epoch: u64, interval: SimDuration) {
        let client = self.clone();
        sched.schedule_after(interval, move |s| {
            // None: loop is stale. Some(None): declare the connection
            // lost. Some(Some(id)): probe again.
            let action = {
                let mut inner = client.inner.lock();
                if inner.session_epoch != epoch || !inner.connected {
                    None
                } else {
                    if inner.awaiting_ping {
                        inner.missed_pings += 1;
                        inner.stats.pings_missed += 1;
                    } else {
                        inner.missed_pings = 0;
                    }
                    if inner.missed_pings >= MAX_MISSED_PINGS {
                        Some(None)
                    } else {
                        inner.awaiting_ping = true;
                        inner.stats.pings_sent += 1;
                        Some(Some(inner.client_id.clone()))
                    }
                }
            };
            match action {
                None => {}
                Some(None) => client.connection_lost(s),
                Some(Some(client_id)) => {
                    client.send(s, &Packet::PingReq { client_id });
                    client.schedule_ping(s, epoch, interval);
                }
            }
        });
    }

    fn connection_lost(&self, sched: &mut Scheduler) {
        let (notify, reconnect) = {
            let mut inner = self.inner.lock();
            if !inner.connected {
                return;
            }
            inner.connected = false;
            inner.confirmed = false;
            inner.session_epoch += 1;
            inner.awaiting_ping = false;
            inner.missed_pings = 0;
            inner.stats.connection_losses += 1;
            let reconnect = if inner.auto_reconnect {
                let attempt = inner.backoff_attempt;
                inner.backoff_attempt = inner.backoff_attempt.saturating_add(1);
                let policy = inner.reconnect.clone();
                let delay = {
                    let rng = &mut inner.rng;
                    policy.delay(attempt, rng)
                };
                Some((delay, inner.session_epoch))
            } else {
                None
            };
            (inner.connection_listeners.clone(), reconnect)
        };
        for listener in notify {
            listener(sched, false);
        }
        if let Some((delay, epoch)) = reconnect {
            let client = self.clone();
            sched.schedule_after(delay, move |s| {
                let go = {
                    let inner = client.inner.lock();
                    inner.session_epoch == epoch && !inner.connected
                };
                if go {
                    client.connect(s);
                }
            });
        }
    }

    fn send(&self, sched: &mut Scheduler, packet: &Packet) {
        let _ = self
            .network
            .send(sched, &self.endpoint, &self.broker, packet.to_wire());
    }
}
