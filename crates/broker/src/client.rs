//! The client-side broker binding.
//!
//! On the paper's mobile side this role is played by the `MQTTService`
//! class: it keeps the connection to the Mosquitto broker, receives
//! configuration pushes and sensing triggers, and acknowledges them. The
//! server side uses the same client type to publish triggers.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_net::{EndpointId, Network};
use sensocial_runtime::{Scheduler, SimDuration};

use crate::packet::{Packet, QoS};
use crate::topic::TopicFilter;

/// Callback invoked with `(scheduler, topic, payload)` for each message
/// matching a subscription.
type Subscriber = Arc<dyn Fn(&mut Scheduler, &str, &str) + Send + Sync>;

/// How many broker-assigned message ids to remember for QoS-1
/// deduplication.
const DEDUP_WINDOW: usize = 1_024;

struct PendingPublish {
    packet: Packet,
    retries_left: u32,
}

struct Inner {
    client_id: String,
    subscriptions: Vec<(TopicFilter, Subscriber)>,
    seen_ids: HashSet<u64>,
    seen_order: VecDeque<u64>,
    pending: HashMap<u64, PendingPublish>,
    next_message_id: u64,
    retry_timeout: SimDuration,
    max_retries: u32,
    connected: bool,
}

/// A broker client bound to a network endpoint.
///
/// Cloneable handle. Incoming publishes are dispatched to the callbacks
/// registered with [`BrokerClient::subscribe`]; QoS-1 messages are
/// acknowledged and deduplicated automatically. See the
/// [crate-level example](crate).
#[derive(Clone)]
pub struct BrokerClient {
    inner: Arc<Mutex<Inner>>,
    network: Network,
    endpoint: EndpointId,
    broker: EndpointId,
}

impl std::fmt::Debug for BrokerClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("BrokerClient")
            .field("client_id", &inner.client_id)
            .field("endpoint", &self.endpoint)
            .field("subscriptions", &inner.subscriptions.len())
            .field("connected", &inner.connected)
            .finish()
    }
}

impl BrokerClient {
    /// Creates a client that will speak to the broker at `broker_endpoint`
    /// from its own `endpoint`, registering the endpoint on `network`.
    ///
    /// The client starts disconnected; call [`BrokerClient::connect`].
    pub fn new(
        network: &Network,
        endpoint: impl Into<EndpointId>,
        broker_endpoint: impl Into<EndpointId>,
        client_id: impl Into<String>,
    ) -> Self {
        let endpoint = endpoint.into();
        let client = BrokerClient {
            inner: Arc::new(Mutex::new(Inner {
                client_id: client_id.into(),
                subscriptions: Vec::new(),
                seen_ids: HashSet::new(),
                seen_order: VecDeque::new(),
                pending: HashMap::new(),
                next_message_id: 1,
                retry_timeout: SimDuration::from_secs(5),
                max_retries: 5,
                connected: false,
            })),
            network: network.clone(),
            endpoint: endpoint.clone(),
            broker: broker_endpoint.into(),
        };
        let handle = client.clone();
        network.register(endpoint, move |sched, msg| {
            if let Ok(packet) = Packet::from_wire(&msg.payload) {
                handle.handle_packet(sched, packet);
            }
        });
        client
    }

    /// The client's stable identifier.
    pub fn client_id(&self) -> String {
        self.inner.lock().client_id.clone()
    }

    /// The endpoint this client is reachable at.
    pub fn endpoint(&self) -> &EndpointId {
        &self.endpoint
    }

    /// Whether [`BrokerClient::connect`] has been called (and not
    /// superseded by [`BrokerClient::disconnect`]).
    pub fn is_connected(&self) -> bool {
        self.inner.lock().connected
    }

    /// Opens (or resumes) the session with the broker. Queued offline
    /// messages are delivered by the broker after the connect packet
    /// arrives.
    pub fn connect(&self, sched: &mut Scheduler) {
        let client_id = {
            let mut inner = self.inner.lock();
            inner.connected = true;
            inner.client_id.clone()
        };
        self.send(sched, &Packet::Connect { client_id });
    }

    /// Closes the connection; the broker queues matching messages until the
    /// next connect.
    pub fn disconnect(&self, sched: &mut Scheduler) {
        let client_id = {
            let mut inner = self.inner.lock();
            inner.connected = false;
            inner.client_id.clone()
        };
        self.send(sched, &Packet::Disconnect { client_id });
    }

    /// Subscribes to `filter`, routing matching messages to `callback`.
    ///
    /// # Panics
    ///
    /// Panics if `filter` is not a valid topic filter — subscriptions are
    /// developer-written constants, so malformed ones are programming
    /// errors.
    pub fn subscribe<F>(&self, sched: &mut Scheduler, filter: &str, qos: QoS, callback: F)
    where
        F: Fn(&mut Scheduler, &str, &str) + Send + Sync + 'static,
    {
        let filter: TopicFilter = filter.parse().expect("invalid topic filter");
        let client_id = {
            let mut inner = self.inner.lock();
            inner
                .subscriptions
                .push((filter.clone(), Arc::new(callback)));
            inner.client_id.clone()
        };
        self.send(
            sched,
            &Packet::Subscribe {
                client_id,
                filter,
                qos,
            },
        );
    }

    /// Removes the subscription for `filter` (exact string match), both
    /// locally and on the broker.
    pub fn unsubscribe(&self, sched: &mut Scheduler, filter: &str) {
        let Ok(filter) = filter.parse::<TopicFilter>() else {
            return;
        };
        let client_id = {
            let mut inner = self.inner.lock();
            inner.subscriptions.retain(|(f, _)| *f != filter);
            inner.client_id.clone()
        };
        self.send(sched, &Packet::Unsubscribe { client_id, filter });
    }

    /// Publishes `payload` to `topic`.
    ///
    /// With [`QoS::AtLeastOnce`] the publish is retransmitted until the
    /// broker acknowledges it (bounded retries), so triggers survive a
    /// lossy link.
    pub fn publish(
        &self,
        sched: &mut Scheduler,
        topic: &str,
        payload: &str,
        qos: QoS,
        retain: bool,
    ) {
        let (packet, retry) = {
            let mut inner = self.inner.lock();
            let message_id = if qos == QoS::AtLeastOnce {
                let mid = inner.next_message_id;
                inner.next_message_id += 1;
                Some(mid)
            } else {
                None
            };
            let packet = Packet::Publish {
                topic: topic.to_owned(),
                payload: payload.to_owned(),
                qos,
                message_id,
                retain,
                sender: Some(inner.client_id.clone()),
            };
            if let Some(mid) = message_id {
                let retries_left = inner.max_retries;
                inner.pending.insert(
                    mid,
                    PendingPublish {
                        packet: packet.clone(),
                        retries_left,
                    },
                );
                (packet, Some((mid, inner.retry_timeout)))
            } else {
                (packet, None)
            }
        };
        self.send(sched, &packet);
        if let Some((mid, timeout)) = retry {
            self.schedule_retry(sched, mid, timeout);
        }
    }

    fn schedule_retry(&self, sched: &mut Scheduler, message_id: u64, timeout: SimDuration) {
        let client = self.clone();
        sched.schedule_after(timeout, move |s| {
            let (resend, timeout) = {
                let mut inner = client.inner.lock();
                let timeout = inner.retry_timeout;
                match inner.pending.get_mut(&message_id) {
                    None => (None, timeout),
                    Some(p) if p.retries_left == 0 => {
                        inner.pending.remove(&message_id);
                        (None, timeout)
                    }
                    Some(p) => {
                        p.retries_left -= 1;
                        (Some(p.packet.clone()), timeout)
                    }
                }
            };
            if let Some(packet) = resend {
                client.send(s, &packet);
                client.schedule_retry(s, message_id, timeout);
            }
        });
    }

    fn handle_packet(&self, sched: &mut Scheduler, packet: Packet) {
        match packet {
            Packet::Publish {
                topic,
                payload,
                qos,
                message_id,
                ..
            } => {
                // Acknowledge first, then dedupe redeliveries.
                if qos == QoS::AtLeastOnce {
                    if let Some(mid) = message_id {
                        let (client_id, duplicate) = {
                            let mut inner = self.inner.lock();
                            let duplicate = !inner.seen_ids.insert(mid);
                            if !duplicate {
                                inner.seen_order.push_back(mid);
                                if inner.seen_order.len() > DEDUP_WINDOW {
                                    if let Some(old) = inner.seen_order.pop_front() {
                                        inner.seen_ids.remove(&old);
                                    }
                                }
                            }
                            (inner.client_id.clone(), duplicate)
                        };
                        self.send(
                            sched,
                            &Packet::PubAck {
                                message_id: mid,
                                client_id: Some(client_id),
                            },
                        );
                        if duplicate {
                            return;
                        }
                    }
                }
                let callbacks: Vec<Subscriber> = {
                    let inner = self.inner.lock();
                    inner
                        .subscriptions
                        .iter()
                        .filter(|(f, _)| f.matches(&topic))
                        .map(|(_, cb)| cb.clone())
                        .collect()
                };
                for cb in callbacks {
                    cb(sched, &topic, &payload);
                }
            }
            Packet::PubAck { message_id, .. } => {
                self.inner.lock().pending.remove(&message_id);
            }
            // Clients ignore session-management packets.
            _ => {}
        }
    }

    fn send(&self, sched: &mut Scheduler, packet: &Packet) {
        let _ = self
            .network
            .send(sched, &self.endpoint, &self.broker, packet.to_wire());
    }
}
