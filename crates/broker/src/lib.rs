//! MQTT-style publish/subscribe broker (Mosquitto substitute).
//!
//! SenSocial notifies mobiles about new/modified stream configurations and
//! OSN-action sensing triggers "using the Mosquitto broker … via the MQTT
//! protocol", chosen over HTTP because push "does not require continuous
//! polling from the mobile side, resulting in a lower battery consumption"
//! (paper §4). This crate reproduces the slice of MQTT the middleware
//! relies on:
//!
//! * hierarchical topics with `+` (single-level) and `#` (multi-level)
//!   wildcard subscription filters — [`TopicFilter`];
//! * QoS 0 (at-most-once) and QoS 1 (at-least-once, with acknowledgement
//!   and retry) delivery — [`QoS`];
//! * retained messages, delivered immediately to new subscribers;
//! * per-client sessions with offline queues: messages published to a
//!   disconnected (but known) client's subscriptions are delivered when it
//!   reconnects.
//!
//! Hot-path memory discipline: topics are interned
//! ([`sensocial_types::InternedTopic`]), payloads are shared immutable
//! [`Payload`]s (fan-out bumps a refcount instead of cloning the string),
//! queued messages travel as [`Envelope`]s, and deliveries within one
//! virtual instant are flushed as a single batch (observable via the
//! `broker.batch_size` histogram; see [`Broker::telemetry`]).
//!
//! The broker and its clients exchange JSON packets over the simulated
//! [`Network`](sensocial_net::Network), so every trigger and configuration
//! push pays realistic latency and shows up in the traffic hooks that feed
//! the energy model.
//!
//! # Example
//!
//! ```
//! use sensocial_broker::{Broker, BrokerClient, QoS};
//! use sensocial_net::Network;
//! use sensocial_runtime::Scheduler;
//! use std::sync::{Arc, Mutex};
//!
//! let mut sched = Scheduler::new();
//! let net = Network::new(7);
//! let broker = Broker::new(&net, "broker");
//!
//! let phone = BrokerClient::new(&net, "phone-endpoint", "broker", "phone");
//! phone.connect(&mut sched);
//!
//! let seen = Arc::new(Mutex::new(Vec::new()));
//! let sink = seen.clone();
//! phone.subscribe(&mut sched, "sensocial/trigger/+", QoS::AtLeastOnce, move |_s, topic, payload| {
//!     sink.lock().unwrap().push((topic.to_owned(), payload.to_owned()));
//! });
//!
//! let server = BrokerClient::new(&net, "server-endpoint", "broker", "server");
//! server.connect(&mut sched);
//! server.publish(&mut sched, "sensocial/trigger/phone", "{\"action\":\"post\"}", QoS::AtLeastOnce, false);
//!
//! sched.run();
//! assert_eq!(seen.lock().unwrap().len(), 1);
//! # drop(broker);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod client;
mod packet;
mod topic;

pub use broker::{Broker, BrokerConfig, BrokerStats};
pub use client::{BrokerClient, ClientStats, ReconnectPolicy};
pub use packet::{Envelope, Packet, Payload, QoS, MAX_WIRE_LEN};
pub use topic::TopicFilter;
