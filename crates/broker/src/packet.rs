//! Wire packets exchanged between broker and clients.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::topic::TopicFilter;

/// MQTT-style quality-of-service level.
///
/// SenSocial's triggers and configuration pushes use at-least-once
/// delivery; bulk sensor uplink tolerates at-most-once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum QoS {
    /// Fire-and-forget: no acknowledgement, lost messages stay lost.
    AtMostOnce,
    /// Acknowledged delivery with retransmission; duplicates possible.
    AtLeastOnce,
}

impl fmt::Display for QoS {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QoS::AtMostOnce => f.write_str("qos0"),
            QoS::AtLeastOnce => f.write_str("qos1"),
        }
    }
}

/// A broker protocol packet. Serialized as JSON on the simulated network
/// so payload sizes (and thus radio energy) are realistic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Packet {
    /// Client → broker: open (or resume) a session.
    Connect {
        /// The client's stable identifier.
        client_id: String,
    },
    /// Broker → client: the session is open. `session_present` tells a
    /// reconnecting client whether the broker still holds its subscriptions
    /// (if not — e.g. after a broker restart — the client re-subscribes).
    ConnAck {
        /// The client's stable identifier.
        client_id: String,
        /// Whether the broker already knew this session.
        session_present: bool,
    },
    /// Client → broker: close the session's connection (the session and its
    /// subscriptions persist; deliveries queue until reconnect).
    Disconnect {
        /// The client's stable identifier.
        client_id: String,
    },
    /// Client → broker: keepalive probe. The broker answers with
    /// [`Packet::PingResp`] only while it considers the session connected,
    /// so missing responses signal a dead connection (or a broker that has
    /// given up on us).
    PingReq {
        /// The client's stable identifier.
        client_id: String,
    },
    /// Broker → client: keepalive response.
    PingResp {
        /// The client's stable identifier.
        client_id: String,
    },
    /// Client → broker: add a subscription.
    Subscribe {
        /// The client's stable identifier.
        client_id: String,
        /// Topic filter to subscribe to.
        filter: TopicFilter,
        /// Delivery QoS for matched messages.
        qos: QoS,
    },
    /// Client → broker: remove a subscription.
    Unsubscribe {
        /// The client's stable identifier.
        client_id: String,
        /// The filter to remove (exact string match).
        filter: TopicFilter,
    },
    /// Either direction: publish a message.
    Publish {
        /// Concrete topic the message is published to.
        topic: String,
        /// UTF-8 payload (the middleware publishes JSON documents).
        payload: String,
        /// Delivery QoS.
        qos: QoS,
        /// Message id, present iff `qos` requires acknowledgement.
        message_id: Option<u64>,
        /// Whether the broker should retain this message for future
        /// subscribers.
        retain: bool,
        /// Publishing client id (set on client → broker legs).
        sender: Option<String>,
    },
    /// Either direction: acknowledge a QoS-1 publish.
    PubAck {
        /// The acknowledged message id.
        message_id: u64,
        /// Acknowledging client id (set on client → broker legs).
        client_id: Option<String>,
    },
}

/// Upper bound on an accepted wire frame. Anything larger is rejected
/// before JSON parsing — a corrupted length or a hostile peer must not make
/// the broker buffer unbounded input.
pub const MAX_WIRE_LEN: usize = 256 * 1024;

impl Packet {
    /// Serializes the packet to its JSON wire form.
    pub fn to_wire(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("packets always serialize") // lint:allow(expect) — plain-field struct; serialization cannot fail
    }

    /// Parses a packet from its JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns an error for frames larger than [`MAX_WIRE_LEN`], and the
    /// underlying `serde_json` error for malformed (e.g. truncated) bytes.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        if bytes.len() > MAX_WIRE_LEN {
            use serde::de::Error as _;
            return Err(serde_json::Error::custom(format!(
                "wire frame of {} bytes exceeds MAX_WIRE_LEN ({MAX_WIRE_LEN})",
                bytes.len()
            )));
        }
        serde_json::from_slice(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_round_trip_the_wire() {
        let packets = vec![
            Packet::Connect {
                client_id: "phone".into(),
            },
            Packet::Subscribe {
                client_id: "phone".into(),
                filter: "a/+/b".parse().unwrap(),
                qos: QoS::AtLeastOnce,
            },
            Packet::Publish {
                topic: "a/x/b".into(),
                payload: "{\"k\":1}".into(),
                qos: QoS::AtLeastOnce,
                message_id: Some(42),
                retain: true,
                sender: Some("server".into()),
            },
            Packet::PubAck {
                message_id: 42,
                client_id: Some("phone".into()),
            },
            Packet::ConnAck {
                client_id: "phone".into(),
                session_present: true,
            },
            Packet::Disconnect {
                client_id: "phone".into(),
            },
            Packet::PingReq {
                client_id: "phone".into(),
            },
            Packet::PingResp {
                client_id: "phone".into(),
            },
        ];
        for p in packets {
            let wire = p.to_wire();
            assert_eq!(Packet::from_wire(&wire).unwrap(), p);
        }
    }

    #[test]
    fn malformed_wire_is_an_error() {
        assert!(Packet::from_wire(b"not json").is_err());
        assert!(Packet::from_wire(b"{\"type\":\"bogus\"}").is_err());
    }

    #[test]
    fn truncated_wire_is_an_error() {
        let wire = Packet::Publish {
            topic: "a/b".into(),
            payload: "payload".into(),
            qos: QoS::AtLeastOnce,
            message_id: Some(7),
            retain: false,
            sender: Some("phone".into()),
        }
        .to_wire();
        // Every strict prefix must fail to parse, not mis-parse.
        for cut in 0..wire.len() {
            assert!(
                Packet::from_wire(&wire[..cut]).is_err(),
                "prefix of {cut} bytes parsed"
            );
        }
    }

    #[test]
    fn oversized_wire_is_rejected() {
        let huge = Packet::Publish {
            topic: "a".into(),
            payload: "x".repeat(MAX_WIRE_LEN),
            qos: QoS::AtMostOnce,
            message_id: None,
            retain: false,
            sender: None,
        }
        .to_wire();
        assert!(huge.len() > MAX_WIRE_LEN);
        let err = Packet::from_wire(&huge).unwrap_err();
        assert!(err.to_string().contains("MAX_WIRE_LEN"));
        // At the boundary itself parsing still works.
        let garbage = vec![b'x'; MAX_WIRE_LEN];
        assert!(Packet::from_wire(&garbage).is_err(), "garbage, but not oversized");
    }

    #[test]
    fn qos_display() {
        assert_eq!(QoS::AtMostOnce.to_string(), "qos0");
        assert_eq!(QoS::AtLeastOnce.to_string(), "qos1");
    }
}
