//! Wire packets exchanged between broker and clients.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Deserializer, Serialize, Serializer};
use sensocial_types::InternedTopic;

use crate::topic::TopicFilter;

/// An immutable, reference-counted message payload.
///
/// Fan-out used to clone the payload `String` once per subscriber; a
/// `Payload` clone is a refcount bump, so the broker's delivery targets,
/// offline queues, retained map and pending-retry table all share one
/// allocation per message. Payloads are UTF-8 (the middleware publishes
/// JSON documents), so the wire form stays a plain JSON string —
/// byte-identical to the `String` it replaced. Unlike topics, payloads
/// are unique per message and are *not* pooled in the interner.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Payload(Arc<str>);

impl Payload {
    /// Wraps a payload string in a shared allocation.
    pub fn new(payload: impl Into<Payload>) -> Self {
        payload.into()
    }

    /// The payload as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty (an empty retained publish clears the
    /// retained entry).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Payload {
    fn from(s: &str) -> Self {
        Payload(Arc::from(s))
    }
}

impl From<String> for Payload {
    fn from(s: String) -> Self {
        Payload(Arc::from(s))
    }
}

impl From<&String> for Payload {
    fn from(s: &String) -> Self {
        Payload(Arc::from(s.as_str()))
    }
}

impl From<Arc<str>> for Payload {
    fn from(s: Arc<str>) -> Self {
        Payload(s)
    }
}

impl AsRef<str> for Payload {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Serialize for Payload {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0)
    }
}

impl<'de> Deserialize<'de> for Payload {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Payload(Arc::from(s)))
    }
}

/// One routable message: an interned topic, a shared payload and its QoS.
///
/// The single shape the broker's session offline queues, delivery batches
/// and retained-message handling all speak — replacing the ad-hoc
/// `(String, String, QoS)` tuples so Arc'd payloads and batching share
/// one type. Cloning an `Envelope` is two refcount bumps and a `Copy`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    /// Concrete topic the message was published to.
    pub topic: InternedTopic,
    /// The shared message payload.
    pub payload: Payload,
    /// Delivery QoS (already capped at the subscription's maximum where
    /// applicable).
    pub qos: QoS,
}

impl Envelope {
    /// Creates an envelope.
    pub fn new(
        topic: impl Into<InternedTopic>,
        payload: impl Into<Payload>,
        qos: QoS,
    ) -> Self {
        Envelope {
            topic: topic.into(),
            payload: payload.into(),
            qos,
        }
    }
}

/// MQTT-style quality-of-service level.
///
/// SenSocial's triggers and configuration pushes use at-least-once
/// delivery; bulk sensor uplink tolerates at-most-once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum QoS {
    /// Fire-and-forget: no acknowledgement, lost messages stay lost.
    AtMostOnce,
    /// Acknowledged delivery with retransmission; duplicates possible.
    AtLeastOnce,
}

impl fmt::Display for QoS {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QoS::AtMostOnce => f.write_str("qos0"),
            QoS::AtLeastOnce => f.write_str("qos1"),
        }
    }
}

/// A broker protocol packet. Serialized as JSON on the simulated network
/// so payload sizes (and thus radio energy) are realistic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Packet {
    /// Client → broker: open (or resume) a session.
    Connect {
        /// The client's stable identifier.
        client_id: String,
    },
    /// Broker → client: the session is open. `session_present` tells a
    /// reconnecting client whether the broker still holds its subscriptions
    /// (if not — e.g. after a broker restart — the client re-subscribes).
    ConnAck {
        /// The client's stable identifier.
        client_id: String,
        /// Whether the broker already knew this session.
        session_present: bool,
    },
    /// Client → broker: close the session's connection (the session and its
    /// subscriptions persist; deliveries queue until reconnect).
    Disconnect {
        /// The client's stable identifier.
        client_id: String,
    },
    /// Client → broker: keepalive probe. The broker answers with
    /// [`Packet::PingResp`] only while it considers the session connected,
    /// so missing responses signal a dead connection (or a broker that has
    /// given up on us).
    PingReq {
        /// The client's stable identifier.
        client_id: String,
    },
    /// Broker → client: keepalive response.
    PingResp {
        /// The client's stable identifier.
        client_id: String,
    },
    /// Client → broker: add a subscription.
    Subscribe {
        /// The client's stable identifier.
        client_id: String,
        /// Topic filter to subscribe to.
        filter: TopicFilter,
        /// Delivery QoS for matched messages.
        qos: QoS,
    },
    /// Client → broker: remove a subscription.
    Unsubscribe {
        /// The client's stable identifier.
        client_id: String,
        /// The filter to remove (exact string match).
        filter: TopicFilter,
    },
    /// Either direction: publish a message.
    Publish {
        /// Concrete topic the message is published to (interned: the
        /// broker re-uses one allocation per distinct topic).
        topic: InternedTopic,
        /// UTF-8 payload (the middleware publishes JSON documents),
        /// shared across every fan-out leg.
        payload: Payload,
        /// Delivery QoS.
        qos: QoS,
        /// Message id, present iff `qos` requires acknowledgement.
        message_id: Option<u64>,
        /// Whether the broker should retain this message for future
        /// subscribers.
        retain: bool,
        /// Publishing client id (set on client → broker legs).
        sender: Option<String>,
    },
    /// Either direction: acknowledge a QoS-1 publish.
    PubAck {
        /// The acknowledged message id.
        message_id: u64,
        /// Acknowledging client id (set on client → broker legs).
        client_id: Option<String>,
    },
}

/// Upper bound on an accepted wire frame. Anything larger is rejected
/// before JSON parsing — a corrupted length or a hostile peer must not make
/// the broker buffer unbounded input.
pub const MAX_WIRE_LEN: usize = 256 * 1024;

impl Packet {
    /// Serializes the packet to its JSON wire form.
    pub fn to_wire(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("packets always serialize") // lint:allow(expect) — plain-field struct; serialization cannot fail
    }

    /// Parses a packet from its JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns an error for frames larger than [`MAX_WIRE_LEN`], and the
    /// underlying `serde_json` error for malformed (e.g. truncated) bytes.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        if bytes.len() > MAX_WIRE_LEN {
            use serde::de::Error as _;
            return Err(serde_json::Error::custom(format!(
                "wire frame of {} bytes exceeds MAX_WIRE_LEN ({MAX_WIRE_LEN})",
                bytes.len()
            )));
        }
        serde_json::from_slice(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_round_trip_the_wire() {
        let packets = vec![
            Packet::Connect {
                client_id: "phone".into(),
            },
            Packet::Subscribe {
                client_id: "phone".into(),
                filter: "a/+/b".parse().unwrap(),
                qos: QoS::AtLeastOnce,
            },
            Packet::Publish {
                topic: "a/x/b".into(),
                payload: "{\"k\":1}".into(),
                qos: QoS::AtLeastOnce,
                message_id: Some(42),
                retain: true,
                sender: Some("server".into()),
            },
            Packet::PubAck {
                message_id: 42,
                client_id: Some("phone".into()),
            },
            Packet::ConnAck {
                client_id: "phone".into(),
                session_present: true,
            },
            Packet::Disconnect {
                client_id: "phone".into(),
            },
            Packet::PingReq {
                client_id: "phone".into(),
            },
            Packet::PingResp {
                client_id: "phone".into(),
            },
        ];
        for p in packets {
            let wire = p.to_wire();
            assert_eq!(Packet::from_wire(&wire).unwrap(), p);
        }
    }

    #[test]
    fn malformed_wire_is_an_error() {
        assert!(Packet::from_wire(b"not json").is_err());
        assert!(Packet::from_wire(b"{\"type\":\"bogus\"}").is_err());
    }

    #[test]
    fn truncated_wire_is_an_error() {
        let wire = Packet::Publish {
            topic: "a/b".into(),
            payload: "payload".into(),
            qos: QoS::AtLeastOnce,
            message_id: Some(7),
            retain: false,
            sender: Some("phone".into()),
        }
        .to_wire();
        // Every strict prefix must fail to parse, not mis-parse.
        for cut in 0..wire.len() {
            assert!(
                Packet::from_wire(&wire[..cut]).is_err(),
                "prefix of {cut} bytes parsed"
            );
        }
    }

    #[test]
    fn oversized_wire_is_rejected() {
        let huge = Packet::Publish {
            topic: "a".into(),
            payload: "x".repeat(MAX_WIRE_LEN).into(),
            qos: QoS::AtMostOnce,
            message_id: None,
            retain: false,
            sender: None,
        }
        .to_wire();
        assert!(huge.len() > MAX_WIRE_LEN);
        let err = Packet::from_wire(&huge).unwrap_err();
        assert!(err.to_string().contains("MAX_WIRE_LEN"));
        // At the boundary itself parsing still works.
        let garbage = vec![b'x'; MAX_WIRE_LEN];
        assert!(Packet::from_wire(&garbage).is_err(), "garbage, but not oversized");
    }

    #[test]
    fn qos_display() {
        assert_eq!(QoS::AtMostOnce.to_string(), "qos0");
        assert_eq!(QoS::AtLeastOnce.to_string(), "qos1");
    }

    #[test]
    fn typed_publish_wire_matches_the_plain_string_form() {
        // The Arc-backed newtypes must be wire-invisible: topics and
        // payloads stay plain JSON strings.
        let wire = Packet::Publish {
            topic: "a/b".into(),
            payload: "{\"k\":1}".into(),
            qos: QoS::AtMostOnce,
            message_id: None,
            retain: false,
            sender: None,
        }
        .to_wire();
        let json: serde_json::Value = serde_json::from_slice(&wire).unwrap();
        assert_eq!(json["topic"], "a/b");
        assert_eq!(json["payload"], "{\"k\":1}");
    }

    #[test]
    fn envelope_clone_shares_allocations() {
        let e = Envelope::new("sensocial/uplink/phone", "{\"v\":1}", QoS::AtMostOnce);
        let f = e.clone();
        assert!(e.topic.ptr_eq(&f.topic));
        assert_eq!(e, f);
        assert_eq!(e.payload.len(), 7);
        assert!(!e.payload.is_empty());
    }
}
