//! Topic names and wildcard subscription filters.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};
use sensocial_types::Error;

/// A parsed MQTT-style topic filter.
///
/// Segments are separated by `/`. A `+` segment matches exactly one topic
/// level; a trailing `#` matches any number of remaining levels (including
/// zero, per the MQTT specification: `sport/#` matches `sport`).
///
/// # Example
///
/// ```
/// use sensocial_broker::TopicFilter;
///
/// let f: TopicFilter = "sensocial/+/trigger/#".parse().unwrap();
/// assert!(f.matches("sensocial/phone1/trigger/osn"));
/// assert!(f.matches("sensocial/phone2/trigger/osn/post/42"));
/// assert!(!f.matches("sensocial/phone1/config"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct TopicFilter {
    raw: String,
    segments: Vec<Segment>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Segment {
    Literal(String),
    SingleLevel,
    MultiLevel,
}

impl TopicFilter {
    /// Parses a filter string.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the filter is empty, contains an
    /// empty segment, uses `#` anywhere but as the final segment, or mixes
    /// wildcards into literal segments (e.g. `a+b`).
    pub fn parse(raw: &str) -> Result<Self, Error> {
        if raw.is_empty() {
            return Err(Error::InvalidConfig("empty topic filter".into()));
        }
        let parts: Vec<&str> = raw.split('/').collect();
        let mut segments = Vec::with_capacity(parts.len());
        for (i, part) in parts.iter().enumerate() {
            let segment = match *part {
                "" => {
                    return Err(Error::InvalidConfig(format!(
                        "empty segment in topic filter `{raw}`"
                    )))
                }
                "+" => Segment::SingleLevel,
                "#" => {
                    if i != parts.len() - 1 {
                        return Err(Error::InvalidConfig(format!(
                            "`#` must be the final segment in `{raw}`"
                        )));
                    }
                    Segment::MultiLevel
                }
                literal => {
                    if literal.contains('+') || literal.contains('#') {
                        return Err(Error::InvalidConfig(format!(
                            "wildcard inside literal segment `{literal}` in `{raw}`"
                        )));
                    }
                    Segment::Literal(literal.to_owned())
                }
            };
            segments.push(segment);
        }
        Ok(TopicFilter {
            raw: raw.to_owned(),
            segments,
        })
    }

    /// The original filter string.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// Whether `topic` (a concrete topic name, no wildcards) matches this
    /// filter.
    pub fn matches(&self, topic: &str) -> bool {
        let levels: Vec<&str> = topic.split('/').collect();
        self.match_from(0, &levels)
    }

    fn match_from(&self, seg_idx: usize, levels: &[&str]) -> bool {
        let mut i = seg_idx;
        let mut l = 0;
        while i < self.segments.len() {
            match &self.segments[i] {
                Segment::MultiLevel => return true,
                Segment::SingleLevel => {
                    if l >= levels.len() {
                        return false;
                    }
                    i += 1;
                    l += 1;
                }
                Segment::Literal(lit) => {
                    if l >= levels.len() || levels[l] != lit {
                        return false;
                    }
                    i += 1;
                    l += 1;
                }
            }
        }
        l == levels.len()
    }
}

impl FromStr for TopicFilter {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TopicFilter::parse(s)
    }
}

impl TryFrom<String> for TopicFilter {
    type Error = Error;

    fn try_from(s: String) -> Result<Self, Self::Error> {
        TopicFilter::parse(&s)
    }
}

impl From<TopicFilter> for String {
    fn from(f: TopicFilter) -> String {
        f.raw
    }
}

/// Panicking conversion for compile-time-literal filters, so the typed
/// [`crate::BrokerClient::subscribe`] API keeps accepting `"a/+/b"`
/// directly. This is exactly the panic the pre-typed string API had;
/// fallible callers use [`TopicFilter::parse`].
impl From<&str> for TopicFilter {
    fn from(s: &str) -> Self {
        TopicFilter::parse(s).expect("invalid topic filter") // lint:allow(expect) — filters passed as literals are compile-time constants, validated by tests
    }
}

impl fmt::Display for TopicFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(s: &str) -> TopicFilter {
        TopicFilter::parse(s).unwrap()
    }

    #[test]
    fn literal_filters_match_exactly() {
        let f = filter("sensocial/config/phone1");
        assert!(f.matches("sensocial/config/phone1"));
        assert!(!f.matches("sensocial/config/phone2"));
        assert!(!f.matches("sensocial/config"));
        assert!(!f.matches("sensocial/config/phone1/extra"));
    }

    #[test]
    fn plus_matches_exactly_one_level() {
        let f = filter("sensocial/+/trigger");
        assert!(f.matches("sensocial/phone1/trigger"));
        assert!(!f.matches("sensocial/trigger"));
        assert!(!f.matches("sensocial/a/b/trigger"));
    }

    #[test]
    fn hash_matches_zero_or_more_levels() {
        let f = filter("sensocial/#");
        assert!(f.matches("sensocial"));
        assert!(f.matches("sensocial/a"));
        assert!(f.matches("sensocial/a/b/c"));
        assert!(!f.matches("other"));
        assert!(filter("#").matches("anything/at/all"));
    }

    #[test]
    fn combined_wildcards() {
        let f = filter("a/+/c/#");
        assert!(f.matches("a/b/c"));
        assert!(f.matches("a/x/c/d/e"));
        assert!(!f.matches("a/b/d"));
    }

    #[test]
    fn invalid_filters_rejected() {
        assert!(TopicFilter::parse("").is_err());
        assert!(TopicFilter::parse("a//b").is_err());
        assert!(TopicFilter::parse("a/#/b").is_err());
        assert!(TopicFilter::parse("a/b+c").is_err());
        assert!(TopicFilter::parse("a/#b").is_err());
    }

    #[test]
    fn serde_round_trip_validates() {
        let f = filter("a/+/b");
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(json, "\"a/+/b\"");
        let back: TopicFilter = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
        assert!(serde_json::from_str::<TopicFilter>("\"a/#/b\"").is_err());
    }

    #[test]
    fn display_round_trips() {
        let f = filter("x/+/#");
        assert_eq!(f.to_string(), "x/+/#");
        assert_eq!(f.as_str(), "x/+/#");
    }
}
