//! End-to-end behaviour tests for the broker over the simulated network.

use std::sync::{Arc, Mutex};

use sensocial_broker::{Broker, BrokerClient, BrokerConfig, QoS, ReconnectPolicy};
use sensocial_net::{LatencyModel, LinkSpec, Network};
use sensocial_runtime::{Scheduler, SimDuration, Timestamp};

struct Fixture {
    sched: Scheduler,
    net: Network,
    broker: Broker,
}

fn fixture() -> Fixture {
    let sched = Scheduler::new();
    let net = Network::new(99);
    net.set_default_link(LinkSpec::with_latency(LatencyModel::constant_ms(20)));
    let broker = Broker::new(&net, "broker");
    Fixture { sched, net, broker }
}

type Seen = Arc<Mutex<Vec<(String, String)>>>;

fn subscribing_client(f: &mut Fixture, name: &str, filter: &str, qos: QoS) -> (BrokerClient, Seen) {
    let client = BrokerClient::new(&f.net, format!("{name}-ep"), "broker", name);
    client.connect(&mut f.sched);
    let seen: Seen = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    client.subscribe(&mut f.sched, filter, qos, move |_s, topic, payload| {
        sink.lock().unwrap().push((topic.into(), payload.into()));
    });
    (client, seen)
}

#[test]
fn publish_reaches_matching_subscribers_only() {
    let mut f = fixture();
    let (_a, seen_a) = subscribing_client(&mut f, "a", "ctx/location/#", QoS::AtMostOnce);
    let (_b, seen_b) = subscribing_client(&mut f, "b", "ctx/audio/#", QoS::AtMostOnce);
    let publisher = BrokerClient::new(&f.net, "pub-ep", "broker", "pub");
    publisher.connect(&mut f.sched);
    f.sched.run();

    publisher.publish(&mut f.sched, "ctx/location/u1", "paris", QoS::AtMostOnce, false);
    f.sched.run();

    assert_eq!(seen_a.lock().unwrap().len(), 1);
    assert_eq!(seen_a.lock().unwrap()[0], ("ctx/location/u1".into(), "paris".into()));
    assert!(seen_b.lock().unwrap().is_empty());
    assert_eq!(f.broker.stats().published, 1);
    assert_eq!(f.broker.stats().delivered, 1);
}

#[test]
fn qos1_survives_a_lossy_downlink() {
    let mut f = fixture();
    // Make the broker→subscriber leg lossy; QoS-1 retries recover it.
    let (_sub, seen) = subscribing_client(&mut f, "sub", "trig/#", QoS::AtLeastOnce);
    f.net.set_link(
        "broker".into(),
        "sub-ep".into(),
        LinkSpec::with_latency(LatencyModel::constant_ms(20)).lossy(0.6),
    );
    let publisher = BrokerClient::new(&f.net, "pub-ep", "broker", "pub");
    publisher.connect(&mut f.sched);
    f.sched.run();

    for i in 0..20 {
        publisher.publish(&mut f.sched, "trig/x", &format!("m{i}"), QoS::AtLeastOnce, false);
    }
    f.sched.run();

    let seen = seen.lock().unwrap();
    // All 20 should arrive despite 60 % loss (5 retries each), exactly once.
    assert_eq!(seen.len(), 20, "delivered {}", seen.len());
    let mut payloads: Vec<&str> = seen.iter().map(|(_, p)| p.as_str()).collect();
    payloads.sort_unstable();
    payloads.dedup();
    assert_eq!(payloads.len(), 20, "duplicates leaked through dedup");
    assert!(f.broker.stats().retries > 0);
}

#[test]
fn qos0_on_lossy_link_loses_messages() {
    let mut f = fixture();
    let (_sub, seen) = subscribing_client(&mut f, "sub", "trig/#", QoS::AtMostOnce);
    f.net.set_link(
        "broker".into(),
        "sub-ep".into(),
        LinkSpec::with_latency(LatencyModel::constant_ms(20)).lossy(0.6),
    );
    let publisher = BrokerClient::new(&f.net, "pub-ep", "broker", "pub");
    publisher.connect(&mut f.sched);
    f.sched.run();

    for i in 0..50 {
        publisher.publish(&mut f.sched, "trig/x", &format!("m{i}"), QoS::AtMostOnce, false);
    }
    f.sched.run();

    let delivered = seen.lock().unwrap().len();
    assert!(delivered < 50, "expected losses, got {delivered}/50");
}

#[test]
fn retained_message_arrives_on_late_subscribe() {
    let mut f = fixture();
    let publisher = BrokerClient::new(&f.net, "pub-ep", "broker", "pub");
    publisher.connect(&mut f.sched);
    publisher.publish(&mut f.sched, "config/phone1", "{\"rate\":60}", QoS::AtLeastOnce, true);
    f.sched.run();

    let (_late, seen) = subscribing_client(&mut f, "late", "config/#", QoS::AtLeastOnce);
    f.sched.run();

    assert_eq!(seen.lock().unwrap().len(), 1);
    assert_eq!(seen.lock().unwrap()[0].1, "{\"rate\":60}");
}

#[test]
fn empty_retained_payload_clears_retention() {
    let mut f = fixture();
    let publisher = BrokerClient::new(&f.net, "pub-ep", "broker", "pub");
    publisher.connect(&mut f.sched);
    publisher.publish(&mut f.sched, "config/p", "v1", QoS::AtMostOnce, true);
    publisher.publish(&mut f.sched, "config/p", "", QoS::AtMostOnce, true);
    f.sched.run();

    let (_sub, seen) = subscribing_client(&mut f, "sub", "config/#", QoS::AtMostOnce);
    f.sched.run();
    assert!(seen.lock().unwrap().is_empty());
}

#[test]
fn offline_session_queues_and_replays_in_order() {
    let mut f = fixture();
    let (sub, seen) = subscribing_client(&mut f, "sub", "trig/#", QoS::AtLeastOnce);
    f.sched.run();
    sub.disconnect(&mut f.sched);
    f.sched.run();

    let publisher = BrokerClient::new(&f.net, "pub-ep", "broker", "pub");
    publisher.connect(&mut f.sched);
    for i in 0..5 {
        publisher.publish(&mut f.sched, "trig/x", &format!("m{i}"), QoS::AtLeastOnce, false);
    }
    f.sched.run();
    assert!(seen.lock().unwrap().is_empty(), "nothing while offline");
    assert_eq!(f.broker.stats().queued_offline, 5);

    sub.connect(&mut f.sched);
    f.sched.run();
    let seen = seen.lock().unwrap();
    let payloads: Vec<&str> = seen.iter().map(|(_, p)| p.as_str()).collect();
    assert_eq!(payloads, vec!["m0", "m1", "m2", "m3", "m4"]);
}

#[test]
fn offline_queue_overflow_drops_oldest() {
    let mut f = fixture();
    f.broker.set_config(BrokerConfig {
        offline_queue_limit: 3,
        ..BrokerConfig::default()
    });
    let (sub, seen) = subscribing_client(&mut f, "sub", "trig/#", QoS::AtMostOnce);
    f.sched.run();
    sub.disconnect(&mut f.sched);
    f.sched.run();

    let publisher = BrokerClient::new(&f.net, "pub-ep", "broker", "pub");
    publisher.connect(&mut f.sched);
    for i in 0..6 {
        publisher.publish(&mut f.sched, "trig/x", &format!("m{i}"), QoS::AtMostOnce, false);
    }
    f.sched.run();
    sub.connect(&mut f.sched);
    f.sched.run();

    let seen = seen.lock().unwrap();
    let payloads: Vec<&str> = seen.iter().map(|(_, p)| p.as_str()).collect();
    assert_eq!(payloads, vec!["m3", "m4", "m5"]);
}

#[test]
fn unsubscribe_stops_delivery() {
    let mut f = fixture();
    let (sub, seen) = subscribing_client(&mut f, "sub", "a/#", QoS::AtMostOnce);
    let publisher = BrokerClient::new(&f.net, "pub-ep", "broker", "pub");
    publisher.connect(&mut f.sched);
    f.sched.run();

    publisher.publish(&mut f.sched, "a/1", "first", QoS::AtMostOnce, false);
    f.sched.run();
    sub.unsubscribe(&mut f.sched, "a/#");
    f.sched.run();
    publisher.publish(&mut f.sched, "a/2", "second", QoS::AtMostOnce, false);
    f.sched.run();

    assert_eq!(seen.lock().unwrap().len(), 1);
    assert_eq!(f.broker.stats().unrouted, 1);
}

#[test]
fn wildcard_subscription_receives_multiple_devices() {
    let mut f = fixture();
    // The server subscribes to all device uplinks with one filter — the
    // paper's broadcast-style server-side stream collection.
    let (_server, seen) = subscribing_client(&mut f, "server", "uplink/+/data", QoS::AtMostOnce);
    f.sched.run();

    for d in ["p1", "p2", "p3"] {
        let c = BrokerClient::new(&f.net, format!("{d}-ep"), "broker", d);
        c.connect(&mut f.sched);
        c.publish(&mut f.sched, &format!("uplink/{d}/data"), d, QoS::AtMostOnce, false);
    }
    f.sched.run();
    assert_eq!(seen.lock().unwrap().len(), 3);
}

#[test]
fn delivery_pays_network_latency() {
    let mut f = fixture();
    let (_sub, seen) = subscribing_client(&mut f, "sub", "t/#", QoS::AtMostOnce);
    let publisher = BrokerClient::new(&f.net, "pub-ep", "broker", "pub");
    publisher.connect(&mut f.sched);
    f.sched.run();
    let start = f.sched.now();
    publisher.publish(&mut f.sched, "t/x", "hi", QoS::AtMostOnce, false);
    f.sched.run();
    // Two 20 ms legs: publisher→broker, broker→subscriber.
    assert_eq!((f.sched.now() - start), SimDuration::from_millis(40));
    assert_eq!(seen.lock().unwrap().len(), 1);
}

#[test]
fn abandoned_delivery_after_retry_exhaustion() {
    let mut f = fixture();
    f.broker.set_config(BrokerConfig {
        retry_timeout: SimDuration::from_secs(1),
        max_retries: 2,
        requeue_on_exhaust: false,
        ..BrokerConfig::default()
    });
    let (_sub, seen) = subscribing_client(&mut f, "sub", "t/#", QoS::AtLeastOnce);
    f.sched.run();
    // Total blackout on the downlink: nothing ever arrives.
    f.net.set_link(
        "broker".into(),
        "sub-ep".into(),
        LinkSpec::with_latency(LatencyModel::constant_ms(20)).lossy(1.0),
    );
    let publisher = BrokerClient::new(&f.net, "pub-ep", "broker", "pub");
    publisher.connect(&mut f.sched);
    publisher.publish(&mut f.sched, "t/x", "hi", QoS::AtLeastOnce, false);
    f.sched.run();

    assert!(seen.lock().unwrap().is_empty());
    assert_eq!(f.broker.stats().abandoned, 1);
    assert_eq!(f.broker.stats().retries, 2);
}

#[test]
fn exhausted_delivery_requeues_and_survives_reconnect() {
    let mut f = fixture();
    f.broker.set_config(BrokerConfig {
        retry_timeout: SimDuration::from_secs(1),
        max_retries: 2,
        ..BrokerConfig::default()
    });
    let (sub, seen) = subscribing_client(&mut f, "sub", "t/#", QoS::AtLeastOnce);
    f.sched.run();
    // Total blackout on the downlink while the retry budget burns.
    f.net.set_link(
        "broker".into(),
        "sub-ep".into(),
        LinkSpec::with_latency(LatencyModel::constant_ms(20)).lossy(1.0),
    );
    let publisher = BrokerClient::new(&f.net, "pub-ep", "broker", "pub");
    publisher.connect(&mut f.sched);
    publisher.publish(&mut f.sched, "t/x", "hi", QoS::AtLeastOnce, false);
    f.sched.run();

    assert!(seen.lock().unwrap().is_empty());
    assert_eq!(f.broker.stats().requeued, 1);
    assert_eq!(f.broker.stats().abandoned, 0);

    // Heal the downlink and resume the session: the parked trigger arrives.
    f.net.set_link(
        "broker".into(),
        "sub-ep".into(),
        LinkSpec::with_latency(LatencyModel::constant_ms(20)),
    );
    sub.connect(&mut f.sched);
    f.sched.run();
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 1, "requeued trigger delivered after reconnect");
    assert_eq!(seen[0], ("t/x".into(), "hi".into()));
}

#[test]
fn keepalive_detects_partition_and_resumes_with_zero_loss() {
    let mut f = fixture();
    let (sub, seen) = subscribing_client(&mut f, "sub", "t/#", QoS::AtLeastOnce);
    sub.set_keepalive(SimDuration::from_secs(2));
    sub.set_reconnect_policy(ReconnectPolicy {
        initial_backoff: SimDuration::from_secs(1),
        max_backoff: SimDuration::from_secs(8),
        jitter: 0.0,
    });
    let publisher = BrokerClient::new(&f.net, "pub-ep", "broker", "pub");
    publisher.connect(&mut f.sched);
    f.sched.run_until(Timestamp::from_secs(5));
    assert!(sub.is_session_confirmed());

    // Cut both directions between subscriber and broker for 20 s; a trigger
    // published mid-outage must survive it.
    f.net
        .partition(&"sub-ep".into(), &"broker".into(), Timestamp::from_secs(25));
    publisher.publish(&mut f.sched, "t/x", "m1", QoS::AtLeastOnce, false);
    f.sched.run_until(Timestamp::from_secs(15));
    assert!(!sub.is_session_confirmed(), "missed pings declared the loss");
    assert!(seen.lock().unwrap().is_empty());

    f.sched.run_until(Timestamp::from_secs(60));
    assert!(sub.is_session_confirmed(), "client reconnected after the heal");
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 1, "trigger survived the partition exactly once");
    assert!(sub.stats().connection_losses >= 1);
    assert!(sub.stats().connacks >= 2);
    assert!(sub.stats().pings_missed >= 2);
    assert!(f.broker.stats().pings > 0);
}

#[test]
fn lost_puback_retry_is_not_rerouted() {
    let mut f = fixture();
    let (_sub, seen) = subscribing_client(&mut f, "sub", "t/#", QoS::AtLeastOnce);
    f.sched.run();
    // The publisher's acks (broker→pub-ep) are blacked out: every client
    // retry re-sends the same (sender, message id) upstream. The broker's
    // inbound dedup window must route only the first copy.
    f.net.set_link(
        "broker".into(),
        "pub-ep".into(),
        LinkSpec::with_latency(LatencyModel::constant_ms(20)).lossy(1.0),
    );
    let publisher = BrokerClient::new(&f.net, "pub-ep", "broker", "pub");
    publisher.connect(&mut f.sched);
    publisher.set_retry_policy(SimDuration::from_secs(1), 3);
    publisher.publish(&mut f.sched, "t/x", "hi", QoS::AtLeastOnce, false);
    f.sched.run();

    assert_eq!(seen.lock().unwrap().len(), 1, "routed exactly once");
    assert_eq!(f.broker.stats().published, 1);
    assert_eq!(f.broker.stats().duplicate_publishes, 3);
    assert_eq!(publisher.stats().dead_lettered, 1);
}

#[test]
fn dead_letter_handler_fires_after_retry_exhaustion() {
    let mut f = fixture();
    let publisher = BrokerClient::new(&f.net, "pub-ep", "broker", "pub");
    publisher.connect(&mut f.sched);
    publisher.set_retry_policy(SimDuration::from_secs(1), 2);
    let dead: Arc<Mutex<Vec<(u64, String, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = dead.clone();
    publisher.set_dead_letter_handler(move |_s, mid, topic, payload| {
        sink.lock().unwrap().push((mid, topic.into(), payload.into()));
    });
    f.sched.run();
    // Blackout the uplink: the publish never reaches the broker at all.
    f.net.set_link(
        "pub-ep".into(),
        "broker".into(),
        LinkSpec::with_latency(LatencyModel::constant_ms(20)).lossy(1.0),
    );
    publisher.publish(&mut f.sched, "t/x", "doomed", QoS::AtLeastOnce, false);
    f.sched.run();

    let dead = dead.lock().unwrap();
    assert_eq!(dead.len(), 1);
    assert_eq!(dead[0].1, "t/x");
    assert_eq!(dead[0].2, "doomed");
    assert_eq!(publisher.stats().dead_lettered, 1);
    assert_eq!(publisher.pending_count(), 0);
}
