//! Property tests pinning the client's QoS-1 dedup-window semantics.
//!
//! The client remembers the last 1 024 broker-assigned message ids. A
//! redelivery whose id is still inside the window is acknowledged but NOT
//! handed to the application; once 1 024 fresh ids have pushed an id out,
//! the same id is accepted (and delivered) again. The window bounds memory,
//! not correctness — re-acceptance of an evicted id is the documented
//! at-least-once behaviour, and these tests pin exactly where the boundary
//! sits.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use sensocial_broker::{BrokerClient, Packet, QoS};
use sensocial_net::Network;
use sensocial_runtime::Scheduler;

/// Must match the client's internal `DEDUP_WINDOW`; the eviction-boundary
/// property fails if the window ever changes silently.
const WINDOW: usize = 1_024;

struct Harness {
    sched: Scheduler,
    net: Network,
    client: BrokerClient,
    delivered: Arc<AtomicUsize>,
    acked: Arc<AtomicUsize>,
}

fn harness() -> Harness {
    let mut sched = Scheduler::new();
    let net = Network::new(5);
    // A fake broker endpoint that only counts the acks coming back.
    let acked = Arc::new(AtomicUsize::new(0));
    let acks = acked.clone();
    net.register("broker".into(), move |_s: &mut Scheduler, m| {
        if let Ok(Packet::PubAck { .. }) = Packet::from_wire(&m.payload) {
            acks.fetch_add(1, Ordering::SeqCst);
        }
    });
    let client = BrokerClient::new(&net, "c-ep", "broker", "c");
    let delivered = Arc::new(AtomicUsize::new(0));
    let count = delivered.clone();
    client.subscribe(&mut sched, "t/#", QoS::AtLeastOnce, move |_s, _t, _p| {
        count.fetch_add(1, Ordering::SeqCst);
    });
    Harness {
        sched,
        net,
        client,
        delivered,
        acked,
    }
}

impl Harness {
    /// Injects a broker→client QoS-1 publish carrying `mid` and drains the
    /// scheduler.
    fn deliver(&mut self, mid: u64) {
        let packet = Packet::Publish {
            topic: "t/x".into(),
            payload: format!("{mid}"),
            qos: QoS::AtLeastOnce,
            message_id: Some(mid),
            retain: false,
            sender: None,
        };
        self.net
            .send(
                &mut self.sched,
                &"broker".into(),
                &"c-ep".into(),
                packet.to_wire(),
            )
            .unwrap();
        self.sched.run();
    }

    fn delivered(&self) -> usize {
        self.delivered.load(Ordering::SeqCst)
    }

    fn acked(&self) -> usize {
        self.acked.load(Ordering::SeqCst)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Re-delivering an id is suppressed while it sits in the window and
    /// accepted again exactly when `WINDOW` fresh ids have evicted it —
    /// and every copy, suppressed or not, is acknowledged.
    #[test]
    fn eviction_boundary(extra in prop_oneof![0usize..4, (WINDOW - 3)..(WINDOW + 3)]) {
        let mut h = harness();
        h.deliver(0);
        for mid in 1..=extra as u64 {
            h.deliver(mid);
        }
        let before = h.delivered();
        prop_assert_eq!(before, extra + 1, "fresh ids all delivered");

        h.deliver(0); // Stale redelivery of the very first id.
        // Id 0 is evicted once `extra + 1 > WINDOW` insertions happened.
        let evicted = extra >= WINDOW;
        prop_assert_eq!(h.delivered(), before + usize::from(evicted));
        prop_assert_eq!(
            h.client.stats().duplicates_suppressed,
            u64::from(!evicted)
        );
        prop_assert_eq!(h.acked(), extra + 2, "every copy is acknowledged");
    }

    /// Within one window, any redelivery pattern yields exactly one
    /// app-level delivery per distinct id, every copy is acknowledged, and
    /// the suppression counter accounts for the rest.
    #[test]
    fn distinct_ids_within_window_delivered_once(
        ids in proptest::collection::vec(0u64..64, 1..40)
    ) {
        let mut h = harness();
        for &mid in &ids {
            h.deliver(mid);
        }
        let mut distinct = ids.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(h.delivered(), distinct.len());
        prop_assert_eq!(h.acked(), ids.len());
        prop_assert_eq!(
            h.client.stats().duplicates_suppressed as usize,
            ids.len() - distinct.len()
        );
    }
}
