//! Property-based tests for topic-filter matching.

use proptest::prelude::*;
use sensocial_broker::TopicFilter;

fn arb_segment() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,5}".prop_map(|s| s)
}

fn arb_topic() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_segment(), 1..6).prop_map(|segs| segs.join("/"))
}

proptest! {
    /// A topic used verbatim as a filter matches itself.
    #[test]
    fn exact_topic_matches_itself(topic in arb_topic()) {
        let f: TopicFilter = topic.parse().unwrap();
        prop_assert!(f.matches(&topic));
    }

    /// Replacing any one segment with `+` still matches.
    #[test]
    fn single_plus_generalizes(topic in arb_topic(), idx in 0usize..6) {
        let mut segs: Vec<&str> = topic.split('/').collect();
        let idx = idx % segs.len();
        segs[idx] = "+";
        let f: TopicFilter = segs.join("/").parse().unwrap();
        prop_assert!(f.matches(&topic));
    }

    /// Truncating at any depth and appending `#` still matches.
    #[test]
    fn hash_suffix_generalizes(topic in arb_topic(), depth in 0usize..6) {
        let segs: Vec<&str> = topic.split('/').collect();
        let depth = depth % segs.len();
        let mut prefix: Vec<&str> = segs[..depth].to_vec();
        prefix.push("#");
        let f: TopicFilter = prefix.join("/").parse().unwrap();
        prop_assert!(f.matches(&topic), "{} should match {}", f, topic);
    }

    /// A filter with more literal segments than the topic has levels never
    /// matches (absent `#`).
    #[test]
    fn longer_literal_filter_never_matches(topic in arb_topic(), extra in arb_segment()) {
        let f: TopicFilter = format!("{topic}/{extra}").parse().unwrap();
        prop_assert!(!f.matches(&topic));
    }

    /// Filters round-trip through their string form.
    #[test]
    fn filter_string_round_trip(topic in arb_topic()) {
        let f: TopicFilter = topic.parse().unwrap();
        let again: TopicFilter = f.as_str().parse().unwrap();
        prop_assert_eq!(f, again);
    }

    /// `#` alone matches every topic.
    #[test]
    fn universal_filter(topic in arb_topic()) {
        let f: TopicFilter = "#".parse().unwrap();
        prop_assert!(f.matches(&topic));
    }

    /// A filter never matches a topic whose first segment differs from a
    /// literal first filter segment.
    #[test]
    fn first_literal_must_match(topic in arb_topic()) {
        let first = topic.split('/').next().unwrap();
        let decoy = format!("zzz{first}");
        let rest: Vec<&str> = topic.split('/').skip(1).collect();
        let filter_str = if rest.is_empty() {
            decoy.clone()
        } else {
            format!("{decoy}/{}", rest.join("/"))
        };
        let f: TopicFilter = filter_str.parse().unwrap();
        prop_assert!(!f.matches(&topic));
    }
}
