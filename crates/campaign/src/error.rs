//! Typed campaign errors.
//!
//! Admission failures are first-class outcomes, not panics: quota
//! exhaustion permanently dead-letters an occurrence, while a rate limit
//! merely defers it. Both are surfaced to callers as values and to
//! operators as `campaign.*` telemetry counters.

use std::fmt;

/// Errors surfaced by the campaign scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The per-application dispatch quota is spent; the occurrence that
    /// hit it is dead-lettered (permanent).
    QuotaExhausted {
        /// The application whose quota ran out.
        app: String,
        /// The configured quota that was hit.
        quota: u64,
    },
    /// The application's token bucket is empty; the dispatch is deferred
    /// until a token refills (transient).
    RateLimited {
        /// The application being throttled.
        app: String,
        /// Earliest virtual time a token becomes available, in ms.
        retry_at_ms: u64,
    },
    /// A campaign with the same id is already registered.
    DuplicateCampaign(String),
    /// No campaign with this id is registered.
    UnknownCampaign(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::QuotaExhausted { app, quota } => {
                write!(f, "app `{app}` exhausted its dispatch quota of {quota}")
            }
            CampaignError::RateLimited { app, retry_at_ms } => {
                write!(
                    f,
                    "app `{app}` is rate limited; next token at t={retry_at_ms}ms"
                )
            }
            CampaignError::DuplicateCampaign(id) => {
                write!(f, "campaign `{id}` is already registered")
            }
            CampaignError::UnknownCampaign(id) => {
                write!(f, "no campaign `{id}` is registered")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = CampaignError::QuotaExhausted {
            app: "birdwatch".into(),
            quota: 3,
        };
        assert!(e.to_string().contains("birdwatch"));
        assert!(e.to_string().contains('3'));
        let e = CampaignError::RateLimited {
            app: "birdwatch".into(),
            retry_at_ms: 250,
        };
        assert!(e.to_string().contains("250"));
    }
}
