//! The append-only attempt journal.
//!
//! Every state transition the scheduler makes — campaign registration,
//! dispatch, rate-limit deferral, retry scheduling, ack, dead-letter — is
//! journaled as one JSON document in the `campaign_journal` collection at
//! the instant it happens. The journal is the scheduler's *only* durable
//! state: a replacement instance rebuilds in-flight attempts, absolute
//! backoff deadlines, per-app quota spend and token-bucket state by
//! replaying the records in sequence order (see
//! [`CampaignScheduler::recover`](crate::CampaignScheduler::recover)).
//!
//! Records go through [`sensocial_storage::StorageEngine`]'s document
//! plane, so the journal inherits whatever backend the deployment runs
//! (and CI's backend matrix covers recovery on both).

use serde::{Deserialize, Serialize};
use sensocial_store::{Collection, Query};
use sensocial_storage::StorageEngine;

/// The collection holding the journal.
pub const JOURNAL_COLLECTION: &str = "campaign_journal";

/// One journaled state transition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Monotone sequence number; replay order.
    pub seq: u64,
    /// Virtual time of the transition, in ms.
    pub at_ms: u64,
    /// The transition itself.
    pub event: RecordKind,
}

/// The journaled transition kinds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum RecordKind {
    /// A campaign was registered (carries the full spec so recovery needs
    /// no other source of truth).
    Registered {
        /// Campaign id.
        campaign: String,
        /// Owning application.
        app: String,
        /// Target device id (raw string form).
        device: String,
        /// Target stream id.
        stream: u64,
        /// First occurrence due time, ms.
        start_ms: u64,
        /// Gap between occurrences, ms.
        period_ms: u64,
        /// Occurrence count.
        occurrences: u32,
        /// The duty-cycle interval each occurrence pushes, ms.
        interval_ms: u64,
    },
    /// A dispatch left the scheduler (quota spent, bucket token taken).
    Dispatched {
        /// Campaign id.
        campaign: String,
        /// Occurrence index (0-based).
        occurrence: u32,
        /// Dispatch attempt number (1-based).
        attempt: u32,
        /// The config epoch the server stamped on the command.
        epoch: u64,
        /// Absolute ack deadline, ms.
        deadline_ms: u64,
    },
    /// A dispatch was deferred by the rate limiter (bucket state advanced
    /// but no token was taken; replay repeats the failed take).
    RateLimited {
        /// Campaign id.
        campaign: String,
        /// Occurrence index.
        occurrence: u32,
        /// The attempt number the deferred dispatch will carry.
        attempt: u32,
        /// Absolute redispatch time, ms.
        next_ms: u64,
    },
    /// A dispatch failed (ack timeout or rejection) and a retry is
    /// scheduled.
    Retrying {
        /// Campaign id.
        campaign: String,
        /// Occurrence index.
        occurrence: u32,
        /// The attempt number the retry will carry.
        next_attempt: u32,
        /// Absolute redispatch time, ms.
        next_ms: u64,
    },
    /// The device positively acknowledged the occurrence; terminal.
    Acked {
        /// Campaign id.
        campaign: String,
        /// Occurrence index.
        occurrence: u32,
        /// The epoch of the dispatch that won.
        epoch: u64,
    },
    /// The occurrence was abandoned; terminal.
    DeadLettered {
        /// Campaign id.
        campaign: String,
        /// Occurrence index.
        occurrence: u32,
        /// Why (quota, attempts exhausted, rejection).
        reason: String,
    },
}

/// Append/replay handle over the journal collection. Cloneable; clones
/// share the underlying collection.
#[derive(Clone)]
pub struct Journal {
    collection: Collection,
}

impl Journal {
    /// Opens the journal inside `storage`, creating its index on first
    /// use.
    pub fn open(storage: &StorageEngine) -> Self {
        let collection = storage.collection(JOURNAL_COLLECTION);
        collection.create_index("seq");
        Journal { collection }
    }

    /// Appends one record.
    ///
    /// `JournalRecord` serializes to a JSON object of plain fields, which
    /// the document store accepts unconditionally, so there is no failure
    /// path to surface.
    pub fn append(&self, record: &JournalRecord) {
        if let Ok(body) = serde_json::to_value(record) {
            let _ = self.collection.insert(body);
        }
    }

    /// All records, in sequence order.
    pub fn replay(&self) -> Vec<JournalRecord> {
        let mut records: Vec<JournalRecord> = self
            .collection
            .find(&Query::exists("seq"))
            .into_iter()
            .filter_map(|doc| serde_json::from_value(doc.body).ok())
            .collect();
        records.sort_by_key(|r| r.seq);
        records
    }

    /// Number of records written so far.
    pub fn len(&self) -> usize {
        self.collection.count(&Query::exists("seq"))
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use sensocial_storage::StorageConfig;

    use super::*;

    fn record(seq: u64) -> JournalRecord {
        JournalRecord {
            seq,
            at_ms: seq * 10,
            event: RecordKind::Dispatched {
                campaign: "c".into(),
                occurrence: 2,
                attempt: 1,
                epoch: seq,
                deadline_ms: seq * 10 + 500,
            },
        }
    }

    #[test]
    fn records_round_trip_through_storage() {
        let storage = StorageConfig::from_env().open();
        let journal = Journal::open(&storage);
        assert!(journal.is_empty());
        let r = JournalRecord {
            seq: 0,
            at_ms: 5,
            event: RecordKind::Registered {
                campaign: "camp-a".into(),
                app: "birdwatch".into(),
                device: "p1".into(),
                stream: 7,
                start_ms: 1_000,
                period_ms: 60_000,
                occurrences: 4,
                interval_ms: 30_000,
            },
        };
        journal.append(&r);
        journal.append(&record(1));
        assert_eq!(journal.replay(), vec![r, record(1)]);
    }

    #[test]
    fn replay_sorts_by_sequence() {
        let storage = StorageConfig::from_env().open();
        let journal = Journal::open(&storage);
        for seq in [3u64, 0, 2, 1] {
            journal.append(&record(seq));
        }
        let seqs: Vec<u64> = journal.replay().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn every_record_kind_survives_serde() {
        let kinds = vec![
            RecordKind::RateLimited {
                campaign: "c".into(),
                occurrence: 0,
                attempt: 1,
                next_ms: 99,
            },
            RecordKind::Retrying {
                campaign: "c".into(),
                occurrence: 0,
                next_attempt: 2,
                next_ms: 120,
            },
            RecordKind::Acked {
                campaign: "c".into(),
                occurrence: 0,
                epoch: 11,
            },
            RecordKind::DeadLettered {
                campaign: "c".into(),
                occurrence: 0,
                reason: "quota".into(),
            },
        ];
        for kind in kinds {
            let r = JournalRecord {
                seq: 9,
                at_ms: 1,
                event: kind,
            };
            let v = serde_json::to_value(&r).unwrap();
            assert_eq!(serde_json::from_value::<JournalRecord>(v).unwrap(), r);
        }
    }
}
