//! Durable campaign scheduler for the SenSocial middleware.
//!
//! The paper's middleware reconfigures running deployments — changing a
//! stream's duty cycle or filters across a fleet of devices — through
//! config pushes. This crate makes those pushes *campaigns*: recurring,
//! windowed trigger schedules whose every delivery attempt is supervised,
//! retried with capped exponential backoff and seeded jitter, bounded by
//! per-application quotas and token-bucket rate limits, and journaled so
//! that a crashed scheduler's replacement recovers full state — in-flight
//! attempts, absolute backoff deadlines, dedup of already-acked
//! occurrences — and the run continues byte-identically under the same
//! seed.
//!
//! The moving parts:
//!
//! * [`CampaignSpec`] — what to push, to whom, when, how often;
//! * [`CampaignScheduler`] — the supervisor driving the
//!   `Dispatched → Acked | Retrying | DeadLettered` state machine off the
//!   server's config-ack stream (see the [`scheduler`] module docs);
//! * [`CampaignPolicies`] / [`BackoffPolicy`] / [`RateLimitPolicy`] — the
//!   delivery policies, all deterministic and replayable;
//! * [`Journal`] — the append-only attempt journal in
//!   [`sensocial_storage`]'s document plane;
//! * [`CampaignError`] — typed admission errors
//!   ([`CampaignError::QuotaExhausted`], [`CampaignError::RateLimited`]).
//!
//! Delivery guarantee: *exactly-once effect*. Dispatches are at-least-once
//! (QoS-1 redelivery, retries, post-crash redispatch), but devices apply
//! each occurrence token at most once and positively re-ack duplicates,
//! so a reconfiguration is never applied twice and never lost while
//! attempts remain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod journal;
mod policy;
pub mod scheduler;

pub use error::CampaignError;
pub use journal::{Journal, JournalRecord, RecordKind, JOURNAL_COLLECTION};
pub use policy::{BackoffPolicy, CampaignPolicies, RateLimitPolicy};
pub use scheduler::{AttemptState, CampaignScheduler, CampaignSpec};
