//! Delivery policies: capped exponential backoff with seeded jitter,
//! per-application dispatch quotas and integer token-bucket rate limits.
//!
//! Everything here is deterministic and replayable. Backoff jitter is
//! drawn from a generator derived *statelessly* from the experiment seed
//! and the attempt's identity, so a scheduler recovered from the journal
//! computes the exact same deadlines as the instance it replaced would
//! have. The token bucket uses pure integer arithmetic over virtual-time
//! milliseconds, so replaying the journaled take sequence reproduces its
//! state bit for bit.

use sensocial_runtime::{SimDuration, SimRng};

/// Capped exponential backoff with seeded jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the second attempt (doubles per further attempt).
    pub initial: SimDuration,
    /// Upper bound on the exponential delay (before jitter).
    pub max: SimDuration,
    /// Jitter as a percentage of the base delay, in `0..=100`: the drawn
    /// delay is `base + uniform_u64(0, base * jitter_pct / 100 + 1)` ms.
    pub jitter_pct: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            initial: SimDuration::from_secs(2),
            max: SimDuration::from_secs(60),
            jitter_pct: 20,
        }
    }
}

impl BackoffPolicy {
    /// The un-jittered delay scheduled after dispatch attempt `attempt`
    /// (1-based) fails: `min(initial * 2^(attempt - 1), max)`.
    pub fn base_delay(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(20);
        let ms = self.initial.as_millis().saturating_mul(1u64 << shift);
        SimDuration::from_millis(ms.min(self.max.as_millis()))
    }

    /// The jittered delay after `attempt` fails, for the occurrence
    /// `(campaign, occurrence)` under `seed`.
    ///
    /// The jitter generator is re-derived from scratch on every call, so
    /// the value depends only on `(seed, campaign, occurrence, attempt)` —
    /// never on how many draws some long-lived generator has made. That is
    /// what keeps a journal-recovered scheduler byte-identical to an
    /// uninterrupted one.
    pub fn delay(&self, seed: u64, campaign: &str, occurrence: u32, attempt: u32) -> SimDuration {
        let base = self.base_delay(attempt);
        let jitter_ms = base
            .as_millis()
            .saturating_mul(u64::from(self.jitter_pct.min(100)))
            / 100;
        if jitter_ms == 0 {
            return base;
        }
        let mut rng =
            SimRng::seed_from(seed).split(&format!("jitter/{campaign}/{occurrence}/{attempt}"));
        SimDuration::from_millis(base.as_millis() + rng.uniform_u64(0, jitter_ms + 1))
    }
}

/// An integer token-bucket rate limit: `capacity` tokens, one token
/// refilled every `per_token_ms` virtual milliseconds.
///
/// `per_token_ms == 0` disables the limit (the bucket refills to capacity
/// on every take).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimitPolicy {
    /// Burst size: tokens the bucket holds when full.
    pub capacity: u64,
    /// Milliseconds of virtual time that earn one token.
    pub per_token_ms: u64,
}

impl RateLimitPolicy {
    /// A limit of `capacity` burst tokens refilling one per `per_token_ms`.
    pub fn new(capacity: u64, per_token_ms: u64) -> Self {
        RateLimitPolicy {
            capacity,
            per_token_ms,
        }
    }

    /// No rate limiting.
    pub fn unlimited() -> Self {
        RateLimitPolicy {
            capacity: 1,
            per_token_ms: 0,
        }
    }
}

impl Default for RateLimitPolicy {
    fn default() -> Self {
        RateLimitPolicy::unlimited()
    }
}

/// Deterministic token-bucket state for one application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TokenBucket {
    policy: RateLimitPolicy,
    tokens: u64,
    /// Virtual time the refill accounting last advanced to, in ms.
    last_ms: u64,
}

impl TokenBucket {
    /// A full bucket anchored at `now_ms`.
    pub(crate) fn new(policy: RateLimitPolicy, now_ms: u64) -> Self {
        TokenBucket {
            policy,
            tokens: policy.capacity,
            last_ms: now_ms,
        }
    }

    fn refill(&mut self, now_ms: u64) {
        if self.policy.per_token_ms == 0 {
            self.tokens = self.policy.capacity.max(1);
            self.last_ms = now_ms;
            return;
        }
        let elapsed = now_ms.saturating_sub(self.last_ms);
        let earned = elapsed / self.policy.per_token_ms;
        if earned > 0 {
            self.tokens = self.tokens.saturating_add(earned).min(self.policy.capacity);
            self.last_ms += earned * self.policy.per_token_ms;
        }
        if self.tokens == self.policy.capacity {
            // A full bucket banks nothing; re-anchor so idle stretches
            // cannot accumulate phantom refill credit.
            self.last_ms = now_ms;
        }
    }

    /// Takes one token at `now_ms`, or reports the earliest virtual time
    /// (strictly after `now_ms`) a token will be available.
    pub(crate) fn try_take(&mut self, now_ms: u64) -> Result<(), u64> {
        self.refill(now_ms);
        if self.tokens > 0 {
            self.tokens -= 1;
            Ok(())
        } else {
            let next = self
                .last_ms
                .saturating_add(self.policy.per_token_ms)
                .max(now_ms + 1);
            Err(next)
        }
    }
}

/// The delivery policies one scheduler instance enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignPolicies {
    /// How long a dispatched command may wait for its ack before the
    /// attempt is redriven.
    pub ack_timeout: SimDuration,
    /// Dispatch attempts per occurrence before dead-lettering.
    pub max_attempts: u32,
    /// Retry backoff shape.
    pub backoff: BackoffPolicy,
    /// Per-application lifetime dispatch quota (`u64::MAX` = unlimited).
    pub quota_per_app: u64,
    /// Per-application dispatch rate limit.
    pub rate: RateLimitPolicy,
}

impl Default for CampaignPolicies {
    fn default() -> Self {
        CampaignPolicies {
            ack_timeout: SimDuration::from_secs(10),
            max_attempts: 5,
            backoff: BackoffPolicy::default(),
            quota_per_app: u64::MAX,
            rate: RateLimitPolicy::unlimited(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = BackoffPolicy {
            initial: SimDuration::from_millis(100),
            max: SimDuration::from_millis(450),
            jitter_pct: 0,
        };
        assert_eq!(p.base_delay(1).as_millis(), 100);
        assert_eq!(p.base_delay(2).as_millis(), 200);
        assert_eq!(p.base_delay(3).as_millis(), 400);
        assert_eq!(p.base_delay(4).as_millis(), 450, "capped at max");
        assert_eq!(p.base_delay(63).as_millis(), 450, "huge attempts stay capped");
    }

    #[test]
    fn zero_jitter_is_the_base_delay() {
        let p = BackoffPolicy {
            initial: SimDuration::from_millis(100),
            max: SimDuration::from_millis(10_000),
            jitter_pct: 0,
        };
        assert_eq!(p.delay(7, "c", 0, 2), p.base_delay(2));
    }

    #[test]
    fn jitter_is_stateless_and_bounded() {
        let p = BackoffPolicy {
            initial: SimDuration::from_millis(1_000),
            max: SimDuration::from_millis(60_000),
            jitter_pct: 50,
        };
        let a = p.delay(42, "camp", 3, 2);
        let b = p.delay(42, "camp", 3, 2);
        assert_eq!(a, b, "same identity, same jitter — crash-safe");
        assert_ne!(
            p.delay(42, "camp", 3, 2),
            p.delay(43, "camp", 3, 2),
            "different seeds decorrelate"
        );
        let base = p.base_delay(2).as_millis();
        for occ in 0..50 {
            let d = p.delay(42, "camp", occ, 2).as_millis();
            assert!(d >= base && d <= base + base / 2, "jitter within 50%: {d}");
        }
    }

    #[test]
    fn bucket_enforces_burst_then_refills() {
        let mut b = TokenBucket::new(RateLimitPolicy::new(2, 100), 0);
        assert_eq!(b.try_take(0), Ok(()));
        assert_eq!(b.try_take(0), Ok(()));
        assert_eq!(b.try_take(0), Err(100), "empty; next token at 100 ms");
        assert_eq!(b.try_take(50), Err(100), "still empty at 50 ms");
        assert_eq!(b.try_take(100), Ok(()), "one token earned");
        assert_eq!(b.try_take(100), Err(200));
    }

    #[test]
    fn bucket_does_not_bank_idle_time_beyond_capacity() {
        let mut b = TokenBucket::new(RateLimitPolicy::new(2, 100), 0);
        // Idle for an hour: still only `capacity` tokens.
        assert_eq!(b.try_take(3_600_000), Ok(()));
        assert_eq!(b.try_take(3_600_000), Ok(()));
        assert!(b.try_take(3_600_000).is_err());
    }

    #[test]
    fn unlimited_bucket_never_blocks() {
        let mut b = TokenBucket::new(RateLimitPolicy::unlimited(), 0);
        for t in 0..100 {
            assert_eq!(b.try_take(t), Ok(()));
        }
    }

    #[test]
    fn pathological_zero_config_still_makes_progress() {
        // capacity 0 with a refill period: every failure reports a time
        // strictly in the future, so a retry loop cannot spin in place.
        let mut b = TokenBucket::new(RateLimitPolicy::new(0, 0), 10);
        match b.try_take(10) {
            Ok(()) => {}
            Err(next) => assert!(next > 10),
        }
    }

    #[test]
    fn replaying_the_same_take_sequence_reproduces_state() {
        let run = || {
            let mut b = TokenBucket::new(RateLimitPolicy::new(3, 250), 5);
            let times = [5u64, 5, 5, 5, 300, 700, 700, 700, 1200];
            let outcomes: Vec<Result<(), u64>> = times.iter().map(|t| b.try_take(*t)).collect();
            (b, outcomes)
        };
        assert_eq!(run(), run(), "integer bucket is exactly replayable");
    }
}
