//! The durable campaign scheduler.
//!
//! A [`CampaignScheduler`] owns *campaigns* — recurring trigger schedules
//! that push stream reconfigurations through the server's config-epoch
//! pipeline — and supervises every delivery attempt as a state machine:
//!
//! ```text
//! (due) ──dispatch──▶ Dispatched ──ack──▶ Acked
//!                        │  ▲
//!              timeout / │  │ redispatch
//!                  nack  ▼  │
//!                      Retrying ──attempts exhausted / quota──▶ DeadLettered
//! ```
//!
//! Attempts are settled by *occurrence token* (`"<campaign>/<occ>"`), not
//! by epoch: the device echoes the token in its [`ConfigAck`] and applies
//! each token at most once, so a post-crash redispatch under a fresh
//! epoch settles the attempt without reconfiguring twice.
//!
//! Every transition is journaled (see [`crate::journal`]); an instance
//! that crashes mid-storm is replaced via [`CampaignScheduler::recover`],
//! which rebuilds in-flight attempts, absolute backoff deadlines, quota
//! spend and token-bucket state from the journal. Backoff jitter is
//! derived statelessly from `(seed, campaign, occurrence, attempt)`, so
//! the recovered instance's deadlines are byte-identical to the ones the
//! dead instance would have computed.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;
use sensocial::server::ServerManager;
use sensocial::{ConfigAck, ConfigCommand, StorageEngine};
use sensocial_runtime::{Scheduler, SimDuration, Timestamp};
use sensocial_telemetry::{Registry, Snapshot};
use sensocial_types::{DeviceId, StreamId};

use crate::error::CampaignError;
use crate::journal::{Journal, JournalRecord, RecordKind};
use crate::policy::{CampaignPolicies, TokenBucket};

/// One campaign: a recurring schedule of stream reconfigurations pushed
/// to a single device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Unique campaign id; namespaces the journal and occurrence tokens.
    pub id: String,
    /// Owning application — the quota and rate-limit accounting unit.
    pub app: String,
    /// Target device.
    pub device: DeviceId,
    /// Target stream on that device.
    pub stream: StreamId,
    /// Due time of the first occurrence.
    pub start: Timestamp,
    /// Gap between consecutive occurrences.
    pub period: SimDuration,
    /// Number of occurrences.
    pub occurrences: u32,
    /// The reconfiguration each occurrence pushes: the stream's new
    /// duty-cycle interval, in milliseconds.
    pub interval_ms: u64,
}

impl CampaignSpec {
    /// Due time of occurrence `occ` (0-based).
    pub fn due(&self, occ: u32) -> Timestamp {
        self.start + SimDuration::from_millis(self.period.as_millis().saturating_mul(u64::from(occ)))
    }

    /// The occurrence token: `"<campaign>/<occ>"`.
    pub fn token(&self, occ: u32) -> String {
        format!("{}/{}", self.id, occ)
    }
}

/// The supervised delivery state of one campaign occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptState {
    /// A command is in flight, awaiting the device's ack.
    Dispatched {
        /// Dispatch attempt number (1-based).
        attempt: u32,
        /// The config epoch the server stamped on the command.
        epoch: u64,
        /// When the dispatch left the scheduler.
        at: Timestamp,
        /// Absolute ack deadline; the attempt is redriven past it.
        deadline: Timestamp,
    },
    /// Waiting out a backoff or rate-limit deadline before redispatching.
    Retrying {
        /// The attempt number the next dispatch will carry.
        next_attempt: u32,
        /// Absolute redispatch time.
        next_at: Timestamp,
    },
    /// Positively acknowledged; terminal.
    Acked {
        /// The epoch of the dispatch that won.
        epoch: u64,
    },
    /// Abandoned; terminal.
    DeadLettered {
        /// Why (quota, attempts exhausted, rejection).
        reason: String,
    },
}

impl AttemptState {
    /// Whether the occurrence has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            AttemptState::Acked { .. } | AttemptState::DeadLettered { .. }
        )
    }
}

/// Work the pump found due at the current instant.
enum DueAction {
    Dispatch {
        campaign: String,
        occ: u32,
        attempt: u32,
    },
    Timeout {
        campaign: String,
        occ: u32,
    },
}

struct Inner {
    /// Cleared by [`CampaignScheduler::crash`]; a dead instance's timers
    /// and ack listener become inert no-ops.
    alive: bool,
    campaigns: BTreeMap<String, CampaignSpec>,
    attempts: BTreeMap<(String, u32), AttemptState>,
    /// Occurrence token → attempt key, for settling acks.
    tokens: HashMap<String, (String, u32)>,
    /// Per-app lifetime dispatch counts (the quota ledger).
    dispatch_counts: BTreeMap<String, u64>,
    /// Per-app token buckets (the rate-limit state).
    buckets: BTreeMap<String, TokenBucket>,
    next_seq: u64,
    /// The earliest armed wake-up, to avoid timer storms.
    next_wake: Option<Timestamp>,
}

/// The durable campaign scheduler. Cloneable handle; clones share state.
///
/// See the [module docs](self) for the delivery state machine and the
/// crash-recovery contract.
#[derive(Clone)]
pub struct CampaignScheduler {
    server: ServerManager,
    policies: CampaignPolicies,
    seed: u64,
    journal: Journal,
    telemetry: Registry,
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for CampaignScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("CampaignScheduler")
            .field("alive", &inner.alive)
            .field("campaigns", &inner.campaigns.len())
            .field("attempts", &inner.attempts.len())
            .finish()
    }
}

impl CampaignScheduler {
    /// Creates a fresh scheduler writing to (an empty) journal in
    /// `storage`, hooked into `server`'s config-ack stream.
    pub fn new(
        server: &ServerManager,
        storage: &StorageEngine,
        policies: CampaignPolicies,
        seed: u64,
    ) -> Self {
        Self::build(server, storage, policies, seed, false)
    }

    /// Creates a replacement scheduler that rebuilds its state from the
    /// journal a crashed predecessor left in `storage`, then hooks into
    /// `server`'s config-ack stream. Call [`CampaignScheduler::start`] to
    /// resume driving: overdue deadlines are redriven immediately, and
    /// already-acked occurrences are never redispatched.
    ///
    /// `policies` and `seed` must match the predecessor's — they are
    /// deployment configuration, not journaled state — which is what makes
    /// the recovered run byte-identical under the same seed.
    pub fn recover(
        server: &ServerManager,
        storage: &StorageEngine,
        policies: CampaignPolicies,
        seed: u64,
    ) -> Self {
        Self::build(server, storage, policies, seed, true)
    }

    fn build(
        server: &ServerManager,
        storage: &StorageEngine,
        policies: CampaignPolicies,
        seed: u64,
        replay: bool,
    ) -> Self {
        let scheduler = CampaignScheduler {
            server: server.clone(),
            policies,
            seed,
            journal: Journal::open(storage),
            telemetry: Registry::new("campaign"),
            inner: Arc::new(Mutex::new(Inner {
                alive: true,
                campaigns: BTreeMap::new(),
                attempts: BTreeMap::new(),
                tokens: HashMap::new(),
                dispatch_counts: BTreeMap::new(),
                buckets: BTreeMap::new(),
                next_seq: 0,
                next_wake: None,
            })),
        };
        if replay {
            scheduler.replay_journal();
        }
        let hook = scheduler.clone();
        server.register_ack_listener(move |sched, ack| hook.on_ack(sched, ack));
        scheduler
    }

    /// Registers a campaign, journals it, and begins driving its
    /// occurrences.
    ///
    /// # Errors
    ///
    /// [`CampaignError::DuplicateCampaign`] if the id is already taken.
    pub fn register(&self, sched: &mut Scheduler, spec: CampaignSpec) -> Result<(), CampaignError> {
        let now_ms = sched.now().as_millis();
        {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            if inner.campaigns.contains_key(&spec.id) {
                return Err(CampaignError::DuplicateCampaign(spec.id));
            }
            let record = JournalRecord {
                seq: take_seq(inner),
                at_ms: now_ms,
                event: RecordKind::Registered {
                    campaign: spec.id.clone(),
                    app: spec.app.clone(),
                    device: spec.device.as_str().to_owned(),
                    stream: spec.stream.value(),
                    start_ms: spec.start.as_millis(),
                    period_ms: spec.period.as_millis(),
                    occurrences: spec.occurrences,
                    interval_ms: spec.interval_ms,
                },
            };
            self.journal.append(&record);
            inner
                .buckets
                .entry(spec.app.clone())
                .or_insert_with(|| TokenBucket::new(self.policies.rate, now_ms));
            inner.campaigns.insert(spec.id.clone(), spec);
        }
        self.telemetry.count("registered");
        self.pump(sched);
        Ok(())
    }

    /// Begins (or resumes, after [`CampaignScheduler::recover`]) driving:
    /// processes everything already due and arms the wake-up timer.
    pub fn start(&self, sched: &mut Scheduler) {
        self.pump(sched);
    }

    /// Kills this instance: its ack listener and pending timers become
    /// inert. The journal survives in storage; a replacement rebuilds from
    /// it via [`CampaignScheduler::recover`].
    pub fn crash(&self) {
        self.inner.lock().alive = false;
        self.telemetry.count("crashed");
    }

    /// Whether this instance is still driving.
    pub fn is_alive(&self) -> bool {
        self.inner.lock().alive
    }

    /// Probes admission for `app` at `now` without consuming quota or
    /// rate-limit tokens (the real admission check runs at dispatch time).
    ///
    /// # Errors
    ///
    /// [`CampaignError::QuotaExhausted`] or [`CampaignError::RateLimited`]
    /// exactly as a dispatch at `now` would fail.
    pub fn admission(&self, now: Timestamp, app: &str) -> Result<(), CampaignError> {
        let inner = self.inner.lock();
        let spent = inner.dispatch_counts.get(app).copied().unwrap_or(0);
        if spent >= self.policies.quota_per_app {
            return Err(CampaignError::QuotaExhausted {
                app: app.to_owned(),
                quota: self.policies.quota_per_app,
            });
        }
        let mut probe = inner
            .buckets
            .get(app)
            .cloned()
            .unwrap_or_else(|| TokenBucket::new(self.policies.rate, now.as_millis()));
        match probe.try_take(now.as_millis()) {
            Ok(()) => Ok(()),
            Err(retry_at_ms) => Err(CampaignError::RateLimited {
                app: app.to_owned(),
                retry_at_ms,
            }),
        }
    }

    /// The delivery state of one occurrence, if it has been touched.
    pub fn state(&self, campaign: &str, occ: u32) -> Option<AttemptState> {
        self.inner
            .lock()
            .attempts
            .get(&(campaign.to_owned(), occ))
            .cloned()
    }

    /// The registered spec for `campaign`.
    ///
    /// # Errors
    ///
    /// [`CampaignError::UnknownCampaign`] if no such campaign exists.
    pub fn spec(&self, campaign: &str) -> Result<CampaignSpec, CampaignError> {
        self.inner
            .lock()
            .campaigns
            .get(campaign)
            .cloned()
            .ok_or_else(|| CampaignError::UnknownCampaign(campaign.to_owned()))
    }

    /// Whether every occurrence of every campaign has reached a terminal
    /// state (acked or dead-lettered).
    pub fn is_settled(&self) -> bool {
        let inner = self.inner.lock();
        inner.campaigns.iter().all(|(id, spec)| {
            (0..spec.occurrences).all(|occ| {
                inner
                    .attempts
                    .get(&(id.clone(), occ))
                    .is_some_and(AttemptState::is_terminal)
            })
        })
    }

    /// Occurrences currently in the [`AttemptState::Acked`] state.
    pub fn acked(&self) -> u64 {
        self.count_states(|s| matches!(s, AttemptState::Acked { .. }))
    }

    /// Occurrences currently in the [`AttemptState::DeadLettered`] state.
    pub fn dead_lettered(&self) -> u64 {
        self.count_states(|s| matches!(s, AttemptState::DeadLettered { .. }))
    }

    /// Total occurrences across all registered campaigns.
    pub fn total_occurrences(&self) -> u64 {
        self.inner
            .lock()
            .campaigns
            .values()
            .map(|spec| u64::from(spec.occurrences))
            .sum()
    }

    /// This instance's telemetry registry (`campaign.*` keys).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// This instance's telemetry snapshot.
    pub fn snapshot(&self) -> Snapshot {
        self.telemetry.snapshot()
    }

    fn count_states(&self, pred: impl Fn(&AttemptState) -> bool) -> u64 {
        self.inner
            .lock()
            .attempts
            .values()
            .filter(|s| pred(s))
            .count() as u64
    }

    // ------------------------------------------------------------------
    // The drive loop
    // ------------------------------------------------------------------

    /// Processes everything due at the current instant, one action at a
    /// time (each action strictly advances some occurrence's state, so the
    /// loop terminates), then arms the next wake-up.
    fn pump(&self, sched: &mut Scheduler) {
        if !self.inner.lock().alive {
            return;
        }
        loop {
            let now = sched.now();
            let Some(action) = self.next_due_action(now) else {
                break;
            };
            match action {
                DueAction::Dispatch { campaign, occ, attempt } => {
                    self.dispatch(sched, &campaign, occ, attempt);
                }
                DueAction::Timeout { campaign, occ } => {
                    self.redrive(sched, &campaign, occ, "ack timeout");
                }
            }
        }
        self.arm_timer(sched);
    }

    /// The first actionable item at `now`, in deterministic key order:
    /// overdue in-flight dispatches and due retries first, then untouched
    /// occurrences that have come due.
    fn next_due_action(&self, now: Timestamp) -> Option<DueAction> {
        let inner = self.inner.lock();
        for ((campaign, occ), state) in &inner.attempts {
            match state {
                AttemptState::Dispatched { deadline, .. } if *deadline <= now => {
                    return Some(DueAction::Timeout {
                        campaign: campaign.clone(),
                        occ: *occ,
                    });
                }
                AttemptState::Retrying {
                    next_at,
                    next_attempt,
                } if *next_at <= now => {
                    return Some(DueAction::Dispatch {
                        campaign: campaign.clone(),
                        occ: *occ,
                        attempt: *next_attempt,
                    });
                }
                _ => {}
            }
        }
        for (id, spec) in &inner.campaigns {
            for occ in 0..spec.occurrences {
                if inner.attempts.contains_key(&(id.clone(), occ)) {
                    continue;
                }
                if spec.due(occ) <= now {
                    return Some(DueAction::Dispatch {
                        campaign: id.clone(),
                        occ,
                        attempt: 1,
                    });
                }
                // Occurrence due times are monotone in `occ`: nothing
                // after the first untouched, not-yet-due one can be due.
                break;
            }
        }
        None
    }

    /// Runs admission control and, if admitted, pushes the occurrence's
    /// reconfiguration through the server's config pipeline.
    fn dispatch(&self, sched: &mut Scheduler, campaign: &str, occ: u32, attempt: u32) {
        let now_ms = sched.now().as_millis();
        let key = (campaign.to_owned(), occ);
        let spec = {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let Some(spec) = inner.campaigns.get(campaign).cloned() else {
                return;
            };
            match self.admit(inner, now_ms, &spec.app) {
                Ok(()) => {}
                Err(CampaignError::QuotaExhausted { app, quota }) => {
                    let reason = format!("quota exhausted: app `{app}` spent its {quota} dispatches");
                    let record = JournalRecord {
                        seq: take_seq(inner),
                        at_ms: now_ms,
                        event: RecordKind::DeadLettered {
                            campaign: campaign.to_owned(),
                            occurrence: occ,
                            reason: reason.clone(),
                        },
                    };
                    self.journal.append(&record);
                    inner.attempts.insert(key, AttemptState::DeadLettered { reason });
                    self.telemetry.count("quota_exhausted");
                    self.telemetry.count("dead_lettered");
                    self.update_in_flight(inner);
                    return;
                }
                Err(CampaignError::RateLimited { retry_at_ms, .. }) => {
                    let record = JournalRecord {
                        seq: take_seq(inner),
                        at_ms: now_ms,
                        event: RecordKind::RateLimited {
                            campaign: campaign.to_owned(),
                            occurrence: occ,
                            attempt,
                            next_ms: retry_at_ms,
                        },
                    };
                    self.journal.append(&record);
                    inner.attempts.insert(
                        key,
                        AttemptState::Retrying {
                            next_attempt: attempt,
                            next_at: Timestamp::from_millis(retry_at_ms),
                        },
                    );
                    self.telemetry.count("rate_limited");
                    return;
                }
                Err(_) => return,
            }
            spec
        };
        // The push itself runs outside our lock: it takes the server's and
        // broker's locks, and nothing on that path re-enters this
        // scheduler (acks arrive later, in virtual time).
        let command = ConfigCommand::SetInterval {
            device: spec.device.clone(),
            stream: spec.stream,
            interval_ms: spec.interval_ms,
            epoch: 0,
            token: Some(spec.token(occ)),
        };
        let epoch = self.server.dispatch_campaign_config(sched, command);
        let at = sched.now();
        let deadline = at + self.policies.ack_timeout;
        {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let record = JournalRecord {
                seq: take_seq(inner),
                at_ms: now_ms,
                event: RecordKind::Dispatched {
                    campaign: campaign.to_owned(),
                    occurrence: occ,
                    attempt,
                    epoch,
                    deadline_ms: deadline.as_millis(),
                },
            };
            self.journal.append(&record);
            inner.tokens.insert(spec.token(occ), (campaign.to_owned(), occ));
            inner.attempts.insert(
                (campaign.to_owned(), occ),
                AttemptState::Dispatched {
                    attempt,
                    epoch,
                    at,
                    deadline,
                },
            );
            self.update_in_flight(inner);
        }
        self.telemetry.count("dispatched");
    }

    /// Admission control for one dispatch: quota first (permanent), then
    /// the rate limiter (transient). On success the quota is spent and a
    /// bucket token is taken.
    fn admit(&self, inner: &mut Inner, now_ms: u64, app: &str) -> Result<(), CampaignError> {
        let spent = inner.dispatch_counts.get(app).copied().unwrap_or(0);
        if spent >= self.policies.quota_per_app {
            return Err(CampaignError::QuotaExhausted {
                app: app.to_owned(),
                quota: self.policies.quota_per_app,
            });
        }
        let bucket = inner
            .buckets
            .entry(app.to_owned())
            .or_insert_with(|| TokenBucket::new(self.policies.rate, now_ms));
        match bucket.try_take(now_ms) {
            Ok(()) => {
                *inner.dispatch_counts.entry(app.to_owned()).or_insert(0) += 1;
                Ok(())
            }
            Err(retry_at_ms) => Err(CampaignError::RateLimited {
                app: app.to_owned(),
                retry_at_ms,
            }),
        }
    }

    /// Fails the current in-flight attempt of `(campaign, occ)`: schedules
    /// a backoff retry, or dead-letters once attempts are exhausted.
    fn redrive(&self, sched: &mut Scheduler, campaign: &str, occ: u32, cause: &str) {
        let now = sched.now();
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let key = (campaign.to_owned(), occ);
        let Some(AttemptState::Dispatched { attempt, .. }) = inner.attempts.get(&key).cloned()
        else {
            return;
        };
        if attempt >= self.policies.max_attempts {
            let reason = format!("{cause} after {attempt} attempts");
            let record = JournalRecord {
                seq: take_seq(inner),
                at_ms: now.as_millis(),
                event: RecordKind::DeadLettered {
                    campaign: campaign.to_owned(),
                    occurrence: occ,
                    reason: reason.clone(),
                },
            };
            self.journal.append(&record);
            inner.attempts.insert(key, AttemptState::DeadLettered { reason });
            self.telemetry.count("dead_lettered");
        } else {
            let next_at = now + self.policies.backoff.delay(self.seed, campaign, occ, attempt);
            let record = JournalRecord {
                seq: take_seq(inner),
                at_ms: now.as_millis(),
                event: RecordKind::Retrying {
                    campaign: campaign.to_owned(),
                    occurrence: occ,
                    next_attempt: attempt + 1,
                    next_ms: next_at.as_millis(),
                },
            };
            self.journal.append(&record);
            inner.attempts.insert(
                key,
                AttemptState::Retrying {
                    next_attempt: attempt + 1,
                    next_at,
                },
            );
            self.telemetry.count("retried");
        }
        self.update_in_flight(inner);
    }

    /// Settles attempts from the server's config-ack stream. Registered as
    /// an ack listener on construction; inert once this instance crashed.
    fn on_ack(&self, sched: &mut Scheduler, ack: &ConfigAck) {
        let Some(token) = &ack.token else {
            // Plain (non-campaign) config traffic; not ours.
            return;
        };
        // The redrive for a negative ack must run without the state lock
        // held, so the match records it instead of acting inline.
        let mut nack: Option<(String, u32)> = None;
        {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            if !inner.alive {
                return;
            }
            let Some(key) = inner.tokens.get(token).cloned() else {
                return;
            };
            let state = inner.attempts.get(&key).cloned();
            match state {
                Some(AttemptState::Acked { .. }) => {
                    self.telemetry.count("duplicate_acks");
                    return;
                }
                Some(AttemptState::DeadLettered { .. }) | None => return,
                Some(AttemptState::Dispatched { at, .. }) if ack.accepted => {
                    self.telemetry
                        .observe_named("ack_ms", sched.now().saturating_since(at).as_millis());
                    self.settle_ack(inner, sched.now(), &key, ack.epoch);
                }
                Some(AttemptState::Retrying { .. }) if ack.accepted => {
                    // A late ack beat the pending retry: the device did
                    // apply the command. Settle; the retry never fires.
                    self.settle_ack(inner, sched.now(), &key, ack.epoch);
                }
                Some(AttemptState::Dispatched { .. }) => {
                    // Negative ack: the device rejected the command.
                    self.telemetry.count("nacked");
                    nack = Some(key);
                }
                Some(AttemptState::Retrying { .. }) => {
                    // Stale nack for an attempt already being retried.
                }
            }
        }
        if let Some((campaign, occ)) = nack {
            self.redrive(sched, &campaign, occ, "rejected by device");
        }
        self.pump(sched);
    }

    /// Marks `key` acked, journaling the transition.
    fn settle_ack(&self, inner: &mut Inner, now: Timestamp, key: &(String, u32), epoch: u64) {
        let record = JournalRecord {
            seq: take_seq(inner),
            at_ms: now.as_millis(),
            event: RecordKind::Acked {
                campaign: key.0.clone(),
                occurrence: key.1,
                epoch,
            },
        };
        self.journal.append(&record);
        inner
            .attempts
            .insert(key.clone(), AttemptState::Acked { epoch });
        self.telemetry.count("acked");
        self.update_in_flight(inner);
    }

    /// Arms (or tightens) the wake-up timer to the earliest future event:
    /// an ack deadline, a retry time, or an untouched occurrence's due
    /// time.
    fn arm_timer(&self, sched: &mut Scheduler) {
        let now = sched.now();
        let at = {
            let mut inner = self.inner.lock();
            if !inner.alive {
                return;
            }
            if inner.next_wake.is_some_and(|w| w <= now) {
                // That wake already fired (or is firing); forget it.
                inner.next_wake = None;
            }
            let mut next: Option<Timestamp> = None;
            for state in inner.attempts.values() {
                match state {
                    AttemptState::Dispatched { deadline, .. } => next = min_opt(next, *deadline),
                    AttemptState::Retrying { next_at, .. } => next = min_opt(next, *next_at),
                    _ => {}
                }
            }
            for (id, spec) in &inner.campaigns {
                for occ in 0..spec.occurrences {
                    if !inner.attempts.contains_key(&(id.clone(), occ)) {
                        next = min_opt(next, spec.due(occ));
                        break;
                    }
                }
            }
            let Some(at) = next else { return };
            if inner.next_wake.is_some_and(|w| w <= at) {
                // An earlier-or-equal wake is already armed.
                return;
            }
            inner.next_wake = Some(at);
            at
        };
        let this = self.clone();
        sched.schedule_at(at, move |s| this.on_timer(s));
    }

    fn on_timer(&self, sched: &mut Scheduler) {
        {
            let mut inner = self.inner.lock();
            if !inner.alive {
                return;
            }
            if inner.next_wake.is_some_and(|w| w <= sched.now()) {
                inner.next_wake = None;
            }
        }
        self.pump(sched);
    }

    fn update_in_flight(&self, inner: &Inner) {
        let in_flight = inner
            .attempts
            .values()
            .filter(|s| matches!(s, AttemptState::Dispatched { .. }))
            .count() as u64;
        self.telemetry.gauge_set("in_flight", in_flight);
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    /// Rebuilds all volatile state from the journal, in sequence order.
    ///
    /// Telemetry is *not* replayed — counters describe what an instance
    /// did, and the crashed instance already counted its own actions; an
    /// outcome merge across instances sums them without double counting.
    /// Bucket and quota state *are* replayed, by repeating the journaled
    /// take sequence against fresh integer buckets.
    fn replay_journal(&self) {
        let records = self.journal.replay();
        let replayed = records.len() as u64;
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        for record in records {
            inner.next_seq = inner.next_seq.max(record.seq + 1);
            match record.event {
                RecordKind::Registered {
                    campaign,
                    app,
                    device,
                    stream,
                    start_ms,
                    period_ms,
                    occurrences,
                    interval_ms,
                } => {
                    inner
                        .buckets
                        .entry(app.clone())
                        .or_insert_with(|| TokenBucket::new(self.policies.rate, record.at_ms));
                    inner.campaigns.insert(
                        campaign.clone(),
                        CampaignSpec {
                            id: campaign,
                            app,
                            device: DeviceId::new(device),
                            stream: StreamId::new(stream),
                            start: Timestamp::from_millis(start_ms),
                            period: SimDuration::from_millis(period_ms),
                            occurrences,
                            interval_ms,
                        },
                    );
                }
                RecordKind::Dispatched {
                    campaign,
                    occurrence,
                    attempt,
                    epoch,
                    deadline_ms,
                } => {
                    self.replay_bucket_take(inner, &campaign, record.at_ms, true);
                    inner.tokens.insert(
                        format!("{campaign}/{occurrence}"),
                        (campaign.clone(), occurrence),
                    );
                    inner.attempts.insert(
                        (campaign, occurrence),
                        AttemptState::Dispatched {
                            attempt,
                            epoch,
                            at: Timestamp::from_millis(record.at_ms),
                            deadline: Timestamp::from_millis(deadline_ms),
                        },
                    );
                }
                RecordKind::RateLimited {
                    campaign,
                    occurrence,
                    attempt,
                    next_ms,
                } => {
                    self.replay_bucket_take(inner, &campaign, record.at_ms, false);
                    inner.attempts.insert(
                        (campaign, occurrence),
                        AttemptState::Retrying {
                            next_attempt: attempt,
                            next_at: Timestamp::from_millis(next_ms),
                        },
                    );
                }
                RecordKind::Retrying {
                    campaign,
                    occurrence,
                    next_attempt,
                    next_ms,
                } => {
                    inner.attempts.insert(
                        (campaign, occurrence),
                        AttemptState::Retrying {
                            next_attempt,
                            next_at: Timestamp::from_millis(next_ms),
                        },
                    );
                }
                RecordKind::Acked {
                    campaign,
                    occurrence,
                    epoch,
                } => {
                    inner.tokens.insert(
                        format!("{campaign}/{occurrence}"),
                        (campaign.clone(), occurrence),
                    );
                    inner
                        .attempts
                        .insert((campaign, occurrence), AttemptState::Acked { epoch });
                }
                RecordKind::DeadLettered {
                    campaign,
                    occurrence,
                    reason,
                } => {
                    inner
                        .attempts
                        .insert((campaign, occurrence), AttemptState::DeadLettered { reason });
                }
            }
        }
        self.update_in_flight(inner);
        self.telemetry.count_by("recovered_records", replayed);
    }

    /// Repeats a journaled bucket interaction: a successful take for a
    /// `Dispatched` record (also spending quota), a failed take for a
    /// `RateLimited` one. Either way the bucket's refill accounting
    /// advances exactly as it did in the original instance.
    fn replay_bucket_take(&self, inner: &mut Inner, campaign: &str, at_ms: u64, spend: bool) {
        let Some(app) = inner.campaigns.get(campaign).map(|s| s.app.clone()) else {
            return;
        };
        if let Some(bucket) = inner.buckets.get_mut(&app) {
            let _ = bucket.try_take(at_ms);
        }
        if spend {
            *inner.dispatch_counts.entry(app).or_insert(0) += 1;
        }
    }
}

fn take_seq(inner: &mut Inner) -> u64 {
    let seq = inner.next_seq;
    inner.next_seq += 1;
    seq
}

fn min_opt(current: Option<Timestamp>, candidate: Timestamp) -> Option<Timestamp> {
    match current {
        Some(t) if t <= candidate => Some(t),
        _ => Some(candidate),
    }
}
