//! End-to-end campaign lifecycle tests against a full deployment (broker,
//! simulated network, client manager, server manager, storage): delivery,
//! duplicate registration, quotas, rate limits, negative acks, and the
//! two crash/failover shapes — ack lost while the scheduler is dead
//! (redispatch + device-side dedup) and immediate failover (the
//! replacement settles the in-flight ack without redispatching).

use sensocial::client::{ClientDeps, ClientManager};
use sensocial::server::{ServerDeps, ServerManager};
use sensocial::{Granularity, Modality, PrivacyPolicyManager, StreamSink, StreamSpec};
use sensocial_broker::{Broker, BrokerClient};
use sensocial_campaign::{
    AttemptState, CampaignError, CampaignPolicies, CampaignScheduler, CampaignSpec,
    RateLimitPolicy,
};
use sensocial_energy::{BatteryMeter, CpuCosts, CpuMeter, EnergyProfile, MemoryProfiler};
use sensocial_net::Network;
use sensocial_runtime::{Scheduler, SimDuration, SimRng, Timestamp};
use sensocial_sensors::{DeviceEnvironment, SensorManager};
use sensocial_storage::{StorageConfig, StorageEngine};
use sensocial_types::geo::cities;
use sensocial_types::{DeviceId, StreamId, UserId};

struct Deployment {
    sched: Scheduler,
    net: Network,
    server: ServerManager,
    storage: StorageEngine,
}

fn deployment(seed: u64) -> Deployment {
    let mut sched = Scheduler::new();
    let net = Network::new(seed);
    let _broker = Broker::new(&net, "broker");
    let storage = StorageConfig::from_env().open();
    let server_client = BrokerClient::new(&net, "server-ep", "broker", "server");
    let server = ServerManager::new(ServerDeps::new(
        storage.clone(),
        server_client,
        SimRng::seed_from(seed ^ 0xA5),
    ));
    server.connect(&mut sched);
    Deployment {
        sched,
        net,
        server,
        storage,
    }
}

fn add_device(d: &mut Deployment, user: &str, device: &str) -> ClientManager {
    let env = DeviceEnvironment::new(cities::paris());
    let sensors = SensorManager::new(env.clone(), SimRng::seed_from(7));
    let broker_client = BrokerClient::new(&d.net, format!("{device}-ep"), "broker", device);
    let manager = ClientManager::new(ClientDeps {
        user: UserId::new(user),
        device: DeviceId::new(device),
        sensors,
        classifiers: sensocial_classify::ClassifierRegistry::with_defaults(vec![
            cities::paris_place(),
        ]),
        privacy: PrivacyPolicyManager::allow_all(),
        broker: Some(broker_client),
        battery: BatteryMeter::new(),
        cpu: CpuMeter::new(),
        memory: MemoryProfiler::new(),
        energy_profile: EnergyProfile::default(),
        cpu_costs: CpuCosts::default(),
    });
    manager.connect(&mut d.sched);
    d.server
        .register_device(UserId::new(user), DeviceId::new(device));
    manager
}

fn sensing_stream(d: &mut Deployment, manager: &ClientManager) -> StreamId {
    let spec = StreamSpec::continuous(Modality::Location, Granularity::Classified)
        .with_interval(SimDuration::from_secs(10))
        .with_sink(StreamSink::Server);
    manager
        .create_stream(&mut d.sched, spec)
        .expect("stream creation")
}

fn campaign(id: &str, device: &str, stream: StreamId, start_s: u64, period_s: u64, n: u32) -> CampaignSpec {
    CampaignSpec {
        id: id.into(),
        app: "birdwatch".into(),
        device: DeviceId::new(device),
        stream,
        start: Timestamp::from_secs(start_s),
        period: SimDuration::from_secs(period_s),
        occurrences: n,
        interval_ms: 30_000,
    }
}

#[test]
fn every_occurrence_is_applied_exactly_once() {
    let mut d = deployment(11);
    let manager = add_device(&mut d, "alice", "p1");
    let stream = sensing_stream(&mut d, &manager);
    let campaigns = CampaignScheduler::new(&d.server, &d.storage, CampaignPolicies::default(), 11);
    campaigns
        .register(&mut d.sched, campaign("camp-a", "p1", stream, 10, 60, 3))
        .expect("register");
    d.sched.run_until(Timestamp::from_secs(300));

    assert!(campaigns.is_settled());
    assert_eq!(campaigns.acked(), 3);
    assert_eq!(campaigns.dead_lettered(), 0);
    for occ in 0..3 {
        assert!(matches!(
            campaigns.state("camp-a", occ),
            Some(AttemptState::Acked { .. })
        ));
    }
    let snap = manager.telemetry().snapshot();
    assert_eq!(snap.counter("client.campaign_applied"), 3);
    assert_eq!(snap.counter("client.campaign_duplicates"), 0);
    let csnap = campaigns.snapshot();
    assert_eq!(csnap.counter("campaign.dispatched"), 3);
    assert_eq!(csnap.counter("campaign.acked"), 3);
    assert_eq!(csnap.counter("campaign.retried"), 0);
}

#[test]
fn duplicate_campaign_ids_are_rejected() {
    let mut d = deployment(3);
    let manager = add_device(&mut d, "alice", "p1");
    let stream = sensing_stream(&mut d, &manager);
    let campaigns = CampaignScheduler::new(&d.server, &d.storage, CampaignPolicies::default(), 3);
    campaigns
        .register(&mut d.sched, campaign("camp-a", "p1", stream, 10, 60, 1))
        .expect("first registration");
    assert_eq!(
        campaigns.register(&mut d.sched, campaign("camp-a", "p1", stream, 20, 60, 1)),
        Err(CampaignError::DuplicateCampaign("camp-a".into()))
    );
}

#[test]
fn quota_exhaustion_dead_letters_the_rest() {
    let mut d = deployment(5);
    let manager = add_device(&mut d, "alice", "p1");
    let stream = sensing_stream(&mut d, &manager);
    let policies = CampaignPolicies {
        quota_per_app: 2,
        ..CampaignPolicies::default()
    };
    let campaigns = CampaignScheduler::new(&d.server, &d.storage, policies, 5);
    campaigns
        .register(&mut d.sched, campaign("camp-a", "p1", stream, 5, 20, 4))
        .expect("register");
    d.sched.run_until(Timestamp::from_secs(200));

    assert!(campaigns.is_settled());
    assert_eq!(campaigns.acked(), 2, "quota admits exactly two dispatches");
    assert_eq!(campaigns.dead_lettered(), 2);
    let csnap = campaigns.snapshot();
    assert_eq!(csnap.counter("campaign.quota_exhausted"), 2);
    assert_eq!(csnap.counter("campaign.dispatched"), 2);
    assert_eq!(
        manager.telemetry().snapshot().counter("client.campaign_applied"),
        2
    );
    // The dead letters carry the typed reason.
    match campaigns.state("camp-a", 3) {
        Some(AttemptState::DeadLettered { reason }) => {
            assert!(reason.contains("quota"), "reason was: {reason}");
        }
        other => panic!("expected a dead letter, got {other:?}"),
    }
}

#[test]
fn rate_limit_defers_without_dropping() {
    let mut d = deployment(9);
    let manager = add_device(&mut d, "alice", "p1");
    let stream = sensing_stream(&mut d, &manager);
    let policies = CampaignPolicies {
        rate: RateLimitPolicy::new(1, 30_000),
        ..CampaignPolicies::default()
    };
    let campaigns = CampaignScheduler::new(&d.server, &d.storage, policies, 9);
    campaigns
        .register(&mut d.sched, campaign("camp-a", "p1", stream, 5, 1, 3))
        .expect("register");
    d.sched.run_until(Timestamp::from_secs(200));

    assert!(campaigns.is_settled());
    assert_eq!(campaigns.acked(), 3, "deferred, never dropped");
    assert_eq!(campaigns.dead_lettered(), 0);
    let csnap = campaigns.snapshot();
    assert!(
        csnap.counter("campaign.rate_limited") >= 2,
        "occurrences due inside the refill window were throttled"
    );
    assert_eq!(
        manager.telemetry().snapshot().counter("client.campaign_applied"),
        3
    );
}

#[test]
fn admission_probe_surfaces_typed_errors() {
    let d = deployment(2);
    let zero_quota = CampaignPolicies {
        quota_per_app: 0,
        ..CampaignPolicies::default()
    };
    let campaigns = CampaignScheduler::new(&d.server, &d.storage, zero_quota, 2);
    assert!(matches!(
        campaigns.admission(Timestamp::ZERO, "birdwatch"),
        Err(CampaignError::QuotaExhausted { quota: 0, .. })
    ));

    let throttled = CampaignPolicies {
        rate: RateLimitPolicy::new(0, 100),
        ..CampaignPolicies::default()
    };
    let campaigns = CampaignScheduler::new(&d.server, &d.storage, throttled, 2);
    match campaigns.admission(Timestamp::from_millis(50), "birdwatch") {
        Err(CampaignError::RateLimited { retry_at_ms, .. }) => assert!(retry_at_ms > 50),
        other => panic!("expected RateLimited, got {other:?}"),
    }
    // Probing consumed nothing; a second probe answers the same.
    assert!(campaigns.admission(Timestamp::from_millis(50), "birdwatch").is_err());
    drop(d);
}

#[test]
fn rejected_commands_retry_then_dead_letter() {
    let mut d = deployment(21);
    let manager = add_device(&mut d, "alice", "p1");
    let _stream = sensing_stream(&mut d, &manager);
    let policies = CampaignPolicies {
        max_attempts: 2,
        ..CampaignPolicies::default()
    };
    let campaigns = CampaignScheduler::new(&d.server, &d.storage, policies, 21);
    // Stream 999 does not exist on the device: every dispatch is nacked.
    campaigns
        .register(
            &mut d.sched,
            campaign("camp-bad", "p1", StreamId::new(999), 5, 60, 1),
        )
        .expect("register");
    d.sched.run_until(Timestamp::from_secs(300));

    assert!(campaigns.is_settled());
    assert_eq!(campaigns.acked(), 0);
    assert_eq!(campaigns.dead_lettered(), 1);
    let csnap = campaigns.snapshot();
    assert_eq!(csnap.counter("campaign.nacked"), 2, "one nack per attempt");
    assert_eq!(csnap.counter("campaign.dispatched"), 2);
    match campaigns.state("camp-bad", 0) {
        Some(AttemptState::DeadLettered { reason }) => {
            assert!(reason.contains("rejected"), "reason was: {reason}");
        }
        other => panic!("expected a dead letter, got {other:?}"),
    }
    assert_eq!(
        manager.telemetry().snapshot().counter("client.campaign_applied"),
        0
    );
}

/// The crash shape the acceptance scenarios commit to: the scheduler dies
/// with an attempt in flight, the device's ack lands while no instance is
/// listening (lost), and the recovered instance redrives the attempt. The
/// device deduplicates by occurrence token, so nothing is lost and
/// nothing is applied twice.
fn run_crash_failover(seed: u64) -> (u64, u64, u64, String) {
    let mut d = deployment(seed);
    let manager = add_device(&mut d, "alice", "p1");
    let stream = sensing_stream(&mut d, &manager);
    let policies = CampaignPolicies::default();
    let primary = CampaignScheduler::new(&d.server, &d.storage, policies, seed);
    primary
        .register(&mut d.sched, campaign("camp-a", "p1", stream, 5, 30, 5))
        .expect("register");

    // Run just past the first dispatch (timer at t=5 s) but well inside
    // the broker round trip (40 ms per network hop), then crash.
    d.sched.run_until(Timestamp::from_millis(5_010));
    assert!(matches!(
        primary.state("camp-a", 0),
        Some(AttemptState::Dispatched { .. })
    ));
    primary.crash();
    assert!(!primary.is_alive());

    // The device still applies occurrence 0 and acks — into the void.
    d.sched.run_until(Timestamp::from_secs(20));
    assert_eq!(
        manager.telemetry().snapshot().counter("client.campaign_applied"),
        1,
        "only the scheduler died; the device applied occurrence 0"
    );
    assert!(
        matches!(
            primary.state("camp-a", 0),
            Some(AttemptState::Dispatched { .. })
        ),
        "the dead instance never saw the ack"
    );

    // Failover: rebuild from the journal. The in-flight attempt comes
    // back with its absolute deadline (already past), so start() redrives
    // it; the device re-acks without re-applying.
    let replacement = CampaignScheduler::recover(&d.server, &d.storage, policies, seed);
    assert!(matches!(
        replacement.state("camp-a", 0),
        Some(AttemptState::Dispatched { .. })
    ));
    replacement.start(&mut d.sched);
    d.sched.run_until(Timestamp::from_secs(400));

    assert!(replacement.is_settled());
    let snap = manager.telemetry().snapshot();
    let mut merged = primary.snapshot();
    merged.merge(&replacement.snapshot());
    merged.merge(&snap);
    (
        replacement.acked(),
        snap.counter("client.campaign_applied"),
        snap.counter("client.campaign_duplicates"),
        merged.to_wire(),
    )
}

#[test]
fn crash_recovery_loses_nothing_and_duplicates_nothing() {
    let (acked, applied, duplicates, _wire) = run_crash_failover(17);
    assert_eq!(acked, 5, "zero lost config epochs");
    assert_eq!(applied, 5, "zero duplicated reconfigurations");
    assert_eq!(
        duplicates, 1,
        "the redispatched occurrence was deduped by token, not re-applied"
    );
}

#[test]
fn same_seed_crash_runs_are_byte_identical() {
    let a = run_crash_failover(17);
    let b = run_crash_failover(17);
    assert_eq!(a.3, b.3, "merged telemetry wire form is byte-identical");
    assert_eq!((a.0, a.1, a.2), (b.0, b.1, b.2));
}

#[test]
fn immediate_failover_settles_in_flight_acks_without_redispatch() {
    let mut d = deployment(23);
    let manager = add_device(&mut d, "alice", "p1");
    let stream = sensing_stream(&mut d, &manager);
    let policies = CampaignPolicies::default();
    let primary = CampaignScheduler::new(&d.server, &d.storage, policies, 23);
    primary
        .register(&mut d.sched, campaign("camp-a", "p1", stream, 5, 30, 5))
        .expect("register");

    // occ 0 (t=5 s) and occ 1 (t=35 s) settle; occ 2 dispatches at t=65 s.
    // Crash with occ 2 in flight and fail over immediately.
    d.sched.run_until(Timestamp::from_millis(65_010));
    primary.crash();
    let replacement = CampaignScheduler::recover(&d.server, &d.storage, policies, 23);
    assert!(matches!(
        replacement.state("camp-a", 0),
        Some(AttemptState::Acked { .. })
    ));
    assert_eq!(replacement.acked(), 2, "journal replay dedups settled occurrences");
    assert!(matches!(
        replacement.state("camp-a", 2),
        Some(AttemptState::Dispatched { .. })
    ));
    replacement.start(&mut d.sched);
    d.sched.run_until(Timestamp::from_secs(400));

    assert!(replacement.is_settled());
    assert_eq!(replacement.acked(), 5);
    let csnap = replacement.snapshot();
    assert_eq!(
        csnap.counter("campaign.dispatched"),
        2,
        "only occurrences 3 and 4 needed dispatching; occ 2's ack settled in flight"
    );
    let snap = manager.telemetry().snapshot();
    assert_eq!(snap.counter("client.campaign_applied"), 5, "zero lost");
    assert_eq!(snap.counter("client.campaign_duplicates"), 0, "zero duplicated");
}
