//! The stock physical-activity classifier.

use sensocial_types::{ClassifiedContext, Modality, PhysicalActivity, RawSample};

use crate::features::magnitude_std;
use crate::registry::Classifier;

/// Classifies accelerometer bursts into still / walking / running by
/// thresholding the magnitude standard deviation.
///
/// The paper implemented its classifiers "as proofs of concept, and did not
/// focus on maximizing the classification accuracy"; we follow suit with a
/// simple but genuinely discriminative two-threshold rule, validated against
/// the sensor substrate's synthesis in the integration tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityClassifier {
    /// Magnitude std below this is "still" (m/s²).
    pub still_threshold: f64,
    /// Magnitude std above this is "running" (m/s²); between the two is
    /// "walking".
    pub running_threshold: f64,
}

impl Default for ActivityClassifier {
    fn default() -> Self {
        ActivityClassifier {
            still_threshold: 0.4,
            running_threshold: 2.5,
        }
    }
}

impl Classifier for ActivityClassifier {
    fn modality(&self) -> Modality {
        Modality::Accelerometer
    }

    fn classify(&self, sample: &RawSample) -> Option<ClassifiedContext> {
        let RawSample::Accelerometer(burst) = sample else {
            return None;
        };
        let std = magnitude_std(burst);
        let activity = if std < self.still_threshold {
            PhysicalActivity::Still
        } else if std < self.running_threshold {
            PhysicalActivity::Walking
        } else {
            PhysicalActivity::Running
        };
        Some(ClassifiedContext::Activity(activity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::AccelSample;

    fn burst(amplitude: f64) -> RawSample {
        RawSample::Accelerometer(
            (0..400)
                .map(|i| {
                    AccelSample::new(0.0, 0.0, 9.81 + (i as f64 * 0.37).sin() * amplitude)
                })
                .collect(),
        )
    }

    #[test]
    fn quiet_burst_is_still() {
        let c = ActivityClassifier::default();
        assert_eq!(
            c.classify(&burst(0.05)),
            Some(ClassifiedContext::Activity(PhysicalActivity::Still))
        );
    }

    #[test]
    fn moderate_burst_is_walking() {
        let c = ActivityClassifier::default();
        assert_eq!(
            c.classify(&burst(1.8)),
            Some(ClassifiedContext::Activity(PhysicalActivity::Walking))
        );
    }

    #[test]
    fn violent_burst_is_running() {
        let c = ActivityClassifier::default();
        assert_eq!(
            c.classify(&burst(5.5)),
            Some(ClassifiedContext::Activity(PhysicalActivity::Running))
        );
    }

    #[test]
    fn wrong_modality_is_none() {
        let c = ActivityClassifier::default();
        let frame = RawSample::Microphone(sensocial_types::AudioFrame {
            rms: 0.5,
            peak: 0.9,
            duration_ms: 1000,
        });
        assert_eq!(c.classify(&frame), None);
    }

    #[test]
    fn classifies_real_synthetic_bursts() {
        // End-to-end against the sensor substrate's actual synthesis.
        use sensocial_runtime::{Scheduler, SimRng};
        use sensocial_sensors::{DeviceEnvironment, SensorManager};
        use sensocial_types::geo::cities;

        let mut sched = Scheduler::new();
        let env = DeviceEnvironment::new(cities::paris());
        let sensors = SensorManager::new(env.clone(), SimRng::seed_from(21));
        let c = ActivityClassifier::default();
        for truth in [
            PhysicalActivity::Still,
            PhysicalActivity::Walking,
            PhysicalActivity::Running,
        ] {
            env.set_activity(truth);
            let mut correct = 0;
            for _ in 0..10 {
                let sample = sensors.sample_once(&mut sched, Modality::Accelerometer);
                if c.classify(&sample) == Some(ClassifiedContext::Activity(truth)) {
                    correct += 1;
                }
            }
            assert!(correct >= 9, "{truth:?}: only {correct}/10 correct");
        }
    }
}
