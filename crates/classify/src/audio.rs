//! The stock audio-environment classifier.

use sensocial_types::{AudioEnvironment, ClassifiedContext, Modality, RawSample};

use crate::registry::Classifier;

/// Classifies microphone frames into silent / not-silent by thresholding
/// RMS amplitude (paper §4: "infer from the raw microphone data if the
/// audio environment is 'silent' or 'not silent'").
#[derive(Debug, Clone, PartialEq)]
pub struct AudioClassifier {
    /// RMS at or above this is "not silent".
    pub silence_threshold: f64,
}

impl Default for AudioClassifier {
    fn default() -> Self {
        AudioClassifier {
            silence_threshold: 0.12,
        }
    }
}

impl Classifier for AudioClassifier {
    fn modality(&self) -> Modality {
        Modality::Microphone
    }

    fn classify(&self, sample: &RawSample) -> Option<ClassifiedContext> {
        let RawSample::Microphone(frame) = sample else {
            return None;
        };
        let env = if frame.rms < self.silence_threshold {
            AudioEnvironment::Silent
        } else {
            AudioEnvironment::NotSilent
        };
        Some(ClassifiedContext::Audio(env))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::AudioFrame;

    fn frame(rms: f64) -> RawSample {
        RawSample::Microphone(AudioFrame {
            rms,
            peak: (rms * 2.0).min(1.0),
            duration_ms: 1000,
        })
    }

    #[test]
    fn quiet_is_silent() {
        let c = AudioClassifier::default();
        assert_eq!(
            c.classify(&frame(0.03)),
            Some(ClassifiedContext::Audio(AudioEnvironment::Silent))
        );
    }

    #[test]
    fn loud_is_not_silent() {
        let c = AudioClassifier::default();
        assert_eq!(
            c.classify(&frame(0.4)),
            Some(ClassifiedContext::Audio(AudioEnvironment::NotSilent))
        );
    }

    #[test]
    fn threshold_boundary() {
        let c = AudioClassifier::default();
        assert_eq!(
            c.classify(&frame(0.12)),
            Some(ClassifiedContext::Audio(AudioEnvironment::NotSilent)),
            "at the threshold counts as not silent"
        );
    }

    #[test]
    fn wrong_modality_is_none() {
        let c = AudioClassifier::default();
        assert_eq!(
            c.classify(&RawSample::Bluetooth(sensocial_types::BluetoothScan {
                nearby_devices: vec![]
            })),
            None
        );
    }
}
