//! Radio-neighbourhood density classifiers.

use sensocial_types::{ClassifiedContext, Modality, RawSample};

use crate::registry::Classifier;

/// Classifies WiFi scans to an access-point count — a coarse proxy for how
/// built-up / crowded the user's surroundings are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WifiDensityClassifier;

impl Classifier for WifiDensityClassifier {
    fn modality(&self) -> Modality {
        Modality::Wifi
    }

    fn classify(&self, sample: &RawSample) -> Option<ClassifiedContext> {
        let RawSample::Wifi(scan) = sample else {
            return None;
        };
        Some(ClassifiedContext::WifiDensity(scan.access_points.len()))
    }
}

/// Classifies Bluetooth scans to a nearby-device count — the collocation
/// proxy used by social-sensing studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BluetoothDensityClassifier;

impl Classifier for BluetoothDensityClassifier {
    fn modality(&self) -> Modality {
        Modality::Bluetooth
    }

    fn classify(&self, sample: &RawSample) -> Option<ClassifiedContext> {
        let RawSample::Bluetooth(scan) = sample else {
            return None;
        };
        Some(ClassifiedContext::BluetoothDensity(
            scan.nearby_devices.len(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::{BluetoothScan, WifiScan};

    #[test]
    fn wifi_density_counts_aps() {
        let scan = RawSample::Wifi(WifiScan {
            access_points: vec![("a".into(), -40), ("b".into(), -60)],
        });
        assert_eq!(
            WifiDensityClassifier.classify(&scan),
            Some(ClassifiedContext::WifiDensity(2))
        );
    }

    #[test]
    fn bluetooth_density_counts_devices() {
        let scan = RawSample::Bluetooth(BluetoothScan {
            nearby_devices: vec!["x".into()],
        });
        assert_eq!(
            BluetoothDensityClassifier.classify(&scan),
            Some(ClassifiedContext::BluetoothDensity(1))
        );
    }

    #[test]
    fn cross_modality_is_none() {
        let scan = RawSample::Bluetooth(BluetoothScan {
            nearby_devices: vec![],
        });
        assert_eq!(WifiDensityClassifier.classify(&scan), None);
    }
}
