//! Feature extraction over accelerometer bursts.

use sensocial_types::AccelSample;

/// Mean of the per-sample acceleration magnitudes.
///
/// Returns 0 for an empty burst.
pub fn magnitude_mean(samples: &[AccelSample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|s| s.magnitude()).sum::<f64>() / samples.len() as f64
}

/// Standard deviation of the per-sample acceleration magnitudes — the
/// feature the stock activity classifier thresholds on (gravity cancels in
/// the deviation, so the phone's orientation doesn't matter).
///
/// Returns 0 for an empty burst.
pub fn magnitude_std(samples: &[AccelSample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mean = magnitude_mean(samples);
    let var = samples
        .iter()
        .map(|s| (s.magnitude() - mean).powi(2))
        .sum::<f64>()
        / samples.len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_burst_has_zero_std() {
        let burst = vec![AccelSample::new(0.0, 0.0, 9.81); 10];
        assert!((magnitude_mean(&burst) - 9.81).abs() < 1e-9);
        assert_eq!(magnitude_std(&burst), 0.0);
    }

    #[test]
    fn oscillating_burst_has_positive_std() {
        let burst: Vec<AccelSample> = (0..100)
            .map(|i| AccelSample::new(0.0, 0.0, 9.81 + (i as f64 * 0.5).sin() * 3.0))
            .collect();
        assert!(magnitude_std(&burst) > 1.0);
    }

    #[test]
    fn empty_burst_is_zero() {
        assert_eq!(magnitude_mean(&[]), 0.0);
        assert_eq!(magnitude_std(&[]), 0.0);
    }
}
