//! Context classifiers: raw sensor data → high-level context.
//!
//! The stock SenSocial middleware "provides a few classifiers that can
//! classify raw sensed data into higher level context classes" — activity
//! from the accelerometer, silent/not-silent from the microphone — and is
//! "very flexible": developers can register their own (paper §4). The
//! paper's future work adds OSN text mining (topics, emotional state); this
//! crate implements all of it:
//!
//! * [`ActivityClassifier`] — accelerometer burst → still / walking /
//!   running, via magnitude variance thresholds;
//! * [`AudioClassifier`] — microphone frame → silent / not-silent;
//! * [`PlaceClassifier`] — GPS fix → named place, against a gazetteer
//!   (the server-side "raw GPS coordinates are classified to a descriptive
//!   address, i.e. the name of the city");
//! * [`WifiDensityClassifier`] / [`BluetoothDensityClassifier`] — scan →
//!   neighbour counts;
//! * [`SentimentClassifier`] / [`extract_topic`] — OSN post text →
//!   emotional valence / topic (paper §9 future work);
//! * [`ClassifierRegistry`] — per-modality dispatch, with registration of
//!   external classifiers.
//!
//! # Example
//!
//! ```
//! use sensocial_classify::{ClassifierRegistry, Classifier};
//! use sensocial_types::{geo::cities, ClassifiedContext, GpsFix, RawSample};
//!
//! let registry = ClassifierRegistry::with_defaults(vec![cities::paris_place()]);
//! let fix = RawSample::Location(GpsFix {
//!     position: cities::paris(),
//!     accuracy_m: 8.0,
//!     speed_mps: 0.0,
//! });
//! let classified = registry.classify(&fix).unwrap();
//! assert_eq!(classified, ClassifiedContext::Place(Some("Paris".into())));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod audio;
mod density;
mod features;
mod place;
mod registry;
mod sentiment;

pub use activity::ActivityClassifier;
pub use audio::AudioClassifier;
pub use density::{BluetoothDensityClassifier, WifiDensityClassifier};
pub use features::{magnitude_mean, magnitude_std};
pub use place::PlaceClassifier;
pub use registry::{Classifier, ClassifierRegistry};
pub use sentiment::{extract_topic, SentimentClassifier, TextSentiment};
