//! The place (reverse-geocoding) classifier.

use sensocial_types::{ClassifiedContext, Modality, Place, RawSample};

use crate::registry::Classifier;

/// Classifies GPS fixes to named places against a gazetteer, as the paper's
/// server does when "raw GPS coordinates are classified to a descriptive
/// address, i.e. the name of the city that the user is in".
///
/// When several places contain the fix, the smallest (most specific) wins;
/// a fix outside every place classifies to `Place(None)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceClassifier {
    places: Vec<Place>,
}

impl PlaceClassifier {
    /// Creates a classifier over `places`.
    pub fn new(places: Vec<Place>) -> Self {
        PlaceClassifier { places }
    }

    /// Adds a place to the gazetteer.
    pub fn add_place(&mut self, place: Place) {
        self.places.push(place);
    }

    /// The gazetteer.
    pub fn places(&self) -> &[Place] {
        &self.places
    }
}

impl Classifier for PlaceClassifier {
    fn modality(&self) -> Modality {
        Modality::Location
    }

    fn classify(&self, sample: &RawSample) -> Option<ClassifiedContext> {
        let RawSample::Location(fix) = sample else {
            return None;
        };
        let name = self
            .places
            .iter()
            .filter(|p| p.contains(fix.position))
            .min_by(|a, b| {
                a.fence
                    .radius_m
                    .partial_cmp(&b.fence.radius_m)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|p| p.name.clone());
        Some(ClassifiedContext::Place(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::geo::{cities, GeoFence};
    use sensocial_types::GpsFix;

    fn fix(position: sensocial_types::GeoPoint) -> RawSample {
        RawSample::Location(GpsFix {
            position,
            accuracy_m: 8.0,
            speed_mps: 0.0,
        })
    }

    #[test]
    fn classifies_to_city() {
        let c = PlaceClassifier::new(vec![cities::paris_place(), cities::bordeaux_place()]);
        assert_eq!(
            c.classify(&fix(cities::paris())),
            Some(ClassifiedContext::Place(Some("Paris".into())))
        );
        assert_eq!(
            c.classify(&fix(cities::bordeaux())),
            Some(ClassifiedContext::Place(Some("Bordeaux".into())))
        );
    }

    #[test]
    fn outside_everything_is_unknown() {
        let c = PlaceClassifier::new(vec![cities::paris_place()]);
        assert_eq!(
            c.classify(&fix(cities::birmingham())),
            Some(ClassifiedContext::Place(None))
        );
    }

    #[test]
    fn smallest_containing_place_wins() {
        let mut c = PlaceClassifier::new(vec![cities::paris_place()]);
        c.add_place(Place::new(
            "Le Marais",
            GeoFence::new(cities::paris(), 1_500.0),
        ));
        assert_eq!(
            c.classify(&fix(cities::paris())),
            Some(ClassifiedContext::Place(Some("Le Marais".into())))
        );
        assert_eq!(c.places().len(), 2);
    }

    #[test]
    fn wrong_modality_is_none() {
        let c = PlaceClassifier::new(vec![]);
        assert_eq!(
            c.classify(&RawSample::Wifi(sensocial_types::WifiScan {
                access_points: vec![]
            })),
            None
        );
    }
}
