//! The classifier trait and per-modality registry.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use sensocial_types::{ClassifiedContext, Modality, Place, RawSample};

use crate::activity::ActivityClassifier;
use crate::audio::AudioClassifier;
use crate::density::{BluetoothDensityClassifier, WifiDensityClassifier};
use crate::place::PlaceClassifier;

/// A raw-sample → classified-context classifier for one modality.
///
/// External classifiers implement this trait and are installed with
/// [`ClassifierRegistry::register`], reproducing the paper's "integration
/// of external classifiers is possible by registering listeners".
pub trait Classifier: Send + Sync {
    /// The modality this classifier consumes.
    fn modality(&self) -> Modality;

    /// Classifies a raw sample, or `None` when the sample is from another
    /// modality.
    fn classify(&self, sample: &RawSample) -> Option<ClassifiedContext>;
}

/// Dispatches raw samples to the registered classifier for their modality.
///
/// Cloneable handle. See the [crate-level example](crate).
#[derive(Clone)]
pub struct ClassifierRegistry {
    classifiers: Arc<RwLock<HashMap<Modality, Arc<dyn Classifier>>>>,
}

impl std::fmt::Debug for ClassifierRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassifierRegistry")
            .field("modalities", &self.classifiers.read().len())
            .finish()
    }
}

impl ClassifierRegistry {
    /// Creates an empty registry (no modality classifiable).
    pub fn new() -> Self {
        ClassifierRegistry {
            classifiers: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// Creates a registry with the stock classifiers installed: activity,
    /// audio, place (over the given gazetteer) and the two densities.
    pub fn with_defaults(places: Vec<Place>) -> Self {
        let registry = ClassifierRegistry::new();
        registry.register(Arc::new(ActivityClassifier::default()));
        registry.register(Arc::new(AudioClassifier::default()));
        registry.register(Arc::new(PlaceClassifier::new(places)));
        registry.register(Arc::new(WifiDensityClassifier));
        registry.register(Arc::new(BluetoothDensityClassifier));
        registry
    }

    /// Installs (or replaces) the classifier for its modality.
    pub fn register(&self, classifier: Arc<dyn Classifier>) {
        self.classifiers
            .write()
            .insert(classifier.modality(), classifier);
    }

    /// Removes the classifier for `modality`, returning whether one was
    /// installed.
    pub fn unregister(&self, modality: Modality) -> bool {
        self.classifiers.write().remove(&modality).is_some()
    }

    /// Whether `modality` can be classified.
    pub fn supports(&self, modality: Modality) -> bool {
        self.classifiers.read().contains_key(&modality)
    }

    /// Classifies a raw sample with the classifier registered for its
    /// modality, or `None` when none is installed.
    pub fn classify(&self, sample: &RawSample) -> Option<ClassifiedContext> {
        let classifier = self.classifiers.read().get(&sample.modality()).cloned()?;
        classifier.classify(sample)
    }
}

impl Default for ClassifierRegistry {
    fn default() -> Self {
        ClassifierRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::geo::cities;
    use sensocial_types::{AudioFrame, PhysicalActivity};

    #[test]
    fn defaults_cover_all_modalities() {
        let r = ClassifierRegistry::with_defaults(vec![cities::paris_place()]);
        for m in Modality::ALL {
            assert!(r.supports(m), "{m} unsupported");
        }
    }

    #[test]
    fn empty_registry_classifies_nothing() {
        let r = ClassifierRegistry::new();
        let frame = RawSample::Microphone(AudioFrame {
            rms: 0.5,
            peak: 0.8,
            duration_ms: 1000,
        });
        assert_eq!(r.classify(&frame), None);
        assert!(!r.supports(Modality::Microphone));
    }

    #[test]
    fn register_replaces_and_unregister_removes() {
        /// An "external classifier" that calls everything running.
        struct AlwaysRunning;
        impl Classifier for AlwaysRunning {
            fn modality(&self) -> Modality {
                Modality::Accelerometer
            }
            fn classify(&self, _: &RawSample) -> Option<ClassifiedContext> {
                Some(ClassifiedContext::Activity(PhysicalActivity::Running))
            }
        }

        let r = ClassifierRegistry::with_defaults(vec![]);
        r.register(Arc::new(AlwaysRunning));
        let still_burst = RawSample::Accelerometer(vec![
            sensocial_types::AccelSample::new(0.0, 0.0, 9.81);
            400
        ]);
        assert_eq!(
            r.classify(&still_burst),
            Some(ClassifiedContext::Activity(PhysicalActivity::Running)),
            "external classifier replaced the stock one"
        );
        assert!(r.unregister(Modality::Accelerometer));
        assert_eq!(r.classify(&still_burst), None);
    }

    #[test]
    fn dispatch_picks_by_modality() {
        let r = ClassifierRegistry::with_defaults(vec![cities::paris_place()]);
        let frame = RawSample::Microphone(AudioFrame {
            rms: 0.01,
            peak: 0.02,
            duration_ms: 1000,
        });
        assert_eq!(
            r.classify(&frame),
            Some(ClassifiedContext::Audio(
                sensocial_types::AudioEnvironment::Silent
            ))
        );
    }
}
