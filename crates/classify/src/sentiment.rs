//! OSN text mining: sentiment and topic extraction.
//!
//! The paper's future work: "develop classifiers that are able to extract
//! OSN post topics and emotional states of the individuals, and link them
//! to the users' physical context" (§9). These keyword classifiers close
//! that loop against the content the simulated platform generates.

/// Emotional valence of a piece of OSN text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TextSentiment {
    /// Positive valence.
    Positive,
    /// Negative valence.
    Negative,
    /// No strong valence detected.
    Neutral,
}

const POSITIVE_KEYWORDS: [&str; 8] = [
    "love", "amazing", "great", "happy", "wonderful", "excited", "fantastic", "best",
];

const NEGATIVE_KEYWORDS: [&str; 8] = [
    "hate", "awful", "terrible", "sad", "disappointed", "angry", "worst", "annoyed",
];

/// A keyword-vote sentiment classifier for OSN post text.
///
/// # Example
///
/// ```
/// use sensocial_classify::{SentimentClassifier, TextSentiment};
///
/// let c = SentimentClassifier::default();
/// assert_eq!(c.classify("I love this album!"), TextSentiment::Positive);
/// assert_eq!(c.classify("so disappointed by the match"), TextSentiment::Negative);
/// assert_eq!(c.classify("thinking about dinner"), TextSentiment::Neutral);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SentimentClassifier {
    _private: (),
}

impl SentimentClassifier {
    /// Creates the classifier.
    pub fn new() -> Self {
        SentimentClassifier::default()
    }

    /// Classifies `text` by keyword votes; ties (including zero votes) are
    /// neutral.
    pub fn classify(&self, text: &str) -> TextSentiment {
        let lower = text.to_lowercase();
        let pos = POSITIVE_KEYWORDS
            .iter()
            .filter(|k| lower.contains(*k))
            .count();
        let neg = NEGATIVE_KEYWORDS
            .iter()
            .filter(|k| lower.contains(*k))
            .count();
        match pos.cmp(&neg) {
            std::cmp::Ordering::Greater => TextSentiment::Positive,
            std::cmp::Ordering::Less => TextSentiment::Negative,
            std::cmp::Ordering::Equal => TextSentiment::Neutral,
        }
    }
}

const TOPIC_KEYWORDS: [(&str, &[&str]); 6] = [
    ("football", &["match", "goal", "football", "league"]),
    ("music", &["album", "song", "music", "concert", "band"]),
    ("food", &["dinner", "bistro", "food", "recipe", "lunch"]),
    ("travel", &["trip", "coast", "travel", "flight", "holiday"]),
    ("work", &["deadline", "work", "meeting", "office"]),
    ("weather", &["weather", "rain", "sunny", "storm"]),
];

/// Extracts the dominant topic of `text` by keyword votes, or `None` when
/// no topic keyword appears.
///
/// # Example
///
/// ```
/// use sensocial_classify::extract_topic;
///
/// assert_eq!(extract_topic("what a goal in the match!"), Some("football"));
/// assert_eq!(extract_topic("untagged musings"), None);
/// ```
pub fn extract_topic(text: &str) -> Option<&'static str> {
    let lower = text.to_lowercase();
    TOPIC_KEYWORDS
        .iter()
        .map(|(topic, keywords)| {
            let votes = keywords.iter().filter(|k| lower.contains(*k)).count();
            (*topic, votes)
        })
        .filter(|(_, votes)| *votes > 0)
        .max_by_key(|(_, votes)| *votes)
        .map(|(topic, _)| topic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentiment_votes() {
        let c = SentimentClassifier::new();
        assert_eq!(c.classify("AMAZING and wonderful"), TextSentiment::Positive);
        assert_eq!(c.classify("terrible, awful, but great"), TextSentiment::Negative);
        assert_eq!(c.classify("love it, hate it"), TextSentiment::Neutral);
        assert_eq!(c.classify(""), TextSentiment::Neutral);
    }

    #[test]
    fn sentiment_is_case_insensitive() {
        let c = SentimentClassifier::new();
        assert_eq!(c.classify("I Love This"), TextSentiment::Positive);
    }

    #[test]
    fn topic_extraction_votes() {
        assert_eq!(extract_topic("the match and the goal"), Some("football"));
        assert_eq!(extract_topic("new album from the band"), Some("music"));
        assert_eq!(extract_topic("dinner then a concert and a song"), Some("music"));
        assert_eq!(extract_topic("nothing relevant"), None);
    }

    #[test]
    fn classifies_generated_platform_content() {
        // Close the loop against the OSN content generator's phrasing.
        let c = SentimentClassifier::new();
        assert_eq!(c.classify("I so happy the match tonight!"), TextSentiment::Positive);
        assert_eq!(c.classify("I so sad the weather today."), TextSentiment::Negative);
        assert_eq!(extract_topic("Thinking about the match tonight."), Some("football"));
        assert_eq!(extract_topic("Thinking about dinner at the bistro."), Some("food"));
    }
}
