//! Property-based tests for the stock classifiers.

use proptest::prelude::*;
use sensocial_classify::{
    ActivityClassifier, AudioClassifier, Classifier, PlaceClassifier,
};
use sensocial_types::{
    AccelSample, AudioFrame, ClassifiedContext, GpsFix, PhysicalActivity, Place, RawSample,
};
use sensocial_types::geo::{cities, GeoFence};

fn burst(amplitude: f64, n: usize) -> RawSample {
    RawSample::Accelerometer(
        (0..n)
            .map(|i| AccelSample::new(0.0, 0.0, 9.81 + (i as f64 * 0.37).sin() * amplitude))
            .collect(),
    )
}

proptest! {
    /// The activity label is monotone in oscillation amplitude: more
    /// movement never maps to a "calmer" class.
    #[test]
    fn activity_is_monotone_in_amplitude(
        a in 0.0f64..8.0,
        b in 0.0f64..8.0,
        n in 50usize..400,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let classifier = ActivityClassifier::default();
        let rank = |s: &RawSample| match classifier.classify(s) {
            Some(ClassifiedContext::Activity(PhysicalActivity::Still)) => 0,
            Some(ClassifiedContext::Activity(PhysicalActivity::Walking)) => 1,
            Some(ClassifiedContext::Activity(PhysicalActivity::Running)) => 2,
            other => panic!("unexpected {other:?}"),
        };
        prop_assert!(rank(&burst(lo, n)) <= rank(&burst(hi, n)));
    }

    /// Audio classification is a threshold function of RMS.
    #[test]
    fn audio_threshold_is_sharp(rms in 0.0f64..1.0) {
        let classifier = AudioClassifier::default();
        let frame = RawSample::Microphone(AudioFrame {
            rms,
            peak: rms.min(1.0),
            duration_ms: 1000,
        });
        let got = classifier.classify(&frame).unwrap();
        let expected = if rms < classifier.silence_threshold {
            "silent"
        } else {
            "not_silent"
        };
        prop_assert_eq!(got.value_string(), expected);
    }

    /// Place classification returns a place containing the fix, or None
    /// when no place contains it.
    #[test]
    fn place_result_actually_contains_fix(
        lat in 40.0f64..55.0,
        lon in -5.0f64..8.0,
    ) {
        let places = vec![
            cities::paris_place(),
            cities::bordeaux_place(),
            Place::new("TinyCenter", GeoFence::new(cities::paris(), 1_000.0)),
        ];
        let classifier = PlaceClassifier::new(places.clone());
        let position = sensocial_types::GeoPoint::new(lat, lon);
        let fix = RawSample::Location(GpsFix { position, accuracy_m: 5.0, speed_mps: 0.0 });
        match classifier.classify(&fix).unwrap() {
            ClassifiedContext::Place(Some(name)) => {
                let place = places.iter().find(|p| p.name == name).unwrap();
                prop_assert!(place.contains(position));
                // Smallest-containing-place rule.
                for other in &places {
                    if other.contains(position) {
                        prop_assert!(place.fence.radius_m <= other.fence.radius_m);
                    }
                }
            }
            ClassifiedContext::Place(None) => {
                prop_assert!(places.iter().all(|p| !p.contains(position)));
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Every classifier ignores samples of foreign modalities.
    #[test]
    fn classifiers_reject_foreign_modalities(rms in 0.0f64..1.0) {
        let frame = RawSample::Microphone(AudioFrame { rms, peak: rms, duration_ms: 100 });
        prop_assert_eq!(ActivityClassifier::default().classify(&frame), None);
        prop_assert_eq!(PlaceClassifier::new(vec![]).classify(&frame), None);
        let fix = RawSample::Location(GpsFix {
            position: cities::paris(),
            accuracy_m: 5.0,
            speed_mps: 0.0,
        });
        prop_assert_eq!(AudioClassifier::default().classify(&fix), None);
    }
}
