//! The client-side SenSocial Manager.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_broker::{BrokerClient, Payload, QoS};
use sensocial_classify::ClassifierRegistry;
use sensocial_energy::{
    BatteryMeter, CpuCosts, CpuMeter, EnergyComponent, EnergyProfile, MemoryProfiler,
};
use sensocial_runtime::{Scheduler, SimDuration, Timer, Timestamp};
use sensocial_sensors::{SensorConfig, SensorManager};
use sensocial_types::{
    ContextData, ContextSnapshot, DeviceId, Error, Granularity, InternedTopic, OsnAction, Place,
    RawSample, Result, StreamId, UserId,
};

use sensocial_analysis::{analyze, compile, AnalysisEnv, FilterPlan, FlowSink};

use crate::predicate::eval_local;

use sensocial_telemetry::{Registry, Stage};

use crate::config::{ConfigCommand, StreamMode, StreamSink, StreamSpec};
use crate::event::{ConfigAck, RegistrationPayload, StreamEvent, TriggerPayload};
use crate::filter::EvalContext;
use crate::privacy::{PrivacyPolicy, PrivacyPolicyManager};
use crate::{Topic, REGISTER_TOPIC};

use super::stream::{StreamOrigin, StreamState, StreamStatus};

/// Modelled Java-heap equivalents for Table 2's DDMS comparison: the
/// object/byte footprints the middleware's structures would have on the
/// paper's Android runtime.
const MANAGER_OBJECTS: u64 = 3_270;
const MANAGER_BYTES: u64 = 1_030_000;
const STREAM_OBJECTS: u64 = 620;
const STREAM_BYTES: u64 = 160_000;
const LISTENER_OBJECTS: u64 = 15;
const LISTENER_BYTES: u64 = 2_600;

/// Server-assigned stream ids live in a disjoint namespace from
/// locally-assigned ones.
pub(crate) const REMOTE_STREAM_ID_BASE: u64 = 1 << 32;

/// Default bound on the store-and-forward uplink buffer (events parked
/// while the broker session is unconfirmed; oldest dropped on overflow).
pub(crate) const DEFAULT_UPLINK_BUFFER: usize = 512;

type Listener = Arc<dyn Fn(&mut Scheduler, &StreamEvent) + Send + Sync>;

/// Everything a [`ClientManager`] is wired to.
pub struct ClientDeps {
    /// The owning user.
    pub user: UserId,
    /// This device.
    pub device: DeviceId,
    /// The sensor substrate.
    pub sensors: SensorManager,
    /// Classifiers for raw → classified conversion.
    pub classifiers: ClassifierRegistry,
    /// Privacy policies screening every stream.
    pub privacy: PrivacyPolicyManager,
    /// Broker binding for triggers/configs/uplink; `None` for local-only
    /// deployments (no server).
    pub broker: Option<BrokerClient>,
    /// Battery meter charged for sampling/classification/transmission.
    pub battery: BatteryMeter,
    /// CPU meter charged for per-cycle work.
    pub cpu: CpuMeter,
    /// Memory profiler tracking middleware allocations.
    pub memory: MemoryProfiler,
    /// Energy cost constants.
    pub energy_profile: EnergyProfile,
    /// CPU cost constants.
    pub cpu_costs: CpuCosts,
}

impl ClientDeps {
    /// Minimal wiring for examples and tests: no broker (local-only),
    /// stock classifiers over `places`, allow-all privacy, fresh meters.
    pub fn local_only(
        user: impl Into<UserId>,
        device: impl Into<DeviceId>,
        sensors: SensorManager,
        places: Vec<Place>,
    ) -> Self {
        ClientDeps {
            user: user.into(),
            device: device.into(),
            sensors,
            classifiers: ClassifierRegistry::with_defaults(places),
            privacy: PrivacyPolicyManager::allow_all(),
            broker: None,
            battery: BatteryMeter::new(),
            cpu: CpuMeter::new(),
            memory: MemoryProfiler::new(),
            energy_profile: EnergyProfile::default(),
            cpu_costs: CpuCosts::default(),
        }
    }
}

struct Inner {
    user: UserId,
    device: DeviceId,
    streams: HashMap<StreamId, StreamState>,
    listeners: HashMap<StreamId, Vec<Listener>>,
    context: ContextSnapshot,
    next_local_stream: u64,
    connected: bool,
    /// Store-and-forward queue of `(topic, payload, birth)` uplink events
    /// awaiting a confirmed broker session; `birth` is the event's sample
    /// time, so the uplink-stage latency absorbs the buffering delay.
    /// Bounded; oldest dropped on overflow. Entries hold the interned
    /// topic and the shared payload, so parking and flushing never copy
    /// the wire form again.
    uplink_buffer: VecDeque<(InternedTopic, Payload, Timestamp)>,
    uplink_limit: usize,
    /// This device's uplink topic, interned once at construction — the
    /// per-sample uplink path clones it for free instead of formatting
    /// `sensocial/uplink/<device>` every event.
    uplink_topic: InternedTopic,
    /// Highest configuration epoch applied per stream. Entries survive
    /// stream destruction so a stale `Create` redelivered after a `Destroy`
    /// cannot resurrect the stream.
    config_epochs: HashMap<StreamId, u64>,
    /// Campaign occurrence tokens already applied. A redispatch of the
    /// same occurrence (new epoch, same token — e.g. after a scheduler
    /// crash) is positively acked without being applied twice.
    applied_tokens: HashSet<String>,
}

/// The point of entry for mobile applications — the paper's client-side
/// `SenSocialManager`.
///
/// Cloneable handle; see the [crate-level quickstart](crate).
#[derive(Clone)]
pub struct ClientManager {
    inner: Arc<Mutex<Inner>>,
    sensors: SensorManager,
    classifiers: ClassifierRegistry,
    privacy: PrivacyPolicyManager,
    broker: Option<BrokerClient>,
    battery: BatteryMeter,
    cpu: CpuMeter,
    memory: MemoryProfiler,
    energy_profile: Arc<EnergyProfile>,
    cpu_costs: Arc<CpuCosts>,
    telemetry: Registry,
}

impl std::fmt::Debug for ClientManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ClientManager")
            .field("user", &inner.user)
            .field("device", &inner.device)
            .field("streams", &inner.streams.len())
            .field("connected", &inner.connected)
            .finish()
    }
}

impl ClientManager {
    /// Creates a manager from its dependencies.
    pub fn new(deps: ClientDeps) -> Self {
        deps.memory
            .alloc("sensocial/manager", MANAGER_OBJECTS, MANAGER_BYTES);
        // Sampling costs are charged by the sensor substrate; route them to
        // this device's meter so energy accounting is complete whether or
        // not the deployment wired the sensors up itself.
        deps.sensors
            .attach_battery(deps.battery.clone(), deps.energy_profile.clone());
        let uplink_topic = Topic::Uplink(deps.device.clone()).interned();
        ClientManager {
            inner: Arc::new(Mutex::new(Inner {
                user: deps.user,
                device: deps.device,
                streams: HashMap::new(),
                listeners: HashMap::new(),
                context: ContextSnapshot::new(),
                next_local_stream: 0,
                connected: false,
                uplink_buffer: VecDeque::new(),
                uplink_limit: DEFAULT_UPLINK_BUFFER,
                uplink_topic,
                config_epochs: HashMap::new(),
                applied_tokens: HashSet::new(),
            })),
            sensors: deps.sensors,
            classifiers: deps.classifiers,
            privacy: deps.privacy,
            broker: deps.broker,
            battery: deps.battery,
            cpu: deps.cpu,
            memory: deps.memory,
            energy_profile: Arc::new(deps.energy_profile),
            cpu_costs: Arc::new(deps.cpu_costs),
            telemetry: Registry::new("client"),
        }
    }

    /// The owning user.
    pub fn user_id(&self) -> UserId {
        self.inner.lock().user.clone()
    }

    /// This device.
    pub fn device_id(&self) -> DeviceId {
        self.inner.lock().device.clone()
    }

    /// The device's latest context snapshot (what filters see).
    pub fn context_snapshot(&self) -> ContextSnapshot {
        self.inner.lock().context.clone()
    }

    /// The privacy policy manager (reads; mutate through
    /// [`ClientManager::set_privacy_policy`] so streams re-screen).
    pub fn privacy(&self) -> &PrivacyPolicyManager {
        &self.privacy
    }

    /// The battery meter.
    pub fn battery(&self) -> &BatteryMeter {
        &self.battery
    }

    /// The CPU meter.
    pub fn cpu(&self) -> &CpuMeter {
        &self.cpu
    }

    /// The underlying broker client, when one is wired. Chaos harnesses
    /// use this to enable keepalive/reconnect supervision and to inspect
    /// connection statistics.
    pub fn broker_client(&self) -> Option<&BrokerClient> {
        self.broker.as_ref()
    }

    /// The manager's telemetry registry (scope `client`): uplink/config
    /// counters, drop causes, the per-stage latency histograms recorded on
    /// this device and the `client.uplink_backlog` gauge.
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Records a fail-closed filter evaluation error (the
    /// `client.filter_eval_errors` counter). Analyzer-vetted plans never
    /// hit this; the single bookkeeping point keeps the three evaluation
    /// sites (duty-cycle gate, sample filter, trigger coupling) in sync.
    fn record_filter_eval_error(&self) {
        self.telemetry.count("filter_eval_errors");
    }

    /// Number of uplink events currently parked awaiting a confirmed
    /// broker session.
    pub fn uplink_backlog(&self) -> usize {
        self.inner.lock().uplink_buffer.len()
    }

    /// Bounds the store-and-forward uplink buffer (default 512; minimum 1).
    /// When full, the oldest parked event is dropped and counted under
    /// the `client.uplink.dropped` counter.
    pub fn set_uplink_buffer_limit(&self, limit: usize) {
        self.inner.lock().uplink_limit = limit.max(1);
    }

    /// The highest configuration epoch applied for `stream` (0 if none).
    pub fn last_config_epoch(&self, stream: StreamId) -> u64 {
        self.inner
            .lock()
            .config_epochs
            .get(&stream)
            .copied()
            .unwrap_or(0)
    }

    /// Simulates the device dropping off the network deliberately (e.g.
    /// flight mode): closes the broker connection. Streams keep sampling;
    /// server-bound events park in the uplink buffer until
    /// [`ClientManager::go_online`].
    pub fn go_offline(&self, sched: &mut Scheduler) {
        if let Some(broker) = &self.broker {
            broker.disconnect(sched);
        }
    }

    /// Resumes the broker session after [`ClientManager::go_offline`]. The
    /// uplink buffer flushes once the broker confirms the session.
    pub fn go_online(&self, sched: &mut Scheduler) {
        if let Some(broker) = &self.broker {
            broker.connect(sched);
        }
    }

    /// Connects to the broker: opens the session and subscribes to this
    /// device's trigger and configuration topics. No-op without a broker.
    ///
    /// Also installs the store-and-forward hook: whenever the broker
    /// session is (re)confirmed, the bounded uplink buffer is flushed in
    /// arrival order.
    pub fn connect(&self, sched: &mut Scheduler) {
        let Some(broker) = &self.broker else {
            return;
        };
        let device = self.device_id();
        {
            let mut inner = self.inner.lock();
            if inner.connected {
                return;
            }
            inner.connected = true;
        }
        let mgr = self.clone();
        broker.on_connection_change(move |s, online| {
            if online {
                mgr.flush_uplink(s);
            }
        });
        broker.connect(sched);

        let mgr = self.clone();
        broker.subscribe(
            sched,
            Topic::Trigger(device.clone()),
            QoS::AtLeastOnce,
            move |s, _topic, payload| {
                mgr.on_trigger(s, payload);
            },
        );
        let mgr = self.clone();
        broker.subscribe(
            sched,
            Topic::Config(device.clone()), // lint:allow(config-publish) — subscribe side: devices listen on their own config topic
            QoS::AtLeastOnce,
            move |s, _topic, payload| {
                mgr.on_config(s, payload);
            },
        );

        // Announce ourselves so the server's registry learns this device
        // without out-of-band deployment wiring.
        let registration = RegistrationPayload {
            user: self.user_id(),
            device,
        };
        broker.publish(
            sched,
            REGISTER_TOPIC,
            registration.to_wire(),
            QoS::AtLeastOnce,
            false,
        );
    }

    /// Creates a stream from `spec`, returning its id.
    ///
    /// The spec's filter plan is statically verified first; the normalized
    /// form is what gets installed.
    ///
    /// If the privacy descriptor denies the spec, the stream is created
    /// **paused** (the paper pauses rather than rejects) and resumes
    /// automatically once policies allow it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PlanRejected`] when the filter is ill-typed,
    /// unsatisfiable, or contains a cross-user condition (which no device
    /// can evaluate).
    pub fn create_stream(&self, sched: &mut Scheduler, spec: StreamSpec) -> Result<StreamId> {
        let spec = self.analyze_spec(&spec)?;
        let id = {
            let mut inner = self.inner.lock();
            let id = StreamId::new(inner.next_local_stream);
            inner.next_local_stream += 1;
            id
        };
        self.install_stream(sched, id, spec, StreamOrigin::Local);
        Ok(id)
    }

    /// Statically verifies `spec`'s filter plan for this device, returning
    /// the spec with the canonical (normalized) filter installed.
    ///
    /// Privacy violations do not reject here: [`ClientManager::install_stream`]
    /// screens the spec and pauses the stream until policies allow it, the
    /// paper's pause-don't-reject semantics. Information-*flow* violations
    /// do reject: an OSN-coupled plan routing a raw sensitive modality off
    /// the device under a denying policy fails closed, because the
    /// pause→resume path re-screens without re-running this analysis.
    fn analyze_spec(&self, spec: &StreamSpec) -> Result<StreamSpec> {
        let env = AnalysisEnv::new().with_privacy(&self.privacy);
        let analysis = analyze(&Self::device_plan(spec), &env)?;
        let mut spec = spec.clone();
        spec.filter = analysis.filter;
        Ok(spec)
    }

    /// The flow-enriched analysis plan for `spec` on a device: the spec's
    /// sink and effective mode refine the information-flow pass.
    fn device_plan(spec: &StreamSpec) -> FilterPlan {
        let sink = match spec.sink {
            StreamSink::Local => FlowSink::DeviceLocal,
            StreamSink::Server => FlowSink::Uplink,
        };
        FilterPlan::device(spec.modality, spec.granularity, spec.filter.clone())
            .sinking(sink)
            .coupled_to_osn(spec.effective_mode() == StreamMode::SocialEventBased)
    }

    /// Static analyses of every installed stream's plan, in stream-id
    /// order — this device's contribution to the deployment-wide analysis
    /// report (`sensocial-sim`'s `World::analysis_report`).
    pub fn plan_reports(&self) -> Vec<sensocial_analysis::report::PlanReport> {
        let device = self.device_id();
        let env = AnalysisEnv::new().with_privacy(&self.privacy);
        self.stream_specs()
            .into_iter()
            .map(|(id, spec)| {
                sensocial_analysis::report::PlanReport::for_plan(
                    "device_stream",
                    format!("{}/{id}", device.as_str()),
                    &Self::device_plan(&spec),
                    &env,
                )
            })
            .collect()
    }

    fn install_stream(
        &self,
        sched: &mut Scheduler,
        id: StreamId,
        spec: StreamSpec,
        origin: StreamOrigin,
    ) {
        // A redelivered Create command (QoS-1 at-least-once) must not leak
        // the previous incarnation's sensor subscriptions.
        if self.inner.lock().streams.contains_key(&id) {
            self.destroy_stream(id);
        }
        self.memory
            .alloc("sensocial/stream", STREAM_OBJECTS, STREAM_BYTES);
        let mut state = StreamState::new(spec, origin);
        state.status = match self.privacy.screen(&state.spec) {
            Ok(()) => StreamStatus::Active,
            Err(_) => StreamStatus::PausedByPrivacy,
        };
        self.inner.lock().streams.insert(id, state);
        self.start_sampling(sched, id);
    }

    /// Destroys a stream, cancelling its sensor subscriptions. Returns
    /// whether it existed.
    pub fn destroy_stream(&self, id: StreamId) -> bool {
        let state = self.inner.lock().streams.remove(&id);
        let Some(state) = state else {
            return false;
        };
        self.stop_subscriptions(&state);
        self.inner.lock().listeners.remove(&id);
        self.memory
            .free("sensocial/stream", STREAM_OBJECTS, STREAM_BYTES);
        true
    }

    /// Replaces a stream's filter, re-screening privacy and re-arming
    /// conditional sampling. The new plan is statically verified first and
    /// the normalized filter is what gets installed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownStream`] if `id` does not exist, or
    /// [`Error::PlanRejected`] if the new filter fails verification (the
    /// previous filter stays in place).
    pub fn set_filter(
        &self,
        sched: &mut Scheduler,
        id: StreamId,
        filter: crate::filter::Filter,
    ) -> Result<()> {
        let candidate = {
            let inner = self.inner.lock();
            let state = inner
                .streams
                .get(&id)
                .ok_or(Error::UnknownStream(id.value()))?;
            state.spec.clone().with_filter(filter)
        };
        let verified = self.analyze_spec(&candidate)?;
        {
            let mut inner = self.inner.lock();
            let state = inner
                .streams
                .get_mut(&id)
                .ok_or(Error::UnknownStream(id.value()))?;
            state.program = compile(&verified.filter);
            state.spec = verified;
        }
        self.restart_stream(sched, id);
        Ok(())
    }

    /// Changes a stream's duty cycle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownStream`] if `id` does not exist, or
    /// [`Error::InvalidConfig`] for a zero interval.
    pub fn set_interval(
        &self,
        sched: &mut Scheduler,
        id: StreamId,
        interval: SimDuration,
    ) -> Result<()> {
        if interval.is_zero() {
            return Err(Error::InvalidConfig("interval must be non-zero".into()));
        }
        {
            let mut inner = self.inner.lock();
            let state = inner
                .streams
                .get_mut(&id)
                .ok_or(Error::UnknownStream(id.value()))?;
            state.spec.interval = interval;
        }
        self.restart_stream(sched, id);
        Ok(())
    }

    /// Registers a listener for a stream's (filtered) events.
    pub fn register_listener<F>(&self, id: StreamId, listener: F)
    where
        F: Fn(&mut Scheduler, &StreamEvent) + Send + Sync + 'static,
    {
        self.memory
            .alloc("sensocial/listener", LISTENER_OBJECTS, LISTENER_BYTES);
        self.inner
            .lock()
            .listeners
            .entry(id)
            .or_default()
            .push(Arc::new(listener));
    }

    /// Sets a privacy policy and immediately re-screens every stream,
    /// pausing newly non-compliant streams and resuming newly compliant
    /// ones.
    pub fn set_privacy_policy(&self, sched: &mut Scheduler, policy: PrivacyPolicy) {
        self.privacy.set_policy(policy);
        self.rescreen_all(sched);
    }

    /// Stream ids currently installed, sorted.
    pub fn stream_ids(&self) -> Vec<StreamId> {
        let mut ids: Vec<StreamId> = self.inner.lock().streams.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// A stream's status, if it exists.
    pub fn stream_status(&self, id: StreamId) -> Option<StreamStatus> {
        self.inner.lock().streams.get(&id).map(|s| s.status)
    }

    /// A stream's origin, if it exists.
    pub fn stream_origin(&self, id: StreamId) -> Option<StreamOrigin> {
        self.inner.lock().streams.get(&id).map(|s| s.origin)
    }

    /// A stream's specification, if it exists.
    pub fn stream_spec(&self, id: StreamId) -> Option<StreamSpec> {
        self.inner.lock().streams.get(&id).map(|s| s.spec.clone())
    }

    /// Every installed stream's `(id, spec)`, sorted by id — the input the
    /// deployment-wide analysis report reads per device.
    pub fn stream_specs(&self) -> Vec<(StreamId, StreamSpec)> {
        let mut specs: Vec<(StreamId, StreamSpec)> = self
            .inner
            .lock()
            .streams
            .iter()
            .map(|(id, s)| (*id, s.spec.clone()))
            .collect();
        specs.sort_unstable_by_key(|(id, _)| *id);
        specs
    }

    // ------------------------------------------------------------------
    // Sampling machinery
    // ------------------------------------------------------------------

    fn start_sampling(&self, sched: &mut Scheduler, id: StreamId) {
        let spec = {
            let inner = self.inner.lock();
            let Some(state) = inner.streams.get(&id) else {
                return;
            };
            if state.status != StreamStatus::Active {
                return;
            }
            state.spec.clone()
        };

        self.sensors
            .set_config(spec.modality, SensorConfig::with_interval(spec.interval));

        // Conditional modalities are sampled continuously and classified so
        // the snapshot stays evaluable.
        let mut conditional_subs = Vec::new();
        for modality in spec.filter.conditional_modalities(spec.modality) {
            self.sensors
                .set_config(modality, SensorConfig::with_interval(spec.interval));
            let mgr = self.clone();
            let sub = self.sensors.subscribe(sched, modality, move |s, raw| {
                mgr.record_conditional_sample(s, raw);
            });
            conditional_subs.push(sub);
        }

        // Conditions evaluable *before* sampling the stream's own modality
        // (other-modality context, time of day). When any exist, the
        // paper's energy rule applies: "the stream's required modality is
        // sampled only when the conditions are satisfied" — so the duty
        // cycle first checks the gate and only then pays for the sensor.
        let gating: Vec<crate::filter::Condition> = spec
            .filter
            .conditions
            .iter()
            .filter(|c| {
                !c.is_cross_user()
                    && !c.lhs.is_osn()
                    && c.lhs.required_modality() != Some(spec.modality)
            })
            .cloned()
            .collect();

        let (own_subscription, own_timer) = match spec.effective_mode() {
            StreamMode::Continuous if gating.is_empty() => {
                let mgr = self.clone();
                let sub = self.sensors.subscribe(sched, spec.modality, move |s, raw| {
                    mgr.handle_sample(s, id, raw, None);
                });
                (Some(sub), None)
            }
            StreamMode::Continuous => {
                let mgr = self.clone();
                let modality = spec.modality;
                // Lower the gate once; every tick runs the flat program
                // instead of re-inspecting the conditions' JSON values.
                let gate = compile(&crate::filter::Filter::new(gating));
                let timer = Timer::start(sched, spec.interval, move |s| {
                    let gate_passes = {
                        let mut inner = mgr.inner.lock();
                        let inner = &mut *inner;
                        let ctx = EvalContext {
                            snapshot: &inner.context,
                            now: s.now(),
                            osn_action: None,
                        };
                        match eval_local(&gate, &ctx) {
                            Ok(passes) => passes,
                            // Analyzer-vetted plans never hit this; an
                            // unvetted ill-typed gate fails closed.
                            Err(_) => {
                                mgr.record_filter_eval_error();
                                false
                            }
                        }
                    };
                    if gate_passes {
                        let raw = mgr.sensors.sample_once(s, modality);
                        mgr.handle_sample(s, id, raw, None);
                    }
                });
                (None, Some(timer))
            }
            StreamMode::SocialEventBased => (None, None),
        };

        let mut inner = self.inner.lock();
        if let Some(state) = inner.streams.get_mut(&id) {
            state.own_subscription = own_subscription;
            state.own_timer = own_timer;
            state.conditional_subscriptions = conditional_subs;
        }
    }

    fn stop_subscriptions(&self, state: &StreamState) {
        if let Some(sub) = state.own_subscription {
            self.sensors.unsubscribe(sub);
        }
        if let Some(timer) = &state.own_timer {
            timer.stop();
        }
        for sub in &state.conditional_subscriptions {
            self.sensors.unsubscribe(*sub);
        }
    }

    fn restart_stream(&self, sched: &mut Scheduler, id: StreamId) {
        let state_snapshot = {
            let mut inner = self.inner.lock();
            let Some(state) = inner.streams.get_mut(&id) else {
                return;
            };
            let old = StreamState {
                spec: state.spec.clone(),
                status: state.status,
                origin: state.origin,
                own_subscription: state.own_subscription.take(),
                own_timer: state.own_timer.take(),
                conditional_subscriptions: std::mem::take(&mut state.conditional_subscriptions),
                last_sample: None,
                program: state.program.clone(),
            };
            state.status = match self.privacy.screen(&state.spec) {
                Ok(()) => StreamStatus::Active,
                Err(_) => StreamStatus::PausedByPrivacy,
            };
            old
        };
        self.stop_subscriptions(&state_snapshot);
        self.start_sampling(sched, id);
    }

    fn rescreen_all(&self, sched: &mut Scheduler) {
        let ids = self.stream_ids();
        for id in ids {
            self.restart_stream(sched, id);
        }
    }

    /// Handles a conditional-modality sample: classify and record, nothing
    /// delivered.
    fn record_conditional_sample(&self, _sched: &mut Scheduler, raw: RawSample) {
        self.cpu
            .record("conditional/sample", self.cpu_costs.sample_handling_ms);
        let at = _sched.now();
        let modality = raw.modality();
        if let Some(classified) = self.classifiers.classify(&raw) {
            self.cpu
                .record("conditional/classify", self.cpu_costs.classify_ms);
            self.battery.charge(
                EnergyComponent::Classification(modality),
                self.energy_profile.classification_uah(modality),
            );
            let mut inner = self.inner.lock();
            inner.context.record(at, ContextData::Raw(raw));
            inner
                .context
                .record(at, ContextData::Classified(classified));
        } else {
            self.inner.lock().context.record(at, ContextData::Raw(raw));
        }
    }

    /// Handles a sample for stream `id`: classify per granularity, update
    /// the snapshot, filter, deliver.
    fn handle_sample(
        &self,
        sched: &mut Scheduler,
        id: StreamId,
        raw: RawSample,
        osn_action: Option<&OsnAction>,
    ) {
        let at = sched.now();
        // `at` is the event's birth timestamp; every later stage records
        // its latency relative to it.
        self.telemetry.observe(Stage::Sense, 0);
        let spec = {
            let inner = self.inner.lock();
            let Some(state) = inner.streams.get(&id) else {
                return;
            };
            if state.status != StreamStatus::Active {
                // Paused (privacy or otherwise): the sample dies at the
                // privacy gate.
                drop(inner);
                self.telemetry.count("drop.paused");
                return;
            }
            state.spec.clone()
        };
        self.telemetry
            .observe(Stage::Privacy, sched.now().as_millis() - at.as_millis());

        self.cpu.record(
            &format!("stream#{}/sample", id.value()),
            self.cpu_costs.sample_handling_ms,
        );

        let modality = raw.modality();
        // Decide whether classification is needed: for classified delivery,
        // or because the filter inspects this modality's classified value.
        let needs_classified_for_filter = spec
            .filter
            .conditions
            .iter()
            .any(|c| !c.is_cross_user() && c.lhs.required_modality() == Some(modality));
        let classified =
            if spec.granularity == Granularity::Classified || needs_classified_for_filter {
                let c = self.classifiers.classify(&raw);
                if c.is_some() {
                    self.cpu.record(
                        &format!("stream#{}/classify", id.value()),
                        self.cpu_costs.classify_ms,
                    );
                    self.battery.charge(
                        EnergyComponent::Classification(modality),
                        self.energy_profile.classification_uah(modality),
                    );
                }
                c
            } else {
                None
            };

        // Update the device snapshot.
        {
            let mut inner = self.inner.lock();
            inner.context.record(at, ContextData::Raw(raw.clone()));
            if let Some(c) = classified.clone() {
                inner.context.record(at, ContextData::Classified(c));
            }
        }

        let data = match spec.granularity {
            Granularity::Raw => ContextData::Raw(raw),
            Granularity::Classified => match classified {
                Some(c) => ContextData::Classified(c),
                // No classifier installed: fall back to raw delivery.
                None => ContextData::Raw(raw),
            },
        };

        // Filter evaluation (own-user conditions; cross-user ones are the
        // server's job).
        self.cpu.record(
            &format!("stream#{}/filter", id.value()),
            self.cpu_costs.filter_condition_ms * spec.filter.conditions.len() as f64,
        );
        let passes = {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let ctx = EvalContext {
                snapshot: &inner.context,
                now: at,
                osn_action,
            };
            // Run the stream's compiled program (lowered at admission);
            // a stream destroyed mid-flight falls back to interpreting
            // the spec's filter — same verdict, same errors.
            let verdict = match inner.streams.get(&id) {
                Some(state) => eval_local(&state.program, &ctx),
                None => spec.filter.evaluate_local(&ctx),
            };
            match verdict {
                Ok(passes) => passes,
                // Analyzer-vetted plans never hit this; an unvetted
                // ill-typed filter fails closed rather than silently false.
                Err(_) => {
                    self.record_filter_eval_error();
                    false
                }
            }
        };

        {
            let mut inner = self.inner.lock();
            if let Some(state) = inner.streams.get_mut(&id) {
                state.last_sample = Some((at, data.clone()));
            }
        }

        if !passes {
            self.telemetry.count("drop.filter");
            return;
        }
        self.telemetry
            .observe(Stage::Filter, sched.now().as_millis() - at.as_millis());
        self.deliver(sched, id, &spec, at, data, osn_action.cloned());
    }

    fn deliver(
        &self,
        sched: &mut Scheduler,
        id: StreamId,
        spec: &StreamSpec,
        at: Timestamp,
        data: ContextData,
        osn_action: Option<OsnAction>,
    ) {
        let (user, device, listeners, uplink_topic) = {
            let inner = self.inner.lock();
            (
                inner.user.clone(),
                inner.device.clone(),
                inner.listeners.get(&id).cloned().unwrap_or_default(),
                inner.uplink_topic.clone(),
            )
        };
        let event = StreamEvent {
            stream: id,
            user,
            device: device.clone(),
            at,
            data,
            osn_action,
        };

        for listener in &listeners {
            self.cpu.record(
                &format!("stream#{}/deliver", id.value()),
                self.cpu_costs.local_delivery_ms,
            );
            listener(sched, &event);
        }

        if spec.sink == StreamSink::Server {
            if self.broker.is_some() {
                let wire = event.to_wire();
                self.cpu.record(
                    &format!("stream#{}/transmit", id.value()),
                    self.cpu_costs.serialize_transmit_ms,
                );
                self.battery.charge(
                    EnergyComponent::Transmission,
                    self.energy_profile
                        .transmission_uah(event.data.payload_bytes()),
                );
                self.battery.charge(
                    EnergyComponent::RadioTail,
                    self.energy_profile.radio_tail_uah,
                );
                self.uplink_or_buffer(sched, uplink_topic, wire.into(), at);
            }
        }
    }

    /// Sends one uplink event, or parks it while the broker session is
    /// unconfirmed (store-and-forward). The backlog is always drained
    /// first so events leave in arrival order. `birth` is the event's
    /// sample time: the uplink-stage latency recorded at publish time
    /// absorbs any store-and-forward delay.
    fn uplink_or_buffer(
        &self,
        sched: &mut Scheduler,
        topic: InternedTopic,
        payload: Payload,
        birth: Timestamp,
    ) {
        let Some(broker) = &self.broker else {
            return;
        };
        if broker.is_session_confirmed() {
            self.flush_uplink(sched);
            broker.publish(sched, topic, payload, QoS::AtMostOnce, false);
            self.telemetry.count("uplink.sent");
            self.telemetry
                .observe(Stage::Uplink, sched.now().as_millis() - birth.as_millis());
        } else {
            let mut inner = self.inner.lock();
            self.telemetry.count("uplink.buffered");
            if inner.uplink_buffer.len() >= inner.uplink_limit {
                inner.uplink_buffer.pop_front();
                self.telemetry.count("uplink.dropped");
            }
            inner.uplink_buffer.push_back((topic, payload, birth));
            let backlog = inner.uplink_buffer.len() as u64;
            drop(inner);
            self.telemetry.gauge_set("uplink_backlog", backlog);
        }
    }

    /// Drains the store-and-forward buffer towards the broker, oldest
    /// first, as one batch under a single lock acquisition. Called on
    /// every confirmed (re)connect. Non-empty batch sizes land in the
    /// `client.uplink.batch_size` histogram.
    fn flush_uplink(&self, sched: &mut Scheduler) {
        let Some(broker) = &self.broker else {
            return;
        };
        let batch = std::mem::take(&mut self.inner.lock().uplink_buffer);
        if !batch.is_empty() {
            self.telemetry
                .observe_named("uplink.batch_size", batch.len() as u64);
        }
        for (topic, payload, birth) in batch {
            broker.publish(sched, topic, payload, QoS::AtMostOnce, false);
            self.telemetry.count("uplink.flushed");
            self.telemetry.count("uplink.sent");
            self.telemetry
                .observe(Stage::Uplink, sched.now().as_millis() - birth.as_millis());
        }
        self.telemetry.gauge_set(
            "uplink_backlog",
            self.inner.lock().uplink_buffer.len() as u64,
        );
    }

    // ------------------------------------------------------------------
    // Broker message handling
    // ------------------------------------------------------------------

    fn on_trigger(&self, sched: &mut Scheduler, payload: &str) {
        self.battery.charge(
            EnergyComponent::TriggerReception,
            self.energy_profile.trigger_rx_uah,
        );
        let Ok(trigger) = TriggerPayload::from_wire(payload) else {
            return;
        };
        let action = trigger.action;
        let now = sched.now();

        // Every active social-event-based stream senses once, or reuses the
        // last cycle's context when triggers arrive faster than sampling
        // can complete (the paper's §7 accuracy/energy trade-off).
        type EventStream = (StreamId, StreamSpec, Option<(Timestamp, ContextData)>);
        let event_streams: Vec<EventStream> = {
            let inner = self.inner.lock();
            inner
                .streams
                .iter()
                .filter(|(_, s)| {
                    s.status == StreamStatus::Active
                        && s.spec.effective_mode() == StreamMode::SocialEventBased
                })
                .map(|(id, s)| (*id, s.spec.clone(), s.last_sample.clone()))
                .collect()
        };

        for (id, spec, last) in event_streams {
            match last {
                Some((at, data)) if now.saturating_since(at) < spec.interval => {
                    // Too soon to sample again: couple the previous context
                    // with this action.
                    let passes = {
                        let mut inner = self.inner.lock();
                        let inner = &mut *inner;
                        let ctx = EvalContext {
                            snapshot: &inner.context,
                            now,
                            osn_action: Some(&action),
                        };
                        let verdict = match inner.streams.get(&id) {
                            Some(state) => eval_local(&state.program, &ctx),
                            None => spec.filter.evaluate_local(&ctx),
                        };
                        match verdict {
                            Ok(passes) => passes,
                            Err(_) => {
                                self.record_filter_eval_error();
                                false
                            }
                        }
                    };
                    if passes {
                        self.deliver(sched, id, &spec, at, data, Some(action.clone()));
                    }
                }
                _ => {
                    let raw = self.sensors.sample_once(sched, spec.modality);
                    self.handle_sample(sched, id, raw, Some(&action));
                }
            }
        }
    }

    fn on_config(&self, sched: &mut Scheduler, payload: &str) {
        let Ok(command) = ConfigCommand::from_wire(payload) else {
            return;
        };
        if *command.device() != self.device_id() {
            return;
        }
        // Occurrence-level idempotency: a campaign command whose token was
        // already applied is positively re-acked (the scheduler's attempt
        // must settle) but never applied twice — even when a post-crash
        // redispatch arrives under a fresh epoch.
        let token = command.token().map(str::to_owned);
        if let Some(token) = &token {
            if self.inner.lock().applied_tokens.contains(token) {
                self.telemetry.count("campaign_duplicates");
                self.ack_config(sched, command.stream(), command.epoch(), Some(token.clone()));
                return;
            }
        }
        // Convergence guard: QoS-1 redelivery and outage-queued pushes can
        // reorder commands; only an epoch strictly newer than the last one
        // applied for this stream may take effect. Epoch 0 (legacy wire
        // form) bypasses the guard.
        let epoch = command.epoch();
        if epoch != 0 {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let last = inner.config_epochs.entry(command.stream()).or_insert(0);
            if epoch <= *last {
                self.telemetry.count("stale_configs");
                return;
            }
            *last = epoch;
        }
        let stream = command.stream();
        let applied = match command {
            ConfigCommand::Create { stream, spec, .. } => match self.analyze_spec(&spec) {
                Ok(spec) => {
                    self.install_stream(sched, stream, spec, StreamOrigin::Remote);
                    true
                }
                Err(err) => {
                    self.nack_config(sched, stream, epoch, token.clone(), &err);
                    false
                }
            },
            ConfigCommand::Destroy { stream, .. } => {
                // Destroying an already-absent stream is idempotent: the
                // commanded end state holds either way.
                self.destroy_stream(stream);
                true
            }
            ConfigCommand::SetFilter { stream, filter, .. } => {
                match self.set_filter(sched, stream, filter) {
                    Ok(()) => true,
                    Err(err) => {
                        if matches!(err, Error::PlanRejected(_)) || token.is_some() {
                            self.nack_config(sched, stream, epoch, token.clone(), &err);
                        }
                        false
                    }
                }
            }
            ConfigCommand::SetInterval {
                stream,
                interval_ms,
                ..
            } => match self.set_interval(sched, stream, SimDuration::from_millis(interval_ms)) {
                Ok(()) => true,
                Err(err) => {
                    if token.is_some() {
                        self.nack_config(sched, stream, epoch, token.clone(), &err);
                    }
                    false
                }
            },
        };
        if applied {
            if let Some(token) = token {
                self.telemetry.count("campaign_applied");
                self.inner.lock().applied_tokens.insert(token.clone());
                self.ack_config(sched, stream, epoch, Some(token));
            }
        }
    }

    /// Publishes a positive configuration ack (campaign commands only —
    /// plain pushes stay fire-and-forget, so pre-campaign broker traffic
    /// is unchanged).
    fn ack_config(&self, sched: &mut Scheduler, stream: StreamId, epoch: u64, token: Option<String>) {
        let Some(broker) = &self.broker else {
            return;
        };
        let ack = ConfigAck {
            device: self.device_id(),
            stream,
            epoch,
            accepted: true,
            diagnostics: Vec::new(),
            token,
        };
        broker.publish(
            sched,
            Topic::Ack(ack.device.clone()),
            ack.to_wire(),
            QoS::AtLeastOnce,
            false,
        );
    }

    /// Publishes a negative configuration ack carrying the plan verifier's
    /// diagnostics back to the server, so a rejected push fails loudly
    /// instead of installing a stream that can never produce data.
    fn nack_config(
        &self,
        sched: &mut Scheduler,
        stream: StreamId,
        epoch: u64,
        token: Option<String>,
        err: &Error,
    ) {
        self.telemetry.count("configs_rejected");
        let Some(broker) = &self.broker else {
            return;
        };
        let ack = ConfigAck {
            device: self.device_id(),
            stream,
            epoch,
            accepted: false,
            diagnostics: err.plan_diagnostics().to_vec(),
            token,
        };
        broker.publish(
            sched,
            Topic::Ack(ack.device.clone()),
            ack.to_wire(),
            QoS::AtLeastOnce,
            false,
        );
    }
}
