//! The mobile-client side of the middleware.
//!
//! One [`ClientManager`] runs per application per device — reproducing the
//! paper's §7 limitation that SenSocial "is imported as a library to each
//! individual application that uses it" rather than running as a shared
//! system service.

mod manager;
mod stream;

pub use manager::{ClientDeps, ClientManager};
pub use stream::{StreamOrigin, StreamStatus};

pub(crate) mod manager_internals {
    pub(crate) use super::manager::REMOTE_STREAM_ID_BASE;
}
