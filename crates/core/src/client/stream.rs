//! Client-side stream state.

use sensocial_analysis::PredicateProgram;
use sensocial_runtime::{TimerHandle, Timestamp};
use sensocial_sensors::SensorSubscriptionId;
use sensocial_types::ContextData;

use crate::config::StreamSpec;

/// Whether a stream was created by the local application or pushed from
/// the server (remote stream management).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamOrigin {
    /// Created through the local [`ClientManager`](super::ClientManager)
    /// API.
    Local,
    /// Created by a server-pushed configuration command.
    Remote,
}

/// A stream's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamStatus {
    /// Sampling (or armed for triggers).
    Active,
    /// Paused by the privacy policy manager; resumes automatically when
    /// policies change in its favour.
    PausedByPrivacy,
}

/// Internal per-stream bookkeeping.
#[derive(Debug)]
pub(crate) struct StreamState {
    pub(crate) spec: StreamSpec,
    pub(crate) status: StreamStatus,
    pub(crate) origin: StreamOrigin,
    /// The duty-cycle subscription for the stream's own modality
    /// (continuous, unconditioned streams).
    pub(crate) own_subscription: Option<SensorSubscriptionId>,
    /// The duty-cycle timer for condition-gated continuous streams: each
    /// tick evaluates the gating conditions and samples the own modality
    /// only when they hold (paper §4: "the stream's required modality is
    /// sampled only when the conditions are satisfied").
    pub(crate) own_timer: Option<TimerHandle>,
    /// Subscriptions keeping conditional modalities fresh.
    pub(crate) conditional_subscriptions: Vec<SensorSubscriptionId>,
    /// The last produced datum and its time — reused when OSN actions
    /// arrive faster than the sampling cycle (paper §7).
    pub(crate) last_sample: Option<(Timestamp, ContextData)>,
    /// The stream's filter lowered to predicate bytecode at admission
    /// time; the per-sample hot path runs this instead of tree-walking
    /// `spec.filter`.
    pub(crate) program: PredicateProgram,
}

impl StreamState {
    pub(crate) fn new(spec: StreamSpec, origin: StreamOrigin) -> Self {
        let program = sensocial_analysis::compile(&spec.filter);
        StreamState {
            spec,
            status: StreamStatus::Active,
            origin,
            own_subscription: None,
            own_timer: None,
            conditional_subscriptions: Vec::new(),
            last_sample: None,
            program,
        }
    }
}
