//! Stream specifications and remotely-pushed configuration commands.
//!
//! The paper encapsulates remote stream management "in an XML file, which
//! is pushed from the server to mobile devices", carrying "the required
//! context modality, granularity of the required data, filtering
//! conditions, and the identification code of the device". We keep the
//! same push–merge lifecycle with JSON as the serialization (see
//! `DESIGN.md`, substitutions).

use sensocial_runtime::SimDuration;
use sensocial_types::{DeviceId, Granularity, Modality, StreamId};
use serde::{Deserialize, Serialize};

use crate::filter::Filter;

/// Whether a stream samples on a duty cycle or on OSN triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum StreamMode {
    /// "Sensor data are sampled periodically with a given rate."
    Continuous,
    /// "Sensor data are pulled from the sensors and streamed when social
    /// activity is detected."
    SocialEventBased,
}

/// Where a stream's (filtered) data is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum StreamSink {
    /// Consumed on the device by local listeners only.
    Local,
    /// Additionally transmitted to the server (where it can feed server
    /// listeners, aggregators and multicast streams).
    Server,
}

/// Everything needed to create a stream, locally or remotely.
///
/// # Example
///
/// ```
/// use sensocial::{Condition, ConditionLhs, Filter, Granularity, Operator,
///     StreamSink, StreamSpec};
/// use sensocial_runtime::SimDuration;
/// use sensocial_types::Modality;
///
/// // The paper's filter example: GPS only while walking, uplinked.
/// let spec = StreamSpec::continuous(Modality::Location, Granularity::Raw)
///     .with_interval(SimDuration::from_secs(60))
///     .with_filter(Filter::new(vec![Condition::new(
///         ConditionLhs::PhysicalActivity,
///         Operator::Equals,
///         "walking",
///     )]))
///     .with_sink(StreamSink::Server);
/// assert_eq!(spec.mode, sensocial::StreamMode::Continuous);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// The sensed modality.
    pub modality: Modality,
    /// Raw samples or classified context.
    pub granularity: Granularity,
    /// Duty-cycled or OSN-triggered.
    pub mode: StreamMode,
    /// Sampling interval for continuous streams (the duty cycle; default
    /// 60 s, the paper's evaluation setting).
    pub interval: SimDuration,
    /// Filter conditions; empty passes everything.
    pub filter: Filter,
    /// Local-only or uplinked to the server.
    pub sink: StreamSink,
}

impl StreamSpec {
    /// A continuous stream with the default 60 s duty cycle, no filter,
    /// local sink.
    #[must_use]
    pub fn continuous(modality: Modality, granularity: Granularity) -> Self {
        StreamSpec {
            modality,
            granularity,
            mode: StreamMode::Continuous,
            interval: SimDuration::from_secs(60),
            filter: Filter::pass_all(),
            sink: StreamSink::Local,
        }
    }

    /// A social-event-based stream: samples once per OSN trigger.
    #[must_use]
    pub fn social_event_based(modality: Modality, granularity: Granularity) -> Self {
        StreamSpec {
            mode: StreamMode::SocialEventBased,
            ..StreamSpec::continuous(modality, granularity)
        }
    }

    /// Sets the duty cycle (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn with_interval(mut self, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "stream interval must be non-zero");
        self.interval = interval;
        self
    }

    /// Sets the filter (builder-style).
    #[must_use]
    pub fn with_filter(mut self, filter: Filter) -> Self {
        self.filter = filter;
        self
    }

    /// Sets the sink (builder-style).
    #[must_use]
    pub fn with_sink(mut self, sink: StreamSink) -> Self {
        self.sink = sink;
        self
    }

    /// The mode the stream *effectively* runs in: a nominally continuous
    /// stream whose filter has OSN conditions is driven by triggers
    /// (that's how the Facebook Sensor Map snippet turns three continuous
    /// streams into social-event streams just by setting a filter).
    pub fn effective_mode(&self) -> StreamMode {
        if self.filter.has_osn_condition() {
            StreamMode::SocialEventBased
        } else {
            self.mode
        }
    }
}

/// A configuration command pushed from the server to a device over the
/// broker (the paper's config-file download + `FilterMerge`).
///
/// Every variant carries a server-assigned `epoch`: a monotonically
/// increasing stamp that lets devices converge on the *latest* command per
/// stream even when QoS-1 redelivery or an outage reorders pushes. Epoch
/// `0` (the serde default) marks a legacy command that is always applied —
/// old wire forms without the field keep parsing.
///
/// Commands dispatched by the campaign scheduler additionally carry a
/// `token` — a scheduler-assigned occurrence identity. Token-carrying
/// commands are acknowledged *positively* by devices on success, and a
/// device remembers which tokens it has applied so a redispatch of the
/// same occurrence (a fresh epoch after a scheduler crash) is acked
/// without being applied twice: exactly-once effect per occurrence. A
/// `None` token (the default; skipped on the wire) is the pre-campaign
/// behaviour — no positive ack, no dedup — so existing traffic is
/// byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "command", rename_all = "snake_case")]
pub enum ConfigCommand {
    /// Create a stream with a server-assigned id.
    Create {
        /// Target device.
        device: DeviceId,
        /// Server-assigned stream id.
        stream: StreamId,
        /// The stream to create.
        spec: StreamSpec,
        /// Convergence stamp (see the enum docs).
        #[serde(default)]
        epoch: u64,
        /// Campaign occurrence identity (see the enum docs).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        token: Option<String>,
    },
    /// Destroy a stream.
    Destroy {
        /// Target device.
        device: DeviceId,
        /// Stream to destroy.
        stream: StreamId,
        /// Convergence stamp (see the enum docs).
        #[serde(default)]
        epoch: u64,
        /// Campaign occurrence identity (see the enum docs).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        token: Option<String>,
    },
    /// Replace a stream's filter (the distributed-filter update path).
    SetFilter {
        /// Target device.
        device: DeviceId,
        /// Stream whose filter changes.
        stream: StreamId,
        /// The new filter.
        filter: Filter,
        /// Convergence stamp (see the enum docs).
        #[serde(default)]
        epoch: u64,
        /// Campaign occurrence identity (see the enum docs).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        token: Option<String>,
    },
    /// Change a stream's duty cycle.
    SetInterval {
        /// Target device.
        device: DeviceId,
        /// Stream whose interval changes.
        stream: StreamId,
        /// New interval in milliseconds.
        interval_ms: u64,
        /// Convergence stamp (see the enum docs).
        #[serde(default)]
        epoch: u64,
        /// Campaign occurrence identity (see the enum docs).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        token: Option<String>,
    },
}

impl ConfigCommand {
    /// Serializes to the JSON wire form used on the config topic.
    pub fn to_wire(&self) -> String {
        serde_json::to_string(self).expect("config commands always serialize") // lint:allow(expect) — plain-field struct; serialization cannot fail
    }

    /// Parses the JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_wire(payload: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(payload)
    }

    /// The device the command addresses.
    pub fn device(&self) -> &DeviceId {
        match self {
            ConfigCommand::Create { device, .. }
            | ConfigCommand::Destroy { device, .. }
            | ConfigCommand::SetFilter { device, .. }
            | ConfigCommand::SetInterval { device, .. } => device,
        }
    }

    /// The stream the command addresses.
    pub fn stream(&self) -> StreamId {
        match self {
            ConfigCommand::Create { stream, .. }
            | ConfigCommand::Destroy { stream, .. }
            | ConfigCommand::SetFilter { stream, .. }
            | ConfigCommand::SetInterval { stream, .. } => *stream,
        }
    }

    /// The command's convergence epoch (`0` = legacy, always applied).
    pub fn epoch(&self) -> u64 {
        match self {
            ConfigCommand::Create { epoch, .. }
            | ConfigCommand::Destroy { epoch, .. }
            | ConfigCommand::SetFilter { epoch, .. }
            | ConfigCommand::SetInterval { epoch, .. } => *epoch,
        }
    }

    /// Returns the command restamped with `epoch` (builder-style; used by
    /// the server just before pushing).
    #[must_use]
    pub fn with_epoch(mut self, new_epoch: u64) -> Self {
        match &mut self {
            ConfigCommand::Create { epoch, .. }
            | ConfigCommand::Destroy { epoch, .. }
            | ConfigCommand::SetFilter { epoch, .. }
            | ConfigCommand::SetInterval { epoch, .. } => *epoch = new_epoch,
        }
        self
    }

    /// The campaign occurrence token, when the command carries one.
    pub fn token(&self) -> Option<&str> {
        match self {
            ConfigCommand::Create { token, .. }
            | ConfigCommand::Destroy { token, .. }
            | ConfigCommand::SetFilter { token, .. }
            | ConfigCommand::SetInterval { token, .. } => token.as_deref(),
        }
    }

    /// Returns the command stamped with a campaign occurrence token
    /// (builder-style; used by the campaign dispatcher just before
    /// pushing).
    #[must_use]
    pub fn with_token(mut self, new_token: impl Into<String>) -> Self {
        match &mut self {
            ConfigCommand::Create { token, .. }
            | ConfigCommand::Destroy { token, .. }
            | ConfigCommand::SetFilter { token, .. }
            | ConfigCommand::SetInterval { token, .. } => *token = Some(new_token.into()),
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{Condition, ConditionLhs, Operator};

    #[test]
    fn builders_set_fields() {
        let spec = StreamSpec::continuous(Modality::Microphone, Granularity::Classified)
            .with_interval(SimDuration::from_secs(30))
            .with_sink(StreamSink::Server);
        assert_eq!(spec.interval, SimDuration::from_secs(30));
        assert_eq!(spec.sink, StreamSink::Server);
        assert_eq!(spec.effective_mode(), StreamMode::Continuous);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_rejected() {
        let _ = StreamSpec::continuous(Modality::Wifi, Granularity::Raw)
            .with_interval(SimDuration::ZERO);
    }

    #[test]
    fn osn_filter_makes_stream_event_based() {
        let spec = StreamSpec::continuous(Modality::Location, Granularity::Raw).with_filter(
            Filter::new(vec![Condition::new(
                ConditionLhs::OsnActivity,
                Operator::Equals,
                "active",
            )]),
        );
        assert_eq!(spec.mode, StreamMode::Continuous);
        assert_eq!(spec.effective_mode(), StreamMode::SocialEventBased);
    }

    #[test]
    fn commands_round_trip_the_wire() {
        let cmds = vec![
            ConfigCommand::Create {
                device: DeviceId::new("p1"),
                stream: StreamId::new(4),
                spec: StreamSpec::social_event_based(
                    Modality::Accelerometer,
                    Granularity::Classified,
                ),
                epoch: 1,
                token: None,
            },
            ConfigCommand::Destroy {
                device: DeviceId::new("p1"),
                stream: StreamId::new(4),
                epoch: 2,
                token: None,
            },
            ConfigCommand::SetFilter {
                device: DeviceId::new("p1"),
                stream: StreamId::new(4),
                filter: Filter::new(vec![Condition::new(
                    ConditionLhs::Place,
                    Operator::Equals,
                    "Paris",
                )]),
                epoch: 3,
                token: None,
            },
            ConfigCommand::SetInterval {
                device: DeviceId::new("p1"),
                stream: StreamId::new(4),
                interval_ms: 30_000,
                epoch: 4,
                token: None,
            },
        ];
        for (i, cmd) in cmds.into_iter().enumerate() {
            let wire = cmd.to_wire();
            assert_eq!(ConfigCommand::from_wire(&wire).unwrap(), cmd);
            assert_eq!(cmd.device().as_str(), "p1");
            assert_eq!(cmd.stream(), StreamId::new(4));
            assert_eq!(cmd.epoch(), i as u64 + 1);
        }
        assert!(ConfigCommand::from_wire("{}").is_err());
    }

    #[test]
    fn epoch_is_restamped_and_legacy_wire_parses_as_epoch_zero() {
        let cmd = ConfigCommand::Destroy {
            device: DeviceId::new("p1"),
            stream: StreamId::new(9),
            epoch: 0,
            token: None,
        };
        assert_eq!(cmd.clone().with_epoch(17).epoch(), 17);
        // A pre-epoch wire form (no `epoch` key) still parses — as the
        // always-applied legacy epoch 0.
        let legacy = r#"{"command":"destroy","device":"p1","stream":9}"#;
        let parsed = ConfigCommand::from_wire(legacy).unwrap();
        assert_eq!(parsed.epoch(), 0);
        assert_eq!(parsed.stream(), StreamId::new(9));
        assert_eq!(parsed.token(), None);
    }

    #[test]
    fn tokenless_wire_is_unchanged_and_tokens_round_trip() {
        let cmd = ConfigCommand::SetInterval {
            device: DeviceId::new("p1"),
            stream: StreamId::new(2),
            interval_ms: 5_000,
            epoch: 3,
            token: None,
        };
        // A `None` token never appears on the wire, so pre-campaign
        // traffic stays byte-identical.
        assert!(!cmd.to_wire().contains("token"));

        let stamped = cmd.with_token("camp-a/occ-4");
        assert_eq!(stamped.token(), Some("camp-a/occ-4"));
        let wire = stamped.to_wire();
        assert!(wire.contains(r#""token":"camp-a/occ-4""#));
        assert_eq!(ConfigCommand::from_wire(&wire).unwrap(), stamped);
        // Restamping the epoch (a redispatch) keeps the token: the
        // occurrence identity survives scheduler crash + redispatch.
        assert_eq!(stamped.with_epoch(99).token(), Some("camp-a/occ-4"));
    }
}
