//! Events flowing through the publish–subscribe API.

use sensocial_runtime::Timestamp;
use sensocial_types::{
    ContextData, DeviceId, OsnAction, PlanDiagnostic, StreamId, TriggerId, UserId,
};
use serde::{Deserialize, Serialize};

/// One datum delivered on a stream: sensed context, optionally coupled
/// with the OSN action that triggered its sampling.
///
/// This is the unit the paper's listeners receive — "the sampled sensor
/// data is coupled with the OSN action data received with the trigger, and
/// delivered to the registered listeners" (§4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamEvent {
    /// The stream that produced the datum.
    pub stream: StreamId,
    /// The user whose context this is.
    pub user: UserId,
    /// The device that sensed it.
    pub device: DeviceId,
    /// Sampling time (virtual).
    pub at: Timestamp,
    /// The sensed context, at the stream's granularity.
    pub data: ContextData,
    /// The OSN action this sample was coupled with, for social-event-based
    /// streams.
    pub osn_action: Option<OsnAction>,
}

impl StreamEvent {
    /// Serializes to the JSON uplink wire form.
    pub fn to_wire(&self) -> String {
        serde_json::to_string(self).expect("stream events always serialize") // lint:allow(expect) — plain-field struct; serialization cannot fail
    }

    /// Parses the JSON uplink wire form.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_wire(payload: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(payload)
    }
}

/// The JSON trigger the server's Trigger Manager compiles and pushes via
/// the broker — "the Trigger Manager compiles the OSN action and the
/// relevant device information in a JSON-formatted string passed to the
/// Mosquitto broker" (paper §4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggerPayload {
    /// Unique trigger id (for tracing and deduplication in logs).
    pub trigger: TriggerId,
    /// The device expected to sense.
    pub device: DeviceId,
    /// The OSN action carried with the trigger (including content, so the
    /// mobile can couple it without another round trip).
    pub action: OsnAction,
}

impl TriggerPayload {
    /// Serializes to the JSON trigger wire form.
    pub fn to_wire(&self) -> String {
        serde_json::to_string(self).expect("triggers always serialize") // lint:allow(expect) — plain-field struct; serialization cannot fail
    }

    /// Parses the JSON trigger wire form.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_wire(payload: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(payload)
    }
}

/// The registration announcement a device publishes when it first
/// connects, carrying "users' registration information" and "the device
/// identification information" the server keeps (paper §4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrationPayload {
    /// The owning user.
    pub user: UserId,
    /// The announcing device.
    pub device: DeviceId,
}

impl RegistrationPayload {
    /// Serializes to the JSON wire form.
    pub fn to_wire(&self) -> String {
        serde_json::to_string(self).expect("registrations always serialize") // lint:allow(expect) — plain-field struct; serialization cannot fail
    }

    /// Parses the JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_wire(payload: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(payload)
    }
}

/// A device's answer to a pushed stream configuration. Devices publish
/// *negative* acks when the on-device plan verifier rejects a pushed
/// `Create`/`SetFilter` — the structured diagnostics travel back so the
/// server (and the requesting application) learn *why* instead of the
/// stream silently never producing data — and *positive* acks for
/// token-carrying campaign commands, so the campaign scheduler can settle
/// the dispatch attempt the token identifies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigAck {
    /// The answering device.
    pub device: DeviceId,
    /// The stream the configuration addressed.
    pub stream: StreamId,
    /// The configuration epoch being answered.
    pub epoch: u64,
    /// Whether the configuration was applied.
    pub accepted: bool,
    /// The verifier's error diagnostics when `accepted` is false.
    pub diagnostics: Vec<PlanDiagnostic>,
    /// The campaign occurrence token the answered command carried, echoed
    /// back verbatim (absent for plain config pushes — the wire form is
    /// unchanged for them).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub token: Option<String>,
}

impl ConfigAck {
    /// Serializes to the JSON wire form.
    pub fn to_wire(&self) -> String {
        serde_json::to_string(self).expect("config acks always serialize") // lint:allow(expect) — plain-field struct; serialization cannot fail
    }

    /// Parses the JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_wire(payload: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::{ClassifiedContext, DiagnosticCode, PhysicalActivity};

    #[test]
    fn stream_event_round_trips() {
        let event = StreamEvent {
            stream: StreamId::new(3),
            user: UserId::new("alice"),
            device: DeviceId::new("alice-phone"),
            at: Timestamp::from_secs(12),
            data: ContextData::Classified(ClassifiedContext::Activity(PhysicalActivity::Walking)),
            osn_action: Some(OsnAction::post(
                UserId::new("alice"),
                "hello",
                Timestamp::from_secs(10),
            )),
        };
        let wire = event.to_wire();
        assert_eq!(StreamEvent::from_wire(&wire).unwrap(), event);
    }

    #[test]
    fn registration_round_trips() {
        let r = RegistrationPayload {
            user: UserId::new("alice"),
            device: DeviceId::new("alice-phone"),
        };
        assert_eq!(RegistrationPayload::from_wire(&r.to_wire()).unwrap(), r);
        assert!(RegistrationPayload::from_wire("nope").is_err());
    }

    #[test]
    fn trigger_round_trips() {
        let t = TriggerPayload {
            trigger: TriggerId::new(9),
            device: DeviceId::new("p1"),
            action: OsnAction::post(UserId::new("u"), "x", Timestamp::ZERO),
        };
        assert_eq!(TriggerPayload::from_wire(&t.to_wire()).unwrap(), t);
        assert!(TriggerPayload::from_wire("junk").is_err());
    }

    #[test]
    fn config_ack_round_trips_with_diagnostics() {
        let ack = ConfigAck {
            device: DeviceId::new("p1"),
            stream: StreamId::new(7),
            epoch: 3,
            accepted: false,
            diagnostics: vec![PlanDiagnostic::error(
                DiagnosticCode::TypeMismatch,
                "hour_of_day expects a number",
            )
            .at(0)],
            token: None,
        };
        let wire = ack.to_wire();
        assert!(
            !wire.contains("token"),
            "tokenless acks keep the legacy wire shape"
        );
        let back = ConfigAck::from_wire(&wire).unwrap();
        assert_eq!(back, ack);
        assert_eq!(back.diagnostics[0].code, DiagnosticCode::TypeMismatch);

        let tokened = ConfigAck {
            token: Some("camp-a/4".into()),
            ..ack
        };
        let back = ConfigAck::from_wire(&tokened.to_wire()).unwrap();
        assert_eq!(back.token.as_deref(), Some("camp-a/4"));
    }
}
