//! Distributed stream filters — re-exported from `sensocial-types`.
//!
//! The filter data model and its typed evaluation moved to
//! [`sensocial_types::filter`] so the static plan verifier
//! (`sensocial-analysis`) can reason about filters without depending on
//! the middleware runtime. This module keeps the historical
//! `sensocial::filter` paths working.

pub use sensocial_types::filter::{
    Condition, ConditionLhs, EvalContext, EvalError, EvalErrorKind, Filter, Operator,
};
