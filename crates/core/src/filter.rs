//! Distributed stream filters.
//!
//! A filter "consists of a set of conditions where each condition comprises
//! of a modality, a comparison operator, and a value" (paper §3.1).
//! Conditions can reference physical context ("when the user is walking"),
//! time intervals, and OSN activity ("when the user likes a page") — and,
//! on the server, context belonging to *another* user ("send A's GPS only
//! while B is walking").

use serde::{Deserialize, Serialize};
use serde_json::Value;
use sensocial_runtime::Timestamp;
use sensocial_types::{ContextSnapshot, Modality, OsnAction, OsnActionKind, UserId};

/// Comparison operators available in filter conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Operator {
    /// Values are equal.
    Equals,
    /// Values differ.
    NotEquals,
    /// Left value is numerically greater.
    GreaterThan,
    /// Left value is numerically smaller.
    LessThan,
}

/// What a condition inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ConditionLhs {
    /// The classified physical activity (`still`/`walking`/`running`).
    PhysicalActivity,
    /// The classified audio environment (`silent`/`not_silent`).
    AudioEnvironment,
    /// The classified place name (e.g. `Paris`), `unknown` when outside
    /// the gazetteer.
    Place,
    /// The classified WiFi access-point count.
    WifiDensity,
    /// The classified Bluetooth neighbour count.
    BluetoothDensity,
    /// Hour of (virtual) day, 0–23 — the paper's time-interval conditions.
    HourOfDay,
    /// Whether an OSN action is currently being processed (`active` /
    /// `inactive`) — the Facebook Sensor Map filter.
    OsnActivity,
    /// The kind of the OSN action being processed (`post`/`comment`/`like`).
    OsnActionKind,
    /// The topic of the OSN action being processed (e.g. `football`).
    OsnTopic,
}

impl ConditionLhs {
    /// The sensing modality this condition needs sampled (and classified)
    /// to be evaluable, if any. Conditions over modalities other than the
    /// stream's own cause those *conditional modalities* to be sampled
    /// continuously (paper §4, "Sensor Sampling") and are screened by the
    /// privacy manager alongside the stream's modality.
    pub fn required_modality(self) -> Option<Modality> {
        match self {
            ConditionLhs::PhysicalActivity => Some(Modality::Accelerometer),
            ConditionLhs::AudioEnvironment => Some(Modality::Microphone),
            ConditionLhs::Place => Some(Modality::Location),
            ConditionLhs::WifiDensity => Some(Modality::Wifi),
            ConditionLhs::BluetoothDensity => Some(Modality::Bluetooth),
            ConditionLhs::HourOfDay
            | ConditionLhs::OsnActivity
            | ConditionLhs::OsnActionKind
            | ConditionLhs::OsnTopic => None,
        }
    }

    /// Whether this condition inspects OSN activity rather than physical
    /// or temporal context.
    pub fn is_osn(self) -> bool {
        matches!(
            self,
            ConditionLhs::OsnActivity | ConditionLhs::OsnActionKind | ConditionLhs::OsnTopic
        )
    }
}

/// Everything a condition evaluation can see.
#[derive(Debug, Clone, Copy)]
pub struct EvalContext<'a> {
    /// The device's latest context snapshot.
    pub snapshot: &'a ContextSnapshot,
    /// Current virtual time (for [`ConditionLhs::HourOfDay`]).
    pub now: Timestamp,
    /// The OSN action being processed, when evaluation happens on the
    /// trigger path.
    pub osn_action: Option<&'a OsnAction>,
}

/// One `(lhs, operator, value)` condition, optionally about another user.
///
/// # Example
///
/// ```
/// use sensocial::{Condition, ConditionLhs, Operator};
///
/// // The paper's example: obtain GPS data only when the user is walking.
/// let c = Condition::new(
///     ConditionLhs::PhysicalActivity,
///     Operator::Equals,
///     "walking",
/// );
/// assert_eq!(c.lhs.required_modality(), Some(sensocial::Modality::Accelerometer));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// What is inspected.
    pub lhs: ConditionLhs,
    /// How it is compared.
    pub op: Operator,
    /// The comparison value: a string for categorical conditions, a number
    /// for [`ConditionLhs::HourOfDay`] and the density conditions.
    pub value: Value,
    /// When set, the condition is about *that* user's context and can only
    /// be evaluated by the server's filter manager ("one can create a
    /// filter that sends user's GPS data only when another user is
    /// walking", paper §3.1). `None` means the stream's own user.
    pub subject: Option<UserId>,
}

impl Condition {
    /// Creates a condition about the stream's own user.
    pub fn new(lhs: ConditionLhs, op: Operator, value: impl Into<Value>) -> Self {
        Condition {
            lhs,
            op,
            value: value.into(),
            subject: None,
        }
    }

    /// Makes the condition about another user's context (builder-style).
    pub fn about(mut self, subject: UserId) -> Self {
        self.subject = Some(subject);
        self
    }

    /// Whether this condition references another user's context.
    pub fn is_cross_user(&self) -> bool {
        self.subject.is_some()
    }

    /// Evaluates the condition against `ctx`.
    ///
    /// Context conditions with no recorded value evaluate to `false` (the
    /// conditional modality has not produced data yet, so the guard cannot
    /// be known to hold). OSN conditions evaluate against the in-flight
    /// action; with no action in flight, `OsnActivity equals active` is
    /// `false` and `… equals inactive` is `true`.
    pub fn evaluate(&self, ctx: &EvalContext<'_>) -> bool {
        match self.lhs {
            ConditionLhs::PhysicalActivity => self.compare_string(
                ctx.snapshot.activity().map(|a| a.name().to_owned()),
            ),
            ConditionLhs::AudioEnvironment => self.compare_string(
                ctx.snapshot
                    .classified(Modality::Microphone)
                    .map(|(_, c)| c.value_string()),
            ),
            ConditionLhs::Place => self.compare_string(Some(
                ctx.snapshot.place().unwrap_or("unknown").to_owned(),
            )),
            ConditionLhs::WifiDensity => self.compare_number(
                ctx.snapshot
                    .classified(Modality::Wifi)
                    .and_then(|(_, c)| c.value_string().parse::<f64>().ok()),
            ),
            ConditionLhs::BluetoothDensity => self.compare_number(
                ctx.snapshot
                    .classified(Modality::Bluetooth)
                    .and_then(|(_, c)| c.value_string().parse::<f64>().ok()),
            ),
            ConditionLhs::HourOfDay => {
                self.compare_number(Some(f64::from(ctx.now.hour_of_day())))
            }
            ConditionLhs::OsnActivity => {
                let state = if ctx.osn_action.is_some() {
                    "active"
                } else {
                    "inactive"
                };
                self.compare_string(Some(state.to_owned()))
            }
            ConditionLhs::OsnActionKind => self.compare_string(
                ctx.osn_action.map(|a| kind_name(a.kind).to_owned()),
            ),
            ConditionLhs::OsnTopic => {
                self.compare_string(ctx.osn_action.and_then(|a| a.topic.clone()))
            }
        }
    }

    fn compare_string(&self, actual: Option<String>) -> bool {
        let Some(actual) = actual else {
            return false;
        };
        let expected = match &self.value {
            Value::String(s) => s.clone(),
            other => other.to_string(),
        };
        match self.op {
            Operator::Equals => actual == expected,
            Operator::NotEquals => actual != expected,
            // Ordering on categorical values is lexicographic, rarely
            // useful but well-defined.
            Operator::GreaterThan => actual > expected,
            Operator::LessThan => actual < expected,
        }
    }

    fn compare_number(&self, actual: Option<f64>) -> bool {
        let Some(actual) = actual else {
            return false;
        };
        let Some(expected) = self.value.as_f64() else {
            return false;
        };
        match self.op {
            Operator::Equals => (actual - expected).abs() < f64::EPSILON,
            Operator::NotEquals => (actual - expected).abs() >= f64::EPSILON,
            Operator::GreaterThan => actual > expected,
            Operator::LessThan => actual < expected,
        }
    }
}

fn kind_name(kind: OsnActionKind) -> &'static str {
    kind.name()
}

/// A conjunction of [`Condition`]s attached to a stream.
///
/// An empty filter passes everything. Filters are serializable because they
/// travel inside remotely-pushed stream configurations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    /// The conditions, all of which must hold.
    pub conditions: Vec<Condition>,
}

impl Filter {
    /// Creates a filter from conditions.
    pub fn new(conditions: Vec<Condition>) -> Self {
        Filter { conditions }
    }

    /// The always-pass filter.
    pub fn pass_all() -> Self {
        Filter::default()
    }

    /// Whether the filter has no conditions.
    pub fn is_empty(&self) -> bool {
        self.conditions.is_empty()
    }

    /// Evaluates the *local* (own-user) conditions; cross-user conditions
    /// are skipped here and enforced by the server's filter manager.
    pub fn evaluate_local(&self, ctx: &EvalContext<'_>) -> bool {
        self.conditions
            .iter()
            .filter(|c| !c.is_cross_user())
            .all(|c| c.evaluate(ctx))
    }

    /// Evaluates every condition, resolving cross-user subjects through
    /// `lookup` (the server's per-user context table). A cross-user
    /// condition whose subject has no context yet fails.
    pub fn evaluate_full(
        &self,
        ctx: &EvalContext<'_>,
        lookup: &dyn Fn(&UserId) -> Option<ContextSnapshot>,
    ) -> bool {
        self.conditions.iter().all(|c| match &c.subject {
            None => c.evaluate(ctx),
            Some(user) => match lookup(user) {
                Some(snapshot) => {
                    let sub_ctx = EvalContext {
                        snapshot: &snapshot,
                        now: ctx.now,
                        osn_action: ctx.osn_action,
                    };
                    c.evaluate(&sub_ctx)
                }
                None => false,
            },
        })
    }

    /// Modalities that must be sampled continuously for the filter to be
    /// evaluable on the device (own-user conditions only), excluding
    /// `own_modality` which the stream samples anyway.
    pub fn conditional_modalities(&self, own_modality: Modality) -> Vec<Modality> {
        let mut out: Vec<Modality> = self
            .conditions
            .iter()
            .filter(|c| !c.is_cross_user())
            .filter_map(|c| c.lhs.required_modality())
            .filter(|m| *m != own_modality)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether any condition inspects OSN activity — such streams are
    /// driven by OSN triggers rather than the duty cycle.
    pub fn has_osn_condition(&self) -> bool {
        self.conditions.iter().any(|c| c.lhs.is_osn())
    }

    /// Whether any condition references another user's context.
    pub fn has_cross_user_condition(&self) -> bool {
        self.conditions.iter().any(Condition::is_cross_user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_runtime::Timestamp;
    use sensocial_types::{
        ClassifiedContext, ContextData, PhysicalActivity,
    };

    fn snapshot_with_activity(activity: PhysicalActivity) -> ContextSnapshot {
        let mut s = ContextSnapshot::new();
        s.record(
            Timestamp::from_secs(1),
            ContextData::Classified(ClassifiedContext::Activity(activity)),
        );
        s
    }

    fn ctx<'a>(snapshot: &'a ContextSnapshot, action: Option<&'a OsnAction>) -> EvalContext<'a> {
        EvalContext {
            snapshot,
            now: Timestamp::from_secs(10 * 3600),
            osn_action: action,
        }
    }

    #[test]
    fn paper_example_gps_when_walking() {
        let filter = Filter::new(vec![Condition::new(
            ConditionLhs::PhysicalActivity,
            Operator::Equals,
            "walking",
        )]);
        let walking = snapshot_with_activity(PhysicalActivity::Walking);
        let still = snapshot_with_activity(PhysicalActivity::Still);
        assert!(filter.evaluate_local(&ctx(&walking, None)));
        assert!(!filter.evaluate_local(&ctx(&still, None)));
        assert_eq!(
            filter.conditional_modalities(Modality::Location),
            vec![Modality::Accelerometer],
            "the unrelated accelerometer stream has to be sensed"
        );
    }

    #[test]
    fn missing_context_fails_condition() {
        let filter = Filter::new(vec![Condition::new(
            ConditionLhs::PhysicalActivity,
            Operator::Equals,
            "walking",
        )]);
        let empty = ContextSnapshot::new();
        assert!(!filter.evaluate_local(&ctx(&empty, None)));
    }

    #[test]
    fn hour_of_day_conditions() {
        let business_hours = Filter::new(vec![
            Condition::new(ConditionLhs::HourOfDay, Operator::GreaterThan, 8),
            Condition::new(ConditionLhs::HourOfDay, Operator::LessThan, 17),
        ]);
        let snapshot = ContextSnapshot::new();
        let at = |hour: u64| EvalContext {
            snapshot: &snapshot,
            now: Timestamp::from_secs(hour * 3600),
            osn_action: None,
        };
        assert!(business_hours.evaluate_local(&at(10)));
        assert!(!business_hours.evaluate_local(&at(7)));
        assert!(!business_hours.evaluate_local(&at(20)));
    }

    #[test]
    fn osn_activity_condition() {
        let filter = Filter::new(vec![Condition::new(
            ConditionLhs::OsnActivity,
            Operator::Equals,
            "active",
        )]);
        assert!(filter.has_osn_condition());
        let snapshot = ContextSnapshot::new();
        let action = OsnAction::post(UserId::new("u"), "hi", Timestamp::ZERO);
        assert!(filter.evaluate_local(&ctx(&snapshot, Some(&action))));
        assert!(!filter.evaluate_local(&ctx(&snapshot, None)));
    }

    #[test]
    fn osn_topic_and_kind_conditions() {
        let football_posts = Filter::new(vec![
            Condition::new(ConditionLhs::OsnActionKind, Operator::Equals, "post"),
            Condition::new(ConditionLhs::OsnTopic, Operator::Equals, "football"),
        ]);
        let snapshot = ContextSnapshot::new();
        let on_topic = OsnAction::post(UserId::new("u"), "goal!", Timestamp::ZERO)
            .with_topic("football");
        let off_topic = OsnAction::post(UserId::new("u"), "song", Timestamp::ZERO)
            .with_topic("music");
        assert!(football_posts.evaluate_local(&ctx(&snapshot, Some(&on_topic))));
        assert!(!football_posts.evaluate_local(&ctx(&snapshot, Some(&off_topic))));
        assert!(!football_posts.evaluate_local(&ctx(&snapshot, None)));
    }

    #[test]
    fn cross_user_conditions_skipped_locally_enforced_fully() {
        let other = UserId::new("bob");
        let filter = Filter::new(vec![Condition::new(
            ConditionLhs::PhysicalActivity,
            Operator::Equals,
            "walking",
        )
        .about(other.clone())]);
        assert!(filter.has_cross_user_condition());

        let own = ContextSnapshot::new();
        // Locally the condition is ignored: passes.
        assert!(filter.evaluate_local(&ctx(&own, None)));

        // Fully: depends on bob's context.
        let bob_walking = snapshot_with_activity(PhysicalActivity::Walking);
        let found = filter.evaluate_full(&ctx(&own, None), &|u| {
            (u == &other).then(|| bob_walking.clone())
        });
        assert!(found);
        let missing = filter.evaluate_full(&ctx(&own, None), &|_| None);
        assert!(!missing);
    }

    #[test]
    fn numeric_density_conditions() {
        let crowded = Filter::new(vec![Condition::new(
            ConditionLhs::BluetoothDensity,
            Operator::GreaterThan,
            3,
        )]);
        let mut snapshot = ContextSnapshot::new();
        snapshot.record(
            Timestamp::from_secs(1),
            ContextData::Classified(ClassifiedContext::BluetoothDensity(5)),
        );
        assert!(crowded.evaluate_local(&ctx(&snapshot, None)));
        let mut sparse = ContextSnapshot::new();
        sparse.record(
            Timestamp::from_secs(1),
            ContextData::Classified(ClassifiedContext::BluetoothDensity(1)),
        );
        assert!(!crowded.evaluate_local(&ctx(&sparse, None)));
    }

    #[test]
    fn empty_filter_passes() {
        let snapshot = ContextSnapshot::new();
        assert!(Filter::pass_all().evaluate_local(&ctx(&snapshot, None)));
        assert!(Filter::pass_all().is_empty());
    }

    #[test]
    fn not_equals_operator() {
        let filter = Filter::new(vec![Condition::new(
            ConditionLhs::Place,
            Operator::NotEquals,
            "Paris",
        )]);
        let mut in_paris = ContextSnapshot::new();
        in_paris.record(
            Timestamp::from_secs(1),
            ContextData::Classified(ClassifiedContext::Place(Some("Paris".into()))),
        );
        assert!(!filter.evaluate_local(&ctx(&in_paris, None)));
        let nowhere = ContextSnapshot::new();
        // Place defaults to "unknown" ≠ "Paris".
        assert!(filter.evaluate_local(&ctx(&nowhere, None)));
    }

    #[test]
    fn filters_serialize_round_trip() {
        let filter = Filter::new(vec![
            Condition::new(ConditionLhs::Place, Operator::Equals, "Paris"),
            Condition::new(ConditionLhs::HourOfDay, Operator::LessThan, 22)
                .about(UserId::new("carol")),
        ]);
        let json = serde_json::to_string(&filter).unwrap();
        let back: Filter = serde_json::from_str(&json).unwrap();
        assert_eq!(back, filter);
    }
}
