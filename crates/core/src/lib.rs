//! # SenSocial — a middleware integrating online social networks and mobile sensing
//!
//! A from-scratch Rust reproduction of *SenSocial: A Middleware for
//! Integrating Online Social Networks and Mobile Sensing Data Streams*
//! (Mehrotra, Pejović, Musolesi — ACM Middleware 2014).
//!
//! SenSocial lets ubiquitous-computing applications consume **joined
//! streams of OSN actions and physical sensor context** without
//! implementing the plumbing themselves. The middleware is distributed over
//! mobile clients and a central server:
//!
//! * the **client side** ([`client::ClientManager`]) manages sensor
//!   streams on a device — continuous (duty-cycled) or social-event-based
//!   (one-off sensing fired by OSN triggers) — applies privacy policies and
//!   filters, classifies raw data, and delivers events to local listeners
//!   or uplinks them to the server;
//! * the **server side** ([`server::ServerManager`]) receives OSN actions
//!   from platform plug-ins, fires sensing triggers at the acting user's
//!   devices, remotely creates/destroys/reconfigures streams, evaluates
//!   server-side (including cross-user) filters, aggregates streams, and
//!   manages [multicast streams](server::MulticastStream) over user sets
//!   selected by geography or OSN links.
//!
//! Interaction follows the publish–subscribe paradigm throughout: the
//! middleware publishes [`StreamEvent`]s; applications subscribe with
//! listeners.
//!
//! ## Quickstart
//!
//! ```
//! use sensocial::client::{ClientDeps, ClientManager};
//! use sensocial::{Granularity, StreamSink, StreamSpec};
//! use sensocial_runtime::{Scheduler, SimDuration, SimRng};
//! use sensocial_sensors::{DeviceEnvironment, SensorManager};
//! use sensocial_types::{geo::cities, Modality};
//! use std::sync::{Arc, Mutex};
//!
//! let mut sched = Scheduler::new();
//!
//! // A virtual phone in Paris.
//! let env = DeviceEnvironment::new(cities::paris());
//! let sensors = SensorManager::new(env, SimRng::seed_from(7));
//! let manager = ClientManager::new(ClientDeps::local_only(
//!     "alice", "alice-phone", sensors,
//!     vec![cities::paris_place()],
//! ));
//!
//! // Subscribe to a classified location stream.
//! let spec = StreamSpec::continuous(Modality::Location, Granularity::Classified)
//!     .with_interval(SimDuration::from_secs(60))
//!     .with_sink(StreamSink::Local);
//! let stream = manager.create_stream(&mut sched, spec).unwrap();
//!
//! let seen = Arc::new(Mutex::new(Vec::new()));
//! let sink = seen.clone();
//! manager.register_listener(stream, move |_s, event| {
//!     sink.lock().unwrap().push(event.clone());
//! });
//!
//! sched.run_for(SimDuration::from_mins(5));
//! assert_eq!(seen.lock().unwrap().len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod config;
mod event;
mod filter;
mod predicate;
mod privacy;
pub mod server;
mod topic;

pub use config::{ConfigCommand, StreamMode, StreamSink, StreamSpec};
pub use event::{ConfigAck, RegistrationPayload, StreamEvent, TriggerPayload};
pub use filter::{
    Condition, ConditionLhs, EvalContext, EvalError, EvalErrorKind, Filter, Operator,
};
pub use predicate::{eval_full, eval_local};
pub use privacy::{PrivacyPolicy, PrivacyPolicyManager};
pub use topic::Topic;

// The compiled form the managers evaluate: filters are lowered once at
// admission time and the hot paths run the flat program.
pub use sensocial_analysis::{compile, PredicateProgram};

// The unified telemetry layer is part of the public API surface: managers
// expose their registries via `telemetry()` accessors.
pub use sensocial_telemetry::{Registry as TelemetryRegistry, Snapshot as TelemetrySnapshot};

// The storage engine is part of the server's public API surface:
// `ServerDeps::new` takes an opened engine and `ServerManager::storage`
// hands it back for scans and exports.
pub use sensocial_storage::{
    export, export_query, BackendKind as StorageBackendKind, ExportFormat, SampleQuery,
    SampleRecord, StorageConfig, StorageEngine,
};

// Re-export the vocabulary types users need at the API surface, including
// the plan diagnostics carried by `Error::PlanRejected`.
pub use sensocial_types::{
    ContextData, DeviceId, DiagnosticCode, DiagnosticSeverity, Error, Granularity, Modality,
    OsnAction, PlanDiagnostic, Result, StreamId, UserId,
};

/// Broker topic carrying stream-configuration pushes for a device.
#[deprecated(
    since = "0.1.0",
    note = "construct `Topic::Config` for the device and call `to_string()`; no \
            in-repo callers remain and this stringly shim will be removed once \
            out-of-tree callers have migrated"
)]
pub fn config_topic(device: &DeviceId) -> String {
    Topic::Config(device.clone()).to_string() // lint:allow(config-publish) — deprecated shim; builds the topic string, publishes nothing
}

/// Broker topic carrying sensing triggers for a device.
#[deprecated(
    since = "0.1.0",
    note = "use `Topic::Trigger(device).to_string()`; no in-repo callers remain and \
            this stringly shim will be removed once out-of-tree callers have migrated"
)]
pub fn trigger_topic(device: &DeviceId) -> String {
    Topic::Trigger(device.clone()).to_string()
}

/// Broker topic carrying a device's uplinked stream events.
#[deprecated(
    since = "0.1.0",
    note = "use `Topic::Uplink(device).to_string()`; no in-repo callers remain and \
            this stringly shim will be removed once out-of-tree callers have migrated"
)]
pub fn uplink_topic(device: &DeviceId) -> String {
    Topic::Uplink(device.clone()).to_string()
}

/// Broker topic on which a device acknowledges (or rejects, with plan
/// diagnostics) a pushed stream configuration.
#[deprecated(
    since = "0.1.0",
    note = "use `Topic::Ack(device).to_string()`; no in-repo callers remain and \
            this stringly shim will be removed once out-of-tree callers have migrated"
)]
pub fn ack_topic(device: &DeviceId) -> String {
    Topic::Ack(device.clone()).to_string()
}

/// Wildcard filter matching every device's uplink topic (the server's
/// subscription).
pub const UPLINK_WILDCARD: &str = "sensocial/uplink/+";

/// Wildcard filter matching every device's configuration-ack topic (the
/// server's subscription).
pub const ACK_WILDCARD: &str = "sensocial/ack/+";

/// Topic on which devices announce themselves to the server.
pub const REGISTER_TOPIC: &str = "sensocial/register";

#[cfg(test)]
mod topic_tests {
    use super::*;

    #[test]
    fn topics_are_distinct_per_device() {
        let d1 = DeviceId::new("p1");
        let d2 = DeviceId::new("p2");
        assert_ne!(Topic::Config(d1.clone()), Topic::Config(d2));
        assert_ne!(
            Topic::Config(d1.clone()).to_string(),
            Topic::Trigger(d1.clone()).to_string()
        );
        assert!(Topic::Uplink(d1)
            .to_string()
            .starts_with("sensocial/uplink/"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_typed_topics() {
        let d = DeviceId::new("p1");
        assert_eq!(config_topic(&d), Topic::Config(d.clone()).to_string());
        assert_eq!(trigger_topic(&d), Topic::Trigger(d.clone()).to_string());
        assert_eq!(uplink_topic(&d), Topic::Uplink(d.clone()).to_string());
        assert_eq!(ack_topic(&d), Topic::Ack(d).to_string());
    }
}
