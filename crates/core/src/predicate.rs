//! Evaluation of compiled predicate programs.
//!
//! `sensocial-analysis` lowers an admitted [`Filter`] into a flat
//! [`PredicateProgram`] once, at admission time
//! ([`sensocial_analysis::compile`]); the hot paths here — every sample of
//! a filtered stream, every gating tick, every server-side uplink — then
//! run the pre-decoded instructions instead of re-inspecting the filter's
//! `serde_json::Value`s. [`eval_local`] and [`eval_full`] are drop-in
//! replacements for [`Filter::evaluate_local`] and
//! [`Filter::evaluate_full`]: identical verdicts, identical typed errors,
//! identical short-circuiting. A proptest below pins the equivalence over
//! arbitrary (including ill-typed) filters and contexts.
//!
//! [`Filter`]: sensocial_types::Filter
//! [`Filter::evaluate_local`]: sensocial_types::Filter::evaluate_local
//! [`Filter::evaluate_full`]: sensocial_types::Filter::evaluate_full

use sensocial_analysis::compile::{PredicateOp, PredicateProgram};
use sensocial_types::filter::{EvalContext, EvalError, Operator};
use sensocial_types::{ContextSnapshot, UserId};

/// Runs one pre-decoded instruction against `ctx`.
///
/// Mirrors the interpreter exactly: a missing actual value is `Ok(false)`
/// (the guard cannot be known to hold), and a statically ill-typed
/// condition ([`PredicateOp::Fail`]) reproduces the interpreter's
/// [`EvalError`] — including its precedence, because the interpreter also
/// errors on such conditions before looking at the actual value.
fn eval_op(op: &PredicateOp, ctx: &EvalContext<'_>) -> Result<bool, EvalError> {
    match op {
        PredicateOp::Str { lhs, expect, negate } => Ok(match lhs.fetch_string(ctx) {
            Some(actual) => (actual == *expect) != *negate,
            None => false,
        }),
        PredicateOp::Num { lhs, op, rhs } => Ok(match lhs.fetch_number(ctx) {
            Some(actual) => match op {
                Operator::Equals => (actual - rhs).abs() < f64::EPSILON,
                Operator::NotEquals => (actual - rhs).abs() >= f64::EPSILON,
                Operator::GreaterThan => actual > *rhs,
                Operator::LessThan => actual < *rhs,
            },
            None => false,
        }),
        PredicateOp::Fail {
            lhs,
            op,
            rendered,
            kind,
        } => Err(EvalError {
            lhs: *lhs,
            op: *op,
            value: rendered.clone(),
            kind: *kind,
        }),
    }
}

/// Evaluates the *local* (own-user) instructions of `program`;
/// cross-user instructions are skipped here and enforced by the server's
/// filter manager.
///
/// A definitive `false` short-circuits before any later ill-typed
/// instruction can error, mirroring `&&` (and the interpreter).
///
/// # Errors
///
/// Returns the [`EvalError`] the source condition would produce — only
/// possible for filters the analyzer did not vet.
pub fn eval_local(program: &PredicateProgram, ctx: &EvalContext<'_>) -> Result<bool, EvalError> {
    for inst in program.insts.iter().filter(|i| !i.is_cross_user()) {
        if !eval_op(&inst.op, ctx)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Evaluates every instruction of `program`, resolving cross-user
/// subjects through `lookup` (the server's per-user context table). A
/// cross-user instruction whose subject has no context yet is `false` —
/// before its comparison (or its [`PredicateOp::Fail`]) runs, exactly as
/// the interpreter never evaluates a condition for an unknown subject.
///
/// # Errors
///
/// Returns the [`EvalError`] the source condition would produce — only
/// possible for filters the analyzer did not vet.
pub fn eval_full(
    program: &PredicateProgram,
    ctx: &EvalContext<'_>,
    lookup: &dyn Fn(&UserId) -> Option<ContextSnapshot>,
) -> Result<bool, EvalError> {
    for inst in &program.insts {
        let holds = match &inst.subject {
            None => eval_op(&inst.op, ctx)?,
            Some(user) => match lookup(user) {
                Some(snapshot) => {
                    let sub_ctx = EvalContext {
                        snapshot: &snapshot,
                        now: ctx.now,
                        osn_action: ctx.osn_action,
                    };
                    eval_op(&inst.op, &sub_ctx)?
                }
                None => false,
            },
        };
        if !holds {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sensocial_analysis::compile;
    use sensocial_runtime::Timestamp;
    use sensocial_types::filter::{Condition, ConditionLhs, Filter};
    use sensocial_types::{
        ClassifiedContext, ContextData, OsnAction, OsnActionKind, OsnPlatformKind,
        PhysicalActivity,
    };
    use serde_json::Value;
    use std::collections::BTreeMap;

    fn ctx_with<'a>(snapshot: &'a ContextSnapshot, osn: Option<&'a OsnAction>) -> EvalContext<'a> {
        EvalContext {
            snapshot,
            now: Timestamp::from_secs(10 * 3600),
            osn_action: osn,
        }
    }

    #[test]
    fn compiled_matches_interpreter_on_the_paper_example() {
        let filter = Filter::new(vec![Condition::new(
            ConditionLhs::PhysicalActivity,
            Operator::Equals,
            "walking",
        )]);
        let program = compile(&filter);

        let mut walking = ContextSnapshot::new();
        walking.record(
            Timestamp::ZERO,
            ContextData::Classified(ClassifiedContext::Activity(PhysicalActivity::Walking)),
        );
        let empty = ContextSnapshot::new();

        for snapshot in [&walking, &empty] {
            let ctx = ctx_with(snapshot, None);
            assert_eq!(eval_local(&program, &ctx), filter.evaluate_local(&ctx));
        }
    }

    #[test]
    fn ill_typed_program_reproduces_the_interpreter_error() {
        let filter = Filter::new(vec![Condition::new(
            ConditionLhs::HourOfDay,
            Operator::Equals,
            "noon",
        )]);
        let program = compile(&filter);
        let snapshot = ContextSnapshot::new();
        let ctx = ctx_with(&snapshot, None);
        assert_eq!(eval_local(&program, &ctx), filter.evaluate_local(&ctx));
        assert!(eval_local(&program, &ctx).is_err());
    }

    #[test]
    fn unknown_cross_user_subject_is_false_not_an_error() {
        // The interpreter never evaluates a condition for an unknown
        // subject, even an ill-typed one; neither may we.
        let filter = Filter::new(vec![Condition::new(
            ConditionLhs::Place,
            Operator::LessThan,
            3,
        )
        .about(UserId::new("ghost"))]);
        let program = compile(&filter);
        let snapshot = ContextSnapshot::new();
        let ctx = ctx_with(&snapshot, None);
        let lookup = |_: &UserId| None;
        assert_eq!(eval_full(&program, &ctx, &lookup), Ok(false));
        assert_eq!(
            eval_full(&program, &ctx, &lookup),
            filter.evaluate_full(&ctx, &lookup)
        );
    }

    // ---- compiled == interpreted, over the whole plan space ----

    fn arb_lhs() -> impl Strategy<Value = ConditionLhs> {
        prop_oneof![
            Just(ConditionLhs::PhysicalActivity),
            Just(ConditionLhs::AudioEnvironment),
            Just(ConditionLhs::Place),
            Just(ConditionLhs::WifiDensity),
            Just(ConditionLhs::BluetoothDensity),
            Just(ConditionLhs::HourOfDay),
            Just(ConditionLhs::OsnActivity),
            Just(ConditionLhs::OsnActionKind),
            Just(ConditionLhs::OsnTopic),
        ]
    }

    fn arb_op() -> impl Strategy<Value = Operator> {
        prop_oneof![
            Just(Operator::Equals),
            Just(Operator::NotEquals),
            Just(Operator::GreaterThan),
            Just(Operator::LessThan),
        ]
    }

    /// Well-typed, ill-typed and nonsensical comparison values alike: the
    /// equivalence must hold on every filter, not just vetted ones.
    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            prop_oneof![
                Just("walking"),
                Just("still"),
                Just("silent"),
                Just("active"),
                Just("inactive"),
                Just("post"),
                Just("Paris"),
                Just("unknown"),
                Just("football"),
            ]
            .prop_map(Value::from),
            (0i64..30).prop_map(Value::from),
            (0.0f64..24.0).prop_map(Value::from),
            Just(Value::Bool(true)),
            Just(Value::Null),
        ]
    }

    fn arb_condition() -> impl Strategy<Value = Condition> {
        (
            arb_lhs(),
            arb_op(),
            arb_value(),
            prop_oneof![
                Just(None),
                Just(Some(UserId::new("bob"))),
                Just(Some(UserId::new("ghost"))),
            ],
        )
            .prop_map(|(lhs, op, value, subject)| {
                let c = Condition::new(lhs, op, value);
                match subject {
                    Some(user) => c.about(user),
                    None => c,
                }
            })
    }

    fn arb_snapshot() -> impl Strategy<Value = ContextSnapshot> {
        (
            proptest::option::of(prop_oneof![
                Just(PhysicalActivity::Still),
                Just(PhysicalActivity::Walking),
                Just(PhysicalActivity::Running),
            ]),
            proptest::option::of(proptest::option::of(prop_oneof![
                Just("Paris".to_owned()),
                Just("London".to_owned()),
            ])),
            proptest::option::of(0usize..20),
        )
            .prop_map(|(activity, place, wifi)| {
                let mut snapshot = ContextSnapshot::new();
                if let Some(a) = activity {
                    snapshot.record(
                        Timestamp::ZERO,
                        ContextData::Classified(ClassifiedContext::Activity(a)),
                    );
                }
                if let Some(p) = place {
                    snapshot.record(
                        Timestamp::ZERO,
                        ContextData::Classified(ClassifiedContext::Place(p)),
                    );
                }
                if let Some(n) = wifi {
                    snapshot.record(
                        Timestamp::ZERO,
                        ContextData::Classified(ClassifiedContext::WifiDensity(n)),
                    );
                }
                snapshot
            })
    }

    fn arb_osn_action() -> impl Strategy<Value = Option<OsnAction>> {
        proptest::option::of(
            (
                prop_oneof![Just(OsnActionKind::Post), Just(OsnActionKind::Like)],
                proptest::option::of(prop_oneof![
                    Just("football".to_owned()),
                    Just("weather".to_owned()),
                ]),
            )
                .prop_map(|(kind, topic)| OsnAction {
                    user: UserId::new("alice"),
                    kind,
                    content: "hello".to_owned(),
                    topic,
                    at: Timestamp::ZERO,
                    platform: OsnPlatformKind::Push,
                }),
        )
    }

    proptest! {
        #[test]
        fn compiled_equals_interpreted(
            conditions in proptest::collection::vec(arb_condition(), 0..4),
            snapshot in arb_snapshot(),
            bob in proptest::option::of(arb_snapshot()),
            osn in arb_osn_action(),
            hour in 0u64..24,
        ) {
            let filter = Filter::new(conditions);
            let program = compile(&filter);
            let ctx = EvalContext {
                snapshot: &snapshot,
                now: Timestamp::from_secs(hour * 3600),
                osn_action: osn.as_ref(),
            };
            let mut contexts: BTreeMap<UserId, ContextSnapshot> = BTreeMap::new();
            if let Some(b) = bob {
                contexts.insert(UserId::new("bob"), b);
            }
            let lookup = |user: &UserId| contexts.get(user).cloned();

            prop_assert_eq!(eval_local(&program, &ctx), filter.evaluate_local(&ctx));
            prop_assert_eq!(
                eval_full(&program, &ctx, &lookup),
                filter.evaluate_full(&ctx, &lookup)
            );
        }
    }
}
