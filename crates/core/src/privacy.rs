//! Privacy policy management.
//!
//! "Whenever a stream is created or modified, or the privacy settings are
//! changed, Privacy Policy Manager is invoked to compare all the stream
//! configurations with the latest privacy policies … In case a stream does
//! not clear this privacy check, it is automatically paused … Such a
//! stream is moved back to the working state later when it clears the
//! privacy check according to the modified privacy policies" (paper §4).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use sensocial_types::{Error, Granularity, Modality, Result};
use serde::{Deserialize, Serialize};

use crate::config::StreamSpec;

/// One policy entry: whether data of a given modality and granularity may
/// be sampled and shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivacyPolicy {
    /// The governed modality.
    pub modality: Modality,
    /// The governed granularity.
    pub granularity: Granularity,
    /// Whether sampling at this modality × granularity is allowed.
    pub allow: bool,
}

/// The privacy descriptor: a decision per (modality, granularity), with a
/// configurable default for unlisted pairs.
///
/// Cloneable handle; the client manager, its streams and the application
/// share one. Policies "can be dynamically defined by the developer or
/// exposed as settings to the users".
///
/// # Example
///
/// ```
/// use sensocial::PrivacyPolicyManager;
/// use sensocial_types::{Granularity, Modality};
///
/// let privacy = PrivacyPolicyManager::allow_all();
/// privacy.deny(Modality::Location, Granularity::Raw);
/// assert!(!privacy.is_allowed(Modality::Location, Granularity::Raw));
/// assert!(privacy.is_allowed(Modality::Location, Granularity::Classified));
/// ```
#[derive(Clone)]
pub struct PrivacyPolicyManager {
    inner: Arc<RwLock<Inner>>,
}

struct Inner {
    policies: HashMap<(Modality, Granularity), bool>,
    default_allow: bool,
    revision: u64,
}

impl std::fmt::Debug for PrivacyPolicyManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("PrivacyPolicyManager")
            .field("policies", &inner.policies.len())
            .field("default_allow", &inner.default_allow)
            .field("revision", &inner.revision)
            .finish()
    }
}

impl PrivacyPolicyManager {
    /// A manager that allows everything not explicitly denied.
    #[must_use]
    pub fn allow_all() -> Self {
        PrivacyPolicyManager {
            inner: Arc::new(RwLock::new(Inner {
                policies: HashMap::new(),
                default_allow: true,
                revision: 0,
            })),
        }
    }

    /// A manager that denies everything not explicitly allowed.
    #[must_use]
    pub fn deny_all() -> Self {
        PrivacyPolicyManager {
            inner: Arc::new(RwLock::new(Inner {
                policies: HashMap::new(),
                default_allow: false,
                revision: 0,
            })),
        }
    }

    /// Sets one policy entry.
    pub fn set_policy(&self, policy: PrivacyPolicy) {
        let mut inner = self.inner.write();
        inner
            .policies
            .insert((policy.modality, policy.granularity), policy.allow);
        inner.revision += 1;
    }

    /// Allows a (modality, granularity) pair.
    pub fn allow(&self, modality: Modality, granularity: Granularity) {
        self.set_policy(PrivacyPolicy {
            modality,
            granularity,
            allow: true,
        });
    }

    /// Denies a (modality, granularity) pair.
    pub fn deny(&self, modality: Modality, granularity: Granularity) {
        self.set_policy(PrivacyPolicy {
            modality,
            granularity,
            allow: false,
        });
    }

    /// Whether sampling `modality` at `granularity` is currently allowed.
    pub fn is_allowed(&self, modality: Modality, granularity: Granularity) -> bool {
        let inner = self.inner.read();
        inner
            .policies
            .get(&(modality, granularity))
            .copied()
            .unwrap_or(inner.default_allow)
    }

    /// Monotonic revision counter, bumped on every policy change; the
    /// client manager uses it to re-screen streams.
    pub fn revision(&self) -> u64 {
        self.inner.read().revision
    }

    /// Screens a stream specification: the stream's own modality ×
    /// granularity must be allowed, **and** every conditional modality its
    /// filter needs must be allowed at `Classified` granularity (the
    /// middleware classifies conditional streams on-device; raw conditional
    /// data never leaves the sensor manager).
    ///
    /// # Errors
    ///
    /// Returns [`Error::PrivacyDenied`] naming the first denied pair.
    pub fn screen(&self, spec: &StreamSpec) -> Result<()> {
        if !self.is_allowed(spec.modality, spec.granularity) {
            return Err(Error::PrivacyDenied {
                modality: spec.modality.name().to_owned(),
                granularity: spec.granularity.name().to_owned(),
            });
        }
        for m in spec.filter.conditional_modalities(spec.modality) {
            if !self.is_allowed(m, Granularity::Classified) {
                return Err(Error::PrivacyDenied {
                    modality: m.name().to_owned(),
                    granularity: Granularity::Classified.name().to_owned(),
                });
            }
        }
        Ok(())
    }
}

impl Default for PrivacyPolicyManager {
    /// Equivalent to [`PrivacyPolicyManager::allow_all`].
    fn default() -> Self {
        PrivacyPolicyManager::allow_all()
    }
}

/// The static plan verifier screens conditional modalities through the
/// same policy table the runtime pause/resume machinery consults, so the
/// registration-time verdict and the stream-time behaviour cannot drift.
impl sensocial_analysis::PrivacyView for PrivacyPolicyManager {
    fn is_allowed(&self, modality: Modality, granularity: Granularity) -> bool {
        PrivacyPolicyManager::is_allowed(self, modality, granularity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{Condition, ConditionLhs, Filter, Operator};

    #[test]
    fn default_policies() {
        let allow = PrivacyPolicyManager::allow_all();
        assert!(allow.is_allowed(Modality::Microphone, Granularity::Raw));
        let deny = PrivacyPolicyManager::deny_all();
        assert!(!deny.is_allowed(Modality::Microphone, Granularity::Raw));
    }

    #[test]
    fn explicit_policies_override_default() {
        let p = PrivacyPolicyManager::deny_all();
        p.allow(Modality::Accelerometer, Granularity::Classified);
        assert!(p.is_allowed(Modality::Accelerometer, Granularity::Classified));
        assert!(!p.is_allowed(Modality::Accelerometer, Granularity::Raw));
        assert_eq!(p.revision(), 1);
    }

    #[test]
    fn screen_checks_stream_modality() {
        let p = PrivacyPolicyManager::allow_all();
        p.deny(Modality::Location, Granularity::Raw);
        let raw_gps = StreamSpec::continuous(Modality::Location, Granularity::Raw);
        let err = p.screen(&raw_gps).unwrap_err();
        assert_eq!(
            err,
            Error::PrivacyDenied {
                modality: "location".into(),
                granularity: "raw".into()
            }
        );
        let classified_gps = StreamSpec::continuous(Modality::Location, Granularity::Classified);
        assert!(p.screen(&classified_gps).is_ok());
    }

    #[test]
    fn screen_checks_conditional_modalities_too() {
        // The paper: "Privacy Policy Manager screens for both the modality
        // required by the stream and its filtering conditions."
        let p = PrivacyPolicyManager::allow_all();
        p.deny(Modality::Accelerometer, Granularity::Classified);
        let gps_when_walking = StreamSpec::continuous(Modality::Location, Granularity::Raw)
            .with_filter(Filter::new(vec![Condition::new(
                ConditionLhs::PhysicalActivity,
                Operator::Equals,
                "walking",
            )]));
        let err = p.screen(&gps_when_walking).unwrap_err();
        assert_eq!(
            err,
            Error::PrivacyDenied {
                modality: "accelerometer".into(),
                granularity: "classified".into()
            }
        );
    }

    #[test]
    fn policy_changes_bump_revision_and_flip_decisions() {
        let p = PrivacyPolicyManager::allow_all();
        let spec = StreamSpec::continuous(Modality::Microphone, Granularity::Raw);
        assert!(p.screen(&spec).is_ok());
        p.deny(Modality::Microphone, Granularity::Raw);
        assert!(p.screen(&spec).is_err());
        p.allow(Modality::Microphone, Granularity::Raw);
        assert!(p.screen(&spec).is_ok());
        assert_eq!(p.revision(), 2);
    }

    #[test]
    fn clones_share_policies() {
        let p = PrivacyPolicyManager::allow_all();
        p.clone().deny(Modality::Wifi, Granularity::Raw);
        assert!(!p.is_allowed(Modality::Wifi, Granularity::Raw));
    }
}
