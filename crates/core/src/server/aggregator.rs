//! Stream aggregators.
//!
//! "Aggregators manage multiple streams received by the server by wrapping
//! them into a single aggregated stream irrespective of the streams'
//! sources. In an aggregator, data from individual streams is multiplexed
//! to the same join stream, which can further be processed as any other
//! stream in the system" (paper §3.1).

use std::collections::BTreeSet;

use sensocial_types::StreamId;

/// Identifies an aggregator created with
/// [`ServerManager::create_aggregator`](super::ServerManager::create_aggregator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AggregatorId(pub(crate) u64);

impl std::fmt::Display for AggregatorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "aggregator#{}", self.0)
    }
}

/// Internal aggregator state: the member streams being multiplexed.
#[derive(Debug, Default)]
pub(crate) struct AggregatorState {
    pub(crate) members: BTreeSet<StreamId>,
}

impl AggregatorState {
    pub(crate) fn new(members: impl IntoIterator<Item = StreamId>) -> Self {
        AggregatorState {
            members: members.into_iter().collect(),
        }
    }

    pub(crate) fn contains(&self, stream: StreamId) -> bool {
        self.members.contains(&stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership() {
        let agg = AggregatorState::new([StreamId::new(1), StreamId::new(2)]);
        assert!(agg.contains(StreamId::new(1)));
        assert!(!agg.contains(StreamId::new(3)));
        assert_eq!(agg.members.len(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(AggregatorId(3).to_string(), "aggregator#3");
    }
}
