//! The server-side SenSocial Manager, Trigger Manager and Filter Manager.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_broker::{BrokerClient, QoS};
use sensocial_classify::{extract_topic, SentimentClassifier, TextSentiment};
use sensocial_net::LatencyModel;
use sensocial_osn::{PollPlugin, PushPlugin, SocialGraph};
use sensocial_runtime::{Scheduler, SimDuration, SimRng, Timestamp};
use sensocial_storage::StorageEngine;
use sensocial_store::{Database, Query};
use sensocial_telemetry::{Registry, Stage};
use sensocial_types::{
    ContextData, ContextSnapshot, DeviceId, Error, GeoPoint, OsnAction, OsnActionKind, RawSample,
    Result, StreamId, TriggerId, UserId,
};
use serde_json::json;

use sensocial_analysis::report;
use sensocial_analysis::{
    analyze, compile, AnalysisEnv, DependencyGraph, FilterPlan, FlowSink, FlowSource,
    PredicateProgram,
};

use crate::client::manager_internals::REMOTE_STREAM_ID_BASE;
use crate::config::{ConfigCommand, StreamMode, StreamSink, StreamSpec};
use crate::event::{ConfigAck, RegistrationPayload, StreamEvent, TriggerPayload};
use crate::filter::{EvalContext, Filter};
use crate::predicate::eval_full;
use crate::{Topic, ACK_WILDCARD, REGISTER_TOPIC, UPLINK_WILDCARD};

use super::aggregator::{AggregatorId, AggregatorState};
use super::multicast::{MulticastId, MulticastSelector, MulticastStream};

/// Which uplink events a server-side subscription receives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamSelector {
    /// Every uplink event from every device.
    AllUplinks,
    /// Events from one stream.
    Stream(StreamId),
    /// Events from one user (any of their devices/streams).
    User(UserId),
    /// Events of one modality from any user — the paper's *topic-based*
    /// subscription ("the specification of modalities of interest", §3.1);
    /// combine with a [`Filter`] for the *content-based* flavour.
    Modality(sensocial_types::Modality),
}

impl StreamSelector {
    fn matches(&self, event: &StreamEvent) -> bool {
        match self {
            StreamSelector::AllUplinks => true,
            StreamSelector::Stream(id) => event.stream == *id,
            StreamSelector::User(user) => event.user == *user,
            StreamSelector::Modality(m) => event.data.modality() == *m,
        }
    }
}

type Listener = Arc<dyn Fn(&mut Scheduler, &StreamEvent) + Send + Sync>;

/// A registered observer of device configuration acks (both positive and
/// negative). The campaign scheduler's settle path.
type AckListener = Arc<dyn Fn(&mut Scheduler, &ConfigAck) + Send + Sync>;

struct Subscription {
    selector: StreamSelector,
    filter: Filter,
    /// `filter` lowered to predicate bytecode at registration time; the
    /// per-uplink hot path runs this instead of tree-walking the filter.
    program: PredicateProgram,
    listener: Listener,
}

/// An aggregated stream's runtime entry: membership, the installed
/// (normalized) filter, its compiled form, and the subscribed listeners.
struct AggregatorEntry {
    state: AggregatorState,
    filter: Filter,
    /// `filter` lowered to predicate bytecode at install time.
    program: PredicateProgram,
    listeners: Vec<Listener>,
}

/// Everything a [`ServerManager`] is wired to.
pub struct ServerDeps {
    /// The storage engine (document plane + batched sensor-sample log),
    /// opened through `sensocial_storage::StorageConfig::open`.
    pub storage: StorageEngine,
    /// The server's broker client.
    pub broker: BrokerClient,
    /// Server-side processing time between receiving an OSN action and
    /// publishing the sensing trigger (database queries, trigger
    /// compilation). Table 3 measures this at ≈9 s end-to-end including
    /// push delivery.
    pub processing_delay: LatencyModel,
    /// Randomness for the processing-delay model.
    pub rng: SimRng,
}

impl ServerDeps {
    /// Standard wiring with the Table 3-calibrated processing delay.
    pub fn new(storage: StorageEngine, broker: BrokerClient, rng: SimRng) -> Self {
        ServerDeps {
            storage,
            broker,
            processing_delay: LatencyModel::Normal {
                mean_s: 8.8,
                std_s: 0.9,
                min_s: 0.5,
            },
            rng,
        }
    }
}

struct Inner {
    devices: HashMap<DeviceId, UserId>,
    user_devices: HashMap<UserId, Vec<DeviceId>>,
    contexts: HashMap<UserId, ContextSnapshot>,
    graph: SocialGraph,
    remote_streams: HashMap<StreamId, (DeviceId, StreamSpec)>,
    subscriptions: Vec<Subscription>,
    aggregators: HashMap<AggregatorId, AggregatorEntry>,
    multicasts: HashMap<MulticastId, (MulticastStream, Vec<Listener>)>,
    next_remote_stream: u64,
    /// Monotonic stamp applied to every pushed [`ConfigCommand`], so devices
    /// can discard stale (reordered or redelivered) configuration.
    next_config_epoch: u64,
    next_trigger: u64,
    next_aggregator: u64,
    next_multicast: u64,
    processing_delay: LatencyModel,
    rng: SimRng,
    /// (action time, server receive time) pairs — Table 3's raw data.
    action_log: Vec<(Timestamp, Timestamp)>,
    /// Negative configuration acks, oldest first, with their diagnostics.
    rejection_log: Vec<ConfigAck>,
    /// Observers notified of every configuration ack (positive and
    /// negative) after the server's own bookkeeping.
    ack_listeners: Vec<AckListener>,
    /// Whether OSN text mining (topic extraction + sentiment) runs on
    /// incoming actions — the paper's §9 future work, implemented.
    text_mining: bool,
}

/// The server-side entry point: user/device registry, trigger manager,
/// server filter manager, aggregators and multicast streams.
///
/// Cloneable handle.
#[derive(Clone)]
pub struct ServerManager {
    inner: Arc<Mutex<Inner>>,
    storage: StorageEngine,
    broker: BrokerClient,
    telemetry: Registry,
}

impl std::fmt::Debug for ServerManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        let snap = self.telemetry.snapshot();
        f.debug_struct("ServerManager")
            .field("devices", &inner.devices.len())
            .field("remote_streams", &inner.remote_streams.len())
            .field("osn_actions", &snap.counter("server.osn_actions"))
            .field("triggers_sent", &snap.counter("server.triggers_sent"))
            .field("uplink_events", &snap.counter("server.uplink_events"))
            .finish()
    }
}

impl ServerManager {
    /// Creates a server manager. Call [`ServerManager::connect`] before
    /// expecting uplink data.
    pub fn new(deps: ServerDeps) -> Self {
        // Indices backing the geo and registration queries (document
        // plane — the same collections under every storage backend).
        deps.storage.collection("locations").create_geo_index("loc");
        deps.storage.collection("locations").create_index("user");
        deps.storage.collection("users").create_index("user");
        deps.storage.collection("osn_links").create_index("a");
        deps.storage.collection("osn_links").create_index("b");
        ServerManager {
            inner: Arc::new(Mutex::new(Inner {
                devices: HashMap::new(),
                user_devices: HashMap::new(),
                contexts: HashMap::new(),
                graph: SocialGraph::new(),
                remote_streams: HashMap::new(),
                subscriptions: Vec::new(),
                aggregators: HashMap::new(),
                multicasts: HashMap::new(),
                next_remote_stream: 0,
                next_config_epoch: 1,
                next_trigger: 0,
                next_aggregator: 0,
                next_multicast: 0,
                processing_delay: deps.processing_delay,
                rng: deps.rng,
                action_log: Vec::new(),
                rejection_log: Vec::new(),
                ack_listeners: Vec::new(),
                text_mining: false,
            })),
            storage: deps.storage,
            broker: deps.broker,
            telemetry: Registry::new("server"),
        }
    }

    /// Connects to the broker, subscribes to every device's uplink and to
    /// the registration topic (devices announce themselves on connect).
    pub fn connect(&self, sched: &mut Scheduler) {
        self.broker.connect(sched);
        let server = self.clone();
        self.broker.subscribe(
            sched,
            UPLINK_WILDCARD,
            QoS::AtMostOnce,
            move |s, topic, payload| {
                server.on_uplink(s, topic, payload);
            },
        );
        let server = self.clone();
        self.broker.subscribe(
            sched,
            REGISTER_TOPIC,
            QoS::AtLeastOnce,
            move |_s, _topic, payload| {
                if let Ok(registration) = RegistrationPayload::from_wire(payload) {
                    server.register_device(registration.user, registration.device);
                }
            },
        );
        let server = self.clone();
        self.broker.subscribe(
            sched,
            ACK_WILDCARD,
            QoS::AtLeastOnce,
            move |s, topic, payload| {
                server.on_ack(s, topic, payload);
            },
        );
    }

    fn on_ack(&self, sched: &mut Scheduler, topic: &str, payload: &str) {
        if Topic::expect_ack(topic).is_err() {
            self.telemetry.count("malformed_topics");
            return;
        }
        if let Ok(ack) = ConfigAck::from_wire(payload) {
            self.on_config_ack(sched, ack);
        }
    }

    fn on_config_ack(&self, sched: &mut Scheduler, ack: ConfigAck) {
        let listeners = {
            let mut inner = self.inner.lock();
            if !ack.accepted {
                self.telemetry.count("config_rejections");
                inner.rejection_log.push(ack.clone());
            }
            inner.ack_listeners.clone()
        };
        for listener in listeners {
            listener(sched, &ack);
        }
    }

    /// Registers an observer of device configuration acks — positive and
    /// negative alike, after the server's own rejection bookkeeping. The
    /// campaign scheduler uses this to settle dispatch attempts.
    pub fn register_ack_listener<F>(&self, listener: F)
    where
        F: Fn(&mut Scheduler, &ConfigAck) + Send + Sync + 'static,
    {
        self.inner.lock().ack_listeners.push(Arc::new(listener));
    }

    /// Negative configuration acks received from devices — pushed plans
    /// the on-device verifier rejected, with their diagnostics — oldest
    /// first. Lets applications learn *why* a remote stream never produced
    /// data instead of debugging silence.
    pub fn config_rejections(&self) -> Vec<ConfigAck> {
        self.inner.lock().rejection_log.clone()
    }

    /// The server's telemetry registry (counters under `server.*`, stage
    /// histograms for [`Stage::Server`] and [`Stage::Subscriber`]).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Counts a server-side filter evaluation that hit a typed eval error.
    /// The single bookkeeping point for fail-closed filter evaluation,
    /// mirroring the client-side helper of the same name.
    fn record_filter_eval_error(&self) {
        self.telemetry.count("filter_eval_errors");
    }

    /// The `(action time, server receive time)` log behind Table 3.
    pub fn action_log(&self) -> Vec<(Timestamp, Timestamp)> {
        self.inner.lock().action_log.clone()
    }

    /// The storage engine: the batched sensor-sample log plus the
    /// document plane. Scans ([`StorageEngine::scan`]) and exports go
    /// through this handle.
    pub fn storage(&self) -> &StorageEngine {
        &self.storage
    }

    /// The document plane of the storage engine (registries and
    /// application collections) — the Mongo-substitute view.
    pub fn db(&self) -> &Database {
        self.storage.docs()
    }

    /// The server's view of the OSN graph.
    pub fn graph(&self) -> SocialGraph {
        self.inner.lock().graph.clone()
    }

    /// The server's latest context snapshot for `user`.
    pub fn user_context(&self, user: &UserId) -> Option<ContextSnapshot> {
        self.inner.lock().contexts.get(user).cloned()
    }

    // ------------------------------------------------------------------
    // Registry
    // ------------------------------------------------------------------

    /// Registers a user's device. Users may own several devices.
    /// Idempotent: re-announcements (devices register on every broker
    /// connect) do not duplicate registry entries.
    pub fn register_device(&self, user: UserId, device: DeviceId) {
        {
            let mut inner = self.inner.lock();
            if inner.devices.contains_key(&device) {
                return;
            }
            inner.devices.insert(device.clone(), user.clone());
            inner
                .user_devices
                .entry(user.clone())
                .or_default()
                .push(device.clone());
            inner.graph.add_user(user.clone());
            inner.contexts.entry(user.clone()).or_default();
        }
        let _ = self.storage.collection("users").insert(json!({
            "user": user.as_str(),
            "device": device.as_str(),
        }));
    }

    /// Whether `device` is registered.
    pub fn is_registered(&self, device: &DeviceId) -> bool {
        self.inner.lock().devices.contains_key(device)
    }

    /// The devices registered for `user`.
    pub fn devices_of(&self, user: &UserId) -> Vec<DeviceId> {
        self.inner
            .lock()
            .user_devices
            .get(user)
            .cloned()
            .unwrap_or_default()
    }

    /// Records a friendship the server already knows about (bootstrap);
    /// later changes arrive as OSN `FriendshipChange` actions.
    pub fn record_friendship(&self, a: &UserId, b: &UserId) {
        {
            let mut inner = self.inner.lock();
            inner.graph.add_friendship(a, b);
        }
        let _ = self.storage.collection("osn_links").insert(json!({
            "a": a.as_str(),
            "b": b.as_str(),
        }));
    }

    /// Seeds the server's knowledge of a user's position (normally learnt
    /// from uplinked location streams).
    pub fn seed_location(&self, user: &UserId, position: GeoPoint) {
        self.upsert_location(user, position);
    }

    fn upsert_location(&self, user: &UserId, position: GeoPoint) {
        let locations = self.storage.collection("locations");
        let query = Query::eq("user", user.as_str());
        let loc = json!({"lat": position.lat, "lon": position.lon});
        if locations.update_set(&query, &[("loc", loc.clone())]) == 0 {
            let _ = locations.insert(json!({"user": user.as_str(), "loc": loc}));
        }
    }

    // ------------------------------------------------------------------
    // OSN bridge + Trigger Manager
    // ------------------------------------------------------------------

    /// Wires a push-style (Facebook) plug-in into this server.
    pub fn connect_push_plugin(&self, plugin: &PushPlugin) {
        let server = self.clone();
        plugin.set_receiver(move |sched, action| {
            server.on_osn_action(sched, action);
        });
    }

    /// Wires a poll-style (Twitter) plug-in into this server.
    pub fn connect_poll_plugin(&self, plugin: &PollPlugin) {
        let server = self.clone();
        plugin.set_receiver(move |sched, action| {
            server.on_osn_action(sched, action);
        });
    }

    /// Enables OSN text mining: posts without a platform topic tag get one
    /// extracted from their text, and every action's sentiment is
    /// classified and stored alongside it — "classifiers that are able to
    /// extract OSN post topics and emotional states of the individuals"
    /// (paper §9).
    pub fn enable_text_mining(&self) {
        self.inner.lock().text_mining = true;
    }

    /// Handles an OSN action delivered by a plug-in: records it, keeps the
    /// OSN-link table fresh, and (after the modelled processing time)
    /// fires sensing triggers at the acting user's devices.
    pub fn on_osn_action(&self, sched: &mut Scheduler, mut action: OsnAction) {
        let now = sched.now();
        let mining = self.inner.lock().text_mining;
        let sentiment = if mining {
            if action.topic.is_none() {
                action.topic = extract_topic(&action.content).map(str::to_owned);
            }
            Some(match SentimentClassifier::new().classify(&action.content) {
                TextSentiment::Positive => "positive",
                TextSentiment::Negative => "negative",
                TextSentiment::Neutral => "neutral",
            })
        } else {
            None
        };
        self.telemetry.count("osn_actions");
        let delay = {
            let mut inner = self.inner.lock();
            inner.action_log.push((action.at, now));
            // "The server component classifies OSN actions to infer any
            // change in the OSN."
            if action.kind == OsnActionKind::FriendshipChange {
                let other = UserId::new(action.content.clone());
                if inner.graph.are_friends(&action.user, &other) {
                    inner.graph.remove_friendship(&action.user, &other);
                } else {
                    inner.graph.add_friendship(&action.user, &other);
                }
            }
            let mut rng = inner.rng.split("processing");
            inner.processing_delay.sample(&mut rng)
        };
        let _ = self.storage.collection("actions").insert(json!({
            "user": action.user.as_str(),
            "kind": action.kind.name(),
            "content": action.content,
            "topic": action.topic,
            "sentiment": sentiment,
            "at_ms": action.at.as_millis(),
        }));

        let server = self.clone();
        sched.schedule_after(delay, move |s| {
            server.fire_triggers(s, &action);
        });
    }

    fn fire_triggers(&self, sched: &mut Scheduler, action: &OsnAction) {
        let (devices, trigger_base) = {
            let mut inner = self.inner.lock();
            let devices = inner
                .user_devices
                .get(&action.user)
                .cloned()
                .unwrap_or_default();
            let base = inner.next_trigger;
            inner.next_trigger += devices.len() as u64;
            (devices, base)
        };
        self.telemetry
            .count_by("triggers_sent", devices.len() as u64);
        for (i, device) in devices.iter().enumerate() {
            let payload = TriggerPayload {
                trigger: TriggerId::new(trigger_base + i as u64),
                device: device.clone(),
                action: action.clone(),
            };
            self.broker.publish(
                sched,
                Topic::Trigger(device.clone()),
                payload.to_wire(),
                QoS::AtLeastOnce,
                false,
            );
        }
    }

    // ------------------------------------------------------------------
    // Remote stream management
    // ------------------------------------------------------------------

    /// Creates a stream on a remote device by pushing a configuration
    /// command; the stream's data is uplinked to this server (the sink is
    /// forced to [`StreamSink::Server`]).
    ///
    /// The spec's filter plan is verified for device placement before
    /// anything is pushed, so an unsound plan fails here instead of as a
    /// negative ack round-trip later; the normalized filter is what gets
    /// pushed. (The device still re-verifies against its own privacy
    /// policies, which the server cannot see.)
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownDevice`] if `device` is not registered, or
    /// [`Error::PlanRejected`] if the filter fails verification.
    pub fn create_remote_stream(
        &self,
        sched: &mut Scheduler,
        device: &DeviceId,
        mut spec: StreamSpec,
    ) -> Result<StreamId> {
        spec.sink = StreamSink::Server;
        let analysis = analyze(&Self::remote_stream_plan(&spec), &AnalysisEnv::new())?;
        spec.filter = analysis.filter;
        let id = {
            let mut inner = self.inner.lock();
            if !inner.devices.contains_key(device) {
                return Err(Error::UnknownDevice(device.as_str().to_owned()));
            }
            let id = StreamId::new(REMOTE_STREAM_ID_BASE + inner.next_remote_stream);
            inner.next_remote_stream += 1;
            inner
                .remote_streams
                .insert(id, (device.clone(), spec.clone()));
            id
        };
        let command = ConfigCommand::Create {
            device: device.clone(),
            stream: id,
            spec,
            epoch: 0,
            token: None,
        };
        self.push_config(sched, device, command);
        Ok(id)
    }

    /// Destroys a remotely-created stream.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownStream`] if the server did not create
    /// `stream`.
    pub fn destroy_remote_stream(&self, sched: &mut Scheduler, stream: StreamId) -> Result<()> {
        let device = {
            let mut inner = self.inner.lock();
            let (device, _) = inner
                .remote_streams
                .remove(&stream)
                .ok_or(Error::UnknownStream(stream.value()))?;
            device
        };
        let command = ConfigCommand::Destroy {
            device: device.clone(),
            stream,
            epoch: 0,
            token: None,
        };
        self.push_config(sched, &device, command);
        Ok(())
    }

    /// Replaces a remote stream's filter. The plan is verified for device
    /// placement first; the normalized filter is what gets pushed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownStream`] if the server did not create
    /// `stream`, or [`Error::PlanRejected`] if the filter fails
    /// verification (the previous filter stays in place).
    pub fn set_remote_filter(
        &self,
        sched: &mut Scheduler,
        stream: StreamId,
        filter: Filter,
    ) -> Result<()> {
        let candidate = {
            let inner = self.inner.lock();
            let (_, spec) = inner
                .remote_streams
                .get(&stream)
                .ok_or(Error::UnknownStream(stream.value()))?;
            spec.clone().with_filter(filter)
        };
        let analysis = analyze(&Self::remote_stream_plan(&candidate), &AnalysisEnv::new())?;
        let filter = analysis.filter;
        let device = {
            let mut inner = self.inner.lock();
            let (device, spec) = inner
                .remote_streams
                .get_mut(&stream)
                .ok_or(Error::UnknownStream(stream.value()))?;
            spec.filter = filter.clone();
            device.clone()
        };
        let command = ConfigCommand::SetFilter {
            device: device.clone(),
            stream,
            filter,
            epoch: 0,
            token: None,
        };
        self.push_config(sched, &device, command);
        Ok(())
    }

    /// Changes a remote stream's duty cycle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownStream`] if the server did not create
    /// `stream`.
    pub fn set_remote_interval(
        &self,
        sched: &mut Scheduler,
        stream: StreamId,
        interval: SimDuration,
    ) -> Result<()> {
        let device = {
            let mut inner = self.inner.lock();
            let (device, spec) = inner
                .remote_streams
                .get_mut(&stream)
                .ok_or(Error::UnknownStream(stream.value()))?;
            spec.interval = interval;
            device.clone()
        };
        let command = ConfigCommand::SetInterval {
            device: device.clone(),
            stream,
            interval_ms: interval.as_millis(),
            epoch: 0,
            token: None,
        };
        self.push_config(sched, &device, command);
        Ok(())
    }

    /// Dispatches a campaign-stamped configuration command: stamps the
    /// next config epoch, publishes it on the device's config topic and
    /// returns the assigned epoch so the campaign scheduler can journal
    /// it. The command must carry an occurrence token (that is what makes
    /// the device positively ack it — see [`ConfigCommand`]); the single
    /// sanctioned path to the config topic outside the server's own
    /// remote-stream management.
    ///
    /// # Panics
    ///
    /// Panics if `command` carries no occurrence token — tokenless
    /// campaign dispatches would never settle.
    pub fn dispatch_campaign_config(&self, sched: &mut Scheduler, command: ConfigCommand) -> u64 {
        assert!(
            command.token().is_some(),
            "campaign dispatches must carry an occurrence token"
        );
        self.push_config(sched, &command.device().clone(), command)
    }

    fn push_config(&self, sched: &mut Scheduler, device: &DeviceId, command: ConfigCommand) -> u64 {
        let (command, epoch) = {
            let mut inner = self.inner.lock();
            let epoch = inner.next_config_epoch;
            inner.next_config_epoch += 1;
            (command.with_epoch(epoch), epoch)
        };
        self.broker.publish(
            sched,
            Topic::Config(device.clone()), // lint:allow(config-publish) — the sanctioned config-topic publish site (epoch stamping lives here)
            command.to_wire(),
            QoS::AtLeastOnce,
            false,
        );
        epoch
    }

    // ------------------------------------------------------------------
    // Server-side pub/sub, aggregators, multicast
    // ------------------------------------------------------------------

    /// Subscribes a server-side listener to uplink events selected by
    /// `selector` and passing `filter`. The filter may contain cross-user
    /// conditions ("report A's location only while B is walking"):
    /// subjects are resolved against the server's per-user context table.
    ///
    /// The plan is verified for server placement first; the normalized
    /// filter is what gets installed. The information-flow pass sees the
    /// uplinked streams the selector currently reads from as sources, so
    /// an OSN-conditioned subscription over a raw sensitive uplink is
    /// rejected with a `privacy_flow` diagnostic (the devices' privacy
    /// screens ran before this coupling existed and cannot have authorized
    /// it).
    ///
    /// # Errors
    ///
    /// Returns [`Error::PlanRejected`] if the filter is ill-typed or
    /// unsatisfiable, routes a raw sensitive modality through an OSN
    /// coupling, or if its cross-user conditions would close a dependency
    /// cycle with already-installed plans.
    pub fn register_listener<F>(
        &self,
        selector: StreamSelector,
        filter: Filter,
        listener: F,
    ) -> Result<()>
    where
        F: Fn(&mut Scheduler, &StreamEvent) + Send + Sync + 'static,
    {
        let mut plan = FilterPlan::server(filter);
        for source in self.selector_sources(&selector) {
            plan = plan.with_source(source);
        }
        let analysis = analyze(&plan, &AnalysisEnv::new())?;
        let filter = analysis.filter;
        if let StreamSelector::User(owner) = &selector {
            self.check_dependency_cycles(None, std::slice::from_ref(owner), &filter)?;
        }
        let program = compile(&filter);
        self.inner.lock().subscriptions.push(Subscription {
            selector,
            filter,
            program,
            listener: Arc::new(listener),
        });
        Ok(())
    }

    /// Wraps `streams` into one aggregated stream.
    pub fn create_aggregator(&self, streams: impl IntoIterator<Item = StreamId>) -> AggregatorId {
        let mut inner = self.inner.lock();
        let id = AggregatorId(inner.next_aggregator);
        inner.next_aggregator += 1;
        let filter = Filter::pass_all();
        let program = compile(&filter);
        inner.aggregators.insert(
            id,
            AggregatorEntry {
                state: AggregatorState::new(streams),
                filter,
                program,
                listeners: Vec::new(),
            },
        );
        id
    }

    /// Sets a filter on an aggregated stream — "such streams can be
    /// treated as any plain data stream", filtering included (paper §3.2).
    /// Cross-user subjects resolve against the server's context table.
    ///
    /// The plan is verified for server placement first; the normalized
    /// filter is what gets installed. The member streams' specs feed the
    /// information-flow pass as sources, so gating a raw sensitive member
    /// on OSN context rejects with a `privacy_flow` diagnostic.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PlanRejected`] if the filter fails verification.
    pub fn set_aggregator_filter(&self, id: AggregatorId, filter: Filter) -> Result<()> {
        let mut plan = FilterPlan::server(filter);
        for source in self.aggregator_sources(id) {
            plan = plan.with_source(source);
        }
        let analysis = analyze(&plan, &AnalysisEnv::new())?;
        if let Some(entry) = self.inner.lock().aggregators.get_mut(&id) {
            entry.program = compile(&analysis.filter);
            entry.filter = analysis.filter;
        }
        Ok(())
    }

    /// Subscribes to an aggregator's joined stream.
    pub fn register_aggregator_listener<F>(&self, id: AggregatorId, listener: F)
    where
        F: Fn(&mut Scheduler, &StreamEvent) + Send + Sync + 'static,
    {
        if let Some(entry) = self.inner.lock().aggregators.get_mut(&id) {
            entry.listeners.push(Arc::new(listener));
        }
    }

    /// Creates a multicast stream: selects users via `selector`, creates a
    /// remote stream from `template` on each member's first device, and
    /// returns a handle for filtering/listening/refreshing.
    ///
    /// The template's filter plan is verified for multicast placement
    /// first (the normalized filter is what gets installed), and its
    /// cross-user conditions are checked against the server's dependency
    /// graph so two multicasts whose members gate on each other cannot
    /// both be admitted.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PlanRejected`] if the template filter fails
    /// verification or closes a cross-user dependency cycle.
    pub fn create_multicast(
        &self,
        sched: &mut Scheduler,
        selector: MulticastSelector,
        template: StreamSpec,
    ) -> Result<MulticastId> {
        let analysis = analyze(
            &FilterPlan::multicast(
                template.modality,
                template.granularity,
                template.filter.clone(),
            ),
            &AnalysisEnv::new(),
        )?;
        let mut template = template;
        template.filter = analysis.filter;
        let members = self.resolve_selector(&selector);
        self.check_dependency_cycles(None, &members, &template.filter)?;
        let id = {
            let mut inner = self.inner.lock();
            let id = MulticastId(inner.next_multicast);
            inner.next_multicast += 1;
            inner
                .multicasts
                .insert(id, (MulticastStream::new(selector, template), Vec::new()));
            id
        };
        self.refresh_multicast(sched, id);
        Ok(id)
    }

    /// Member users of a multicast stream.
    pub fn multicast_members(&self, id: MulticastId) -> Vec<UserId> {
        self.inner
            .lock()
            .multicasts
            .get(&id)
            .map(|(m, _)| m.member_users())
            .unwrap_or_default()
    }

    /// Subscribes to a multicast stream's events.
    pub fn register_multicast_listener<F>(&self, id: MulticastId, listener: F)
    where
        F: Fn(&mut Scheduler, &StreamEvent) + Send + Sync + 'static,
    {
        if let Some((_, listeners)) = self.inner.lock().multicasts.get_mut(&id) {
            listeners.push(Arc::new(listener));
        }
    }

    /// Sets a filter on a multicast stream, transparently distributing its
    /// device-evaluable part to every member device; cross-user conditions
    /// stay on the server, enforced when members' events arrive.
    ///
    /// The plan is verified for multicast placement and checked against
    /// the cross-user dependency graph first.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownStream`] if `id` does not exist, or
    /// [`Error::PlanRejected`] if the filter fails verification or closes
    /// a cross-user dependency cycle (the previous filter stays in place).
    pub fn set_multicast_filter(
        &self,
        sched: &mut Scheduler,
        id: MulticastId,
        filter: Filter,
    ) -> Result<()> {
        let (modality, granularity, members) = {
            let inner = self.inner.lock();
            let (multicast, _) = inner
                .multicasts
                .get(&id)
                .ok_or(Error::UnknownStream(id.0))?;
            (
                multicast.template.modality,
                multicast.template.granularity,
                multicast.member_users(),
            )
        };
        let analysis = analyze(
            &FilterPlan::multicast(modality, granularity, filter),
            &AnalysisEnv::new(),
        )?;
        let filter = analysis.filter;
        self.check_dependency_cycles(Some(id), &members, &filter)?;
        let (local, streams) = {
            let mut inner = self.inner.lock();
            let Some((multicast, _)) = inner.multicasts.get_mut(&id) else {
                return Err(Error::UnknownStream(id.0));
            };
            multicast.set_template_filter(filter);
            (multicast.local_filter.clone(), multicast.member_streams())
        };
        for stream in streams {
            let _ = self.set_remote_filter(sched, stream, local.clone());
        }
        Ok(())
    }

    /// Starts a timer re-evaluating the multicast's membership every
    /// `period`, returning the handle to stop it. This is how the §3.2
    /// collocation scenario follows a moving person: each refresh destroys
    /// streams on devices that left the fence and creates them on
    /// newcomers.
    pub fn auto_refresh_multicast(
        &self,
        sched: &mut Scheduler,
        id: MulticastId,
        period: SimDuration,
    ) -> sensocial_runtime::TimerHandle {
        let server = self.clone();
        sensocial_runtime::Timer::start(sched, period, move |s| {
            server.refresh_multicast(s, id);
        })
    }

    /// Re-evaluates a multicast stream's membership: creates streams on
    /// joining users' devices and destroys streams on leavers (the paper's
    /// geo-fenced stream churn as users move).
    pub fn refresh_multicast(&self, sched: &mut Scheduler, id: MulticastId) {
        let (selector, template, local_filter, current) = {
            let inner = self.inner.lock();
            let Some((multicast, _)) = inner.multicasts.get(&id) else {
                return;
            };
            (
                multicast.selector.clone(),
                multicast.template.clone(),
                multicast.local_filter.clone(),
                multicast.members.clone(),
            )
        };
        let desired = self.resolve_selector(&selector);

        // Leavers first.
        for (user, stream) in &current {
            if !desired.contains(user) {
                let _ = self.destroy_remote_stream(sched, *stream);
                if let Some((m, _)) = self.inner.lock().multicasts.get_mut(&id) {
                    m.members.remove(user);
                }
            }
        }
        // Joiners. Devices get only the locally-evaluable part of the
        // template filter (cached at filter-install time); cross-user
        // conditions stay on the server and are enforced in `on_uplink`
        // (a device cannot see other users' context, and the verifier
        // rejects cross-user plans at device placement).
        let mut device_template = template.clone();
        device_template.filter = local_filter;
        for user in desired {
            if current.contains_key(&user) {
                continue;
            }
            let Some(device) = self.devices_of(&user).into_iter().next() else {
                continue;
            };
            if let Ok(stream) = self.create_remote_stream(sched, &device, device_template.clone()) {
                if let Some((m, _)) = self.inner.lock().multicasts.get_mut(&id) {
                    m.members.insert(user, stream);
                }
            }
        }
    }

    /// Rebuilds the cross-user dependency graph from every installed plan
    /// — one `owner → subject` edge per cross-user condition in a
    /// user-selected subscription or multicast template (on behalf of each
    /// member) — adds the candidate plan's edges, and rejects on a cycle.
    ///
    /// `exclude` names a multicast whose current edges are being replaced
    /// and must not count against its own successor.
    fn check_dependency_cycles(
        &self,
        exclude: Option<MulticastId>,
        owners: &[UserId],
        filter: &Filter,
    ) -> Result<()> {
        let subjects: Vec<&UserId> = filter
            .conditions
            .iter()
            .filter_map(|c| c.subject.as_ref())
            .collect();
        if subjects.is_empty() {
            return Ok(());
        }
        let mut graph = self.build_dependency_graph(exclude);
        for owner in owners {
            for subject in &subjects {
                graph.depend(owner, subject);
            }
        }
        if let Some(diag) = graph.cycle_diagnostic() {
            return Err(Error::PlanRejected(vec![diag]));
        }
        Ok(())
    }

    /// The cross-user dependency graph over every installed plan —
    /// user-selected subscriptions and multicast templates (one edge per
    /// member per cross-user condition). `exclude` names a multicast whose
    /// current edges are being replaced.
    fn build_dependency_graph(&self, exclude: Option<MulticastId>) -> DependencyGraph {
        let mut graph = DependencyGraph::new();
        let inner = self.inner.lock();
        for sub in &inner.subscriptions {
            if let StreamSelector::User(owner) = &sub.selector {
                for c in &sub.filter.conditions {
                    if let Some(subject) = &c.subject {
                        graph.depend(owner, subject);
                    }
                }
            }
        }
        for (mid, (multicast, _)) in &inner.multicasts {
            if Some(*mid) == exclude {
                continue;
            }
            for owner in multicast.member_users() {
                for c in &multicast.template.filter.conditions {
                    if let Some(subject) = &c.subject {
                        graph.depend(&owner, subject);
                    }
                }
            }
        }
        graph
    }

    // ------------------------------------------------------------------
    // Whole-deployment static analysis
    // ------------------------------------------------------------------

    /// The flow-enriched plan for a server-managed device stream: the
    /// spec's sink and effective mode refine the information-flow pass.
    fn remote_stream_plan(spec: &StreamSpec) -> FilterPlan {
        let sink = match spec.sink {
            StreamSink::Local => FlowSink::DeviceLocal,
            StreamSink::Server => FlowSink::Uplink,
        };
        FilterPlan::device(spec.modality, spec.granularity, spec.filter.clone())
            .sinking(sink)
            .coupled_to_osn(spec.effective_mode() == StreamMode::SocialEventBased)
    }

    /// The uplink sources a selector currently reads from, sorted and
    /// deduplicated. A modality selector is conservative: it matches any
    /// future stream of that modality, so it is treated as a raw source
    /// even before one exists. (Streams created *after* a subscription are
    /// not re-checked against it — a known admission-order limit.)
    fn sources_for_selector(
        selector: &StreamSelector,
        remote_streams: &HashMap<StreamId, (DeviceId, StreamSpec)>,
        devices: &HashMap<DeviceId, UserId>,
    ) -> Vec<FlowSource> {
        let mut sources: Vec<FlowSource> = match selector {
            StreamSelector::AllUplinks => remote_streams
                .values()
                .map(|(_, spec)| FlowSource::new(spec.modality, spec.granularity))
                .collect(),
            StreamSelector::Stream(id) => remote_streams
                .get(id)
                .map(|(_, spec)| FlowSource::new(spec.modality, spec.granularity))
                .into_iter()
                .collect(),
            StreamSelector::User(user) => remote_streams
                .values()
                .filter(|(device, _)| devices.get(device) == Some(user))
                .map(|(_, spec)| FlowSource::new(spec.modality, spec.granularity))
                .collect(),
            StreamSelector::Modality(m) => {
                vec![FlowSource::new(*m, sensocial_types::Granularity::Raw)]
            }
        };
        sources.sort_unstable();
        sources.dedup();
        sources
    }

    /// [`ServerManager::sources_for_selector`] over the live tables.
    fn selector_sources(&self, selector: &StreamSelector) -> Vec<FlowSource> {
        let inner = self.inner.lock();
        Self::sources_for_selector(selector, &inner.remote_streams, &inner.devices)
    }

    /// The member-stream sources feeding an aggregator, sorted and
    /// deduplicated. Members that are not server-created streams cannot be
    /// resolved to a spec and are skipped.
    fn aggregator_sources(&self, id: AggregatorId) -> Vec<FlowSource> {
        let inner = self.inner.lock();
        let Some(entry) = inner.aggregators.get(&id) else {
            return Vec::new();
        };
        let mut sources: Vec<FlowSource> = entry
            .state
            .members
            .iter()
            .filter_map(|sid| inner.remote_streams.get(sid))
            .map(|(_, spec)| FlowSource::new(spec.modality, spec.granularity))
            .collect();
        sources.sort_unstable();
        sources.dedup();
        sources
    }

    /// Every registered user, sorted.
    pub fn registered_users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.inner.lock().user_devices.keys().cloned().collect();
        users.sort_unstable();
        users
    }

    /// The current cross-user dependency graph over every installed plan.
    pub fn dependency_graph(&self) -> DependencyGraph {
        self.build_dependency_graph(None)
    }

    /// Static analyses of every installed server-side plan (remote
    /// streams, subscriptions, aggregators, multicast templates), in a
    /// deterministic order. The building block of
    /// [`ServerManager::analysis_report`]; `sensocial-sim`'s `World` merges
    /// these with per-device client plans.
    pub fn plan_reports(&self) -> Vec<report::PlanReport> {
        use std::collections::BTreeMap;

        // Snapshot under the lock, analyze lock-free (the passes are pure).
        let (remote, devices, subs, aggs, multis) = {
            let inner = self.inner.lock();
            let remote = inner.remote_streams.clone();
            let devices = inner.devices.clone();
            let subs: Vec<(StreamSelector, Filter)> = inner
                .subscriptions
                .iter()
                .map(|s| (s.selector.clone(), s.filter.clone()))
                .collect();
            let aggs: BTreeMap<AggregatorId, (Vec<StreamId>, Filter)> = inner
                .aggregators
                .iter()
                .map(|(id, entry)| {
                    (
                        *id,
                        (
                            entry.state.members.iter().copied().collect(),
                            entry.filter.clone(),
                        ),
                    )
                })
                .collect();
            let multis: BTreeMap<MulticastId, StreamSpec> = inner
                .multicasts
                .iter()
                .map(|(id, (m, _))| (*id, m.template.clone()))
                .collect();
            (remote, devices, subs, aggs, multis)
        };
        let env = AnalysisEnv::new();

        let mut plans = Vec::new();
        let sorted_remote: BTreeMap<&StreamId, &(DeviceId, StreamSpec)> = remote.iter().collect();
        for (id, (_, spec)) in sorted_remote {
            let plan = Self::remote_stream_plan(spec);
            plans.push(report::PlanReport::for_plan(
                "remote_stream",
                id.to_string(), // lint:allow(to-string) — cold path: one report label per installed plan
                &plan,
                &env,
            ));
        }
        for (index, (selector, filter)) in subs.iter().enumerate() {
            let mut plan = FilterPlan::server(filter.clone());
            for source in Self::sources_for_selector(selector, &remote, &devices) {
                plan = plan.with_source(source);
            }
            plans.push(report::PlanReport::for_plan(
                "subscription",
                format!("subscription#{index:04}"),
                &plan,
                &env,
            ));
        }
        for (id, (members, filter)) in &aggs {
            let mut plan = FilterPlan::server(filter.clone());
            let mut sources: Vec<FlowSource> = members
                .iter()
                .filter_map(|sid| remote.get(sid))
                .map(|(_, spec)| FlowSource::new(spec.modality, spec.granularity))
                .collect();
            sources.sort_unstable();
            sources.dedup();
            for source in sources {
                plan = plan.with_source(source);
            }
            plans.push(report::PlanReport::for_plan(
                "aggregator",
                id.to_string(), // lint:allow(to-string) — cold path: one report label per installed plan
                &plan,
                &env,
            ));
        }
        for (id, template) in &multis {
            let plan = FilterPlan::multicast(
                template.modality,
                template.granularity,
                template.filter.clone(),
            );
            plans.push(report::PlanReport::for_plan(
                "multicast",
                id.to_string(), // lint:allow(to-string) — cold path: one report label per installed plan
                &plan,
                &env,
            ));
        }
        plans
    }

    /// The server's whole-deployment [`report::AnalysisReport`]: every
    /// installed plan's cost and flow verdict, the cross-user dependency
    /// edges and the [`sensocial_analysis::ShardPlan`] placement hint for
    /// `shard_count` shards. Byte-stable for a deterministic deployment:
    /// every collection is snapshotted into sorted form first.
    pub fn analysis_report(&self, shard_count: usize) -> report::AnalysisReport {
        report::AnalysisReport::new(
            self.plan_reports(),
            &self.build_dependency_graph(None),
            &self.registered_users(),
            shard_count,
        )
    }

    /// Reads a user's last stored position from the locations collection.
    fn stored_location(&self, user: &UserId) -> Option<GeoPoint> {
        let doc = self
            .db
            .collection("locations")
            .find_one(&Query::eq("user", user.as_str()))?;
        let lat = doc.body["loc"]["lat"].as_f64()?;
        let lon = doc.body["loc"]["lon"].as_f64()?;
        Some(GeoPoint::new(lat, lon))
    }

    fn resolve_selector(&self, selector: &MulticastSelector) -> Vec<UserId> {
        match selector {
            MulticastSelector::FriendsOf(user) => self.inner.lock().graph.friends(user),
            MulticastSelector::WithinFence(fence) => {
                let docs = self
                    .db
                    .collection("locations")
                    .find(&Query::within("loc", *fence));
                docs.iter()
                    .filter_map(|d| d.body["user"].as_str().map(UserId::new))
                    .collect()
            }
            MulticastSelector::NearUser { user, radius_m } => {
                // The followed person's own position anchors the fence.
                let Some(center) = self
                    .inner
                    .lock()
                    .contexts
                    .get(user)
                    .and_then(|c| c.position())
                    .or_else(|| self.stored_location(user))
                else {
                    return Vec::new();
                };
                let docs = self
                    .db
                    .collection("locations")
                    .find(&Query::near("loc", center, *radius_m));
                docs.iter()
                    .filter_map(|d| d.body["user"].as_str().map(UserId::new))
                    .filter(|u| u != user)
                    .collect()
            }
            MulticastSelector::Intersection(a, b) => {
                let sa = self.resolve_selector(a);
                let sb = self.resolve_selector(b);
                sa.into_iter().filter(|u| sb.contains(u)).collect()
            }
            MulticastSelector::Explicit(users) => users.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Uplink handling + server Filter Manager
    // ------------------------------------------------------------------

    fn on_uplink(&self, sched: &mut Scheduler, topic: &str, payload: &str) {
        // The wildcard subscription hands over everything under
        // `sensocial/uplink/+`; a topic that does not parse is counted and
        // dropped instead of silently half-processed.
        if Topic::expect_uplink(topic).is_err() {
            self.telemetry.count("malformed_topics");
            return;
        }
        let Ok(event) = StreamEvent::from_wire(payload) else {
            self.telemetry.count("malformed_uplinks");
            return;
        };
        self.telemetry.count("uplink_events");
        // Server-stage latency: sample birth to server-side arrival.
        self.telemetry.observe(
            Stage::Server,
            sched.now().as_millis().saturating_sub(event.at.as_millis()),
        );

        // Keep the context table and location collection fresh.
        {
            let mut inner = self.inner.lock();
            let snapshot = inner.contexts.entry(event.user.clone()).or_default();
            snapshot.record(event.at, event.data.clone());
        }
        if let ContextData::Raw(RawSample::Location(fix)) = &event.data {
            self.upsert_location(&event.user, fix.position);
        }

        // Persist the sample through the storage engine's batch buffer:
        // one flush per interval instead of one insert per sample. The
        // engine asks for a flush to be scheduled exactly when none is
        // pending, so at most one flush event is in flight.
        if let Some(delay) = self.storage.append_context(
            event.user.clone(),
            event.device.clone(),
            event.stream,
            event.at,
            &event.data,
            sched.now(),
        ) {
            let storage = self.storage.clone();
            sched.schedule_after(delay, move |s| {
                storage.flush(s.now());
            });
        }

        // Collect every listener whose selector + (fully evaluated) filter
        // admits the event, then invoke outside the lock. Typed eval
        // errors fail closed and are counted: analyzer-vetted plans never
        // produce them.
        let mut to_call: Vec<Listener> = Vec::new();
        {
            let inner = self.inner.lock();
            let lookup = |user: &UserId| inner.contexts.get(user).cloned();
            let own_snapshot = inner.contexts.get(&event.user).cloned().unwrap_or_default();
            let ctx = EvalContext {
                snapshot: &own_snapshot,
                now: sched.now(),
                osn_action: event.osn_action.as_ref(),
            };
            for sub in &inner.subscriptions {
                if !sub.selector.matches(&event) {
                    continue;
                }
                match eval_full(&sub.program, &ctx, &lookup) {
                    Ok(true) => to_call.push(sub.listener.clone()),
                    Ok(false) => {}
                    Err(_) => self.record_filter_eval_error(),
                }
            }
            for entry in inner.aggregators.values() {
                if !entry.state.contains(event.stream) {
                    continue;
                }
                match eval_full(&entry.program, &ctx, &lookup) {
                    Ok(true) => to_call.extend(entry.listeners.iter().cloned()),
                    Ok(false) => {}
                    Err(_) => self.record_filter_eval_error(),
                }
            }
            // Multicast members' devices already enforced the local part
            // of the template filter; the server enforces the cross-user
            // part here — pre-compiled at install time — completing the
            // distributed plan.
            for (multicast, listeners) in inner.multicasts.values() {
                if !multicast.owns_stream(event.stream) {
                    continue;
                }
                match eval_full(&multicast.cross_program, &ctx, &lookup) {
                    Ok(true) => to_call.extend(listeners.iter().cloned()),
                    Ok(false) => {}
                    Err(_) => self.record_filter_eval_error(),
                }
            }
        }
        for listener in to_call {
            // Subscriber-stage latency: sample birth to application
            // callback, one observation per delivery.
            self.telemetry.observe(
                Stage::Subscriber,
                sched.now().as_millis().saturating_sub(event.at.as_millis()),
            );
            listener(sched, &event);
        }
    }
}
