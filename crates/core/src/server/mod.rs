//! The server side of the middleware.
//!
//! The server receives OSN actions from platform plug-ins, remotely
//! manages streams on mobiles, evaluates server-side (including
//! cross-user) filters, aggregates streams and manages multicast streams.

mod aggregator;
mod manager;
mod multicast;

pub use aggregator::AggregatorId;
pub use manager::{ServerDeps, ServerManager, StreamSelector};
pub use multicast::{MulticastId, MulticastSelector, MulticastStream};
