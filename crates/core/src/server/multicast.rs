//! Multicast streams.
//!
//! "The multicast stream abstracts related streams of multiple clients
//! into a single entity … the multicast stream can tap into the
//! information about the geographic location of the users, or their OSN
//! interconnectivity, and through a query that takes geo or OSN attributes
//! into account, select a subgroup of users whose data will be collected.
//! Furthermore, filters set upon a multicast stream are transparently
//! distributed to all the users encompassed by the multicast stream"
//! (paper §3.1).

use std::collections::BTreeMap;

use sensocial_analysis::{compile, PredicateProgram};
use sensocial_types::{GeoFence, StreamId, UserId};

use crate::config::StreamSpec;
use crate::filter::Filter;

/// Identifies a multicast stream created with
/// [`ServerManager::create_multicast`](super::ServerManager::create_multicast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MulticastId(pub(crate) u64);

impl std::fmt::Display for MulticastId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "multicast#{}", self.0)
    }
}

/// How a multicast stream selects its member users.
#[derive(Debug, Clone, PartialEq)]
pub enum MulticastSelector {
    /// OSN friends of a user (the Figure 2 scenario selects A's friends).
    FriendsOf(UserId),
    /// Users whose last known position lies within a fence.
    WithinFence(GeoFence),
    /// Users currently collocated with a specific person — §3.2: "every
    /// time the person moves, a new geo-fenced location stream is created
    /// on the mobile devices of all the users who are currently nearby,
    /// and the previously created streams are removed." Pair with
    /// [`ServerManager::auto_refresh_multicast`](super::ServerManager::auto_refresh_multicast)
    /// to follow the person.
    NearUser {
        /// The person being followed.
        user: UserId,
        /// Collocation radius in metres.
        radius_m: f64,
    },
    /// Users in *both* sub-selections (e.g. friends of A currently near
    /// Paris).
    Intersection(Box<MulticastSelector>, Box<MulticastSelector>),
    /// An explicit user set (escape hatch for applications with their own
    /// selection logic).
    Explicit(Vec<UserId>),
}

/// A live multicast stream: the selector, the per-member remote streams it
/// owns, and the template they were created from.
#[derive(Debug)]
pub struct MulticastStream {
    pub(crate) selector: MulticastSelector,
    pub(crate) template: StreamSpec,
    /// member user → the remote stream created on their device.
    pub(crate) members: BTreeMap<UserId, StreamId>,
    /// The locally-evaluable part of the template filter — what gets
    /// pushed to member devices. Cached at filter-install time so
    /// membership refreshes don't re-partition.
    pub(crate) local_filter: Filter,
    /// The cross-user part of the template filter, lowered to predicate
    /// bytecode once at install time; the server's filter manager runs it
    /// on every member uplink event instead of re-partitioning and
    /// tree-walking per event.
    pub(crate) cross_program: PredicateProgram,
}

impl MulticastStream {
    pub(crate) fn new(selector: MulticastSelector, template: StreamSpec) -> Self {
        let (local_filter, cross) = template.filter.partition_cross_user();
        MulticastStream {
            selector,
            template,
            members: BTreeMap::new(),
            local_filter,
            cross_program: compile(&cross),
        }
    }

    /// Installs a new template filter, re-deriving the cached device-local
    /// part and the compiled cross-user program. The single sanctioned way
    /// to change the filter after construction — assigning
    /// `template.filter` directly would leave the caches stale.
    pub(crate) fn set_template_filter(&mut self, filter: Filter) {
        self.template.filter = filter;
        let (local, cross) = self.template.filter.partition_cross_user();
        self.local_filter = local;
        self.cross_program = compile(&cross);
    }

    /// Current member users, sorted.
    pub fn member_users(&self) -> Vec<UserId> {
        self.members.keys().cloned().collect()
    }

    /// The remote stream ids this multicast owns.
    pub fn member_streams(&self) -> Vec<StreamId> {
        self.members.values().copied().collect()
    }

    /// Whether `stream` belongs to this multicast.
    pub fn owns_stream(&self, stream: StreamId) -> bool {
        self.members.values().any(|s| *s == stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::{geo::cities, Granularity, Modality};

    #[test]
    fn membership_accessors() {
        let mut m = MulticastStream::new(
            MulticastSelector::WithinFence(GeoFence::new(cities::paris(), 10_000.0)),
            StreamSpec::continuous(Modality::Location, Granularity::Classified),
        );
        m.members.insert(UserId::new("c"), StreamId::new(5));
        m.members.insert(UserId::new("d"), StreamId::new(6));
        assert_eq!(m.member_users(), vec![UserId::new("c"), UserId::new("d")]);
        assert!(m.owns_stream(StreamId::new(5)));
        assert!(!m.owns_stream(StreamId::new(7)));
    }

    #[test]
    fn display() {
        assert_eq!(MulticastId(1).to_string(), "multicast#1");
    }
}
