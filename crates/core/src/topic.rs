//! Typed broker topics.
//!
//! The middleware's broker traffic lives under the `sensocial/` namespace.
//! [`Topic`] replaces the earlier stringly helpers (`config_topic` & co.):
//! it round-trips through [`Display`]/[`FromStr`], converts into the
//! `String`s the broker layer accepts (`BrokerClient::publish` takes
//! `impl Into<String>`, so a `Topic` can be passed directly), and turns a
//! malformed incoming topic into a typed [`Error::MalformedTopic`] instead
//! of a silent non-match.
//!
//! [`Display`]: std::fmt::Display
//! [`FromStr`]: std::str::FromStr

use std::fmt;
use std::str::FromStr;

use sensocial_broker::TopicFilter;
use sensocial_types::{DeviceId, Error, InternedTopic};

/// The `sensocial/…` namespace prefix shared by every topic.
const NAMESPACE: &str = "sensocial";

/// A typed SenSocial broker topic.
///
/// # Example
///
/// ```
/// use sensocial::{DeviceId, Topic};
///
/// let topic = Topic::Uplink(DeviceId::new("alice-phone"));
/// assert_eq!(topic.to_string(), "sensocial/uplink/alice-phone");
/// assert_eq!("sensocial/uplink/alice-phone".parse::<Topic>(), Ok(topic));
/// assert!("sensocial/uplink/".parse::<Topic>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Topic {
    /// Stream-configuration pushes for a device.
    Config(DeviceId),
    /// Sensing triggers for a device.
    Trigger(DeviceId),
    /// A device's uplinked stream events.
    Uplink(DeviceId),
    /// A device's configuration acknowledgements (or rejections, with plan
    /// diagnostics).
    Ack(DeviceId),
    /// The shared topic on which devices announce themselves.
    Register,
}

impl Topic {
    /// The kind segment (`config`, `trigger`, `uplink`, `ack`,
    /// `register`).
    pub fn kind(&self) -> &'static str {
        match self {
            Topic::Config(_) => "config",
            Topic::Trigger(_) => "trigger",
            Topic::Uplink(_) => "uplink",
            Topic::Ack(_) => "ack",
            Topic::Register => "register",
        }
    }

    /// The device the topic addresses, when it is per-device.
    pub fn device(&self) -> Option<&DeviceId> {
        match self {
            Topic::Config(d) | Topic::Trigger(d) | Topic::Uplink(d) | Topic::Ack(d) => Some(d),
            Topic::Register => None,
        }
    }

    /// Parses a topic, reporting failures as the typed
    /// [`Error::MalformedTopic`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::MalformedTopic`] when `s` is not under the
    /// `sensocial/` namespace, the kind segment is unknown, or the device
    /// segment is empty/missing.
    pub fn parse(s: &str) -> Result<Topic, Error> {
        let malformed = || Error::MalformedTopic(s.to_owned());
        let mut parts = s.splitn(3, '/');
        if parts.next() != Some(NAMESPACE) {
            return Err(malformed());
        }
        let kind = parts.next().ok_or_else(malformed)?;
        let device = parts.next();
        match (kind, device) {
            ("register", None) => Ok(Topic::Register),
            (_, Some("")) | (_, None) if kind != "register" => Err(malformed()),
            ("config", Some(d)) => Ok(Topic::Config(DeviceId::new(d))),
            ("trigger", Some(d)) => Ok(Topic::Trigger(DeviceId::new(d))),
            ("uplink", Some(d)) => Ok(Topic::Uplink(DeviceId::new(d))),
            ("ack", Some(d)) => Ok(Topic::Ack(DeviceId::new(d))),
            _ => Err(malformed()),
        }
    }

    /// Parses an uplink topic, returning the device it belongs to.
    ///
    /// The server's wildcard subscription hands every `sensocial/uplink/+`
    /// match to this; anything else is a typed error rather than a silent
    /// skip.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MalformedTopic`] when `s` is not an uplink topic.
    pub fn expect_uplink(s: &str) -> Result<DeviceId, Error> {
        match Topic::parse(s)? {
            Topic::Uplink(device) => Ok(device),
            _ => Err(Error::MalformedTopic(s.to_owned())),
        }
    }

    /// Parses an ack topic, returning the device it belongs to.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MalformedTopic`] when `s` is not an ack topic.
    pub fn expect_ack(s: &str) -> Result<DeviceId, Error> {
        match Topic::parse(s)? {
            Topic::Ack(device) => Ok(device),
            _ => Err(Error::MalformedTopic(s.to_owned())),
        }
    }

    /// The topic's interned wire form. Repeated calls for the same topic
    /// (e.g. a device's uplink topic, once per sample) resolve to one
    /// shared allocation, so hot paths can hold and clone it for free.
    pub fn interned(&self) -> InternedTopic {
        InternedTopic::new(self.to_string())
    }

    /// The topic as an exact-match subscription filter.
    pub fn filter(&self) -> TopicFilter {
        TopicFilter::from(self.to_string().as_str())
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.device() {
            Some(device) => write!(f, "{NAMESPACE}/{}/{}", self.kind(), device.as_str()),
            None => write!(f, "{NAMESPACE}/{}", self.kind()),
        }
    }
}

impl FromStr for Topic {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Topic::parse(s)
    }
}

impl From<Topic> for String {
    fn from(topic: Topic) -> String {
        topic.to_string()
    }
}

impl From<&Topic> for String {
    fn from(topic: &Topic) -> String {
        topic.to_string()
    }
}

impl From<Topic> for InternedTopic {
    fn from(topic: Topic) -> InternedTopic {
        topic.interned()
    }
}

impl From<&Topic> for InternedTopic {
    fn from(topic: &Topic) -> InternedTopic {
        topic.interned()
    }
}

impl From<Topic> for TopicFilter {
    fn from(topic: Topic) -> TopicFilter {
        topic.filter()
    }
}

impl From<&Topic> for TopicFilter {
    fn from(topic: &Topic) -> TopicFilter {
        topic.filter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_wire_scheme() {
        let d = DeviceId::new("p1");
        assert_eq!(Topic::Config(d.clone()).to_string(), "sensocial/config/p1");
        assert_eq!(
            Topic::Trigger(d.clone()).to_string(),
            "sensocial/trigger/p1"
        );
        assert_eq!(Topic::Uplink(d.clone()).to_string(), "sensocial/uplink/p1");
        assert_eq!(Topic::Ack(d).to_string(), "sensocial/ack/p1");
        assert_eq!(Topic::Register.to_string(), "sensocial/register");
    }

    #[test]
    fn round_trip_with_slashes_in_device() {
        let topic = Topic::Uplink(DeviceId::new("fleet/7/phone"));
        assert_eq!(topic.to_string().parse::<Topic>(), Ok(topic));
    }

    #[test]
    fn malformed_topics_are_typed_errors() {
        for bad in [
            "",
            "sensocial",
            "sensocial/",
            "sensocial/uplink",
            "sensocial/uplink/",
            "sensocial/warp/p1",
            "mqtt/uplink/p1",
            "sensocial/register/extra",
        ] {
            match bad.parse::<Topic>() {
                Err(Error::MalformedTopic(t)) => assert_eq!(t, bad),
                other => panic!("{bad:?} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn expect_helpers_enforce_kind() {
        assert_eq!(
            Topic::expect_uplink("sensocial/uplink/p1"),
            Ok(DeviceId::new("p1"))
        );
        assert!(Topic::expect_uplink("sensocial/ack/p1").is_err());
        assert_eq!(
            Topic::expect_ack("sensocial/ack/p1"),
            Ok(DeviceId::new("p1"))
        );
        assert!(Topic::expect_ack("sensocial/uplink/p1").is_err());
    }

    #[test]
    fn into_string_matches_display() {
        let topic = Topic::Trigger(DeviceId::new("p9"));
        let s: String = (&topic).into();
        assert_eq!(s, topic.to_string());
    }

    #[test]
    fn interned_form_is_shared_and_matches_display() {
        let topic = Topic::Uplink(DeviceId::new("p1"));
        let a = topic.interned();
        let b = topic.interned();
        assert_eq!(a.as_str(), "sensocial/uplink/p1");
        assert!(a.ptr_eq(&b), "same topic must resolve to one allocation");
    }

    #[test]
    fn filter_form_matches_only_the_exact_topic() {
        let topic = Topic::Config(DeviceId::new("p1"));
        let f = topic.filter();
        assert!(f.matches("sensocial/config/p1"));
        assert!(!f.matches("sensocial/config/p2"));
    }
}
