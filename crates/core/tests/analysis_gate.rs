//! The static plan verifier gating every register/multicast path, end to
//! end: rejections carry typed diagnostics, privacy denials pause instead
//! of rejecting, normalized filters are what gets installed, and rogue
//! configuration pushes are negatively acked back to the server.

use sensocial::client::{ClientDeps, ClientManager, StreamStatus};
use sensocial::server::{MulticastSelector, ServerDeps, ServerManager, StreamSelector};
use sensocial::{
    Condition, ConditionLhs, ConfigCommand, DiagnosticCode, Filter, Granularity, Modality,
    Operator, StreamSink, StreamSpec, Topic,
};
use sensocial_broker::{Broker, BrokerClient, QoS};
use sensocial_energy::{BatteryMeter, CpuCosts, CpuMeter, EnergyProfile, MemoryProfiler};
use sensocial_net::Network;
use sensocial_runtime::{Scheduler, SimDuration, SimRng};
use sensocial_sensors::{DeviceEnvironment, SensorManager};
use sensocial_storage::StorageConfig;
use sensocial_types::geo::cities;
use sensocial_types::{DeviceId, StreamId, UserId};

struct Deployment {
    sched: Scheduler,
    net: Network,
    server: ServerManager,
}

fn deployment(seed: u64) -> Deployment {
    let mut sched = Scheduler::new();
    let net = Network::new(seed);
    let _broker = Broker::new(&net, "broker");
    let server_client = BrokerClient::new(&net, "server-ep", "broker", "server");
    let server = ServerManager::new(ServerDeps::new(
        StorageConfig::from_env().open(),
        server_client,
        SimRng::seed_from(seed ^ 0xA5),
    ));
    server.connect(&mut sched);
    Deployment { sched, net, server }
}

fn add_device(
    d: &mut Deployment,
    user: &str,
    device: &str,
    privacy: sensocial::PrivacyPolicyManager,
) -> ClientManager {
    let env = DeviceEnvironment::new(cities::paris());
    let sensors = SensorManager::new(env.clone(), SimRng::seed_from(7));
    let broker_client = BrokerClient::new(&d.net, format!("{device}-ep"), "broker", device);
    let manager = ClientManager::new(ClientDeps {
        user: UserId::new(user),
        device: DeviceId::new(device),
        sensors,
        classifiers: sensocial_classify::ClassifierRegistry::with_defaults(vec![
            cities::paris_place(),
        ]),
        privacy,
        broker: Some(broker_client),
        battery: BatteryMeter::new(),
        cpu: CpuMeter::new(),
        memory: MemoryProfiler::new(),
        energy_profile: EnergyProfile::default(),
        cpu_costs: CpuCosts::default(),
    });
    manager.connect(&mut d.sched);
    d.server
        .register_device(UserId::new(user), DeviceId::new(device));
    manager
}

fn spec_with(conditions: Vec<Condition>) -> StreamSpec {
    StreamSpec::continuous(Modality::Location, Granularity::Classified)
        .with_interval(SimDuration::from_secs(10))
        .with_filter(Filter::new(conditions))
        .with_sink(StreamSink::Server)
}

fn first_code(err: &sensocial::Error) -> DiagnosticCode {
    err.plan_diagnostics()
        .first()
        .unwrap_or_else(|| panic!("expected plan diagnostics, got {err}"))
        .code
}

#[test]
fn create_stream_rejects_each_static_error_class() {
    let mut d = deployment(1);
    let manager = add_device(
        &mut d,
        "alice",
        "alice-phone",
        sensocial::PrivacyPolicyManager::allow_all(),
    );

    // Type mismatch: HourOfDay compared against a string.
    let err = manager
        .create_stream(
            &mut d.sched,
            spec_with(vec![Condition::new(
                ConditionLhs::HourOfDay,
                Operator::GreaterThan,
                "walking",
            )]),
        )
        .expect_err("ill-typed plan must be rejected");
    assert_eq!(first_code(&err), DiagnosticCode::TypeMismatch);

    // Unsatisfiable: the classic Hour > 20 ∧ Hour < 5 contradiction.
    let err = manager
        .create_stream(
            &mut d.sched,
            spec_with(vec![
                Condition::new(ConditionLhs::HourOfDay, Operator::GreaterThan, 20),
                Condition::new(ConditionLhs::HourOfDay, Operator::LessThan, 5),
            ]),
        )
        .expect_err("unsatisfiable plan must be rejected");
    assert_eq!(first_code(&err), DiagnosticCode::Unsatisfiable);

    // Misplaced: a cross-user condition can never be evaluated on-device.
    let err = manager
        .create_stream(
            &mut d.sched,
            spec_with(vec![Condition::new(
                ConditionLhs::PhysicalActivity,
                Operator::Equals,
                "walking",
            )
            .about(UserId::new("bob"))]),
        )
        .expect_err("cross-user device plan must be rejected");
    assert_eq!(first_code(&err), DiagnosticCode::MisplacedCondition);

    // Nothing leaked into the stream table.
    assert!(manager.stream_ids().is_empty());
}

#[test]
fn privacy_denial_pauses_instead_of_rejecting() {
    // The paper's semantics: privacy violations are not plan errors — the
    // stream installs but stays paused until the policy is relaxed.
    let mut d = deployment(2);
    let manager = add_device(
        &mut d,
        "alice",
        "alice-phone",
        sensocial::PrivacyPolicyManager::deny_all(),
    );

    let stream = manager
        .create_stream(&mut d.sched, spec_with(Vec::new()))
        .expect("privacy-denied plan still installs");
    assert_eq!(
        manager.stream_status(stream),
        Some(StreamStatus::PausedByPrivacy)
    );
}

#[test]
fn normalized_filter_is_installed_and_never_eval_errors() {
    let mut d = deployment(3);
    let manager = add_device(
        &mut d,
        "alice",
        "alice-phone",
        sensocial::PrivacyPolicyManager::allow_all(),
    );

    // Hour > 8 implies Hour > 5: the verifier collapses the pair, and the
    // canonical plan is what the stream actually runs.
    let stream = manager
        .create_stream(
            &mut d.sched,
            spec_with(vec![
                Condition::new(ConditionLhs::HourOfDay, Operator::GreaterThan, 8),
                Condition::new(ConditionLhs::HourOfDay, Operator::GreaterThan, 5),
                Condition::new(ConditionLhs::PhysicalActivity, Operator::Equals, "walking"),
            ]),
        )
        .expect("sound plan");
    let installed = manager.stream_spec(stream).expect("spec is queryable");
    assert_eq!(
        installed.filter.conditions.len(),
        2,
        "{:?}",
        installed.filter
    );

    // An analyzer-vetted plan never hits a typed eval error at stream time.
    d.sched.run_for(SimDuration::from_mins(5));
    assert_eq!(
        manager
            .telemetry()
            .snapshot()
            .counter("client.filter_eval_errors"),
        0
    );
}

#[test]
fn set_filter_rejection_keeps_previous_filter() {
    let mut d = deployment(4);
    let manager = add_device(
        &mut d,
        "alice",
        "alice-phone",
        sensocial::PrivacyPolicyManager::allow_all(),
    );

    let good = vec![Condition::new(
        ConditionLhs::Place,
        Operator::Equals,
        "Paris",
    )];
    let stream = manager
        .create_stream(&mut d.sched, spec_with(good.clone()))
        .expect("sound plan");

    let err = manager
        .set_filter(
            &mut d.sched,
            stream,
            Filter::new(vec![
                Condition::new(ConditionLhs::HourOfDay, Operator::GreaterThan, 20),
                Condition::new(ConditionLhs::HourOfDay, Operator::LessThan, 5),
            ]),
        )
        .expect_err("unsatisfiable update must be rejected");
    assert_eq!(first_code(&err), DiagnosticCode::Unsatisfiable);

    let spec = manager.stream_spec(stream).expect("stream survives");
    assert_eq!(spec.filter, Filter::new(good));
}

#[test]
fn rogue_config_push_is_nacked_back_to_the_server() {
    // A configuration push that bypassed server-side verification (stale
    // controller, bug, hand-rolled tooling) is re-checked on-device and
    // negatively acked with the verifier's diagnostics.
    let mut d = deployment(5);
    let manager = add_device(
        &mut d,
        "alice",
        "alice-phone",
        sensocial::PrivacyPolicyManager::allow_all(),
    );
    d.sched.run_for(SimDuration::from_secs(2));

    let rogue = BrokerClient::new(&d.net, "rogue-ep", "broker", "rogue");
    rogue.connect(&mut d.sched);
    d.sched.run_for(SimDuration::from_secs(1));
    let device = DeviceId::new("alice-phone");
    let command = ConfigCommand::Create {
        device: device.clone(),
        stream: StreamId::new(5000),
        spec: spec_with(vec![
            Condition::new(ConditionLhs::HourOfDay, Operator::GreaterThan, 20),
            Condition::new(ConditionLhs::HourOfDay, Operator::LessThan, 5),
        ]),
        epoch: 1,
        token: None,
    };
    rogue.publish(
        &mut d.sched,
        Topic::Config(device.clone()),
        &command.to_wire(),
        QoS::AtLeastOnce,
        false,
    );
    d.sched.run_for(SimDuration::from_secs(5));

    // The device refused the plan and told the server why.
    assert!(!manager.stream_ids().contains(&StreamId::new(5000)));
    assert_eq!(
        manager
            .telemetry()
            .snapshot()
            .counter("client.configs_rejected"),
        1
    );
    assert_eq!(
        d.server
            .telemetry()
            .snapshot()
            .counter("server.config_rejections"),
        1
    );
    let rejections = d.server.config_rejections();
    assert_eq!(rejections.len(), 1);
    let ack = &rejections[0];
    assert!(!ack.accepted);
    assert_eq!(ack.device, device);
    assert_eq!(ack.stream, StreamId::new(5000));
    assert_eq!(ack.epoch, 1);
    assert_eq!(ack.diagnostics[0].code, DiagnosticCode::Unsatisfiable);
    // The nack travels on the device's ack topic, which the server holds a
    // wildcard subscription for.
    assert!(Topic::Ack(device).to_string().starts_with("sensocial/ack/"));
}

#[test]
fn cyclic_multicast_dependency_is_rejected_at_admission() {
    let mut d = deployment(6);
    let alice = UserId::new("alice");
    let bob = UserId::new("bob");
    add_device(
        &mut d,
        "alice",
        "alice-phone",
        sensocial::PrivacyPolicyManager::allow_all(),
    );
    add_device(
        &mut d,
        "bob",
        "bob-phone",
        sensocial::PrivacyPolicyManager::allow_all(),
    );
    d.server.record_friendship(&alice, &bob);

    // Multicast 1: bob (alice's friend) samples location gated on *alice's*
    // activity — bob's plan depends on alice.
    let template = spec_with(vec![Condition::new(
        ConditionLhs::PhysicalActivity,
        Operator::Equals,
        "walking",
    )
    .about(alice.clone())]);
    d.server
        .create_multicast(
            &mut d.sched,
            MulticastSelector::FriendsOf(alice.clone()),
            template,
        )
        .expect("first multicast is acyclic");

    // Multicast 2 would make alice depend on bob, closing the cycle.
    let template = spec_with(vec![Condition::new(
        ConditionLhs::PhysicalActivity,
        Operator::Equals,
        "walking",
    )
    .about(bob.clone())]);
    let err = d
        .server
        .create_multicast(&mut d.sched, MulticastSelector::FriendsOf(bob), template)
        .expect_err("cycle must be rejected");
    assert_eq!(first_code(&err), DiagnosticCode::DependencyCycle);
}

#[test]
fn server_subscription_plans_are_verified() {
    let d = deployment(7);
    let err = d
        .server
        .register_listener(
            StreamSelector::AllUplinks,
            Filter::new(vec![Condition::new(
                ConditionLhs::HourOfDay,
                Operator::GreaterThan,
                "noon",
            )]),
            |_s, _e| {},
        )
        .expect_err("ill-typed subscription filter must be rejected");
    assert_eq!(first_code(&err), DiagnosticCode::TypeMismatch);
}
