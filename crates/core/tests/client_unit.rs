//! Focused client-manager tests on a local-only deployment (no broker,
//! no server) — the configuration the paper's stub application uses for
//! on-device measurements.

use std::sync::{Arc, Mutex};

use sensocial::client::{ClientDeps, ClientManager, StreamOrigin, StreamStatus};
use sensocial::{
    Condition, ConditionLhs, Filter, Granularity, Modality, Operator, StreamMode, StreamSink,
    StreamSpec,
};
use sensocial_classify::ClassifierRegistry;
use sensocial_energy::{BatteryMeter, CpuCosts, CpuMeter, EnergyProfile, MemoryProfiler};
use sensocial_runtime::{Scheduler, SimDuration, SimRng};
use sensocial_sensors::{DeviceEnvironment, SensorManager};
use sensocial_types::geo::cities;
use sensocial_types::{ContextData, PhysicalActivity};

fn manager_with(classifiers: ClassifierRegistry) -> (Scheduler, ClientManager, DeviceEnvironment) {
    let sched = Scheduler::new();
    let env = DeviceEnvironment::new(cities::paris());
    let sensors = SensorManager::new(env.clone(), SimRng::seed_from(5));
    let deps = ClientDeps {
        classifiers,
        ..ClientDeps::local_only("u", "u-phone", sensors, vec![cities::paris_place()])
    };
    (sched, ClientManager::new(deps), env)
}

fn fixture() -> (Scheduler, ClientManager, DeviceEnvironment) {
    manager_with(ClassifierRegistry::with_defaults(vec![cities::paris_place()]))
}

type Seen = Arc<Mutex<Vec<ContextData>>>;

fn listen(manager: &ClientManager, stream: sensocial::StreamId) -> Seen {
    let seen: Seen = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    manager.register_listener(stream, move |_s, e| sink.lock().unwrap().push(e.data.clone()));
    seen
}

#[test]
fn classified_stream_without_classifier_falls_back_to_raw() {
    // An empty registry: classification is requested but impossible.
    let (mut sched, manager, _env) = manager_with(ClassifierRegistry::new());
    let stream = manager
        .create_stream(
            &mut sched,
            StreamSpec::continuous(Modality::Microphone, Granularity::Classified)
                .with_interval(SimDuration::from_secs(10)),
        )
        .unwrap();
    let seen = listen(&manager, stream);
    sched.run_for(SimDuration::from_secs(25));
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 2);
    assert!(
        matches!(seen[0], ContextData::Raw(_)),
        "no classifier → raw delivery, not silence"
    );
}

#[test]
fn multiple_listeners_each_receive_every_event() {
    let (mut sched, manager, _env) = fixture();
    let stream = manager
        .create_stream(
            &mut sched,
            StreamSpec::continuous(Modality::Wifi, Granularity::Raw)
                .with_interval(SimDuration::from_secs(10)),
        )
        .unwrap();
    let a = listen(&manager, stream);
    let b = listen(&manager, stream);
    sched.run_for(SimDuration::from_secs(35));
    assert_eq!(a.lock().unwrap().len(), 3);
    assert_eq!(b.lock().unwrap().len(), 3);
}

#[test]
fn destroy_stops_sampling_and_forgets_stream() {
    let (mut sched, manager, _env) = fixture();
    let stream = manager
        .create_stream(
            &mut sched,
            StreamSpec::continuous(Modality::Bluetooth, Granularity::Raw)
                .with_interval(SimDuration::from_secs(10)),
        )
        .unwrap();
    let seen = listen(&manager, stream);
    sched.run_for(SimDuration::from_secs(15));
    assert!(manager.destroy_stream(stream));
    assert!(!manager.destroy_stream(stream), "second destroy is a no-op");
    assert_eq!(manager.stream_status(stream), None);
    let settled = seen.lock().unwrap().len();
    sched.run_for(SimDuration::from_mins(5));
    assert_eq!(seen.lock().unwrap().len(), settled);
    assert!(manager.stream_ids().is_empty());
}

#[test]
fn set_interval_validates_and_applies() {
    let (mut sched, manager, _env) = fixture();
    let stream = manager
        .create_stream(
            &mut sched,
            StreamSpec::continuous(Modality::Wifi, Granularity::Raw)
                .with_interval(SimDuration::from_secs(60)),
        )
        .unwrap();
    assert!(manager
        .set_interval(&mut sched, stream, SimDuration::ZERO)
        .is_err());
    assert!(manager
        .set_interval(&mut sched, sensocial::StreamId::new(999), SimDuration::from_secs(5))
        .is_err());
    manager
        .set_interval(&mut sched, stream, SimDuration::from_secs(5))
        .unwrap();
    assert_eq!(
        manager.stream_spec(stream).unwrap().interval,
        SimDuration::from_secs(5)
    );
    let seen = listen(&manager, stream);
    sched.run_for(SimDuration::from_secs(26));
    assert_eq!(seen.lock().unwrap().len(), 5);
}

#[test]
fn set_filter_switches_stream_to_event_mode() {
    let (mut sched, manager, _env) = fixture();
    let stream = manager
        .create_stream(
            &mut sched,
            StreamSpec::continuous(Modality::Wifi, Granularity::Raw)
                .with_interval(SimDuration::from_secs(10)),
        )
        .unwrap();
    let seen = listen(&manager, stream);
    sched.run_for(SimDuration::from_secs(25));
    assert_eq!(seen.lock().unwrap().len(), 2, "continuous before the filter");

    // An OSN-activity filter converts the stream to social-event mode: no
    // more duty-cycle samples (and no triggers in this local-only world).
    manager
        .set_filter(
            &mut sched,
            stream,
            Filter::new(vec![Condition::new(
                ConditionLhs::OsnActivity,
                Operator::Equals,
                "active",
            )]),
        )
        .unwrap();
    let spec = manager.stream_spec(stream).unwrap();
    assert_eq!(spec.mode, StreamMode::Continuous);
    assert_eq!(spec.effective_mode(), StreamMode::SocialEventBased);
    sched.run_for(SimDuration::from_mins(5));
    assert_eq!(seen.lock().unwrap().len(), 2, "no samples in event mode");
}

#[test]
fn conditional_modalities_charge_classification_energy() {
    let (mut sched, manager, env) = fixture();
    env.set_activity(PhysicalActivity::Still);
    manager
        .create_stream(
            &mut sched,
            StreamSpec::continuous(Modality::Location, Granularity::Raw)
                .with_interval(SimDuration::from_secs(60))
                .with_filter(Filter::new(vec![Condition::new(
                    ConditionLhs::PhysicalActivity,
                    Operator::Equals,
                    "walking",
                )])),
        )
        .unwrap();
    sched.run_for(SimDuration::from_mins(5));
    let breakdown = manager.battery().breakdown();
    // The conditional accelerometer stream is sampled *and classified*
    // even though the GPS stream itself never passes the filter.
    assert!(
        breakdown.component_uah(sensocial_energy::EnergyComponent::Sampling(
            Modality::Accelerometer
        )) > 0.0
    );
    assert!(
        breakdown.component_uah(sensocial_energy::EnergyComponent::Classification(
            Modality::Accelerometer
        )) > 0.0
    );
    // And the context snapshot knows the activity.
    assert_eq!(
        manager.context_snapshot().activity(),
        Some(PhysicalActivity::Still)
    );
}

#[test]
fn gated_streams_skip_expensive_sampling_until_conditions_hold() {
    // Paper §4: "the stream's required modality is sampled only when the
    // conditions are satisfied" — GPS is not touched while the user is
    // still.
    let (mut sched, manager, env) = fixture();
    env.set_activity(PhysicalActivity::Still);
    let stream = manager
        .create_stream(
            &mut sched,
            StreamSpec::continuous(Modality::Location, Granularity::Raw)
                .with_interval(SimDuration::from_secs(60))
                .with_filter(Filter::new(vec![Condition::new(
                    ConditionLhs::PhysicalActivity,
                    Operator::Equals,
                    "walking",
                )])),
        )
        .unwrap();
    let seen = listen(&manager, stream);

    sched.run_for(SimDuration::from_mins(10));
    let breakdown = manager.battery().breakdown();
    assert_eq!(
        breakdown.component_uah(sensocial_energy::EnergyComponent::Sampling(
            Modality::Location
        )),
        0.0,
        "GPS never sampled while still"
    );
    assert!(seen.lock().unwrap().is_empty());

    env.set_activity(PhysicalActivity::Walking);
    sched.run_for(SimDuration::from_mins(10));
    assert!(
        breakdown.component_uah(sensocial_energy::EnergyComponent::Sampling(
            Modality::Location
        )) == 0.0,
        "snapshot taken before walking is unchanged"
    );
    let breakdown = manager.battery().breakdown();
    assert!(
        breakdown.component_uah(sensocial_energy::EnergyComponent::Sampling(
            Modality::Location
        )) > 0.0,
        "GPS sampled once walking"
    );
    assert!(!seen.lock().unwrap().is_empty());
}

#[test]
fn own_modality_conditions_do_not_gate_sampling() {
    // A location stream filtered on Place must still sample location (the
    // condition is unevaluable without the fix).
    let (mut sched, manager, _env) = fixture();
    manager
        .create_stream(
            &mut sched,
            StreamSpec::continuous(Modality::Location, Granularity::Classified)
                .with_interval(SimDuration::from_secs(60))
                .with_filter(Filter::new(vec![Condition::new(
                    ConditionLhs::Place,
                    Operator::Equals,
                    "Paris",
                )])),
        )
        .unwrap();
    sched.run_for(SimDuration::from_mins(5));
    let breakdown = manager.battery().breakdown();
    assert!(
        breakdown.component_uah(sensocial_energy::EnergyComponent::Sampling(
            Modality::Location
        )) > 0.0
    );
}

#[test]
fn local_streams_do_not_touch_the_network() {
    let (mut sched, manager, _env) = fixture();
    let stream = manager
        .create_stream(
            &mut sched,
            StreamSpec::continuous(Modality::Microphone, Granularity::Classified)
                .with_interval(SimDuration::from_secs(30))
                .with_sink(StreamSink::Server), // requested, but no broker
        )
        .unwrap();
    let seen = listen(&manager, stream);
    sched.run_for(SimDuration::from_mins(2));
    assert_eq!(seen.lock().unwrap().len(), 4, "local delivery still works");
    let breakdown = manager.battery().breakdown();
    assert_eq!(
        breakdown.component_uah(sensocial_energy::EnergyComponent::Transmission),
        0.0,
        "no broker → nothing transmitted"
    );
}

#[test]
fn deps_struct_wiring_is_respected() {
    let sched = Scheduler::new();
    let env = DeviceEnvironment::new(cities::paris());
    let sensors = SensorManager::new(env, SimRng::seed_from(9));
    let battery = BatteryMeter::new();
    let cpu = CpuMeter::new();
    let memory = MemoryProfiler::new();
    let manager = ClientManager::new(ClientDeps {
        user: "zoe".into(),
        device: "zoe-phone".into(),
        sensors,
        classifiers: ClassifierRegistry::with_defaults(vec![]),
        privacy: sensocial::PrivacyPolicyManager::allow_all(),
        broker: None,
        battery: battery.clone(),
        cpu: cpu.clone(),
        memory: memory.clone(),
        energy_profile: EnergyProfile::default(),
        cpu_costs: CpuCosts::default(),
    });
    drop(sched);
    assert_eq!(manager.user_id().as_str(), "zoe");
    assert_eq!(manager.device_id().as_str(), "zoe-phone");
    // Construction registered the manager's memory footprint.
    assert!(memory.snapshot().total_objects() > 1_000);
}

#[test]
fn stream_accessors_report_state() {
    let (mut sched, manager, _env) = fixture();
    let spec = StreamSpec::social_event_based(Modality::Accelerometer, Granularity::Classified);
    let stream = manager.create_stream(&mut sched, spec.clone()).unwrap();
    assert_eq!(manager.stream_origin(stream), Some(StreamOrigin::Local));
    assert_eq!(manager.stream_status(stream), Some(StreamStatus::Active));
    assert_eq!(manager.stream_spec(stream), Some(spec));
    assert_eq!(manager.stream_ids(), vec![stream]);
}
