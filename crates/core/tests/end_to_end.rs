//! End-to-end middleware tests: client + broker + server + OSN plug-ins
//! over the simulated network.

use std::sync::{Arc, Mutex};

use sensocial::client::{ClientDeps, ClientManager, StreamOrigin, StreamStatus};
use sensocial::server::{MulticastSelector, ServerDeps, ServerManager, StreamSelector};
use sensocial::{
    Condition, ConditionLhs, Filter, Granularity, Modality, Operator, StreamEvent, StreamSink,
    StreamSpec,
};
use sensocial_broker::{Broker, BrokerClient};
use sensocial_energy::{BatteryMeter, CpuCosts, CpuMeter, EnergyProfile, MemoryProfiler};
use sensocial_net::{LatencyModel, LinkSpec, Network};
use sensocial_osn::{OsnPlatform, PushPlugin};
use sensocial_runtime::{Scheduler, SimDuration, SimRng};
use sensocial_sensors::{DeviceEnvironment, SensorManager};
use sensocial_storage::StorageConfig;
use sensocial_types::geo::cities;
use sensocial_types::{DeviceId, GeoFence, PhysicalActivity, UserId};

/// A complete deployment: network, broker, server, OSN platform + plug-in.
struct Deployment {
    sched: Scheduler,
    net: Network,
    server: ServerManager,
    platform: OsnPlatform,
    plugin: PushPlugin,
}

fn deployment(seed: u64) -> Deployment {
    let mut sched = Scheduler::new();
    let net = Network::new(seed);
    net.set_default_link(LinkSpec::with_latency(LatencyModel::constant_ms(40)));
    let _broker = Broker::new(&net, "broker");
    let server_client = BrokerClient::new(&net, "server-ep", "broker", "server");
    let server = ServerManager::new(ServerDeps::new(
        StorageConfig::from_env().open(),
        server_client,
        SimRng::seed_from(seed ^ 0xA5),
    ));
    server.connect(&mut sched);

    let platform = OsnPlatform::new(SimRng::seed_from(seed ^ 0x5A));
    let plugin = PushPlugin::new(&platform);
    server.connect_push_plugin(&plugin);

    Deployment {
        sched,
        net,
        server,
        platform,
        plugin,
    }
}

struct Device {
    manager: ClientManager,
    env: DeviceEnvironment,
}

fn add_device(
    d: &mut Deployment,
    user: &str,
    device: &str,
    at: sensocial_types::GeoPoint,
) -> Device {
    let env = DeviceEnvironment::new(at);
    let sensors = SensorManager::new(env.clone(), SimRng::seed_from(hash(device)));
    let broker_client = BrokerClient::new(&d.net, format!("{device}-ep"), "broker", device);
    let deps = ClientDeps {
        user: UserId::new(user),
        device: DeviceId::new(device),
        sensors,
        classifiers: sensocial_classify::ClassifierRegistry::with_defaults(vec![
            cities::paris_place(),
            cities::bordeaux_place(),
        ]),
        privacy: sensocial::PrivacyPolicyManager::allow_all(),
        broker: Some(broker_client),
        battery: BatteryMeter::new(),
        cpu: CpuMeter::new(),
        memory: MemoryProfiler::new(),
        energy_profile: EnergyProfile::default(),
        cpu_costs: CpuCosts::default(),
    };
    let manager = ClientManager::new(deps);
    manager.connect(&mut d.sched);
    d.server
        .register_device(UserId::new(user), DeviceId::new(device));
    d.platform.register_user(UserId::new(user));
    d.plugin.authorize(&UserId::new(user));
    Device { manager, env }
}

fn hash(s: &str) -> u64 {
    s.bytes().fold(1469598103934665603u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(1099511628211)
    })
}

type Events = Arc<Mutex<Vec<StreamEvent>>>;

fn collector() -> (
    Events,
    impl Fn(&mut Scheduler, &StreamEvent) + Send + Sync + 'static,
) {
    let events: Events = Arc::new(Mutex::new(Vec::new()));
    let sink = events.clone();
    (events, move |_s: &mut Scheduler, e: &StreamEvent| {
        sink.lock().unwrap().push(e.clone());
    })
}

#[test]
fn osn_action_triggers_coupled_sensing() {
    let mut d = deployment(1);
    let device = add_device(&mut d, "alice", "alice-phone", cities::paris());
    device.env.set_activity(PhysicalActivity::Walking);

    // A social-event-based classified activity stream, uplinked.
    let spec = StreamSpec::social_event_based(Modality::Accelerometer, Granularity::Classified)
        .with_sink(StreamSink::Server);
    let stream = device.manager.create_stream(&mut d.sched, spec).unwrap();

    let (local_events, local_cb) = collector();
    device.manager.register_listener(stream, local_cb);

    let (server_events, server_cb) = collector();
    d.server
        .register_listener(StreamSelector::AllUplinks, Filter::pass_all(), server_cb)
        .unwrap();

    d.sched.run_for(SimDuration::from_secs(5));
    d.platform
        .post(&mut d.sched, &UserId::new("alice"), "out for a walk!");
    d.sched.run_for(SimDuration::from_mins(3));

    let local = local_events.lock().unwrap();
    assert_eq!(local.len(), 1, "one action → one coupled sample");
    let event = &local[0];
    assert_eq!(event.stream, stream);
    let action = event.osn_action.as_ref().expect("coupled action");
    assert_eq!(action.content, "out for a walk!");
    assert_eq!(
        event.data,
        sensocial::ContextData::Classified(sensocial_types::ClassifiedContext::Activity(
            PhysicalActivity::Walking
        ))
    );
    // The event also reached the server listener.
    assert_eq!(server_events.lock().unwrap().len(), 1);
    let snap = d.server.telemetry().snapshot();
    assert_eq!(snap.counter("server.osn_actions"), 1);
    assert_eq!(snap.counter("server.triggers_sent"), 1);
    assert_eq!(snap.counter("server.uplink_events"), 1);
}

#[test]
fn trigger_delay_decomposes_like_table3() {
    let mut d = deployment(2);
    let device = add_device(&mut d, "alice", "alice-phone", cities::paris());
    let spec = StreamSpec::social_event_based(Modality::Microphone, Granularity::Classified)
        .with_sink(StreamSink::Server);
    let stream = device.manager.create_stream(&mut d.sched, spec).unwrap();
    let (events, cb) = collector();
    device.manager.register_listener(stream, cb);

    let post_at = SimDuration::from_secs(10);
    d.sched.run_for(post_at);
    d.platform.post(&mut d.sched, &UserId::new("alice"), "hi");
    d.sched.run_for(SimDuration::from_mins(5));

    // OSN → server delay ≈ 46.5 s.
    let log = d.server.action_log();
    assert_eq!(log.len(), 1);
    let osn_to_server = (log[0].1 - log[0].0).as_secs_f64();
    assert!((38.0..=56.0).contains(&osn_to_server), "{osn_to_server}");

    // OSN → mobile sensing ≈ +9 s more.
    let events = events.lock().unwrap();
    assert_eq!(events.len(), 1);
    let osn_to_mobile = (events[0].at - log[0].0).as_secs_f64();
    assert!(
        osn_to_mobile > osn_to_server + 5.0,
        "{osn_to_mobile} vs {osn_to_server}"
    );
    assert!(
        osn_to_mobile < osn_to_server + 15.0,
        "{osn_to_mobile} vs {osn_to_server}"
    );
}

#[test]
fn rapid_actions_share_one_sampling_cycle() {
    // Paper §7: "In case a user will perform more than one OSN action
    // between two sampling cycles, the contextual data that were previously
    // sampled will be mapped to these OSN actions."
    let mut d = deployment(3);
    let device = add_device(&mut d, "alice", "alice-phone", cities::paris());
    let spec = StreamSpec::social_event_based(Modality::Accelerometer, Granularity::Raw);
    let stream = device.manager.create_stream(&mut d.sched, spec).unwrap();
    let (events, cb) = collector();
    device.manager.register_listener(stream, cb);

    // Two posts 5 s apart; triggers land ~46 s later, still < 60 s apart.
    d.sched.run_for(SimDuration::from_secs(5));
    d.platform
        .post(&mut d.sched, &UserId::new("alice"), "first");
    d.sched.run_for(SimDuration::from_secs(5));
    d.platform
        .post(&mut d.sched, &UserId::new("alice"), "second");
    d.sched.run_for(SimDuration::from_mins(5));

    let events = events.lock().unwrap();
    assert_eq!(events.len(), 2, "both actions delivered");
    let contents: Vec<_> = events
        .iter()
        .map(|e| e.osn_action.as_ref().unwrap().content.clone())
        .collect();
    assert!(contents.contains(&"first".to_owned()));
    assert!(contents.contains(&"second".to_owned()));
    // Same context snapshot mapped to both actions.
    assert_eq!(events[0].data, events[1].data);
    assert_eq!(
        events[0].at, events[1].at,
        "second action reused the sample"
    );
}

#[test]
fn remote_stream_lifecycle() {
    let mut d = deployment(4);
    let device = add_device(&mut d, "carol", "carol-phone", cities::bordeaux());
    d.sched.run_for(SimDuration::from_secs(1));

    // The server creates a continuous classified location stream remotely.
    let spec = StreamSpec::continuous(Modality::Location, Granularity::Classified)
        .with_interval(SimDuration::from_secs(30));
    let stream = d
        .server
        .create_remote_stream(&mut d.sched, &DeviceId::new("carol-phone"), spec)
        .unwrap();

    let (server_events, cb) = collector();
    d.server
        .register_listener(StreamSelector::Stream(stream), Filter::pass_all(), cb)
        .unwrap();

    d.sched.run_for(SimDuration::from_mins(3));
    let count = server_events.lock().unwrap().len();
    assert!((4..=7).contains(&count), "expected ~6 cycles, got {count}");
    assert_eq!(
        device.manager.stream_origin(stream),
        Some(StreamOrigin::Remote)
    );

    // Destroying the stream stops the flow.
    d.server
        .destroy_remote_stream(&mut d.sched, stream)
        .unwrap();
    d.sched.run_for(SimDuration::from_secs(2));
    let settled = server_events.lock().unwrap().len();
    d.sched.run_for(SimDuration::from_mins(3));
    assert_eq!(server_events.lock().unwrap().len(), settled);
    assert_eq!(device.manager.stream_status(stream), None);
}

#[test]
fn remote_interval_reconfiguration() {
    let mut d = deployment(5);
    let _device = add_device(&mut d, "carol", "carol-phone", cities::bordeaux());
    d.sched.run_for(SimDuration::from_secs(1));
    let spec = StreamSpec::continuous(Modality::Wifi, Granularity::Raw)
        .with_interval(SimDuration::from_secs(60));
    let stream = d
        .server
        .create_remote_stream(&mut d.sched, &DeviceId::new("carol-phone"), spec)
        .unwrap();
    let (events, cb) = collector();
    d.server
        .register_listener(StreamSelector::Stream(stream), Filter::pass_all(), cb)
        .unwrap();

    d.sched.run_for(SimDuration::from_mins(2));
    let slow = events.lock().unwrap().len();
    d.server
        .set_remote_interval(&mut d.sched, stream, SimDuration::from_secs(10))
        .unwrap();
    d.sched.run_for(SimDuration::from_mins(2));
    let fast = events.lock().unwrap().len() - slow;
    assert!(
        fast >= slow * 3,
        "tighter duty cycle should multiply events: {slow} then {fast}"
    );
}

#[test]
fn privacy_pauses_and_resumes_streams() {
    let mut d = deployment(6);
    let device = add_device(&mut d, "alice", "alice-phone", cities::paris());
    let spec = StreamSpec::continuous(Modality::Microphone, Granularity::Raw)
        .with_interval(SimDuration::from_secs(10));
    let stream = device.manager.create_stream(&mut d.sched, spec).unwrap();
    let (events, cb) = collector();
    device.manager.register_listener(stream, cb);

    d.sched.run_for(SimDuration::from_secs(35));
    assert_eq!(events.lock().unwrap().len(), 3);
    assert_eq!(
        device.manager.stream_status(stream),
        Some(StreamStatus::Active)
    );

    // Deny raw microphone: the stream pauses automatically.
    device.manager.set_privacy_policy(
        &mut d.sched,
        sensocial::PrivacyPolicy {
            modality: Modality::Microphone,
            granularity: Granularity::Raw,
            allow: false,
        },
    );
    assert_eq!(
        device.manager.stream_status(stream),
        Some(StreamStatus::PausedByPrivacy)
    );
    d.sched.run_for(SimDuration::from_mins(2));
    assert_eq!(events.lock().unwrap().len(), 3, "no samples while paused");

    // Re-allow: the stream resumes.
    device.manager.set_privacy_policy(
        &mut d.sched,
        sensocial::PrivacyPolicy {
            modality: Modality::Microphone,
            granularity: Granularity::Raw,
            allow: true,
        },
    );
    assert_eq!(
        device.manager.stream_status(stream),
        Some(StreamStatus::Active)
    );
    d.sched.run_for(SimDuration::from_secs(35));
    assert_eq!(events.lock().unwrap().len(), 6);
}

#[test]
fn cross_user_filter_on_server() {
    // "One can create a filter that sends user's GPS data only when
    // another user is walking" (paper §3.1).
    let mut d = deployment(7);
    let alice = add_device(&mut d, "alice", "alice-phone", cities::paris());
    let bob = add_device(&mut d, "bob", "bob-phone", cities::paris());
    bob.env.set_activity(PhysicalActivity::Still);

    // Bob's activity must reach the server for the condition to be
    // evaluable: a classified activity uplink stream.
    let bob_stream = StreamSpec::continuous(Modality::Accelerometer, Granularity::Classified)
        .with_interval(SimDuration::from_secs(20))
        .with_sink(StreamSink::Server);
    bob.manager.create_stream(&mut d.sched, bob_stream).unwrap();

    // Alice's GPS uplink stream.
    let alice_stream = StreamSpec::continuous(Modality::Location, Granularity::Raw)
        .with_interval(SimDuration::from_secs(20))
        .with_sink(StreamSink::Server);
    let alice_id = alice
        .manager
        .create_stream(&mut d.sched, alice_stream)
        .unwrap();

    // Server subscription: alice's stream, gated on bob walking.
    let gate = Filter::new(vec![Condition::new(
        ConditionLhs::PhysicalActivity,
        Operator::Equals,
        "walking",
    )
    .about(UserId::new("bob"))]);
    let (events, cb) = collector();
    d.server
        .register_listener(StreamSelector::Stream(alice_id), gate, cb)
        .unwrap();

    d.sched.run_for(SimDuration::from_mins(3));
    assert!(
        events.lock().unwrap().is_empty(),
        "bob still → nothing delivered"
    );

    bob.env.set_activity(PhysicalActivity::Walking);
    d.sched.run_for(SimDuration::from_mins(3));
    assert!(
        !events.lock().unwrap().is_empty(),
        "bob walking → alice's GPS flows"
    );
}

#[test]
fn multicast_selects_by_geography_and_refreshes_on_movement() {
    let mut d = deployment(8);
    let _a = add_device(&mut d, "a", "a-phone", cities::paris());
    let _b = add_device(&mut d, "b", "b-phone", cities::paris());
    let c = add_device(&mut d, "c", "c-phone", cities::bordeaux());
    for (user, at) in [
        ("a", cities::paris()),
        ("b", cities::paris()),
        ("c", cities::bordeaux()),
    ] {
        d.server.seed_location(&UserId::new(user), at);
    }
    d.sched.run_for(SimDuration::from_secs(1));

    let paris_fence = GeoFence::new(cities::paris(), 20_000.0);
    let template = StreamSpec::continuous(Modality::Location, Granularity::Raw)
        .with_interval(SimDuration::from_secs(30));
    let multicast = d
        .server
        .create_multicast(
            &mut d.sched,
            MulticastSelector::WithinFence(paris_fence),
            template,
        )
        .unwrap();
    assert_eq!(
        d.server.multicast_members(multicast),
        vec![UserId::new("a"), UserId::new("b")]
    );

    let (events, cb) = collector();
    d.server.register_multicast_listener(multicast, cb);
    d.sched.run_for(SimDuration::from_mins(2));
    let users: std::collections::BTreeSet<String> = events
        .lock()
        .unwrap()
        .iter()
        .map(|e| e.user.as_str().to_owned())
        .collect();
    assert_eq!(users.len(), 2, "streams from both Paris users: {users:?}");

    // C moves to Paris; refresh picks them up.
    c.env.set_position(cities::paris());
    d.server.seed_location(&UserId::new("c"), cities::paris());
    d.server.refresh_multicast(&mut d.sched, multicast);
    assert_eq!(d.server.multicast_members(multicast).len(), 3);

    d.sched.run_for(SimDuration::from_mins(2));
    let users: std::collections::BTreeSet<String> = events
        .lock()
        .unwrap()
        .iter()
        .map(|e| e.user.as_str().to_owned())
        .collect();
    assert!(users.contains("c"), "joiner contributes: {users:?}");
}

#[test]
fn multicast_friends_of_and_filter_distribution() {
    let mut d = deployment(9);
    let _a = add_device(&mut d, "a", "a-phone", cities::paris());
    let c = add_device(&mut d, "c", "c-phone", cities::bordeaux());
    let _e = add_device(&mut d, "e", "e-phone", cities::bordeaux());
    d.server
        .record_friendship(&UserId::new("a"), &UserId::new("c"));
    d.sched.run_for(SimDuration::from_secs(1));

    let template = StreamSpec::continuous(Modality::Location, Granularity::Classified)
        .with_interval(SimDuration::from_secs(30));
    let multicast = d
        .server
        .create_multicast(
            &mut d.sched,
            MulticastSelector::FriendsOf(UserId::new("a")),
            template,
        )
        .unwrap();
    assert_eq!(
        d.server.multicast_members(multicast),
        vec![UserId::new("c")]
    );

    // Distribute a "only when in Paris" filter to all members.
    d.server
        .set_multicast_filter(
            &mut d.sched,
            multicast,
            Filter::new(vec![Condition::new(
                ConditionLhs::Place,
                Operator::Equals,
                "Paris",
            )]),
        )
        .unwrap();
    let (events, cb) = collector();
    d.server.register_multicast_listener(multicast, cb);

    d.sched.run_for(SimDuration::from_mins(3));
    assert!(
        events.lock().unwrap().is_empty(),
        "c is in Bordeaux: filtered out"
    );

    c.env.set_position(cities::paris());
    d.sched.run_for(SimDuration::from_mins(3));
    assert!(
        !events.lock().unwrap().is_empty(),
        "c arrived in Paris: flows"
    );
}

#[test]
fn aggregator_multiplexes_streams() {
    let mut d = deployment(10);
    let alice = add_device(&mut d, "alice", "alice-phone", cities::paris());
    let bob = add_device(&mut d, "bob", "bob-phone", cities::bordeaux());

    let mk = |mgr: &ClientManager, sched: &mut Scheduler, modality| {
        mgr.create_stream(
            sched,
            StreamSpec::continuous(modality, Granularity::Classified)
                .with_interval(SimDuration::from_secs(25))
                .with_sink(StreamSink::Server),
        )
        .unwrap()
    };
    let s1 = mk(&alice.manager, &mut d.sched, Modality::Accelerometer);
    let s2 = mk(&bob.manager, &mut d.sched, Modality::Microphone);

    let agg = d.server.create_aggregator([s1, s2]);
    let (events, cb) = collector();
    d.server.register_aggregator_listener(agg, cb);

    d.sched.run_for(SimDuration::from_mins(2));
    let events = events.lock().unwrap();
    assert!(
        events.len() >= 6,
        "joined flow from both devices: {}",
        events.len()
    );
    let users: std::collections::BTreeSet<&str> = events.iter().map(|e| e.user.as_str()).collect();
    assert_eq!(users.len(), 2, "both sources present in the joined stream");
}

#[test]
fn uplink_updates_server_context_and_location_table() {
    let mut d = deployment(11);
    let device = add_device(&mut d, "alice", "alice-phone", cities::paris());
    let spec = StreamSpec::continuous(Modality::Location, Granularity::Raw)
        .with_interval(SimDuration::from_secs(20))
        .with_sink(StreamSink::Server);
    device.manager.create_stream(&mut d.sched, spec).unwrap();
    d.sched.run_for(SimDuration::from_mins(2));

    let ctx = d.server.user_context(&UserId::new("alice")).unwrap();
    let pos = ctx.position().expect("server learned alice's position");
    assert!(pos.distance_m(cities::paris()) < 100.0);

    // The locations collection is queryable geospatially.
    let nearby = d
        .server
        .db()
        .collection("locations")
        .find(&sensocial_store::Query::near(
            "loc",
            cities::paris(),
            1_000.0,
        ));
    assert_eq!(nearby.len(), 1);
    assert_eq!(nearby[0].body["user"], "alice");
}

#[test]
fn disconnected_device_receives_queued_trigger_on_reconnect() {
    let mut d = deployment(12);
    let device = add_device(&mut d, "alice", "alice-phone", cities::paris());
    let spec = StreamSpec::social_event_based(Modality::Wifi, Granularity::Raw)
        .with_sink(StreamSink::Server);
    let stream = device.manager.create_stream(&mut d.sched, spec).unwrap();
    let (events, cb) = collector();
    device.manager.register_listener(stream, cb);
    d.sched.run_for(SimDuration::from_secs(2));

    // The phone loses its broker connection (e.g. network outage).
    let broker_client = BrokerClient::new(&d.net, "alice-phone-ep2", "broker", "alice-phone");
    let _ = broker_client; // (documentation: sessions are per client id)
                           // Simulate by disconnecting the session directly through a throwaway
                           // client handle sharing the same id is not possible; instead we cut the
                           // downlink entirely while the action is processed.
    d.net.set_link(
        "broker".into(),
        "alice-phone-ep".into(),
        LinkSpec::with_latency(LatencyModel::constant_ms(40)).lossy(1.0),
    );
    d.platform
        .post(&mut d.sched, &UserId::new("alice"), "missed?");
    d.sched.run_for(SimDuration::from_secs(70));
    assert!(
        events.lock().unwrap().is_empty(),
        "blackout: nothing arrives"
    );

    // Link restored: QoS-1 retries deliver the trigger.
    d.net.set_link(
        "broker".into(),
        "alice-phone-ep".into(),
        LinkSpec::with_latency(LatencyModel::constant_ms(40)),
    );
    d.sched.run_for(SimDuration::from_mins(2));
    assert_eq!(
        events.lock().unwrap().len(),
        1,
        "trigger recovered by retries"
    );
}
