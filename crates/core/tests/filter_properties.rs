//! Property-based tests for the filter algebra.

use proptest::prelude::*;
use sensocial::{Condition, ConditionLhs, EvalContext, Filter, Operator};
use sensocial_runtime::Timestamp;
use sensocial_types::{
    AudioEnvironment, ClassifiedContext, ContextData, ContextSnapshot, OsnAction,
    PhysicalActivity, UserId,
};

fn arb_lhs() -> impl Strategy<Value = ConditionLhs> {
    prop_oneof![
        Just(ConditionLhs::PhysicalActivity),
        Just(ConditionLhs::AudioEnvironment),
        Just(ConditionLhs::Place),
        Just(ConditionLhs::WifiDensity),
        Just(ConditionLhs::BluetoothDensity),
        Just(ConditionLhs::HourOfDay),
        Just(ConditionLhs::OsnActivity),
        Just(ConditionLhs::OsnActionKind),
        Just(ConditionLhs::OsnTopic),
    ]
}

fn arb_op() -> impl Strategy<Value = Operator> {
    prop_oneof![
        Just(Operator::Equals),
        Just(Operator::NotEquals),
        Just(Operator::GreaterThan),
        Just(Operator::LessThan),
    ]
}

fn arb_value() -> impl Strategy<Value = serde_json::Value> {
    prop_oneof![
        prop_oneof![
            Just("walking"),
            Just("still"),
            Just("running"),
            Just("silent"),
            Just("Paris"),
            Just("active"),
            Just("post"),
            Just("football"),
        ]
        .prop_map(|s| serde_json::Value::String(s.to_owned())),
        (0i64..30).prop_map(serde_json::Value::from),
    ]
}

fn arb_condition() -> impl Strategy<Value = Condition> {
    (arb_lhs(), arb_op(), arb_value(), proptest::option::of(Just(UserId::new("other"))))
        .prop_map(|(lhs, op, value, subject)| {
            let mut c = Condition::new(lhs, op, value);
            if let Some(user) = subject {
                c = c.about(user);
            }
            c
        })
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    proptest::collection::vec(arb_condition(), 0..6).prop_map(Filter::new)
}

fn arb_snapshot() -> impl Strategy<Value = ContextSnapshot> {
    (
        proptest::option::of(prop_oneof![
            Just(PhysicalActivity::Still),
            Just(PhysicalActivity::Walking),
            Just(PhysicalActivity::Running),
        ]),
        proptest::option::of(prop_oneof![
            Just(AudioEnvironment::Silent),
            Just(AudioEnvironment::NotSilent),
        ]),
        proptest::option::of(prop_oneof![
            Just(Some("Paris".to_owned())),
            Just(Some("Bordeaux".to_owned())),
            Just(None),
        ]),
        proptest::option::of(0usize..20),
    )
        .prop_map(|(activity, audio, place, density)| {
            let mut snapshot = ContextSnapshot::new();
            let at = Timestamp::from_secs(1);
            if let Some(a) = activity {
                snapshot.record(at, ContextData::Classified(ClassifiedContext::Activity(a)));
            }
            if let Some(a) = audio {
                snapshot.record(at, ContextData::Classified(ClassifiedContext::Audio(a)));
            }
            if let Some(p) = place {
                snapshot.record(at, ContextData::Classified(ClassifiedContext::Place(p)));
            }
            if let Some(d) = density {
                snapshot.record(
                    at,
                    ContextData::Classified(ClassifiedContext::WifiDensity(d)),
                );
            }
            snapshot
        })
}

fn arb_action() -> impl Strategy<Value = Option<OsnAction>> {
    proptest::option::of(
        prop_oneof![Just(Some("football")), Just(Some("music")), Just(None)].prop_map(|topic| {
            let mut action = OsnAction::post(UserId::new("u"), "content", Timestamp::ZERO);
            if let Some(t) = topic {
                action = action.with_topic(t);
            }
            action
        }),
    )
}

proptest! {
    /// Conjunction is monotone: adding conditions can only shrink the set
    /// of passing contexts.
    #[test]
    fn adding_conditions_never_widens(
        filter in arb_filter(),
        extra in arb_condition(),
        snapshot in arb_snapshot(),
        action in arb_action(),
        hour in 0u64..24,
    ) {
        let ctx = EvalContext {
            snapshot: &snapshot,
            now: Timestamp::from_secs(hour * 3600),
            osn_action: action.as_ref(),
        };
        let base = filter.evaluate_local(&ctx);
        let mut bigger = filter.clone();
        bigger.conditions.push(extra);
        let stricter = bigger.evaluate_local(&ctx);
        prop_assert!(base || !stricter, "adding a condition widened the filter");
    }

    /// Local and full evaluation agree when no cross-user conditions exist.
    #[test]
    fn local_equals_full_without_cross_user(
        filter in arb_filter(),
        snapshot in arb_snapshot(),
        action in arb_action(),
    ) {
        let own_only = Filter::new(
            filter.conditions.iter().filter(|c| !c.is_cross_user()).cloned().collect(),
        );
        let ctx = EvalContext {
            snapshot: &snapshot,
            now: Timestamp::from_secs(12 * 3600),
            osn_action: action.as_ref(),
        };
        prop_assert_eq!(
            own_only.evaluate_local(&ctx),
            own_only.evaluate_full(&ctx, &|_| None)
        );
    }

    /// With cross-user conditions present and no context table, full
    /// evaluation can only be stricter than local evaluation.
    #[test]
    fn full_is_stricter_with_unresolvable_subjects(
        filter in arb_filter(),
        snapshot in arb_snapshot(),
    ) {
        let ctx = EvalContext {
            snapshot: &snapshot,
            now: Timestamp::from_secs(12 * 3600),
            osn_action: None,
        };
        let full = filter.evaluate_full(&ctx, &|_| None);
        let local = filter.evaluate_local(&ctx);
        prop_assert!(local || !full);
    }

    /// Filters survive the serialization round trip.
    #[test]
    fn filters_round_trip_serde(filter in arb_filter()) {
        let json = serde_json::to_string(&filter).unwrap();
        let back: Filter = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(filter, back);
    }

    /// Conditional modalities never include the stream's own modality and
    /// never include modalities of cross-user conditions.
    #[test]
    fn conditional_modalities_are_sane(filter in arb_filter()) {
        for own in sensocial_types::Modality::ALL {
            let conditionals = filter.conditional_modalities(own);
            prop_assert!(!conditionals.contains(&own));
            let mut sorted = conditionals.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&sorted, &conditionals, "sorted and deduped");
            for m in conditionals {
                let justified = filter
                    .conditions
                    .iter()
                    .any(|c| !c.is_cross_user() && c.lhs.required_modality() == Some(m));
                prop_assert!(justified, "unjustified conditional modality {}", m);
            }
        }
    }

    /// Equals and NotEquals partition outcomes whenever the inspected
    /// value is present.
    #[test]
    fn eq_and_ne_are_complementary_when_value_present(
        snapshot in arb_snapshot(),
        value in arb_value(),
    ) {
        // PhysicalActivity is present only in some snapshots.
        if snapshot.activity().is_none() {
            return Ok(());
        }
        let ctx = EvalContext {
            snapshot: &snapshot,
            now: Timestamp::ZERO,
            osn_action: None,
        };
        let eq = Condition::new(ConditionLhs::PhysicalActivity, Operator::Equals, value.clone());
        let ne = Condition::new(ConditionLhs::PhysicalActivity, Operator::NotEquals, value);
        prop_assert_ne!(eq.evaluate(&ctx), ne.evaluate(&ctx));
    }
}
