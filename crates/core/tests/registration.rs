//! Tests for the over-the-broker device registration flow.

use sensocial::client::{ClientDeps, ClientManager};
use sensocial::server::{ServerDeps, ServerManager};
use sensocial::{Granularity, Modality, StreamSpec};
use sensocial_broker::{Broker, BrokerClient};
use sensocial_net::{LatencyModel, LinkSpec, Network};
use sensocial_runtime::{Scheduler, SimDuration, SimRng};
use sensocial_sensors::{DeviceEnvironment, SensorManager};
use sensocial_storage::StorageConfig;
use sensocial_store::Query;
use sensocial_types::geo::cities;
use sensocial_types::{DeviceId, UserId};

fn server_rig() -> (Scheduler, Network, ServerManager) {
    let mut sched = Scheduler::new();
    let net = Network::new(31);
    net.set_default_link(LinkSpec::with_latency(LatencyModel::constant_ms(40)));
    let _broker = Broker::new(&net, "broker");
    let server = ServerManager::new(ServerDeps::new(
        StorageConfig::from_env().open(),
        BrokerClient::new(&net, "server-ep", "broker", "server"),
        SimRng::seed_from(3),
    ));
    server.connect(&mut sched);
    (sched, net, server)
}

fn client(sched: &mut Scheduler, net: &Network, user: &str, device: &str) -> ClientManager {
    let env = DeviceEnvironment::new(cities::paris());
    let sensors = SensorManager::new(env, SimRng::seed_from(9));
    let deps = ClientDeps {
        broker: Some(BrokerClient::new(
            net,
            format!("{device}-ep"),
            "broker",
            device,
        )),
        ..ClientDeps::local_only(user, device, sensors, vec![])
    };
    let manager = ClientManager::new(deps);
    manager.connect(sched);
    manager
}

#[test]
fn devices_self_register_on_connect() {
    let (mut sched, net, server) = server_rig();
    assert!(!server.is_registered(&DeviceId::new("alice-phone")));

    let _manager = client(&mut sched, &net, "alice", "alice-phone");
    sched.run_for(SimDuration::from_secs(1));

    assert!(server.is_registered(&DeviceId::new("alice-phone")));
    assert_eq!(
        server.devices_of(&UserId::new("alice")),
        vec![DeviceId::new("alice-phone")]
    );
    // The registry also landed in the document store.
    assert_eq!(
        server
            .db()
            .collection("users")
            .count(&Query::eq("user", "alice")),
        1
    );
}

#[test]
fn reannouncement_does_not_duplicate() {
    let (mut sched, net, server) = server_rig();
    let manager = client(&mut sched, &net, "alice", "alice-phone");
    sched.run_for(SimDuration::from_secs(1));
    // A reconnect cycle re-announces; registry stays single.
    let _ = manager; // (connect() guards itself; exercise register_device directly)
    server.register_device(UserId::new("alice"), DeviceId::new("alice-phone"));
    server.register_device(UserId::new("alice"), DeviceId::new("alice-phone"));
    assert_eq!(server.devices_of(&UserId::new("alice")).len(), 1);
    assert_eq!(
        server
            .db()
            .collection("users")
            .count(&Query::eq("user", "alice")),
        1
    );
}

#[test]
fn self_registered_device_accepts_remote_streams() {
    let (mut sched, net, server) = server_rig();
    let manager = client(&mut sched, &net, "alice", "alice-phone");
    sched.run_for(SimDuration::from_secs(1));

    // No out-of-band register_device call happened; the broker-announced
    // registration alone is enough for remote stream management.
    let stream = server
        .create_remote_stream(
            &mut sched,
            &DeviceId::new("alice-phone"),
            StreamSpec::continuous(Modality::Wifi, Granularity::Raw)
                .with_interval(SimDuration::from_secs(30)),
        )
        .expect("registered via broker");
    sched.run_for(SimDuration::from_mins(2));
    assert_eq!(manager.stream_ids(), vec![stream]);
    assert!(
        server
            .telemetry()
            .snapshot()
            .counter("server.uplink_events")
            >= 3
    );
}

#[test]
fn multiple_devices_per_user() {
    let (mut sched, net, server) = server_rig();
    let _phone = client(&mut sched, &net, "alice", "alice-phone");
    let _tablet = client(&mut sched, &net, "alice", "alice-tablet");
    sched.run_for(SimDuration::from_secs(1));
    let mut devices = server.devices_of(&UserId::new("alice"));
    devices.sort();
    assert_eq!(
        devices,
        vec![DeviceId::new("alice-phone"), DeviceId::new("alice-tablet")]
    );
}
