//! Tests for the server-side extensions: filtered aggregators and OSN
//! text mining (the paper's §9 future work, implemented).

use std::sync::{Arc, Mutex};

use sensocial::client::{ClientDeps, ClientManager};
use sensocial::server::{ServerDeps, ServerManager};
use sensocial::{
    Condition, ConditionLhs, Filter, Granularity, Modality, Operator, StreamSink, StreamSpec,
};
use sensocial_broker::{Broker, BrokerClient};
use sensocial_energy::{BatteryMeter, CpuCosts, CpuMeter, EnergyProfile, MemoryProfiler};
use sensocial_net::{LatencyModel, LinkSpec, Network};
use sensocial_osn::{OsnPlatform, PushPlugin};
use sensocial_runtime::{Scheduler, SimDuration, SimRng};
use sensocial_sensors::{DeviceEnvironment, SensorManager};
use sensocial_storage::StorageConfig;
use sensocial_store::Query;
use sensocial_types::geo::cities;
use sensocial_types::{DeviceId, PhysicalActivity, UserId};

struct Rig {
    sched: Scheduler,
    net: Network,
    server: ServerManager,
    platform: OsnPlatform,
    plugin: PushPlugin,
}

fn rig() -> Rig {
    let mut sched = Scheduler::new();
    let net = Network::new(17);
    net.set_default_link(LinkSpec::with_latency(LatencyModel::constant_ms(40)));
    let _broker = Broker::new(&net, "broker");
    let server = ServerManager::new(ServerDeps::new(
        StorageConfig::from_env().open(),
        BrokerClient::new(&net, "server-ep", "broker", "server"),
        SimRng::seed_from(3),
    ));
    server.connect(&mut sched);
    let platform = OsnPlatform::new(SimRng::seed_from(4));
    let plugin = PushPlugin::new(&platform);
    plugin.set_delay(2.0, 0.1); // fast OSN for focused tests
    server.connect_push_plugin(&plugin);
    Rig {
        sched,
        net,
        server,
        platform,
        plugin,
    }
}

fn add_device(rig: &mut Rig, user: &str, device: &str) -> (ClientManager, DeviceEnvironment) {
    let env = DeviceEnvironment::new(cities::paris());
    let sensors = SensorManager::new(env.clone(), SimRng::seed_from(user.len() as u64 + 11));
    let manager = ClientManager::new(ClientDeps {
        user: UserId::new(user),
        device: DeviceId::new(device),
        sensors,
        classifiers: sensocial_classify::ClassifierRegistry::with_defaults(vec![
            cities::paris_place(),
        ]),
        privacy: sensocial::PrivacyPolicyManager::allow_all(),
        broker: Some(BrokerClient::new(
            &rig.net,
            format!("{device}-ep"),
            "broker",
            device,
        )),
        battery: BatteryMeter::new(),
        cpu: CpuMeter::new(),
        memory: MemoryProfiler::new(),
        energy_profile: EnergyProfile::default(),
        cpu_costs: CpuCosts::default(),
    });
    manager.connect(&mut rig.sched);
    rig.server
        .register_device(UserId::new(user), DeviceId::new(device));
    rig.platform.register_user(UserId::new(user));
    rig.plugin.authorize(&UserId::new(user));
    (manager, env)
}

#[test]
fn aggregator_filter_gates_the_joined_stream() {
    let mut rig = rig();
    let (alice, alice_env) = add_device(&mut rig, "alice", "alice-phone");
    let (bob, bob_env) = add_device(&mut rig, "bob", "bob-phone");
    alice_env.set_activity(PhysicalActivity::Walking);
    bob_env.set_activity(PhysicalActivity::Still);

    let mk = |mgr: &ClientManager, sched: &mut Scheduler| {
        mgr.create_stream(
            sched,
            StreamSpec::continuous(Modality::Accelerometer, Granularity::Classified)
                .with_interval(SimDuration::from_secs(20))
                .with_sink(StreamSink::Server),
        )
        .unwrap()
    };
    let s1 = mk(&alice, &mut rig.sched);
    let s2 = mk(&bob, &mut rig.sched);

    let agg = rig.server.create_aggregator([s1, s2]);
    rig.server
        .set_aggregator_filter(
            agg,
            Filter::new(vec![Condition::new(
                ConditionLhs::PhysicalActivity,
                Operator::Equals,
                "walking",
            )]),
        )
        .unwrap();
    let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let sink = seen.clone();
        rig.server.register_aggregator_listener(agg, move |_s, e| {
            sink.lock().unwrap().push(e.user.as_str().to_owned());
        });
    }

    rig.sched.run_for(SimDuration::from_mins(3));
    let seen = seen.lock().unwrap();
    assert!(!seen.is_empty());
    assert!(
        seen.iter().all(|u| u == "alice"),
        "only the walking user's events pass the aggregator filter: {seen:?}"
    );
}

#[test]
fn text_mining_extracts_topics_for_client_filters() {
    let mut rig = rig();
    rig.server.enable_text_mining();
    let (alice, _) = add_device(&mut rig, "alice", "alice-phone");

    // A stream gated on posts about football — but the user's platform
    // does not tag topics; the *server* must mine them from the text.
    let stream = alice
        .create_stream(
            &mut rig.sched,
            StreamSpec::social_event_based(Modality::Wifi, Granularity::Raw)
                .with_filter(Filter::new(vec![Condition::new(
                    ConditionLhs::OsnTopic,
                    Operator::Equals,
                    "football",
                )]))
                .with_sink(StreamSink::Server),
        )
        .unwrap();
    let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let sink = seen.clone();
        alice.register_listener(stream, move |_s, e| {
            sink.lock()
                .unwrap()
                .push(e.osn_action.as_ref().unwrap().content.clone());
        });
    }

    // Untagged posts: one about football, one about food.
    rig.platform
        .post(&mut rig.sched, &UserId::new("alice"), "what a goal in the match!");
    rig.sched.run_for(SimDuration::from_mins(2));
    rig.platform
        .post(&mut rig.sched, &UserId::new("alice"), "dinner at the bistro was lovely");
    rig.sched.run_for(SimDuration::from_mins(2));

    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 1, "{seen:?}");
    assert!(seen[0].contains("goal"));
}

#[test]
fn text_mining_stores_sentiment_for_researchers() {
    let mut rig = rig();
    rig.server.enable_text_mining();
    let (_alice, _) = add_device(&mut rig, "alice", "alice-phone");

    rig.platform
        .post(&mut rig.sched, &UserId::new("alice"), "I love this wonderful day");
    rig.platform
        .post(&mut rig.sched, &UserId::new("alice"), "terrible, awful commute");
    rig.sched.run_for(SimDuration::from_mins(2));

    let actions = rig.server.db().collection("actions");
    assert_eq!(actions.count(&Query::eq("sentiment", "positive")), 1);
    assert_eq!(actions.count(&Query::eq("sentiment", "negative")), 1);
}

#[test]
fn text_mining_off_by_default() {
    let mut rig = rig();
    let (_alice, _) = add_device(&mut rig, "alice", "alice-phone");
    rig.platform
        .post(&mut rig.sched, &UserId::new("alice"), "I love this wonderful day");
    rig.sched.run_for(SimDuration::from_mins(2));
    let actions = rig.server.db().collection("actions");
    assert_eq!(actions.count(&Query::eq("sentiment", "positive")), 0);
    assert_eq!(actions.len(), 1, "action stored, just unannotated");
}
