//! Property-based tests for the typed [`Topic`] API: every constructible
//! topic round-trips through its wire string, and malformed strings always
//! surface as typed errors rather than mis-parses.

use proptest::prelude::*;
use sensocial::{DeviceId, Error, Topic};

/// Device-id strings as they occur in deployments (broker client ids,
/// wildcard-matched segments). Slashes are allowed — the parser treats
/// everything after the kind segment as the device id.
fn device_id() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_-]{1,16}(/[a-zA-Z0-9_-]{1,8}){0,2}"
}

fn any_topic() -> impl Strategy<Value = Topic> {
    prop_oneof![
        device_id().prop_map(|d| Topic::Config(DeviceId::new(d))),
        device_id().prop_map(|d| Topic::Trigger(DeviceId::new(d))),
        device_id().prop_map(|d| Topic::Uplink(DeviceId::new(d))),
        device_id().prop_map(|d| Topic::Ack(DeviceId::new(d))),
        Just(Topic::Register),
    ]
}

proptest! {
    /// parse(display(topic)) == topic, through both `FromStr` and the
    /// `Into<String>` conversions the broker API accepts.
    #[test]
    fn topics_round_trip(topic in any_topic()) {
        let rendered = topic.to_string();
        prop_assert_eq!(rendered.parse::<Topic>(), Ok(topic.clone()));
        let via_into: String = topic.clone().into();
        prop_assert_eq!(&via_into, &rendered);
        prop_assert_eq!(Topic::parse(&rendered), Ok(topic));
    }

    /// The expect_* helpers accept exactly their own kind.
    #[test]
    fn expect_helpers_partition_by_kind(device in device_id()) {
        let d = DeviceId::new(device);
        prop_assert_eq!(
            Topic::expect_uplink(&Topic::Uplink(d.clone()).to_string()),
            Ok(d.clone())
        );
        prop_assert_eq!(
            Topic::expect_ack(&Topic::Ack(d.clone()).to_string()),
            Ok(d.clone())
        );
        prop_assert!(Topic::expect_uplink(&Topic::Ack(d.clone()).to_string()).is_err());
        prop_assert!(Topic::expect_ack(&Topic::Trigger(d).to_string()).is_err());
    }

    /// Strings outside the `sensocial/<kind>/<device>` scheme never parse,
    /// and the typed error echoes the offending string.
    #[test]
    fn malformed_strings_are_typed_errors(s in "[a-z/]{0,24}") {
        prop_assume!(s.parse::<Topic>().is_err());
        match s.parse::<Topic>() {
            Err(Error::MalformedTopic(echoed)) => prop_assert_eq!(echoed, s),
            other => prop_assert!(false, "expected MalformedTopic, got {:?}", other),
        }
    }
}
