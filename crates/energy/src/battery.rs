//! Battery-charge accounting (PowerTutor substitute).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_types::Modality;

/// The charge sinks the evaluation breaks energy down into.
///
/// Figure 4 splits each bar into *sampling*, *classification* and
/// *transmission*; Table 4 additionally exercises trigger reception and the
/// idle baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EnergyComponent {
    /// Sampling a sensor.
    Sampling(Modality),
    /// Running a classifier over samples of a modality.
    Classification(Modality),
    /// Radio transmission of stream data (per-byte + per-message).
    Transmission,
    /// Radio energy tail after a transmission burst (the interface is held
    /// out of sleep; the paper measures with 1 s resolution specifically to
    /// capture these tails).
    RadioTail,
    /// Receiving a push trigger or configuration from the broker.
    TriggerReception,
    /// Idle baseline (keep-alives, OS bookkeeping) attributed to the app.
    Idle,
}

impl fmt::Display for EnergyComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnergyComponent::Sampling(m) => write!(f, "sampling/{m}"),
            EnergyComponent::Classification(m) => write!(f, "classification/{m}"),
            EnergyComponent::Transmission => f.write_str("transmission"),
            EnergyComponent::RadioTail => f.write_str("radio-tail"),
            EnergyComponent::TriggerReception => f.write_str("trigger-reception"),
            EnergyComponent::Idle => f.write_str("idle"),
        }
    }
}

/// A per-component energy breakdown, in micro-amp-hours (µAH).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyBreakdown {
    components: BTreeMap<EnergyComponent, f64>,
}

impl EnergyBreakdown {
    /// Charge attributed to `component`, in µAH.
    pub fn component_uah(&self, component: EnergyComponent) -> f64 {
        self.components.get(&component).copied().unwrap_or(0.0)
    }

    /// Total charge across all components, in µAH.
    pub fn total_uah(&self) -> f64 {
        // `fold` rather than `sum`: summing an empty f64 iterator yields
        // -0.0, which leaks a minus sign into reports.
        self.components.values().fold(0.0, |acc, v| acc + v)
    }

    /// Total sampling charge across all modalities, in µAH.
    pub fn sampling_uah(&self) -> f64 {
        self.components
            .iter()
            .filter(|(c, _)| matches!(c, EnergyComponent::Sampling(_)))
            .map(|(_, v)| v)
            .fold(0.0, |acc, v| acc + v)
    }

    /// Total classification charge across all modalities, in µAH.
    pub fn classification_uah(&self) -> f64 {
        self.components
            .iter()
            .filter(|(c, _)| matches!(c, EnergyComponent::Classification(_)))
            .map(|(_, v)| v)
            .fold(0.0, |acc, v| acc + v)
    }

    /// Transmission plus radio-tail charge, in µAH.
    pub fn transmission_uah(&self) -> f64 {
        self.component_uah(EnergyComponent::Transmission)
            + self.component_uah(EnergyComponent::RadioTail)
    }

    /// Iterates over `(component, µAH)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (&EnergyComponent, &f64)> {
        self.components.iter()
    }
}

/// An accumulating battery-charge meter.
///
/// Cloneable handle; every clone charges the same underlying account. All
/// values are micro-amp-hours (µAH); 1 mAH = 1000 µAH.
#[derive(Debug, Clone, Default)]
pub struct BatteryMeter {
    inner: Arc<Mutex<EnergyBreakdown>>,
}

impl BatteryMeter {
    /// Creates a meter reading zero.
    pub fn new() -> Self {
        BatteryMeter::default()
    }

    /// Adds `uah` micro-amp-hours to `component`.
    ///
    /// Negative or non-finite charges are ignored (and debug-asserted):
    /// meters only accumulate.
    pub fn charge(&self, component: EnergyComponent, uah: f64) {
        debug_assert!(uah.is_finite() && uah >= 0.0, "bad charge {uah}");
        if uah.is_finite() && uah >= 0.0 {
            *self
                .inner
                .lock()
                .components
                .entry(component)
                .or_insert(0.0) += uah;
        }
    }

    /// Total charge consumed so far, in µAH.
    pub fn total_uah(&self) -> f64 {
        self.inner.lock().total_uah()
    }

    /// Total charge consumed so far, in mAH (Figure 4's unit).
    pub fn total_mah(&self) -> f64 {
        self.total_uah() / 1_000.0
    }

    /// A snapshot of the per-component breakdown.
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.inner.lock().clone()
    }

    /// Resets the meter to zero and returns the breakdown it had.
    pub fn reset(&self) -> EnergyBreakdown {
        std::mem::take(&mut *self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_component() {
        let meter = BatteryMeter::new();
        meter.charge(EnergyComponent::Sampling(Modality::Accelerometer), 4.0);
        meter.charge(EnergyComponent::Sampling(Modality::Accelerometer), 4.0);
        meter.charge(EnergyComponent::Transmission, 9.5);
        let b = meter.breakdown();
        assert_eq!(
            b.component_uah(EnergyComponent::Sampling(Modality::Accelerometer)),
            8.0
        );
        assert_eq!(b.total_uah(), 17.5);
        assert_eq!(meter.total_mah(), 0.0175);
    }

    #[test]
    fn clones_share_the_account() {
        let meter = BatteryMeter::new();
        let clone = meter.clone();
        clone.charge(EnergyComponent::Idle, 1.0);
        assert_eq!(meter.total_uah(), 1.0);
    }

    #[test]
    fn category_rollups() {
        let meter = BatteryMeter::new();
        meter.charge(EnergyComponent::Sampling(Modality::Location), 8.0);
        meter.charge(EnergyComponent::Sampling(Modality::Microphone), 5.0);
        meter.charge(EnergyComponent::Classification(Modality::Microphone), 1.0);
        meter.charge(EnergyComponent::Transmission, 2.0);
        meter.charge(EnergyComponent::RadioTail, 3.0);
        let b = meter.breakdown();
        assert_eq!(b.sampling_uah(), 13.0);
        assert_eq!(b.classification_uah(), 1.0);
        assert_eq!(b.transmission_uah(), 5.0);
    }

    #[test]
    fn reset_returns_and_clears() {
        let meter = BatteryMeter::new();
        meter.charge(EnergyComponent::Idle, 2.0);
        let old = meter.reset();
        assert_eq!(old.total_uah(), 2.0);
        assert_eq!(meter.total_uah(), 0.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "bad charge"))]
    fn negative_charge_rejected() {
        let meter = BatteryMeter::new();
        meter.charge(EnergyComponent::Idle, -1.0);
        // In release builds the charge is silently ignored.
        assert_eq!(meter.total_uah(), 0.0);
        panic!("bad charge (release-mode path)");
    }

    #[test]
    fn component_display() {
        assert_eq!(
            EnergyComponent::Sampling(Modality::Wifi).to_string(),
            "sampling/wifi"
        );
        assert_eq!(EnergyComponent::RadioTail.to_string(), "radio-tail");
    }
}
