//! CPU-load accounting (TraceView/PowerTutor-CPU substitute).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_runtime::SimDuration;

/// One recorded piece of CPU work.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuWork {
    /// Label of the work source (e.g. `"stream#3/serialize"`).
    pub source: String,
    /// CPU busy time consumed, in milliseconds.
    pub cpu_ms: f64,
}

#[derive(Debug, Default)]
struct Inner {
    total_ms: f64,
    by_source: BTreeMap<String, f64>,
}

/// An accumulating CPU busy-time meter.
///
/// Components record modelled busy time; the Figure 5 harness divides the
/// accumulated busy time by the observation window to obtain "CPU consumed
/// [%]" exactly as PowerTutor reports it.
///
/// # Example
///
/// ```
/// use sensocial_energy::CpuMeter;
/// use sensocial_runtime::SimDuration;
///
/// let cpu = CpuMeter::new();
/// cpu.record("stream#1/sample", 100.0);
/// cpu.record("stream#1/transmit", 540.0);
/// let pct = cpu.utilization_percent(SimDuration::from_secs(60));
/// assert!((pct - 1.0666).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CpuMeter {
    inner: Arc<Mutex<Inner>>,
}

impl CpuMeter {
    /// Creates a meter reading zero.
    pub fn new() -> Self {
        CpuMeter::default()
    }

    /// Records `cpu_ms` milliseconds of busy time attributed to `source`.
    ///
    /// Negative or non-finite values are ignored (and debug-asserted).
    pub fn record(&self, source: &str, cpu_ms: f64) {
        debug_assert!(cpu_ms.is_finite() && cpu_ms >= 0.0, "bad cpu time {cpu_ms}");
        if cpu_ms.is_finite() && cpu_ms >= 0.0 {
            let mut inner = self.inner.lock();
            inner.total_ms += cpu_ms;
            *inner.by_source.entry(source.to_owned()).or_insert(0.0) += cpu_ms;
        }
    }

    /// Total busy time recorded, in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.inner.lock().total_ms
    }

    /// Busy time attributed to `source`, in milliseconds.
    pub fn source_ms(&self, source: &str) -> f64 {
        self.inner
            .lock()
            .by_source
            .get(source)
            .copied()
            .unwrap_or(0.0)
    }

    /// Utilisation over `window` as a percentage (may exceed 100 on an
    /// overloaded single core, as a real profiler would report for a
    /// multi-core device).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn utilization_percent(&self, window: SimDuration) -> f64 {
        assert!(!window.is_zero(), "utilisation window must be non-zero");
        100.0 * self.total_ms() / window.as_millis() as f64
    }

    /// All recorded work, aggregated per source.
    pub fn by_source(&self) -> Vec<CpuWork> {
        self.inner
            .lock()
            .by_source
            .iter()
            .map(|(source, cpu_ms)| CpuWork {
                source: source.clone(),
                cpu_ms: *cpu_ms,
            })
            .collect()
    }

    /// Resets the meter to zero.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.total_ms = 0.0;
        inner.by_source.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_reports_by_source() {
        let cpu = CpuMeter::new();
        cpu.record("a", 10.0);
        cpu.record("a", 5.0);
        cpu.record("b", 1.0);
        assert_eq!(cpu.total_ms(), 16.0);
        assert_eq!(cpu.source_ms("a"), 15.0);
        assert_eq!(cpu.source_ms("missing"), 0.0);
        assert_eq!(cpu.by_source().len(), 2);
    }

    #[test]
    fn utilization_over_window() {
        let cpu = CpuMeter::new();
        cpu.record("x", 600.0);
        assert!((cpu.utilization_percent(SimDuration::from_secs(60)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_zeroes() {
        let cpu = CpuMeter::new();
        cpu.record("x", 1.0);
        cpu.reset();
        assert_eq!(cpu.total_ms(), 0.0);
        assert!(cpu.by_source().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        CpuMeter::new().utilization_percent(SimDuration::ZERO);
    }

    #[test]
    fn clones_share_state() {
        let cpu = CpuMeter::new();
        cpu.clone().record("x", 2.0);
        assert_eq!(cpu.total_ms(), 2.0);
    }
}
