//! Resource-accounting substrate: battery, CPU and memory models.
//!
//! The paper evaluates SenSocial with PowerTutor (battery), Android DDMS
//! (memory) and TraceView (CPU). None of those exist here, so this crate is
//! the measurement instrument instead: components *charge* their activity
//! to explicit meters, and the benchmark harnesses read the meters out.
//!
//! * [`BatteryMeter`] — accumulates micro-amp-hours per
//!   [`EnergyComponent`] (sampling per modality, classification,
//!   transmission, trigger reception, idle baseline, radio tails);
//! * [`CpuMeter`] — accumulates busy milliseconds per source and reports
//!   utilisation over a window (Figure 5);
//! * [`MemoryProfiler`] — tracks live object counts and bytes per tag
//!   (Table 2);
//! * [`EnergyProfile`] — the calibrated cost constants. Calibration targets
//!   the *shape* of the paper's results (orderings between modalities, the
//!   ≈2× saving from classifying accelerometer bursts, Table 4's ≈45 µAH
//!   per OSN action); see `DESIGN.md` for the calibration rationale.
//!
//! # Example
//!
//! ```
//! use sensocial_energy::{BatteryMeter, EnergyComponent, EnergyProfile};
//! use sensocial_types::Modality;
//!
//! let profile = EnergyProfile::default();
//! let meter = BatteryMeter::new();
//! meter.charge(
//!     EnergyComponent::Sampling(Modality::Accelerometer),
//!     profile.sampling_uah(Modality::Accelerometer),
//! );
//! assert!(meter.total_uah() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod battery;
mod cpu;
mod memory;
mod profiles;
mod radio;

pub use battery::{BatteryMeter, EnergyBreakdown, EnergyComponent};
pub use cpu::{CpuMeter, CpuWork};
pub use memory::{MemoryProfiler, MemorySnapshot};
pub use profiles::{CpuCosts, EnergyProfile, MemoryFloor};
pub use radio::{RadioModel, RadioState};
