//! Live-object memory accounting (Android DDMS substitute).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// A point-in-time view of tracked allocations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemorySnapshot {
    /// Live object count per tag.
    pub objects_by_tag: BTreeMap<String, u64>,
    /// Live bytes per tag.
    pub bytes_by_tag: BTreeMap<String, u64>,
}

impl MemorySnapshot {
    /// Total live objects.
    pub fn total_objects(&self) -> u64 {
        self.objects_by_tag.values().sum()
    }

    /// Total live bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_by_tag.values().sum()
    }
}

#[derive(Debug, Default)]
struct Inner {
    objects: BTreeMap<String, u64>,
    bytes: BTreeMap<String, u64>,
}

/// Tracks live objects and bytes per component tag.
///
/// Middleware components register their allocations (streams, filters,
/// buffers, listener registrations) so the Table 2 harness can report the
/// heap footprint the way DDMS does: total allocated bytes and live object
/// count.
///
/// # Example
///
/// ```
/// use sensocial_energy::MemoryProfiler;
///
/// let mem = MemoryProfiler::new();
/// mem.alloc("stream", 1, 480);
/// mem.alloc("filter", 2, 160);
/// assert_eq!(mem.snapshot().total_objects(), 3);
/// mem.free("filter", 1, 80);
/// assert_eq!(mem.snapshot().total_objects(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryProfiler {
    inner: Arc<Mutex<Inner>>,
}

impl MemoryProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        MemoryProfiler::default()
    }

    /// Records the allocation of `count` objects totalling `bytes` under
    /// `tag`.
    pub fn alloc(&self, tag: &str, count: u64, bytes: u64) {
        let mut inner = self.inner.lock();
        *inner.objects.entry(tag.to_owned()).or_insert(0) += count;
        *inner.bytes.entry(tag.to_owned()).or_insert(0) += bytes;
    }

    /// Records the release of `count` objects totalling `bytes` under
    /// `tag`, saturating at zero (freeing more than was allocated is a
    /// modelling bug, caught by a debug assertion).
    pub fn free(&self, tag: &str, count: u64, bytes: u64) {
        let mut inner = self.inner.lock();
        let objs = inner.objects.entry(tag.to_owned()).or_insert(0);
        debug_assert!(*objs >= count, "freeing more `{tag}` objects than allocated");
        *objs = objs.saturating_sub(count);
        let b = inner.bytes.entry(tag.to_owned()).or_insert(0);
        debug_assert!(*b >= bytes, "freeing more `{tag}` bytes than allocated");
        *b = b.saturating_sub(bytes);
    }

    /// A snapshot of the current live set.
    pub fn snapshot(&self) -> MemorySnapshot {
        let inner = self.inner.lock();
        MemorySnapshot {
            objects_by_tag: inner.objects.clone(),
            bytes_by_tag: inner.bytes.clone(),
        }
    }

    /// Live objects under `tag`.
    pub fn objects(&self, tag: &str) -> u64 {
        self.inner.lock().objects.get(tag).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_round_trip() {
        let mem = MemoryProfiler::new();
        mem.alloc("buf", 4, 1024);
        assert_eq!(mem.objects("buf"), 4);
        mem.free("buf", 4, 1024);
        let snap = mem.snapshot();
        assert_eq!(snap.total_objects(), 0);
        assert_eq!(snap.total_bytes(), 0);
    }

    #[test]
    fn snapshot_totals_span_tags() {
        let mem = MemoryProfiler::new();
        mem.alloc("a", 1, 10);
        mem.alloc("b", 2, 20);
        let snap = mem.snapshot();
        assert_eq!(snap.total_objects(), 3);
        assert_eq!(snap.total_bytes(), 30);
        assert_eq!(snap.objects_by_tag["b"], 2);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "freeing more"))]
    fn over_free_is_caught() {
        let mem = MemoryProfiler::new();
        mem.alloc("x", 1, 8);
        mem.free("x", 2, 8);
        panic!("freeing more (release-mode path)");
    }

    #[test]
    fn unknown_tag_reads_zero() {
        assert_eq!(MemoryProfiler::new().objects("nothing"), 0);
    }
}
