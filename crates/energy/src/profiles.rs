//! Calibrated cost constants.
//!
//! Absolute energy numbers depend on the handset (the paper used a Samsung
//! Galaxy N7000); what a reproduction must preserve is the *shape* of the
//! results. The defaults below are calibrated so that:
//!
//! * Figure 4's ordering holds: raw accelerometer transmission dominates
//!   (a 3-axis vector every 20 ms for 8 s per cycle), GPS is the costliest
//!   sampler, WiFi/Bluetooth scans are cheap;
//! * classifying accelerometer data roughly *halves* that stream's total
//!   (paper §5.3), while classification barely helps small-payload
//!   modalities;
//! * the GAR baseline lands ≈25 % below the classified SenSocial
//!   accelerometer stream (paper §5.3);
//! * Table 4's ≈45 µAH per OSN-triggered full sensing round emerges from
//!   the same constants (trigger reception + 5 one-off samples + raw
//!   transmissions + radio tail).

use sensocial_types::Modality;

/// Energy cost constants, in micro-amp-hours (µAH).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyProfile {
    /// Per-cycle sampling cost of a GPS fix.
    pub gps_sample_uah: f64,
    /// Per-cycle sampling cost of an 8 s accelerometer burst.
    pub accel_sample_uah: f64,
    /// Per-cycle sampling cost of a microphone frame.
    pub mic_sample_uah: f64,
    /// Per-cycle cost of a WiFi scan.
    pub wifi_sample_uah: f64,
    /// Per-cycle cost of a Bluetooth scan.
    pub bt_sample_uah: f64,
    /// Classification cost per accelerometer burst (feature extraction +
    /// decision rules over ~400 samples).
    pub accel_classify_uah: f64,
    /// Classification cost per microphone frame.
    pub mic_classify_uah: f64,
    /// Classification (reverse-geocoding) cost per GPS fix.
    pub gps_classify_uah: f64,
    /// Classification cost per WiFi/Bluetooth scan (density counting).
    pub scan_classify_uah: f64,
    /// Fixed radio cost per transmitted message.
    pub tx_per_message_uah: f64,
    /// Radio cost per transmitted byte.
    pub tx_per_byte_uah: f64,
    /// Radio tail charge after a transmission burst (interface held awake).
    pub radio_tail_uah: f64,
    /// Cost of receiving one push trigger / configuration message.
    pub trigger_rx_uah: f64,
    /// Idle baseline per hour (broker keep-alive + OS bookkeeping).
    pub idle_per_hour_uah: f64,
    /// Per-cycle cost of the GAR baseline's activity streaming (sampling is
    /// outsourced to play services; see `DESIGN.md`).
    pub gar_cycle_uah: f64,
}

impl EnergyProfile {
    /// Sampling cost for one cycle of `modality`, in µAH.
    pub fn sampling_uah(&self, modality: Modality) -> f64 {
        match modality {
            Modality::Location => self.gps_sample_uah,
            Modality::Accelerometer => self.accel_sample_uah,
            Modality::Microphone => self.mic_sample_uah,
            Modality::Wifi => self.wifi_sample_uah,
            Modality::Bluetooth => self.bt_sample_uah,
        }
    }

    /// Classification cost for one cycle of `modality`, in µAH.
    pub fn classification_uah(&self, modality: Modality) -> f64 {
        match modality {
            Modality::Location => self.gps_classify_uah,
            Modality::Accelerometer => self.accel_classify_uah,
            Modality::Microphone => self.mic_classify_uah,
            Modality::Wifi | Modality::Bluetooth => self.scan_classify_uah,
        }
    }

    /// Transmission cost for a message of `bytes` payload bytes, in µAH
    /// (excluding the radio tail, which is charged separately per burst).
    pub fn transmission_uah(&self, bytes: usize) -> f64 {
        self.tx_per_message_uah + self.tx_per_byte_uah * bytes as f64
    }
}

impl Default for EnergyProfile {
    fn default() -> Self {
        EnergyProfile {
            gps_sample_uah: 8.0,
            accel_sample_uah: 4.0,
            mic_sample_uah: 5.0,
            wifi_sample_uah: 3.0,
            bt_sample_uah: 2.5,
            accel_classify_uah: 1.5,
            mic_classify_uah: 0.8,
            gps_classify_uah: 0.5,
            scan_classify_uah: 0.3,
            tx_per_message_uah: 0.8,
            tx_per_byte_uah: 0.0009,
            radio_tail_uah: 1.8,
            trigger_rx_uah: 0.5,
            idle_per_hour_uah: 19.0,
            gar_cycle_uah: 6.1,
        }
    }
}

/// CPU busy-time constants, in milliseconds of CPU per operation.
///
/// Figure 5's calibration: a local (on-device-consumed) stream costs
/// sampling-handling + delivery per 60 s cycle (≈0.2 % CPU); a
/// server-transmitted stream additionally serializes and drives the radio
/// (≈1.1 % CPU), so 50 server streams approach ~55 % while 50 local streams
/// stay near ~10 %, matching the figure's gap.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuCosts {
    /// Handling one sampling cycle (buffer management, callbacks).
    pub sample_handling_ms: f64,
    /// Running a classifier over one cycle's samples.
    pub classify_ms: f64,
    /// Delivering a datum to a local listener.
    pub local_delivery_ms: f64,
    /// Serializing and transmitting a datum to the server.
    pub serialize_transmit_ms: f64,
    /// Evaluating one filter condition.
    pub filter_condition_ms: f64,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            sample_handling_ms: 100.0,
            classify_ms: 160.0,
            local_delivery_ms: 20.0,
            serialize_transmit_ms: 540.0,
            filter_condition_ms: 4.0,
        }
    }
}

/// Memory floor constants for Table 2 (the Dalvik runtime, framework and
/// window-manager allocations that exist before the app allocates
/// anything; DDMS reports them inside the app heap).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryFloor {
    /// Objects attributable to the runtime + stub activity.
    pub runtime_objects: u64,
    /// Bytes attributable to the runtime + stub activity.
    pub runtime_bytes: u64,
}

impl Default for MemoryFloor {
    fn default() -> Self {
        MemoryFloor {
            runtime_objects: 45_000,
            runtime_bytes: 10_800 * 1024, // ≈10.5 MB
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 4 shape: classification halves the accelerometer stream.
    #[test]
    fn accel_classification_roughly_halves_total() {
        let p = EnergyProfile::default();
        let raw_payload = 24 * 400 + 16; // 8 s burst at 50 Hz
        let raw_total = p.sampling_uah(Modality::Accelerometer)
            + p.transmission_uah(raw_payload)
            + p.radio_tail_uah;
        let classified_total = p.sampling_uah(Modality::Accelerometer)
            + p.classification_uah(Modality::Accelerometer)
            + p.transmission_uah(16)
            + p.radio_tail_uah;
        let ratio = raw_total / classified_total;
        assert!((1.7..=2.4).contains(&ratio), "ratio {ratio}");
    }

    /// Figure 4 shape: GAR ≈ 25 % below classified accelerometer streaming.
    #[test]
    fn gar_sits_about_quarter_below_classified_accel() {
        let p = EnergyProfile::default();
        let classified_total = p.sampling_uah(Modality::Accelerometer)
            + p.classification_uah(Modality::Accelerometer)
            + p.transmission_uah(16)
            + p.radio_tail_uah;
        let saving = 1.0 - p.gar_cycle_uah / classified_total;
        assert!((0.15..=0.40).contains(&saving), "saving {saving}");
    }

    /// Figure 4 shape: GPS is the most expensive sampler; Bluetooth cheapest.
    #[test]
    fn sampling_cost_ordering() {
        let p = EnergyProfile::default();
        assert!(p.sampling_uah(Modality::Location) > p.sampling_uah(Modality::Microphone));
        assert!(p.sampling_uah(Modality::Microphone) > p.sampling_uah(Modality::Accelerometer));
        assert!(p.sampling_uah(Modality::Accelerometer) > p.sampling_uah(Modality::Wifi));
        assert!(p.sampling_uah(Modality::Wifi) > p.sampling_uah(Modality::Bluetooth));
    }

    /// Table 4 shape: one full OSN-triggered round costs ≈45 µAH.
    #[test]
    fn osn_trigger_round_is_about_45_uah() {
        let p = EnergyProfile::default();
        let payloads = [40usize, 24 * 400 + 16, 32, 16 + 10 * 24, 16 + 5 * 20];
        let sampling: f64 = Modality::ALL.iter().map(|m| p.sampling_uah(*m)).sum();
        // Each modality's burst is transmitted as its own message, and each
        // burst holds the radio awake for a tail period.
        let tx: f64 = payloads
            .iter()
            .map(|b| p.transmission_uah(*b) + p.radio_tail_uah)
            .sum();
        let total = p.trigger_rx_uah + sampling + tx;
        assert!((40.0..=50.0).contains(&total), "total {total}");
    }

    #[test]
    fn transmission_scales_with_bytes() {
        let p = EnergyProfile::default();
        assert!(p.transmission_uah(10_000) > p.transmission_uah(100));
        assert_eq!(p.transmission_uah(0), p.tx_per_message_uah);
    }

    /// Figure 5 shape: a server stream costs ≈5× a local stream per cycle.
    #[test]
    fn server_stream_cpu_dominates_local() {
        let c = CpuCosts::default();
        let local = c.sample_handling_ms + c.local_delivery_ms;
        let server = c.sample_handling_ms + c.serialize_transmit_ms;
        assert!(server / local > 4.0, "server/local = {}", server / local);
    }
}
