//! A time-integrating radio power-state machine.
//!
//! The paper measures "with the frequency of 1 second … in order to include
//! the extra energy-tails due to the wireless interfaces being prevented
//! from switching to sleep mode" (§5.3, citing Cool-Tether). The simple
//! accounting elsewhere in this crate charges a *constant* tail per
//! transmission burst; this module provides the reference model that
//! constant approximates: a WiFi radio with idle / active / tail states
//! whose energy is the time integral of state power.
//!
//! The validation test at the bottom shows the constant-per-burst
//! approximation agrees with the integral for duty-cycled workloads (bursts
//! separated by more than the tail), and quantifies when it diverges
//! (bursts inside one tail window share a tail).

use sensocial_runtime::{SimDuration, Timestamp};

/// Radio power states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioState {
    /// Interface asleep / low-power idle.
    Idle,
    /// Actively transmitting or receiving.
    Active,
    /// Holding high power after activity, waiting to sleep (the "tail").
    Tail,
}

/// A radio whose energy is integrated over its power states.
#[derive(Debug, Clone)]
pub struct RadioModel {
    /// Power draw while idle, milliwatts.
    pub idle_mw: f64,
    /// Power draw while active, milliwatts.
    pub active_mw: f64,
    /// Power draw during the tail, milliwatts.
    pub tail_mw: f64,
    /// How long the interface stays in the tail after activity.
    pub tail_duration: SimDuration,
    /// Link rate used to convert bytes to active time, bits per second.
    pub bandwidth_bps: f64,
    /// Fixed protocol overhead added to every transmission, bytes
    /// (headers, ACK exchanges, wakeup frames).
    pub per_message_overhead_bytes: usize,
    state: RadioState,
    state_since: Timestamp,
    /// When the current tail expires (while in `Tail`).
    tail_until: Timestamp,
    energy_mj: f64,
}

impl Default for RadioModel {
    /// A 2012-era WiFi interface: ~10 mW idle, ~800 mW active, ~600 mW
    /// tail for ~1.8 s, 20 Mbit/s.
    fn default() -> Self {
        RadioModel {
            idle_mw: 10.0,
            active_mw: 800.0,
            tail_mw: 600.0,
            tail_duration: SimDuration::from_millis(1_800),
            bandwidth_bps: 20_000_000.0,
            per_message_overhead_bytes: 0,
            state: RadioState::Idle,
            state_since: Timestamp::ZERO,
            tail_until: Timestamp::ZERO,
            energy_mj: 0.0,
        }
    }
}

impl RadioModel {
    /// Creates the default radio with its clock at `start`.
    pub fn new(start: Timestamp) -> Self {
        RadioModel {
            state_since: start,
            ..RadioModel::default()
        }
    }

    /// A radio whose integral reproduces the calibrated constant-cost
    /// model in [`EnergyProfile`](crate::EnergyProfile): per-byte energy,
    /// per-message overhead and per-burst tail all match. The implied
    /// parameters (≈0.5 Mbit/s effective throughput, ≈13 mW tail) describe
    /// the *battery-visible* radio behaviour behind the paper's per-cycle
    /// energies, which are far below a worst-case 2012 WiFi tail — the
    /// handset's interface evidently slept aggressively between cycles.
    pub fn calibrated_to(profile: &crate::EnergyProfile, start: Timestamp) -> Self {
        const MJ_PER_UAH: f64 = 3.7 * 3_600.0 / 1_000.0; // 13.32 mJ per µAH
        let active_mw = 800.0;
        // Per-byte active time from the profile's per-byte energy.
        let per_byte_mj = profile.tx_per_byte_uah * MJ_PER_UAH;
        let bandwidth_bps = active_mw * 8.0 / per_byte_mj;
        // Per-message constant cost as protocol overhead bytes.
        let per_message_mj = profile.tx_per_message_uah * MJ_PER_UAH;
        let overhead_bytes = (per_message_mj / per_byte_mj).round() as usize;
        // Tail power spreading the per-burst tail charge over the window.
        let tail_duration = SimDuration::from_millis(1_800);
        let tail_mw = profile.radio_tail_uah * MJ_PER_UAH / tail_duration.as_secs_f64();
        RadioModel {
            idle_mw: 0.0, // the profile charges idle separately
            active_mw,
            tail_mw,
            tail_duration,
            bandwidth_bps,
            per_message_overhead_bytes: overhead_bytes,
            state: RadioState::Idle,
            state_since: start,
            tail_until: start,
            energy_mj: 0.0,
        }
    }

    /// Current state (after any pending tail expiry at `now`).
    pub fn state_at(&mut self, now: Timestamp) -> RadioState {
        self.advance_to(now);
        self.state
    }

    /// Records a transmission of `bytes` starting at `now`. Returns the
    /// time the radio finishes the active period.
    pub fn transmit(&mut self, now: Timestamp, bytes: usize) -> Timestamp {
        self.advance_to(now);
        // Active for the serialization time, including protocol overhead.
        let bytes = bytes + self.per_message_overhead_bytes;
        let active_s = (bytes as f64 * 8.0) / self.bandwidth_bps;
        let active = SimDuration::from_secs_f64(active_s.max(0.001));
        self.transition(now, RadioState::Active);
        let done = now + active;
        self.advance_to(done);
        self.transition(done, RadioState::Tail);
        self.tail_until = done + self.tail_duration;
        done
    }

    /// Total integrated energy up to `now`, in millijoules.
    pub fn energy_mj(&mut self, now: Timestamp) -> f64 {
        self.advance_to(now);
        self.energy_mj
    }

    /// Integrated energy converted to µAH at a nominal 3.7 V battery.
    pub fn energy_uah(&mut self, now: Timestamp) -> f64 {
        // 1 mJ = 1 mW·s; µAH = mJ / 3.7 V / 3600 s × 1000.
        self.energy_mj(now) / 3.7 / 3_600.0 * 1_000.0
    }

    fn power_mw(&self) -> f64 {
        match self.state {
            RadioState::Idle => self.idle_mw,
            RadioState::Active => self.active_mw,
            RadioState::Tail => self.tail_mw,
        }
    }

    /// Integrates energy forward to `now`, handling tail expiry.
    fn advance_to(&mut self, now: Timestamp) {
        debug_assert!(now >= self.state_since, "radio clock went backwards");
        if self.state == RadioState::Tail && now >= self.tail_until {
            // Integrate the remaining tail, then idle from tail end.
            let tail_s = self
                .tail_until
                .saturating_since(self.state_since)
                .as_secs_f64();
            self.energy_mj += self.tail_mw * tail_s;
            self.state = RadioState::Idle;
            self.state_since = self.tail_until;
        }
        let dt_s = now.saturating_since(self.state_since).as_secs_f64();
        self.energy_mj += self.power_mw() * dt_s;
        self.state_since = now;
    }

    fn transition(&mut self, now: Timestamp, state: RadioState) {
        debug_assert!(now >= self.state_since);
        self.state = state;
        self.state_since = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_radio_draws_idle_power() {
        let mut radio = RadioModel::new(Timestamp::ZERO);
        let e = radio.energy_mj(Timestamp::from_secs(100));
        assert!((e - 10.0 * 100.0).abs() < 1e-6);
        assert_eq!(radio.state_at(Timestamp::from_secs(100)), RadioState::Idle);
    }

    #[test]
    fn transmission_enters_tail_then_idle() {
        let mut radio = RadioModel::new(Timestamp::ZERO);
        radio.transmit(Timestamp::from_secs(10), 10_000);
        assert_eq!(radio.state_at(Timestamp::from_millis(10_500)), RadioState::Tail);
        assert_eq!(radio.state_at(Timestamp::from_secs(13)), RadioState::Idle);
    }

    #[test]
    fn tail_energy_dominates_small_transfers() {
        let mut radio = RadioModel::new(Timestamp::ZERO);
        radio.transmit(Timestamp::from_secs(1), 100);
        let total = radio.energy_mj(Timestamp::from_secs(10));
        // Idle-only baseline over 10 s would be 100 mJ; the tail adds ~1 J.
        let baseline = 10.0 * 10.0;
        assert!(total > baseline + 900.0, "total {total}");
    }

    #[test]
    fn bursts_within_one_tail_share_it() {
        // Two transmissions 500 ms apart: the second rides the first's
        // tail, so total energy is well below two independent tails.
        let mut twice = RadioModel::new(Timestamp::ZERO);
        twice.transmit(Timestamp::from_secs(1), 1_000);
        twice.transmit(Timestamp::from_millis(1_500), 1_000);
        let shared = twice.energy_mj(Timestamp::from_secs(10));

        let mut spaced = RadioModel::new(Timestamp::ZERO);
        spaced.transmit(Timestamp::from_secs(1), 1_000);
        spaced.transmit(Timestamp::from_secs(6), 1_000);
        let independent = spaced.energy_mj(Timestamp::from_secs(10));

        assert!(shared < independent - 500.0, "shared {shared} vs {independent}");
    }

    /// The constant-per-burst model used by `EnergyProfile` agrees with
    /// the time-integrated radio it was calibrated from, for duty-cycled
    /// workloads (bursts spaced beyond the tail).
    #[test]
    fn constant_tail_approximation_holds_for_duty_cycles() {
        let profile = crate::EnergyProfile::default();
        let mut radio = RadioModel::calibrated_to(&profile, Timestamp::ZERO);
        let bytes = 16 + 24 * 400; // one raw accelerometer burst
        let n = 60u64;
        for i in 0..n {
            radio.transmit(Timestamp::from_secs(60 * (i + 1)), bytes);
        }
        let end = Timestamp::from_secs(60 * (n + 1));
        let integrated = radio.energy_uah(end);
        let constant_model =
            n as f64 * (profile.transmission_uah(bytes) + profile.radio_tail_uah);
        let ratio = integrated / constant_model;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "integrated {integrated:.1} vs constant {constant_model:.1} (ratio {ratio:.2})"
        );
    }

    /// The calibrated model diverges from the constant model when bursts
    /// pack inside one tail window — the regime the constant-per-burst
    /// approximation over-charges.
    #[test]
    fn constant_model_overcharges_packed_bursts() {
        let profile = crate::EnergyProfile::default();
        let mut radio = RadioModel::calibrated_to(&profile, Timestamp::ZERO);
        let bytes = 200usize;
        let n = 20u64;
        // 20 bursts 200 ms apart: all inside a rolling tail.
        for i in 0..n {
            radio.transmit(Timestamp::from_millis(1_000 + 200 * i), bytes);
        }
        let integrated = radio.energy_uah(Timestamp::from_secs(30));
        let constant_model =
            n as f64 * (profile.transmission_uah(bytes) + profile.radio_tail_uah);
        assert!(
            integrated < 0.7 * constant_model,
            "packed bursts should share tails: {integrated:.1} vs {constant_model:.1}"
        );
    }
}
