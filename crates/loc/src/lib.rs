//! Line-of-code counter for Rust sources (CLOC substitute).
//!
//! The paper quantifies both the middleware itself (Table 1) and the
//! programming effort saved by it (Table 5) with the CLOC tool. This crate
//! measures our tree the same way: per-file code/comment/blank splits with
//! a small lexer that understands line comments, (nested) block comments,
//! string literals and raw strings, so a `//` inside a string is not
//! mistaken for a comment.
//!
//! # Example
//!
//! ```
//! use sensocial_loc::count_str;
//!
//! let counts = count_str(r#"
//! // A greeting.
//! fn main() {
//!     println!("hello // not a comment");
//! }
//! "#);
//! assert_eq!(counts.code, 3);
//! assert_eq!(counts.comment, 1);
//! assert_eq!(counts.blank, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Per-file (or aggregated) line counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileCounts {
    /// Lines containing at least one code token.
    pub code: usize,
    /// Lines containing only comment text (and whitespace).
    pub comment: usize,
    /// Whitespace-only lines.
    pub blank: usize,
}

impl FileCounts {
    /// Total physical lines.
    pub fn total(&self) -> usize {
        self.code + self.comment + self.blank
    }
}

impl std::ops::Add for FileCounts {
    type Output = FileCounts;

    fn add(self, rhs: FileCounts) -> FileCounts {
        FileCounts {
            code: self.code + rhs.code,
            comment: self.comment + rhs.comment,
            blank: self.blank + rhs.blank,
        }
    }
}

impl std::ops::AddAssign for FileCounts {
    fn add_assign(&mut self, rhs: FileCounts) {
        *self = *self + rhs;
    }
}

/// Aggregated counts over a source tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TreeReport {
    /// Totals over all files.
    pub totals: FileCounts,
    /// Per-file counts, sorted by path.
    pub per_file: Vec<(PathBuf, FileCounts)>,
}

impl TreeReport {
    /// Number of files counted.
    pub fn file_count(&self) -> usize {
        self.per_file.len()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Normal,
    BlockComment(u32),
    String,
    RawString(u32),
}

/// Counts code/comment/blank lines in Rust source text.
pub fn count_str(source: &str) -> FileCounts {
    let mut counts = FileCounts::default();
    let mut state = LexState::Normal;

    for line in source.lines() {
        let mut has_code = false;
        let mut has_comment = false;
        let bytes = line.as_bytes();
        let mut i = 0usize;

        while i < bytes.len() {
            match state {
                LexState::Normal => {
                    let rest = &line[i..];
                    if rest.starts_with("//") {
                        has_comment = true;
                        break; // Rest of the line is comment.
                    } else if rest.starts_with("/*") {
                        has_comment = true;
                        state = LexState::BlockComment(1);
                        i += 2;
                    } else if let Some(hashes) = raw_string_open(rest) {
                        has_code = true;
                        state = LexState::RawString(hashes);
                        i += 2 + hashes as usize; // r#..."
                    } else if rest.starts_with('"') {
                        has_code = true;
                        state = LexState::String;
                        i += 1;
                    } else {
                        if !bytes[i].is_ascii_whitespace() {
                            has_code = true;
                        }
                        // Skip char literals wholesale so '"' or '/' inside
                        // them can't confuse the lexer. Lifetimes ('a) do
                        // not look like terminated char literals and fall
                        // through harmlessly.
                        if bytes[i] == b'\'' {
                            if let Some(len) = char_literal_len(rest) {
                                i += len;
                                continue;
                            }
                        }
                        i += 1;
                    }
                }
                LexState::BlockComment(depth) => {
                    has_comment = true;
                    let rest = &line[i..];
                    if rest.starts_with("/*") {
                        state = LexState::BlockComment(depth + 1);
                        i += 2;
                    } else if rest.starts_with("*/") {
                        state = if depth == 1 {
                            LexState::Normal
                        } else {
                            LexState::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                LexState::String => {
                    has_code = true;
                    if bytes[i] == b'\\' {
                        i += 2; // Skip the escaped character.
                    } else if bytes[i] == b'"' {
                        state = LexState::Normal;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                LexState::RawString(hashes) => {
                    has_code = true;
                    let rest = &line[i..];
                    let close: String =
                        std::iter::once('"').chain((0..hashes).map(|_| '#')).collect();
                    if rest.starts_with(&close) {
                        state = LexState::Normal;
                        i += close.len();
                    } else {
                        i += 1;
                    }
                }
            }
        }

        // Classification priority: any code token → code line; else any
        // comment → comment line; else blank. Multi-line strings count as
        // code even for their blank-looking middle lines (they are data).
        let in_string = matches!(state, LexState::String | LexState::RawString(_));
        let in_block = matches!(state, LexState::BlockComment(_));
        if has_code || (in_string && !line.trim().is_empty()) {
            counts.code += 1;
        } else if has_comment || in_block && !line.trim().is_empty() {
            counts.comment += 1;
        } else if line.trim().is_empty() {
            counts.blank += 1;
        } else {
            counts.code += 1;
        }
        // Line comments never continue; reset is implicit (state only
        // survives for block comments and strings).
    }
    counts
}

fn raw_string_open(rest: &str) -> Option<u32> {
    // r"..."  r#"..."#  r##"..."##  (also br"...")
    let after_prefix = rest.strip_prefix("br").or_else(|| rest.strip_prefix('r'))?;
    let hashes = after_prefix.bytes().take_while(|b| *b == b'#').count();
    if after_prefix[hashes..].starts_with('"') {
        Some(hashes as u32)
    } else {
        None
    }
}

fn char_literal_len(rest: &str) -> Option<usize> {
    // 'x'  '\n'  '\u{1F600}' — find the closing quote within a small
    // window; otherwise it's a lifetime.
    let bytes = rest.as_bytes();
    if bytes.len() < 3 {
        return None;
    }
    let mut i = 1;
    if bytes[i] == b'\\' {
        i += 2;
        while i < bytes.len().min(12) && bytes[i] != b'\'' {
            i += 1;
        }
        (i < bytes.len() && bytes[i] == b'\'').then_some(i + 1)
    } else {
        // Multi-byte UTF-8 scalar or ASCII.
        let ch_len = rest[1..].chars().next()?.len_utf8();
        let close = 1 + ch_len;
        (bytes.len() > close && bytes[close] == b'\'').then_some(close + 1)
    }
}

/// Counts one file.
///
/// # Errors
///
/// Propagates I/O errors from reading the file.
pub fn count_file(path: &Path) -> io::Result<FileCounts> {
    Ok(count_str(&fs::read_to_string(path)?))
}

/// Recursively counts every `.rs` file under `root`, skipping `target`
/// directories and hidden entries.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal.
pub fn count_tree(root: &Path) -> io::Result<TreeReport> {
    let mut report = TreeReport::default();
    walk(root, &mut report)?;
    report.per_file.sort_by(|a, b| a.0.cmp(&b.0));
    for (_, counts) in &report.per_file {
        report.totals += *counts;
    }
    Ok(report)
}

fn walk(dir: &Path, report: &mut TreeReport) -> io::Result<()> {
    if !dir.is_dir() {
        if dir.extension().is_some_and(|e| e == "rs") {
            let counts = count_file(dir)?;
            report.per_file.push((dir.to_path_buf(), counts));
        }
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name == "target" || name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            walk(&path, report)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let counts = count_file(&path)?;
            report.per_file.push((path, counts));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_simple_lines() {
        let counts = count_str("fn main() {}\n\n// comment\nlet x = 1; // trailing\n");
        assert_eq!(counts.code, 2);
        assert_eq!(counts.comment, 1);
        assert_eq!(counts.blank, 1);
    }

    #[test]
    fn block_comments_span_lines() {
        let counts = count_str("/*\n multi\n line\n*/\nfn f() {}\n");
        assert_eq!(counts.comment, 4);
        assert_eq!(counts.code, 1);
    }

    #[test]
    fn nested_block_comments() {
        let counts = count_str("/* outer /* inner */ still comment */\nlet x = 1;\n");
        assert_eq!(counts.comment, 1);
        assert_eq!(counts.code, 1);
    }

    #[test]
    fn code_before_block_comment_counts_as_code() {
        let counts = count_str("let x = 1; /* tail comment\nstill comment */\n");
        assert_eq!(counts.code, 1);
        assert_eq!(counts.comment, 1);
    }

    #[test]
    fn comment_markers_inside_strings_are_code() {
        let counts = count_str("let url = \"https://example.com\";\nlet c = \"/* nope */\";\n");
        assert_eq!(counts.code, 2);
        assert_eq!(counts.comment, 0);
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let counts = count_str("let s = \"she said \\\"hi\\\" // ok\";\n");
        assert_eq!(counts.code, 1);
        assert_eq!(counts.comment, 0);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"contains \" and // comment\"#;\nlet t = 1;\n";
        let counts = count_str(src);
        assert_eq!(counts.code, 2);
        assert_eq!(counts.comment, 0);
    }

    #[test]
    fn multiline_strings_count_as_code() {
        let src = "let s = \"line one\nline two\";\n";
        let counts = count_str(src);
        assert_eq!(counts.code, 2);
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let counts = count_str("let q = '\"'; // quote char\nlet s = '/';\n");
        assert_eq!(counts.code, 2);
        assert_eq!(counts.comment, 0);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let counts = count_str("fn f<'a>(x: &'a str) -> &'a str { x } // ok\n");
        assert_eq!(counts.code, 1);
    }

    #[test]
    fn doc_comments_are_comments() {
        let counts = count_str("/// Doc line.\n//! Inner doc.\npub fn f() {}\n");
        assert_eq!(counts.comment, 2);
        assert_eq!(counts.code, 1);
    }

    #[test]
    fn totals_add_up() {
        let a = FileCounts {
            code: 1,
            comment: 2,
            blank: 3,
        };
        let b = FileCounts {
            code: 10,
            comment: 20,
            blank: 30,
        };
        let sum = a + b;
        assert_eq!(sum.total(), 66);
    }

    #[test]
    fn counts_this_crate() {
        let report = count_tree(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        assert!(report.file_count() >= 1);
        assert!(report.totals.code > 100);
        assert!(report.totals.comment > 10);
    }
}
