//! Deterministic fault injection: partitions, endpoint outages, flapping
//! radios and latency spikes.
//!
//! The paper's deployment assumes a mobile client whose connectivity comes
//! and goes: records are stored locally and uploaded "as soon as a
//! connection is available". Reproducing that behaviour requires failure
//! to be a *scriptable input*, not an emergent property of random loss.
//! Every fault here is expressed as a window of virtual time, evaluated
//! against the scheduler clock at send/delivery time, so a scenario with
//! the same seed produces bit-identical outcomes.

use sensocial_runtime::{SimDuration, Timestamp};

use crate::message::EndpointId;

/// Why the network dropped (or refused) a message. Each cause has its own
/// `net.dropped.*` telemetry counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Random link loss (`LinkSpec::loss_probability`).
    Loss,
    /// An active partition between the source and destination.
    Partition,
    /// The source or destination endpoint was down (outage or flap).
    EndpointDown,
}

/// A half-open window of virtual time `[from, until)` during which a fault
/// is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First instant (inclusive) the fault applies.
    pub from: Timestamp,
    /// First instant (exclusive) the fault no longer applies.
    pub until: Timestamp,
}

impl FaultWindow {
    /// A window covering `[from, until)`.
    pub fn new(from: Timestamp, until: Timestamp) -> Self {
        FaultWindow { from, until }
    }

    /// A window starting at the epoch — "active immediately" for scenarios
    /// that script faults relative to the current instant.
    pub fn until(until: Timestamp) -> Self {
        FaultWindow {
            from: Timestamp::ZERO,
            until,
        }
    }

    /// A window covering `[from, from + length)` — the natural shape for
    /// scenario scripts that think in "outage at T lasting D".
    pub fn starting_at(from: Timestamp, length: SimDuration) -> Self {
        FaultWindow {
            from,
            until: from + length,
        }
    }

    /// The same window shifted `offset` later — used to stagger one fault
    /// shape across a fleet of endpoints (churn waves).
    #[must_use]
    pub fn shifted(self, offset: SimDuration) -> Self {
        FaultWindow {
            from: self.from + offset,
            until: self.until + offset,
        }
    }

    /// The window clipped so it never extends past `deadline`. Returns
    /// `None` when nothing of the window survives the clip.
    #[must_use]
    pub fn clipped_to(self, deadline: Timestamp) -> Option<Self> {
        if self.from >= deadline {
            return None;
        }
        Some(FaultWindow {
            from: self.from,
            until: self.until.min(deadline),
        })
    }

    /// Whether `at` falls inside the window.
    pub fn contains(&self, at: Timestamp) -> bool {
        at >= self.from && at < self.until
    }
}

/// A deterministic square-wave outage: starting at `window.from` the
/// endpoint is down for `down_for`, up for `up_for`, down again, … until
/// `window.until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FlapSchedule {
    pub window: FaultWindow,
    pub down_for: SimDuration,
    pub up_for: SimDuration,
}

impl FlapSchedule {
    /// Whether the flapping endpoint is in a down phase at `at`.
    pub fn is_down(&self, at: Timestamp) -> bool {
        if !self.window.contains(at) {
            return false;
        }
        let period = self.down_for.as_millis() + self.up_for.as_millis();
        if period == 0 {
            return false;
        }
        let offset = at.saturating_since(self.window.from).as_millis() % period;
        offset < self.down_for.as_millis()
    }
}

/// An additive delay applied to messages on the directed pair while the
/// window is active — a congested or degraded link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LatencySpike {
    pub from: EndpointId,
    pub to: EndpointId,
    pub window: FaultWindow,
    pub extra: SimDuration,
}

/// The scripted faults active on a [`Network`](crate::Network).
///
/// Mutated through the `Network` fault API ([`Network::partition`],
/// [`Network::set_endpoint_down`], [`Network::flap_endpoint`],
/// [`Network::inject_latency_spike`](crate::Network::inject_latency_spike));
/// all state is plain data evaluated against the virtual clock, so fault
/// scenarios replay identically under the same seed.
///
/// [`Network::partition`]: crate::Network::partition
/// [`Network::set_endpoint_down`]: crate::Network::set_endpoint_down
/// [`Network::flap_endpoint`]: crate::Network::flap_endpoint
#[derive(Debug, Default)]
pub(crate) struct FaultPlan {
    /// Directed partitioned pairs with their active windows.
    partitions: Vec<(EndpointId, EndpointId, FaultWindow)>,
    /// Hard outage windows per endpoint.
    down: Vec<(EndpointId, FaultWindow)>,
    /// Flapping schedules per endpoint.
    flaps: Vec<(EndpointId, FlapSchedule)>,
    /// Latency spikes on directed pairs.
    spikes: Vec<LatencySpike>,
}

impl FaultPlan {
    /// Adds a directed partition window.
    pub fn add_partition(&mut self, from: EndpointId, to: EndpointId, window: FaultWindow) {
        self.partitions.push((from, to, window));
    }

    /// Removes every partition window touching the (unordered) pair.
    pub fn heal_partition(&mut self, a: &EndpointId, b: &EndpointId) {
        self.partitions
            .retain(|(x, y, _)| !((x == a && y == b) || (x == b && y == a)));
    }

    /// Adds an outage window for an endpoint.
    pub fn add_down(&mut self, id: EndpointId, window: FaultWindow) {
        self.down.push((id, window));
    }

    /// Adds a flapping schedule for an endpoint.
    pub fn add_flap(&mut self, id: EndpointId, schedule: FlapSchedule) {
        self.flaps.push((id, schedule));
    }

    /// Removes every outage and flap for an endpoint.
    pub fn clear_endpoint(&mut self, id: &EndpointId) {
        self.down.retain(|(x, _)| x != id);
        self.flaps.retain(|(x, _)| x != id);
    }

    /// Adds a latency spike on a directed pair.
    pub fn add_spike(&mut self, spike: LatencySpike) {
        self.spikes.push(spike);
    }

    /// Whether the endpoint is down (outage or flap) at `at`.
    pub fn endpoint_down(&self, id: &EndpointId, at: Timestamp) -> bool {
        self.down
            .iter()
            .any(|(x, w)| x == id && w.contains(at))
            || self.flaps.iter().any(|(x, f)| x == id && f.is_down(at))
    }

    /// Whether the directed pair is partitioned at `at`.
    pub fn partitioned(&self, from: &EndpointId, to: &EndpointId, at: Timestamp) -> bool {
        self.partitions
            .iter()
            .any(|(x, y, w)| x == from && y == to && w.contains(at))
    }

    /// Sum of active latency spikes on the directed pair at `at`.
    pub fn extra_latency(&self, from: &EndpointId, to: &EndpointId, at: Timestamp) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        for spike in &self.spikes {
            if spike.from == *from && spike.to == *to && spike.window.contains(at) {
                extra += spike.extra;
            }
        }
        extra
    }

    /// The fault (if any) that kills a send from `from` to `to` at `at`.
    pub fn drop_cause(
        &self,
        from: &EndpointId,
        to: &EndpointId,
        at: Timestamp,
    ) -> Option<DropCause> {
        if self.endpoint_down(from, at) || self.endpoint_down(to, at) {
            return Some(DropCause::EndpointDown);
        }
        if self.partitioned(from, to, at) {
            return Some(DropCause::Partition);
        }
        None
    }

    /// Drops windows that can never be active again (housekeeping for long
    /// runs).
    pub fn prune(&mut self, now: Timestamp) {
        self.partitions.retain(|(_, _, w)| w.until > now);
        self.down.retain(|(_, w)| w.until > now);
        self.flaps.retain(|(_, f)| f.window.until > now);
        self.spikes.retain(|s| s.window.until > now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn window_is_half_open() {
        let w = FaultWindow::new(ts(10), ts(20));
        assert!(!w.contains(ts(9)));
        assert!(w.contains(ts(10)));
        assert!(w.contains(ts(19)));
        assert!(!w.contains(ts(20)));
    }

    #[test]
    fn window_composition_helpers() {
        let w = FaultWindow::starting_at(ts(10), SimDuration::from_secs(5));
        assert_eq!(w, FaultWindow::new(ts(10), ts(15)));

        let shifted = w.shifted(SimDuration::from_secs(3));
        assert_eq!(shifted, FaultWindow::new(ts(13), ts(18)));

        assert_eq!(
            shifted.clipped_to(ts(15)),
            Some(FaultWindow::new(ts(13), ts(15)))
        );
        assert_eq!(shifted.clipped_to(ts(13)), None, "nothing survives");
        assert_eq!(shifted.clipped_to(ts(30)), Some(shifted), "no-op clip");
    }

    #[test]
    fn zero_length_window_contains_nothing() {
        // `starting_at` with a zero duration yields `[from, from)` — a
        // degenerate window that must never fire, not even at `from`.
        let w = FaultWindow::starting_at(ts(10), SimDuration::ZERO);
        assert_eq!(w.from, w.until);
        assert!(!w.contains(ts(9)));
        assert!(!w.contains(ts(10)));
        assert!(!w.contains(ts(11)));

        // Shifting preserves the degenerate shape.
        let shifted = w.shifted(SimDuration::from_secs(5));
        assert_eq!(shifted, FaultWindow::new(ts(15), ts(15)));
        assert!(!shifted.contains(ts(15)));

        // Clipping a zero-length window ahead of the deadline keeps it
        // (still inert); a deadline at or before `from` removes it.
        assert_eq!(w.clipped_to(ts(20)), Some(w));
        assert_eq!(w.clipped_to(ts(10)), None);
    }

    #[test]
    fn clip_to_empty_and_boundary_cases() {
        let w = FaultWindow::new(ts(10), ts(20));
        // Deadline before the window: gone entirely.
        assert_eq!(w.clipped_to(ts(5)), None);
        // Deadline exactly at `from`: the half-open clip leaves nothing.
        assert_eq!(w.clipped_to(ts(10)), None);
        // One instant past `from` survives as a sliver that still fires
        // at `from` only.
        let sliver = w
            .clipped_to(Timestamp::from_millis(10_001))
            .expect("sliver survives");
        assert!(sliver.contains(ts(10)));
        assert!(!sliver.contains(Timestamp::from_millis(10_001)));
        // Deadline exactly at `until` is a no-op (window is already
        // half-open there).
        assert_eq!(w.clipped_to(ts(20)), Some(w));
    }

    #[test]
    fn overlapping_shifted_windows_union_in_plan() {
        // A churn wave staggers one outage shape across endpoints; when
        // the stagger is shorter than the outage the shifted copies
        // overlap. Registering both on the *same* endpoint must behave as
        // the union of the windows, with no double-counting artifacts at
        // the overlap or at the seam boundaries.
        let base = FaultWindow::starting_at(ts(10), SimDuration::from_secs(10)); // [10, 20)
        let shifted = base.shifted(SimDuration::from_secs(5)); // [15, 25)
        assert!(base.contains(ts(16)) && shifted.contains(ts(16)), "overlap");

        let mut plan = FaultPlan::default();
        let a: EndpointId = "a".into();
        plan.add_down(a.clone(), base);
        plan.add_down(a.clone(), shifted);

        assert!(!plan.endpoint_down(&a, ts(9)));
        assert!(plan.endpoint_down(&a, ts(10)), "base start");
        assert!(plan.endpoint_down(&a, ts(16)), "overlap region");
        assert!(plan.endpoint_down(&a, ts(20)), "shifted covers base end");
        assert!(plan.endpoint_down(&a, ts(24)));
        assert!(!plan.endpoint_down(&a, ts(25)), "half-open at shifted end");

        // Pruning at a point inside the overlap keeps both windows (both
        // still have future coverage); pruning past the union clears all.
        plan.prune(ts(16));
        assert!(plan.endpoint_down(&a, ts(24)));
        plan.prune(ts(25));
        assert!(!plan.endpoint_down(&a, ts(24)), "expired windows pruned");
    }

    #[test]
    fn flap_alternates_deterministically() {
        let f = FlapSchedule {
            window: FaultWindow::new(ts(0), ts(100)),
            down_for: SimDuration::from_secs(2),
            up_for: SimDuration::from_secs(3),
        };
        assert!(f.is_down(ts(0)));
        assert!(f.is_down(ts(1)));
        assert!(!f.is_down(ts(2)));
        assert!(!f.is_down(ts(4)));
        assert!(f.is_down(ts(5)));
        assert!(!f.is_down(ts(100)), "outside the window");
    }

    #[test]
    fn zero_period_flap_is_inert() {
        let f = FlapSchedule {
            window: FaultWindow::new(ts(0), ts(10)),
            down_for: SimDuration::ZERO,
            up_for: SimDuration::ZERO,
        };
        assert!(!f.is_down(ts(1)));
    }

    #[test]
    fn plan_resolves_causes_in_priority_order() {
        let mut plan = FaultPlan::default();
        let (a, b): (EndpointId, EndpointId) = ("a".into(), "b".into());
        plan.add_partition(a.clone(), b.clone(), FaultWindow::until(ts(50)));
        plan.add_down(a.clone(), FaultWindow::new(ts(10), ts(20)));
        // Down outranks partition while both are active.
        assert_eq!(plan.drop_cause(&a, &b, ts(15)), Some(DropCause::EndpointDown));
        assert_eq!(plan.drop_cause(&a, &b, ts(25)), Some(DropCause::Partition));
        assert_eq!(plan.drop_cause(&a, &b, ts(60)), None);
        // Partition is directed: b→a was never partitioned.
        assert_eq!(plan.drop_cause(&b, &a, ts(25)), None);
    }

    #[test]
    fn heal_removes_both_directions() {
        let mut plan = FaultPlan::default();
        let (a, b): (EndpointId, EndpointId) = ("a".into(), "b".into());
        plan.add_partition(a.clone(), b.clone(), FaultWindow::until(ts(50)));
        plan.add_partition(b.clone(), a.clone(), FaultWindow::until(ts(50)));
        plan.heal_partition(&a, &b);
        assert_eq!(plan.drop_cause(&a, &b, ts(5)), None);
        assert_eq!(plan.drop_cause(&b, &a, ts(5)), None);
    }

    #[test]
    fn spikes_accumulate() {
        let mut plan = FaultPlan::default();
        let (a, b): (EndpointId, EndpointId) = ("a".into(), "b".into());
        plan.add_spike(LatencySpike {
            from: a.clone(),
            to: b.clone(),
            window: FaultWindow::new(ts(0), ts(10)),
            extra: SimDuration::from_millis(100),
        });
        plan.add_spike(LatencySpike {
            from: a.clone(),
            to: b.clone(),
            window: FaultWindow::new(ts(5), ts(10)),
            extra: SimDuration::from_millis(50),
        });
        assert_eq!(plan.extra_latency(&a, &b, ts(1)), SimDuration::from_millis(100));
        assert_eq!(plan.extra_latency(&a, &b, ts(6)), SimDuration::from_millis(150));
        assert_eq!(plan.extra_latency(&a, &b, ts(11)), SimDuration::ZERO);
        assert_eq!(plan.extra_latency(&b, &a, ts(1)), SimDuration::ZERO);
    }

    #[test]
    fn prune_keeps_future_windows() {
        let mut plan = FaultPlan::default();
        let (a, b): (EndpointId, EndpointId) = ("a".into(), "b".into());
        plan.add_partition(a.clone(), b.clone(), FaultWindow::new(ts(0), ts(10)));
        plan.add_partition(a.clone(), b.clone(), FaultWindow::new(ts(20), ts(30)));
        plan.prune(ts(15));
        assert!(!plan.partitioned(&a, &b, ts(5)), "expired window pruned");
        assert!(plan.partitioned(&a, &b, ts(25)), "future window kept");
    }
}
