//! Latency distributions for simulated links.

use std::fmt;

use sensocial_runtime::{SimDuration, SimRng};

/// A delay distribution sampled once per message.
///
/// Table 3's structure is reproduced by composing these: the OSN
/// notification path uses a normal distribution around ~46 s, while the
/// broker's push path uses sub-second constants plus server processing.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Normally distributed delay (seconds), truncated below at `min_s`.
    Normal {
        /// Mean delay in seconds.
        mean_s: f64,
        /// Standard deviation in seconds.
        std_s: f64,
        /// Lower truncation bound in seconds.
        min_s: f64,
    },
    /// Exponentially distributed delay with the given mean (seconds).
    Exponential {
        /// Mean delay in seconds.
        mean_s: f64,
    },
}

impl LatencyModel {
    /// A constant delay of `ms` milliseconds.
    pub fn constant_ms(ms: u64) -> Self {
        LatencyModel::Constant(SimDuration::from_millis(ms))
    }

    /// A normal delay, truncated at zero.
    pub fn normal_s(mean_s: f64, std_s: f64) -> Self {
        LatencyModel::Normal {
            mean_s,
            std_s,
            min_s: 0.0,
        }
    }

    /// Samples a delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Normal {
                mean_s,
                std_s,
                min_s,
            } => SimDuration::from_secs_f64(rng.normal_min(mean_s, std_s, min_s)),
            LatencyModel::Exponential { mean_s } => {
                SimDuration::from_secs_f64(rng.exponential(1.0 / mean_s.max(1e-9)))
            }
        }
    }

    /// The distribution's mean, in seconds (for reporting).
    pub fn mean_s(&self) -> f64 {
        match *self {
            LatencyModel::Constant(d) => d.as_secs_f64(),
            LatencyModel::Normal { mean_s, .. } => mean_s,
            LatencyModel::Exponential { mean_s } => mean_s,
        }
    }
}

impl Default for LatencyModel {
    /// A 40 ms constant delay — a plausible uncongested WiFi + Internet
    /// round-trip leg, matching the paper's "uncongested WiFi network"
    /// measurement setting.
    fn default() -> Self {
        LatencyModel::constant_ms(40)
    }
}

impl fmt::Display for LatencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyModel::Constant(d) => write!(f, "constant({d})"),
            LatencyModel::Normal {
                mean_s,
                std_s,
                min_s,
            } => write!(f, "normal(μ={mean_s}s σ={std_s}s ≥{min_s}s)"),
            LatencyModel::Exponential { mean_s } => write!(f, "exponential(μ={mean_s}s)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_exact() {
        let mut rng = SimRng::seed_from(1);
        let m = LatencyModel::constant_ms(80);
        assert_eq!(m.sample(&mut rng), SimDuration::from_millis(80));
        assert_eq!(m.mean_s(), 0.08);
    }

    #[test]
    fn normal_matches_paper_table3_shape() {
        let mut rng = SimRng::seed_from(2);
        let m = LatencyModel::normal_s(46.5, 2.8);
        let n = 5_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample(&mut rng).as_secs_f64()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 46.5).abs() < 0.2, "mean {mean}");
        assert!(samples.iter().all(|s| *s >= 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::seed_from(3);
        let m = LatencyModel::Exponential { mean_s: 2.0 };
        let n = 20_000;
        let mean = (0..n).map(|_| m.sample(&mut rng).as_secs_f64()).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn truncation_floor_is_respected() {
        let mut rng = SimRng::seed_from(4);
        let m = LatencyModel::Normal {
            mean_s: 0.1,
            std_s: 5.0,
            min_s: 0.05,
        };
        for _ in 0..500 {
            assert!(m.sample(&mut rng) >= SimDuration::from_millis(50));
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!LatencyModel::default().to_string().is_empty());
        assert!(!LatencyModel::normal_s(1.0, 0.1).to_string().is_empty());
    }
}
