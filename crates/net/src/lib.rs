//! Simulated network substrate for the SenSocial reproduction.
//!
//! The paper's deployment spans three network segments: mobile ↔ server
//! (WiFi + Internet), server ↔ OSN (Internet), and the OSN platform's own
//! internal notification path (the dominant ~46 s of Table 3's delay). This
//! crate models message passing over those segments:
//!
//! * [`LatencyModel`] — constant / normal / exponential delay distributions;
//! * [`LinkSpec`] — latency + loss probability + bandwidth for a directed
//!   pair of endpoints;
//! * [`Network`] — an endpoint registry that delivers byte payloads through
//!   the discrete-event scheduler, with per-endpoint transmit/receive hooks
//!   so the energy model can charge radio costs (including the "energy
//!   tails due to the wireless interfaces being prevented from switching to
//!   sleep mode" the paper accounts for);
//! * [`FaultWindow`] / the `Network` fault API — scripted partitions,
//!   endpoint outages, flapping schedules and latency spikes, all windows of
//!   virtual time so chaos scenarios replay deterministically, with
//!   per-cause drop counters ([`DropCause`]) recorded as `net.dropped.*`
//!   telemetry counters in the network's `telemetry()` registry.
//!
//! # Example
//!
//! ```
//! use sensocial_net::{EndpointId, LatencyModel, LinkSpec, Network};
//! use sensocial_runtime::{Scheduler, SimDuration};
//! use std::sync::{Arc, Mutex};
//!
//! let mut sched = Scheduler::new();
//! let net = Network::new(42);
//!
//! let inbox = Arc::new(Mutex::new(Vec::new()));
//! let sink = inbox.clone();
//! let server = EndpointId::new("server");
//! net.register(server.clone(), move |_s, msg| {
//!     sink.lock().unwrap().push(msg.payload.to_vec());
//! });
//!
//! let phone = EndpointId::new("phone");
//! net.set_link(
//!     phone.clone(),
//!     server.clone(),
//!     LinkSpec::with_latency(LatencyModel::constant_ms(80)),
//! );
//!
//! net.send(&mut sched, &phone, &server, b"hello".to_vec()).unwrap();
//! sched.run();
//! assert_eq!(sched.now(), sensocial_runtime::Timestamp::from_millis(80));
//! assert_eq!(inbox.lock().unwrap().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod latency;
mod link;
mod message;
mod network;

pub use fault::{DropCause, FaultWindow};
pub use latency::LatencyModel;
pub use link::LinkSpec;
pub use message::{EndpointId, Message};
pub use network::{Network, SendOptions, TrafficDirection};
