//! Per-pair link characteristics.

use crate::latency::LatencyModel;

/// Characteristics of the directed link between two endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Propagation + queueing delay distribution.
    pub latency: LatencyModel,
    /// Probability in `[0, 1]` that a message is silently lost. QoS-1
    /// broker traffic retransmits over lossy links; QoS-0 traffic does not.
    pub loss_probability: f64,
    /// Link bandwidth in bits per second; `None` means transmission time is
    /// negligible compared to latency.
    pub bandwidth_bps: Option<u64>,
}

impl LinkSpec {
    /// A link with the given latency, no loss, unlimited bandwidth.
    pub fn with_latency(latency: LatencyModel) -> Self {
        LinkSpec {
            latency,
            ..LinkSpec::default()
        }
    }

    /// Sets the loss probability (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn lossy(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0, 1]");
        self.loss_probability = p;
        self
    }

    /// Sets the bandwidth in bits per second (builder-style).
    pub fn bandwidth(mut self, bps: u64) -> Self {
        self.bandwidth_bps = Some(bps);
        self
    }

    /// Serialization/transmission time for a payload of `bytes` bytes, in
    /// seconds.
    pub fn transmission_time_s(&self, bytes: usize) -> f64 {
        match self.bandwidth_bps {
            Some(bps) if bps > 0 => (bytes as f64 * 8.0) / bps as f64,
            _ => 0.0,
        }
    }
}

impl Default for LinkSpec {
    /// An uncongested WiFi-class link: 40 ms latency, no loss, 20 Mbit/s.
    fn default() -> Self {
        LinkSpec {
            latency: LatencyModel::default(),
            loss_probability: 0.0,
            bandwidth_bps: Some(20_000_000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let l = LinkSpec::with_latency(LatencyModel::constant_ms(10))
            .lossy(0.25)
            .bandwidth(1_000_000);
        assert_eq!(l.loss_probability, 0.25);
        assert_eq!(l.bandwidth_bps, Some(1_000_000));
    }

    #[test]
    fn transmission_time_scales_with_size() {
        let l = LinkSpec::default().bandwidth(8_000); // 1 kB/s
        assert!((l.transmission_time_s(1_000) - 1.0).abs() < 1e-9);
        assert_eq!(l.transmission_time_s(0), 0.0);
        let unlimited = LinkSpec {
            latency: LatencyModel::constant_ms(5),
            loss_probability: 0.0,
            bandwidth_bps: None,
        };
        assert_eq!(unlimited.transmission_time_s(1 << 20), 0.0);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_panics() {
        let _ = LinkSpec::default().lossy(1.5);
    }
}
