//! Endpoints and message envelopes.

use std::fmt;

use bytes::Bytes;
use sensocial_runtime::Timestamp;

/// Names a network endpoint — a mobile device, the SenSocial server, or the
/// OSN platform front-end.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(String);

impl EndpointId {
    /// Creates an endpoint id.
    pub fn new(name: impl Into<String>) -> Self {
        EndpointId(name.into())
    }

    /// The endpoint name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "endpoint:{}", self.0)
    }
}

impl From<&str> for EndpointId {
    fn from(s: &str) -> Self {
        EndpointId(s.to_owned())
    }
}

impl From<String> for EndpointId {
    fn from(s: String) -> Self {
        EndpointId(s)
    }
}

impl AsRef<str> for EndpointId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A message in flight (or delivered) on the simulated network.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending endpoint.
    pub from: EndpointId,
    /// Receiving endpoint.
    pub to: EndpointId,
    /// Opaque payload bytes (the broker and middleware serialize JSON into
    /// these, giving realistic per-message sizes for the energy model).
    pub payload: Bytes,
    /// Virtual time at which the payload was handed to the network.
    pub sent_at: Timestamp,
}

impl Message {
    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_conversions() {
        let a = EndpointId::new("server");
        assert_eq!(a, EndpointId::from("server"));
        assert_eq!(a.as_str(), "server");
        assert_eq!(a.to_string(), "endpoint:server");
    }

    #[test]
    fn message_len() {
        let m = Message {
            from: "a".into(),
            to: "b".into(),
            payload: Bytes::from_static(b"xyz"),
            sent_at: Timestamp::ZERO,
        };
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }
}
