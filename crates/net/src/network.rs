//! The endpoint registry and message-delivery engine.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use sensocial_runtime::{Scheduler, SimDuration, SimRng, Timestamp};
use sensocial_telemetry::Registry;
use sensocial_types::{Error, Result};

use crate::fault::{DropCause, FaultPlan, FaultWindow, FlapSchedule, LatencySpike};
use crate::link::LinkSpec;
use crate::message::{EndpointId, Message};

/// Handler invoked (through the scheduler, after link delay) when a message
/// arrives at an endpoint.
type MessageHandler = Arc<dyn Fn(&mut Scheduler, Message) + Send + Sync>;

/// Hook invoked synchronously whenever an endpoint transmits or receives,
/// letting the energy model charge radio costs per byte.
type TrafficHook = Arc<dyn Fn(TrafficDirection, usize) + Send + Sync>;

/// Whether a traffic hook observed a transmission or a reception.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficDirection {
    /// The endpoint sent a message.
    Transmit,
    /// The endpoint received a message.
    Receive,
}

/// Options controlling a single [`Network::send_with`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendOptions {
    /// If the destination endpoint is not registered, park the message in a
    /// bounded store-and-forward queue instead of returning
    /// [`Error::NotConnected`]. Parked messages sit outside the in-flight
    /// accounting (`sent`/`delivered`/`dropped`) until
    /// [`Network::flush_parked`] re-injects them; the network cannot flush
    /// them itself because `register` has no scheduler in scope.
    pub queue_if_down: bool,
}

/// Default bound on each per-endpoint store-and-forward queue.
const DEFAULT_PARKED_LIMIT: usize = 256;

struct Inner {
    endpoints: HashMap<EndpointId, MessageHandler>,
    links: HashMap<(EndpointId, EndpointId), LinkSpec>,
    default_link: LinkSpec,
    hooks: HashMap<EndpointId, Vec<TrafficHook>>,
    faults: FaultPlan,
    parked: HashMap<EndpointId, VecDeque<(EndpointId, Bytes)>>,
    parked_limit: usize,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            endpoints: HashMap::new(),
            links: HashMap::new(),
            default_link: LinkSpec::default(),
            hooks: HashMap::new(),
            faults: FaultPlan::default(),
            parked: HashMap::new(),
            parked_limit: DEFAULT_PARKED_LIMIT,
        }
    }
}

/// The simulated network: endpoints, links and delivery.
///
/// `Network` is cheaply cloneable (an `Arc` handle); every component holds a
/// clone. Delivery happens through the [`Scheduler`]: `send` samples the
/// link's latency and schedules the receiving handler.
///
/// Faults (partitions, outages, flapping, latency spikes) are scripted
/// windows of virtual time evaluated at send and delivery time — see the
/// fault API (`partition`, `set_endpoint_down`, `flap_endpoint`,
/// `inject_latency_spike`). All fault decisions are clock-driven, never
/// random, so a faulted scenario replays identically under the same seed.
///
/// See the [crate-level example](crate) for usage.
#[derive(Clone)]
pub struct Network {
    inner: Arc<Mutex<Inner>>,
    rng: Arc<Mutex<SimRng>>,
    telemetry: Registry,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Network")
            .field("endpoints", &inner.endpoints.len())
            .field("links", &inner.links.len())
            .field("telemetry", &self.telemetry)
            .finish()
    }
}

impl Network {
    /// Creates an empty network with a deterministic RNG seed (used for
    /// latency sampling and loss decisions).
    pub fn new(seed: u64) -> Self {
        Network {
            inner: Arc::new(Mutex::new(Inner::default())),
            rng: Arc::new(Mutex::new(SimRng::seed_from(seed))),
            telemetry: Registry::new("net"),
        }
    }

    /// The network's telemetry registry (scope `net`): delivery counters,
    /// the `net.transit_ms` latency histogram and the `net.parked_backlog`
    /// gauge, all driven by scheduler time.
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Registers an endpoint and its receive handler, replacing any
    /// previous registration under the same id.
    pub fn register<F>(&self, id: EndpointId, handler: F)
    where
        F: Fn(&mut Scheduler, Message) + Send + Sync + 'static,
    {
        self.inner.lock().endpoints.insert(id, Arc::new(handler));
    }

    /// Removes an endpoint. In-flight messages to it are dropped on
    /// arrival. Returns `true` if the endpoint existed.
    pub fn unregister(&self, id: &EndpointId) -> bool {
        self.inner.lock().endpoints.remove(id).is_some()
    }

    /// Whether an endpoint is currently registered.
    pub fn is_registered(&self, id: &EndpointId) -> bool {
        self.inner.lock().endpoints.contains_key(id)
    }

    /// Sets the link characteristics for the directed pair `from → to`.
    pub fn set_link(&self, from: EndpointId, to: EndpointId, spec: LinkSpec) {
        self.inner.lock().links.insert((from, to), spec);
    }

    /// Sets the link characteristics for both directions between `a` and `b`.
    pub fn set_link_bidirectional(&self, a: EndpointId, b: EndpointId, spec: LinkSpec) {
        let mut inner = self.inner.lock();
        inner.links.insert((a.clone(), b.clone()), spec.clone());
        inner.links.insert((b, a), spec);
    }

    /// Sets the fallback link used for pairs without an explicit link.
    pub fn set_default_link(&self, spec: LinkSpec) {
        self.inner.lock().default_link = spec;
    }

    /// Adds a traffic hook for `endpoint`, called synchronously on every
    /// transmit (at send time) and receive (at delivery time) with the
    /// payload size.
    pub fn add_traffic_hook<F>(&self, endpoint: EndpointId, hook: F)
    where
        F: Fn(TrafficDirection, usize) + Send + Sync + 'static,
    {
        self.inner
            .lock()
            .hooks
            .entry(endpoint)
            .or_default()
            .push(Arc::new(hook));
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Partitions `a` and `b` (both directions) from now until `until`.
    /// Messages between them are dropped and counted under
    /// `dropped_partition`.
    pub fn partition(&self, a: &EndpointId, b: &EndpointId, until: Timestamp) {
        self.partition_during(a, b, FaultWindow::until(until));
    }

    /// Partitions `a` and `b` (both directions) for an explicit window.
    pub fn partition_during(&self, a: &EndpointId, b: &EndpointId, window: FaultWindow) {
        let mut inner = self.inner.lock();
        inner.faults.add_partition(a.clone(), b.clone(), window);
        inner.faults.add_partition(b.clone(), a.clone(), window);
    }

    /// Removes every partition window between `a` and `b`, in both
    /// directions, regardless of when it would have expired.
    pub fn heal_partition(&self, a: &EndpointId, b: &EndpointId) {
        self.inner.lock().faults.heal_partition(a, b);
    }

    /// Marks `id` down for the window: every message to or from it in that
    /// interval is dropped (`dropped_endpoint_down`), including messages
    /// already in flight when it goes down.
    pub fn set_endpoint_down(&self, id: &EndpointId, window: FaultWindow) {
        self.inner.lock().faults.add_down(id.clone(), window);
    }

    /// Gives `id` a deterministic flapping schedule: starting at
    /// `window.from` it is down for `down_for`, up for `up_for`, down
    /// again, … until `window.until`.
    pub fn flap_endpoint(
        &self,
        id: &EndpointId,
        window: FaultWindow,
        down_for: SimDuration,
        up_for: SimDuration,
    ) {
        self.inner.lock().faults.add_flap(
            id.clone(),
            FlapSchedule {
                window,
                down_for,
                up_for,
            },
        );
    }

    /// Composes one flap shape across a fleet: endpoint `i` receives the
    /// flapping schedule `window.shifted(i * stagger)`, clipped so no
    /// schedule outlives `window.until` — a deterministic churn *wave*
    /// rolling through the population instead of a synchronized blackout.
    ///
    /// Endpoints whose staggered window would start at or after
    /// `window.until` get no fault at all, so over-long fleets degrade
    /// gracefully rather than flapping forever.
    pub fn churn_wave(
        &self,
        endpoints: &[EndpointId],
        window: FaultWindow,
        down_for: SimDuration,
        up_for: SimDuration,
        stagger: SimDuration,
    ) {
        for (i, id) in endpoints.iter().enumerate() {
            let shifted = window.shifted(stagger * (i as u64));
            if let Some(clipped) = shifted.clipped_to(window.until) {
                self.flap_endpoint(id, clipped, down_for, up_for);
            }
        }
    }

    /// Removes every outage and flapping schedule for `id`.
    pub fn clear_endpoint_faults(&self, id: &EndpointId) {
        self.inner.lock().faults.clear_endpoint(id);
    }

    /// Adds `extra` latency to every message sent `from → to` while the
    /// window is active. Spikes stack additively.
    pub fn inject_latency_spike(
        &self,
        from: &EndpointId,
        to: &EndpointId,
        window: FaultWindow,
        extra: SimDuration,
    ) {
        self.inner.lock().faults.add_spike(LatencySpike {
            from: from.clone(),
            to: to.clone(),
            window,
            extra,
        });
    }

    /// Whether `id` is down (outage or flap) at `at`.
    pub fn is_endpoint_down(&self, id: &EndpointId, at: Timestamp) -> bool {
        self.inner.lock().faults.endpoint_down(id, at)
    }

    /// Drops fault windows that ended before `now` (housekeeping for long
    /// runs).
    pub fn prune_faults(&self, now: Timestamp) {
        self.inner.lock().faults.prune(now);
    }

    // ------------------------------------------------------------------
    // Store-and-forward parking
    // ------------------------------------------------------------------

    /// Sets the bound on each per-endpoint park queue (default 256).
    /// Overflow evicts the oldest parked message and counts it under
    /// `parked_dropped`.
    pub fn set_parked_limit(&self, limit: usize) {
        self.inner.lock().parked_limit = limit.max(1);
    }

    /// How many messages are parked for `endpoint`.
    pub fn parked_count(&self, endpoint: &EndpointId) -> usize {
        self.inner
            .lock()
            .parked
            .get(endpoint)
            .map_or(0, VecDeque::len)
    }

    /// Re-injects every message parked for `endpoint` through the normal
    /// send path (in arrival order), returning how many were flushed.
    /// A no-op returning 0 if the endpoint is still unregistered.
    pub fn flush_parked(&self, sched: &mut Scheduler, endpoint: &EndpointId) -> usize {
        let queued = {
            let mut inner = self.inner.lock();
            if !inner.endpoints.contains_key(endpoint) {
                return 0;
            }
            inner.parked.remove(endpoint).unwrap_or_default()
        };
        let n = queued.len();
        self.update_parked_backlog();
        for (from, payload) in queued {
            self.telemetry.count("parked.flushed");
            // The endpoint can only have vanished again if a handler
            // unregistered it mid-flush; the error path counts it.
            let _ = self.send(sched, &from, endpoint, payload);
        }
        n
    }

    /// Refreshes the `net.parked_backlog` gauge (and its high-water mark)
    /// from the current total of parked messages across all endpoints.
    fn update_parked_backlog(&self) {
        let backlog: usize = self.inner.lock().parked.values().map(VecDeque::len).sum();
        self.telemetry.gauge_set("parked_backlog", backlog as u64);
    }

    // ------------------------------------------------------------------
    // Sending
    // ------------------------------------------------------------------

    /// Sends `payload` from `from` to `to`, scheduling delivery after the
    /// link's sampled delay (plus transmission time under the link's
    /// bandwidth, plus any active latency spike).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotConnected`] if `to` is not a registered
    /// endpoint at send time. (An endpoint unregistered while the message
    /// is in flight silently drops it, like a powered-off phone.)
    pub fn send(
        &self,
        sched: &mut Scheduler,
        from: &EndpointId,
        to: &EndpointId,
        payload: impl Into<Bytes>,
    ) -> Result<()> {
        self.send_with(sched, from, to, payload, SendOptions::default())
    }

    /// [`Network::send`] with explicit [`SendOptions`].
    pub fn send_with(
        &self,
        sched: &mut Scheduler,
        from: &EndpointId,
        to: &EndpointId,
        payload: impl Into<Bytes>,
        opts: SendOptions,
    ) -> Result<()> {
        let payload = payload.into();
        let size = payload.len();
        let now = sched.now();

        let (delay, killed) = {
            let mut inner = self.inner.lock();
            if !inner.endpoints.contains_key(to) {
                if opts.queue_if_down {
                    self.telemetry.count("parked");
                    let limit = inner.parked_limit;
                    let queue = inner.parked.entry(to.clone()).or_default();
                    queue.push_back((from.clone(), payload));
                    if queue.len() > limit {
                        queue.pop_front();
                        self.telemetry.count("parked.dropped");
                    }
                    drop(inner);
                    self.update_parked_backlog();
                    return Ok(());
                }
                self.telemetry.count("unreachable");
                return Err(Error::NotConnected(to.as_str().to_owned()));
            }
            self.telemetry.count("sent");
            self.telemetry.count_by("bytes_sent", size as u64);

            let spec = inner
                .links
                .get(&(from.clone(), to.clone()))
                .unwrap_or(&inner.default_link)
                .clone();

            // Loss and latency are sampled unconditionally so the RNG
            // stream — and therefore every later sample — is identical
            // whether or not a fault window happens to cover this send.
            let mut rng = self.rng.lock();
            let lost = spec.loss_probability > 0.0 && rng.chance(spec.loss_probability);
            let delay = spec.latency.sample(&mut rng)
                + SimDuration::from_secs_f64(spec.transmission_time_s(size))
                + inner.faults.extra_latency(from, to, now);
            drop(rng);

            for hook in inner.hooks.get(from).into_iter().flatten() {
                hook(TrafficDirection::Transmit, size);
            }

            let fault = inner.faults.drop_cause(from, to, now);
            match fault {
                Some(DropCause::EndpointDown) => {
                    self.telemetry.count("dropped");
                    self.telemetry.count("dropped.endpoint_down");
                }
                Some(DropCause::Partition) => {
                    self.telemetry.count("dropped");
                    self.telemetry.count("dropped.partition");
                }
                _ if lost => {
                    self.telemetry.count("dropped");
                    self.telemetry.count("dropped.loss");
                }
                _ => {}
            }
            (delay, fault.is_some() || lost)
        };

        if killed {
            return Ok(());
        }

        let msg = Message {
            from: from.clone(),
            to: to.clone(),
            payload,
            sent_at: now,
        };
        let network = self.clone();
        sched.schedule_after(delay, move |s| {
            let arrival = s.now();
            let inner = network.inner.lock();
            if inner.faults.endpoint_down(&msg.to, arrival) {
                // Receiver went down while the message was in flight.
                network.telemetry.count("dropped");
                network.telemetry.count("dropped.endpoint_down");
                return;
            }
            let handler = inner.endpoints.get(&msg.to).cloned();
            let hooks: Vec<TrafficHook> = inner.hooks.get(&msg.to).cloned().unwrap_or_default();
            drop(inner);
            if let Some(handler) = handler {
                network.telemetry.count("delivered");
                let transit = arrival.as_millis().saturating_sub(msg.sent_at.as_millis());
                network.telemetry.observe_named("transit_ms", transit);
                for hook in &hooks {
                    hook(TrafficDirection::Receive, msg.len());
                }
                handler(s, msg);
            }
        });
        Ok(())
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use sensocial_runtime::Timestamp;

    type Log = Arc<Mutex<Vec<(u64, Vec<u8>)>>>;

    /// Test-local counter view bundled from the telemetry snapshot (the
    /// deprecated public `NetworkStats` bundle is gone; tests read the
    /// `net.*` counters directly).
    #[derive(Debug, PartialEq, Eq)]
    struct NetworkStats {
        sent: u64,
        delivered: u64,
        dropped: u64,
        bytes_sent: u64,
        dropped_loss: u64,
        dropped_partition: u64,
        dropped_endpoint_down: u64,
        unreachable: u64,
        parked: u64,
        parked_flushed: u64,
    }

    impl NetworkStats {
        fn dropped_by(&self, cause: DropCause) -> u64 {
            match cause {
                DropCause::Loss => self.dropped_loss,
                DropCause::Partition => self.dropped_partition,
                DropCause::EndpointDown => self.dropped_endpoint_down,
            }
        }
    }

    fn stats(net: &Network) -> NetworkStats {
        let snap = net.telemetry().snapshot();
        NetworkStats {
            sent: snap.counter("net.sent"),
            delivered: snap.counter("net.delivered"),
            dropped: snap.counter("net.dropped"),
            bytes_sent: snap.counter("net.bytes_sent"),
            dropped_loss: snap.counter("net.dropped.loss"),
            dropped_partition: snap.counter("net.dropped.partition"),
            dropped_endpoint_down: snap.counter("net.dropped.endpoint_down"),
            unreachable: snap.counter("net.unreachable"),
            parked: snap.counter("net.parked"),
            parked_flushed: snap.counter("net.parked.flushed"),
        }
    }

    fn collector() -> (Log, MessageHandler) {
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        let l = log.clone();
        let handler: MessageHandler = Arc::new(move |s: &mut Scheduler, m: Message| {
            l.lock().push((s.now().as_millis(), m.payload.to_vec()));
        });
        (log, handler)
    }

    #[test]
    fn delivers_after_link_latency() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (log, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        net.set_link(
            "a".into(),
            "b".into(),
            LinkSpec::with_latency(LatencyModel::constant_ms(120)),
        );
        net.send(&mut sched, &"a".into(), &"b".into(), b"hi".to_vec())
            .unwrap();
        sched.run();
        let log = log.lock();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].0, 120);
        assert_eq!(log[0].1, b"hi");
    }

    #[test]
    fn churn_wave_staggers_and_clips() {
        let net = Network::new(1);
        let endpoints: Vec<EndpointId> = vec!["a".into(), "b".into(), "c".into()];
        let window = FaultWindow::new(Timestamp::from_secs(10), Timestamp::from_secs(40));
        net.churn_wave(
            &endpoints,
            window,
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
        );
        // a: flaps from t=10; b: staggered to t=30 (clipped at 40); c's
        // shifted window starts at the wave end, so it never flaps.
        assert!(net.is_endpoint_down(&"a".into(), Timestamp::from_secs(12)));
        assert!(!net.is_endpoint_down(&"b".into(), Timestamp::from_secs(12)));
        assert!(net.is_endpoint_down(&"b".into(), Timestamp::from_secs(32)));
        assert!(!net.is_endpoint_down(&"c".into(), Timestamp::from_secs(52)));
        assert!(
            !net.is_endpoint_down(&"a".into(), Timestamp::from_secs(45)),
            "wave is over"
        );
    }

    #[test]
    fn send_to_unknown_endpoint_errors() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let err = net
            .send(&mut sched, &"a".into(), &"ghost".into(), b"x".to_vec())
            .unwrap_err();
        assert_eq!(err, Error::NotConnected("ghost".into()));
        assert_eq!(stats(&net).unreachable, 1);
        assert_eq!(stats(&net).sent, 0);
    }

    #[test]
    fn unregister_mid_flight_drops_message() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (log, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        net.set_link(
            "a".into(),
            "b".into(),
            LinkSpec::with_latency(LatencyModel::constant_ms(100)),
        );
        net.send(&mut sched, &"a".into(), &"b".into(), b"x".to_vec())
            .unwrap();
        assert!(net.unregister(&"b".into()));
        sched.run();
        assert!(log.lock().is_empty());
        assert_eq!(stats(&net).delivered, 0);
        assert_eq!(stats(&net).sent, 1);
    }

    #[test]
    fn lossy_link_drops_fraction() {
        let mut sched = Scheduler::new();
        let net = Network::new(7);
        let (log, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        net.set_link(
            "a".into(),
            "b".into(),
            LinkSpec::with_latency(LatencyModel::constant_ms(1)).lossy(0.5),
        );
        for _ in 0..400 {
            net.send(&mut sched, &"a".into(), &"b".into(), b"x".to_vec())
                .unwrap();
        }
        sched.run();
        let delivered = log.lock().len();
        assert!((120..=280).contains(&delivered), "delivered {delivered}");
        let stats = stats(&net);
        assert_eq!(stats.sent, 400);
        assert_eq!(stats.dropped + stats.delivered, 400);
        assert_eq!(stats.dropped, stats.dropped_loss);
    }

    #[test]
    fn bandwidth_adds_transmission_time() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (log, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        // 8 kbit/s → 1000 bytes takes 1 s, plus 50 ms latency.
        net.set_link(
            "a".into(),
            "b".into(),
            LinkSpec::with_latency(LatencyModel::constant_ms(50)).bandwidth(8_000),
        );
        net.send(&mut sched, &"a".into(), &"b".into(), vec![0u8; 1_000])
            .unwrap();
        sched.run();
        assert_eq!(log.lock()[0].0, 1_050);
    }

    #[test]
    fn traffic_hooks_fire_on_both_ends() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (_, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        let tx = Arc::new(Mutex::new(0usize));
        let rx = Arc::new(Mutex::new(0usize));
        let (txc, rxc) = (tx.clone(), rx.clone());
        net.add_traffic_hook("a".into(), move |dir, size| {
            if dir == TrafficDirection::Transmit {
                *txc.lock() += size;
            }
        });
        net.add_traffic_hook("b".into(), move |dir, size| {
            if dir == TrafficDirection::Receive {
                *rxc.lock() += size;
            }
        });
        net.send(&mut sched, &"a".into(), &"b".into(), vec![0u8; 64])
            .unwrap();
        sched.run();
        assert_eq!(*tx.lock(), 64);
        assert_eq!(*rx.lock(), 64);
    }

    #[test]
    fn default_link_applies_without_explicit_pair() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        net.set_default_link(LinkSpec::with_latency(LatencyModel::constant_ms(7)));
        let (log, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        net.send(&mut sched, &"a".into(), &"b".into(), b"x".to_vec())
            .unwrap();
        sched.run();
        assert_eq!(log.lock()[0].0, 7);
        assert_eq!(sched.now(), Timestamp::from_millis(7));
    }

    #[test]
    fn bidirectional_link_covers_both_directions() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (log, handler) = collector();
        let h1 = handler.clone();
        let h2 = handler.clone();
        net.register("a".into(), move |s, m| h1(s, m));
        net.register("b".into(), move |s, m| h2(s, m));
        net.set_link_bidirectional(
            "a".into(),
            "b".into(),
            LinkSpec::with_latency(LatencyModel::constant_ms(33)),
        );
        net.send(&mut sched, &"a".into(), &"b".into(), b"1".to_vec())
            .unwrap();
        net.send(&mut sched, &"b".into(), &"a".into(), b"2".to_vec())
            .unwrap();
        sched.run();
        assert_eq!(log.lock().len(), 2);
        assert!(log.lock().iter().all(|(at, _)| *at == 33));
    }

    #[test]
    fn stats_accumulate_bytes() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (_, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        net.send(&mut sched, &"a".into(), &"b".into(), vec![0u8; 10])
            .unwrap();
        net.send(&mut sched, &"a".into(), &"b".into(), vec![0u8; 30])
            .unwrap();
        sched.run();
        let stats = stats(&net);
        assert_eq!(stats.bytes_sent, 40);
        assert_eq!(stats.delivered, 2);
    }

    #[test]
    fn partition_drops_and_counts() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (log, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        net.partition(&"a".into(), &"b".into(), Timestamp::from_secs(60));
        net.send(&mut sched, &"a".into(), &"b".into(), b"x".to_vec())
            .unwrap();
        sched.run();
        assert!(log.lock().is_empty());
        let stats = stats(&net);
        assert_eq!(stats.sent, 1);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.dropped_by(DropCause::Partition), 1);
    }

    #[test]
    fn counters_match_snapshot_reads() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (_, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        net.send(&mut sched, &"a".into(), &"b".into(), vec![0u8; 5])
            .unwrap();
        sched.run();
        assert_eq!(stats(&net).delivered, 1);
        assert_eq!(net.telemetry().snapshot().counter("net.delivered"), 1);
    }

    #[test]
    fn transit_latency_lands_in_stage_histogram() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (_, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        net.set_link(
            "a".into(),
            "b".into(),
            LinkSpec::with_latency(LatencyModel::constant_ms(120)),
        );
        net.send(&mut sched, &"a".into(), &"b".into(), b"hi".to_vec())
            .unwrap();
        sched.run();
        let snap = net.telemetry().snapshot();
        let h = snap.histogram("net.transit_ms").expect("transit histogram");
        assert_eq!(h.count, 1);
        assert_eq!(h.min_ms, 120);
        assert_eq!(h.max_ms, 120);
    }

    #[test]
    fn queue_if_down_parks_and_flushes_in_order() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let opts = SendOptions {
            queue_if_down: true,
        };
        net.send_with(&mut sched, &"a".into(), &"b".into(), b"1".to_vec(), opts)
            .unwrap();
        net.send_with(&mut sched, &"a".into(), &"b".into(), b"2".to_vec(), opts)
            .unwrap();
        assert_eq!(net.parked_count(&"b".into()), 2);
        assert_eq!(stats(&net).sent, 0);

        let (log, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        assert_eq!(net.flush_parked(&mut sched, &"b".into()), 2);
        sched.run();
        let log = log.lock();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].1, b"1");
        assert_eq!(log[1].1, b"2");
        let stats = stats(&net);
        assert_eq!(stats.parked, 2);
        assert_eq!(stats.parked_flushed, 2);
        assert_eq!(stats.sent, 2);
    }
}
