//! The endpoint registry and message-delivery engine.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use sensocial_runtime::{Scheduler, SimDuration, SimRng};
use sensocial_types::{Error, Result};

use crate::link::LinkSpec;
use crate::message::{EndpointId, Message};

/// Handler invoked (through the scheduler, after link delay) when a message
/// arrives at an endpoint.
type MessageHandler = Arc<dyn Fn(&mut Scheduler, Message) + Send + Sync>;

/// Hook invoked synchronously whenever an endpoint transmits or receives,
/// letting the energy model charge radio costs per byte.
type TrafficHook = Arc<dyn Fn(TrafficDirection, usize) + Send + Sync>;

/// Whether a traffic hook observed a transmission or a reception.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficDirection {
    /// The endpoint sent a message.
    Transmit,
    /// The endpoint received a message.
    Receive,
}

/// Counters describing everything a [`Network`] has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages handed to [`Network::send`].
    pub sent: u64,
    /// Messages actually delivered to a handler.
    pub delivered: u64,
    /// Messages dropped by link loss.
    pub dropped: u64,
    /// Total payload bytes handed to `send`.
    pub bytes_sent: u64,
}

#[derive(Default)]
struct Inner {
    endpoints: HashMap<EndpointId, MessageHandler>,
    links: HashMap<(EndpointId, EndpointId), LinkSpec>,
    default_link: LinkSpec,
    hooks: HashMap<EndpointId, Vec<TrafficHook>>,
    stats: NetworkStats,
}

/// The simulated network: endpoints, links and delivery.
///
/// `Network` is cheaply cloneable (an `Arc` handle); every component holds a
/// clone. Delivery happens through the [`Scheduler`]: `send` samples the
/// link's latency and schedules the receiving handler.
///
/// See the [crate-level example](crate) for usage.
#[derive(Clone)]
pub struct Network {
    inner: Arc<Mutex<Inner>>,
    rng: Arc<Mutex<SimRng>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Network")
            .field("endpoints", &inner.endpoints.len())
            .field("links", &inner.links.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl Network {
    /// Creates an empty network with a deterministic RNG seed (used for
    /// latency sampling and loss decisions).
    pub fn new(seed: u64) -> Self {
        Network {
            inner: Arc::new(Mutex::new(Inner::default())),
            rng: Arc::new(Mutex::new(SimRng::seed_from(seed))),
        }
    }

    /// Registers an endpoint and its receive handler, replacing any
    /// previous registration under the same id.
    pub fn register<F>(&self, id: EndpointId, handler: F)
    where
        F: Fn(&mut Scheduler, Message) + Send + Sync + 'static,
    {
        self.inner.lock().endpoints.insert(id, Arc::new(handler));
    }

    /// Removes an endpoint. In-flight messages to it are dropped on
    /// arrival. Returns `true` if the endpoint existed.
    pub fn unregister(&self, id: &EndpointId) -> bool {
        self.inner.lock().endpoints.remove(id).is_some()
    }

    /// Whether an endpoint is currently registered.
    pub fn is_registered(&self, id: &EndpointId) -> bool {
        self.inner.lock().endpoints.contains_key(id)
    }

    /// Sets the link characteristics for the directed pair `from → to`.
    pub fn set_link(&self, from: EndpointId, to: EndpointId, spec: LinkSpec) {
        self.inner.lock().links.insert((from, to), spec);
    }

    /// Sets the link characteristics for both directions between `a` and `b`.
    pub fn set_link_bidirectional(&self, a: EndpointId, b: EndpointId, spec: LinkSpec) {
        let mut inner = self.inner.lock();
        inner.links.insert((a.clone(), b.clone()), spec.clone());
        inner.links.insert((b, a), spec);
    }

    /// Sets the fallback link used for pairs without an explicit link.
    pub fn set_default_link(&self, spec: LinkSpec) {
        self.inner.lock().default_link = spec;
    }

    /// Adds a traffic hook for `endpoint`, called synchronously on every
    /// transmit (at send time) and receive (at delivery time) with the
    /// payload size.
    pub fn add_traffic_hook<F>(&self, endpoint: EndpointId, hook: F)
    where
        F: Fn(TrafficDirection, usize) + Send + Sync + 'static,
    {
        self.inner
            .lock()
            .hooks
            .entry(endpoint)
            .or_default()
            .push(Arc::new(hook));
    }

    /// Sends `payload` from `from` to `to`, scheduling delivery after the
    /// link's sampled delay (plus transmission time under the link's
    /// bandwidth).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotConnected`] if `to` is not a registered
    /// endpoint at send time. (An endpoint unregistered while the message
    /// is in flight silently drops it, like a powered-off phone.)
    pub fn send(
        &self,
        sched: &mut Scheduler,
        from: &EndpointId,
        to: &EndpointId,
        payload: impl Into<Bytes>,
    ) -> Result<()> {
        let payload = payload.into();
        let size = payload.len();

        let (delay, lost) = {
            let mut inner = self.inner.lock();
            if !inner.endpoints.contains_key(to) {
                return Err(Error::NotConnected(to.as_str().to_owned()));
            }
            inner.stats.sent += 1;
            inner.stats.bytes_sent += size as u64;

            let spec = inner
                .links
                .get(&(from.clone(), to.clone()))
                .unwrap_or(&inner.default_link)
                .clone();

            let mut rng = self.rng.lock();
            let lost = spec.loss_probability > 0.0 && rng.chance(spec.loss_probability);
            let delay = spec.latency.sample(&mut rng)
                + SimDuration::from_secs_f64(spec.transmission_time_s(size));

            for hook in inner.hooks.get(from).into_iter().flatten() {
                hook(TrafficDirection::Transmit, size);
            }
            if lost {
                inner.stats.dropped += 1;
            }
            (delay, lost)
        };

        if lost {
            return Ok(());
        }

        let msg = Message {
            from: from.clone(),
            to: to.clone(),
            payload,
            sent_at: sched.now(),
        };
        let network = self.clone();
        sched.schedule_after(delay, move |s| {
            let (handler, hooks) = {
                let mut inner = network.inner.lock();
                let handler = inner.endpoints.get(&msg.to).cloned();
                if handler.is_some() {
                    inner.stats.delivered += 1;
                }
                let hooks: Vec<TrafficHook> =
                    inner.hooks.get(&msg.to).cloned().unwrap_or_default();
                (handler, hooks)
            };
            if let Some(handler) = handler {
                for hook in &hooks {
                    hook(TrafficDirection::Receive, msg.len());
                }
                handler(s, msg);
            }
        });
        Ok(())
    }

    /// A snapshot of the delivery counters.
    pub fn stats(&self) -> NetworkStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use sensocial_runtime::Timestamp;

    type Log = Arc<Mutex<Vec<(u64, Vec<u8>)>>>;

    fn collector() -> (Log, MessageHandler) {
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        let l = log.clone();
        let handler: MessageHandler = Arc::new(move |s: &mut Scheduler, m: Message| {
            l.lock().push((s.now().as_millis(), m.payload.to_vec()));
        });
        (log, handler)
    }

    #[test]
    fn delivers_after_link_latency() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (log, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        net.set_link(
            "a".into(),
            "b".into(),
            LinkSpec::with_latency(LatencyModel::constant_ms(120)),
        );
        net.send(&mut sched, &"a".into(), &"b".into(), b"hi".to_vec())
            .unwrap();
        sched.run();
        let log = log.lock();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].0, 120);
        assert_eq!(log[0].1, b"hi");
    }

    #[test]
    fn send_to_unknown_endpoint_errors() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let err = net
            .send(&mut sched, &"a".into(), &"ghost".into(), b"x".to_vec())
            .unwrap_err();
        assert_eq!(err, Error::NotConnected("ghost".into()));
    }

    #[test]
    fn unregister_mid_flight_drops_message() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (log, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        net.set_link(
            "a".into(),
            "b".into(),
            LinkSpec::with_latency(LatencyModel::constant_ms(100)),
        );
        net.send(&mut sched, &"a".into(), &"b".into(), b"x".to_vec())
            .unwrap();
        assert!(net.unregister(&"b".into()));
        sched.run();
        assert!(log.lock().is_empty());
        assert_eq!(net.stats().delivered, 0);
        assert_eq!(net.stats().sent, 1);
    }

    #[test]
    fn lossy_link_drops_fraction() {
        let mut sched = Scheduler::new();
        let net = Network::new(7);
        let (log, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        net.set_link(
            "a".into(),
            "b".into(),
            LinkSpec::with_latency(LatencyModel::constant_ms(1)).lossy(0.5),
        );
        for _ in 0..400 {
            net.send(&mut sched, &"a".into(), &"b".into(), b"x".to_vec())
                .unwrap();
        }
        sched.run();
        let delivered = log.lock().len();
        assert!((120..=280).contains(&delivered), "delivered {delivered}");
        let stats = net.stats();
        assert_eq!(stats.sent, 400);
        assert_eq!(stats.dropped + stats.delivered, 400);
    }

    #[test]
    fn bandwidth_adds_transmission_time() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (log, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        // 8 kbit/s → 1000 bytes takes 1 s, plus 50 ms latency.
        net.set_link(
            "a".into(),
            "b".into(),
            LinkSpec::with_latency(LatencyModel::constant_ms(50)).bandwidth(8_000),
        );
        net.send(&mut sched, &"a".into(), &"b".into(), vec![0u8; 1_000])
            .unwrap();
        sched.run();
        assert_eq!(log.lock()[0].0, 1_050);
    }

    #[test]
    fn traffic_hooks_fire_on_both_ends() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (_, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        let tx = Arc::new(Mutex::new(0usize));
        let rx = Arc::new(Mutex::new(0usize));
        let (txc, rxc) = (tx.clone(), rx.clone());
        net.add_traffic_hook("a".into(), move |dir, size| {
            if dir == TrafficDirection::Transmit {
                *txc.lock() += size;
            }
        });
        net.add_traffic_hook("b".into(), move |dir, size| {
            if dir == TrafficDirection::Receive {
                *rxc.lock() += size;
            }
        });
        net.send(&mut sched, &"a".into(), &"b".into(), vec![0u8; 64])
            .unwrap();
        sched.run();
        assert_eq!(*tx.lock(), 64);
        assert_eq!(*rx.lock(), 64);
    }

    #[test]
    fn default_link_applies_without_explicit_pair() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        net.set_default_link(LinkSpec::with_latency(LatencyModel::constant_ms(7)));
        let (log, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        net.send(&mut sched, &"a".into(), &"b".into(), b"x".to_vec())
            .unwrap();
        sched.run();
        assert_eq!(log.lock()[0].0, 7);
        assert_eq!(sched.now(), Timestamp::from_millis(7));
    }

    #[test]
    fn bidirectional_link_covers_both_directions() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (log, handler) = collector();
        let h1 = handler.clone();
        let h2 = handler.clone();
        net.register("a".into(), move |s, m| h1(s, m));
        net.register("b".into(), move |s, m| h2(s, m));
        net.set_link_bidirectional(
            "a".into(),
            "b".into(),
            LinkSpec::with_latency(LatencyModel::constant_ms(33)),
        );
        net.send(&mut sched, &"a".into(), &"b".into(), b"1".to_vec())
            .unwrap();
        net.send(&mut sched, &"b".into(), &"a".into(), b"2".to_vec())
            .unwrap();
        sched.run();
        assert_eq!(log.lock().len(), 2);
        assert!(log.lock().iter().all(|(at, _)| *at == 33));
    }

    #[test]
    fn stats_accumulate_bytes() {
        let mut sched = Scheduler::new();
        let net = Network::new(1);
        let (_, handler) = collector();
        let h = handler.clone();
        net.register("b".into(), move |s, m| h(s, m));
        net.send(&mut sched, &"a".into(), &"b".into(), vec![0u8; 10])
            .unwrap();
        net.send(&mut sched, &"a".into(), &"b".into(), vec![0u8; 30])
            .unwrap();
        sched.run();
        let stats = net.stats();
        assert_eq!(stats.bytes_sent, 40);
        assert_eq!(stats.delivered, 2);
    }
}
