//! Integration tests for the deterministic fault-injection layer.

use std::sync::{Arc, Mutex};

use sensocial_net::{DropCause, FaultWindow, LatencyModel, LinkSpec, Network, SendOptions};
use sensocial_runtime::{Scheduler, SimDuration, Timestamp};

type Log = Arc<Mutex<Vec<(u64, Vec<u8>)>>>;

/// Test-local counter view bundled from the unified telemetry snapshot
/// (the deprecated public `NetworkStats` bundle is gone).
#[derive(Debug, PartialEq, Eq)]
struct NetworkStats {
    sent: u64,
    delivered: u64,
    dropped: u64,
    dropped_loss: u64,
    dropped_partition: u64,
    dropped_endpoint_down: u64,
    parked: u64,
    parked_dropped: u64,
    parked_flushed: u64,
}

impl NetworkStats {
    fn dropped_by(&self, cause: DropCause) -> u64 {
        match cause {
            DropCause::Loss => self.dropped_loss,
            DropCause::Partition => self.dropped_partition,
            DropCause::EndpointDown => self.dropped_endpoint_down,
        }
    }
}

/// Reads the delivery counters from the unified telemetry snapshot.
fn stats(net: &Network) -> NetworkStats {
    let snap = net.telemetry().snapshot();
    NetworkStats {
        sent: snap.counter("net.sent"),
        delivered: snap.counter("net.delivered"),
        dropped: snap.counter("net.dropped"),
        dropped_loss: snap.counter("net.dropped.loss"),
        dropped_partition: snap.counter("net.dropped.partition"),
        dropped_endpoint_down: snap.counter("net.dropped.endpoint_down"),
        parked: snap.counter("net.parked"),
        parked_dropped: snap.counter("net.parked.dropped"),
        parked_flushed: snap.counter("net.parked.flushed"),
    }
}

fn sink(net: &Network, id: &str) -> Log {
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let l = log.clone();
    net.register(id.into(), move |s: &mut Scheduler, m| {
        l.lock()
            .unwrap()
            .push((s.now().as_millis(), m.payload.to_vec()));
    });
    log
}

fn constant_link(net: &Network, from: &str, to: &str, ms: u64) {
    net.set_link(
        from.into(),
        to.into(),
        LinkSpec::with_latency(LatencyModel::constant_ms(ms)),
    );
}

#[test]
fn endpoint_down_window_drops_then_recovers() {
    let mut sched = Scheduler::new();
    let net = Network::new(1);
    let log = sink(&net, "b");
    constant_link(&net, "a", "b", 10);
    net.set_endpoint_down(
        &"b".into(),
        FaultWindow::new(Timestamp::from_secs(0), Timestamp::from_secs(30)),
    );

    // During the outage: dropped at send time.
    net.send(&mut sched, &"a".into(), &"b".into(), b"down".to_vec())
        .unwrap();
    // After the outage: delivered.
    sched.run_until(Timestamp::from_secs(31));
    net.send(&mut sched, &"a".into(), &"b".into(), b"up".to_vec())
        .unwrap();
    sched.run();

    let log = log.lock().unwrap();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].1, b"up");
    let stats = stats(&net);
    assert_eq!(stats.sent, 2);
    assert_eq!(stats.delivered, 1);
    assert_eq!(stats.dropped_by(DropCause::EndpointDown), 1);
    assert_eq!(stats.dropped, 1);
}

#[test]
fn receiver_going_down_mid_flight_drops_at_arrival() {
    let mut sched = Scheduler::new();
    let net = Network::new(1);
    let log = sink(&net, "b");
    constant_link(&net, "a", "b", 1_000);
    // "b" is up at send time (t=0) but down when the message lands (t=1s).
    net.set_endpoint_down(
        &"b".into(),
        FaultWindow::new(Timestamp::from_millis(500), Timestamp::from_secs(5)),
    );
    net.send(&mut sched, &"a".into(), &"b".into(), b"x".to_vec())
        .unwrap();
    sched.run();

    assert!(log.lock().unwrap().is_empty());
    let stats = stats(&net);
    assert_eq!(stats.sent, 1);
    assert_eq!(stats.delivered, 0);
    assert_eq!(stats.dropped_by(DropCause::EndpointDown), 1);
}

#[test]
fn partition_is_bidirectional_and_healable() {
    let mut sched = Scheduler::new();
    let net = Network::new(1);
    let log_a = sink(&net, "a");
    let log_b = sink(&net, "b");
    constant_link(&net, "a", "b", 5);
    constant_link(&net, "b", "a", 5);
    net.partition(&"a".into(), &"b".into(), Timestamp::from_secs(600));

    net.send(&mut sched, &"a".into(), &"b".into(), b"1".to_vec())
        .unwrap();
    net.send(&mut sched, &"b".into(), &"a".into(), b"2".to_vec())
        .unwrap();
    sched.run();
    assert!(log_a.lock().unwrap().is_empty());
    assert!(log_b.lock().unwrap().is_empty());
    assert_eq!(stats(&net).dropped_by(DropCause::Partition), 2);

    // Heal early (well before the 600 s window would expire).
    net.heal_partition(&"a".into(), &"b".into());
    net.send(&mut sched, &"a".into(), &"b".into(), b"3".to_vec())
        .unwrap();
    sched.run();
    assert_eq!(log_b.lock().unwrap().len(), 1);
}

#[test]
fn flapping_endpoint_follows_square_wave() {
    let mut sched = Scheduler::new();
    let net = Network::new(1);
    let log = sink(&net, "b");
    constant_link(&net, "a", "b", 1);
    // Down 10 s, up 10 s, from t=0 to t=100 s.
    net.flap_endpoint(
        &"b".into(),
        FaultWindow::new(Timestamp::ZERO, Timestamp::from_secs(100)),
        SimDuration::from_secs(10),
        SimDuration::from_secs(10),
    );

    // One send per 5 s tick; sends at t=0,5 fall in a down phase,
    // t=10,15 in an up phase, and so on.
    let net2 = net.clone();
    for tick in 0..20u64 {
        let n = net2.clone();
        sched.schedule_at(Timestamp::from_secs(tick * 5), move |s| {
            n.send(s, &"a".into(), &"b".into(), vec![tick as u8])
                .unwrap();
        });
    }
    sched.run();

    let delivered: Vec<u8> = log.lock().unwrap().iter().map(|(_, p)| p[0]).collect();
    assert_eq!(delivered, vec![2, 3, 6, 7, 10, 11, 14, 15, 18, 19]);
    let stats = stats(&net);
    assert_eq!(stats.sent, 20);
    assert_eq!(stats.delivered, 10);
    assert_eq!(stats.dropped_by(DropCause::EndpointDown), 10);
}

#[test]
fn latency_spike_delays_but_does_not_drop() {
    let mut sched = Scheduler::new();
    let net = Network::new(1);
    let log = sink(&net, "b");
    constant_link(&net, "a", "b", 10);
    net.inject_latency_spike(
        &"a".into(),
        &"b".into(),
        FaultWindow::new(Timestamp::ZERO, Timestamp::from_secs(5)),
        SimDuration::from_millis(400),
    );

    net.send(&mut sched, &"a".into(), &"b".into(), b"slow".to_vec())
        .unwrap();
    sched.run();
    // After the spike window the extra latency is gone.
    net.send(&mut sched, &"a".into(), &"b".into(), b"fast".to_vec())
        .unwrap();
    sched.run();

    let log = log.lock().unwrap();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].0, 410, "spiked delivery at 10 + 400 ms");
    assert_eq!(
        log[1].0 - 410,
        10,
        "post-spike delivery back to base latency"
    );
    assert_eq!(stats(&net).dropped, 0);
}

#[test]
fn park_queue_is_bounded_oldest_dropped() {
    let mut sched = Scheduler::new();
    let net = Network::new(1);
    net.set_parked_limit(2);
    let opts = SendOptions {
        queue_if_down: true,
    };
    for b in [b"1", b"2", b"3"] {
        net.send_with(&mut sched, &"a".into(), &"b".into(), b.to_vec(), opts)
            .unwrap();
    }
    assert_eq!(net.parked_count(&"b".into()), 2);
    assert_eq!(stats(&net).parked, 3);
    assert_eq!(stats(&net).parked_dropped, 1);

    let log = sink(&net, "b");
    constant_link(&net, "a", "b", 1);
    assert_eq!(net.flush_parked(&mut sched, &"b".into()), 2);
    sched.run();
    let payloads: Vec<Vec<u8>> = log.lock().unwrap().iter().map(|(_, p)| p.clone()).collect();
    assert_eq!(
        payloads,
        vec![b"2".to_vec(), b"3".to_vec()],
        "oldest evicted"
    );
    assert_eq!(stats(&net).parked_flushed, 2);
}

#[test]
fn flush_to_still_missing_endpoint_is_a_noop() {
    let mut sched = Scheduler::new();
    let net = Network::new(1);
    let opts = SendOptions {
        queue_if_down: true,
    };
    net.send_with(&mut sched, &"a".into(), &"b".into(), b"x".to_vec(), opts)
        .unwrap();
    assert_eq!(net.flush_parked(&mut sched, &"b".into()), 0);
    assert_eq!(net.parked_count(&"b".into()), 1, "message stays parked");
}

#[test]
fn per_cause_counters_sum_to_dropped() {
    let mut sched = Scheduler::new();
    let net = Network::new(11);
    let _log = sink(&net, "b");
    net.set_link(
        "a".into(),
        "b".into(),
        LinkSpec::with_latency(LatencyModel::constant_ms(1)).lossy(0.3),
    );
    net.partition_during(
        &"a".into(),
        &"b".into(),
        FaultWindow::new(Timestamp::from_secs(20), Timestamp::from_secs(40)),
    );
    net.set_endpoint_down(
        &"b".into(),
        FaultWindow::new(Timestamp::from_secs(60), Timestamp::from_secs(80)),
    );

    let net2 = net.clone();
    for tick in 0..100u64 {
        let n = net2.clone();
        sched.schedule_at(Timestamp::from_secs(tick), move |s| {
            n.send(s, &"a".into(), &"b".into(), b"x".to_vec()).unwrap();
        });
    }
    sched.run();

    let stats = stats(&net);
    assert_eq!(stats.sent, 100);
    assert_eq!(stats.delivered + stats.dropped, stats.sent);
    assert_eq!(
        stats.dropped,
        stats.dropped_loss + stats.dropped_partition + stats.dropped_endpoint_down
    );
    assert_eq!(stats.dropped_partition, 20);
    assert_eq!(stats.dropped_endpoint_down, 20);
    assert!(stats.dropped_loss > 0, "lossy link dropped something");
}

#[test]
fn faulted_runs_are_deterministic_across_seeds() {
    let run = |seed: u64| {
        let mut sched = Scheduler::new();
        let net = Network::new(seed);
        let _log = sink(&net, "b");
        net.set_link(
            "a".into(),
            "b".into(),
            LinkSpec::with_latency(LatencyModel::constant_ms(2)).lossy(0.4),
        );
        net.flap_endpoint(
            &"b".into(),
            FaultWindow::new(Timestamp::ZERO, Timestamp::from_secs(50)),
            SimDuration::from_secs(3),
            SimDuration::from_secs(2),
        );
        let net2 = net.clone();
        for tick in 0..50u64 {
            let n = net2.clone();
            sched.schedule_at(Timestamp::from_secs(tick), move |s| {
                n.send(s, &"a".into(), &"b".into(), b"x".to_vec()).unwrap();
            });
        }
        sched.run();
        stats(&net)
    };
    assert_eq!(run(7), run(7), "same seed, same fault plan, same stats");
}
