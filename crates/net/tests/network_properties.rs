//! Property-based tests for the simulated network.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use sensocial_net::{LatencyModel, LinkSpec, Network};

/// Test-local counter view (the deprecated public `NetworkStats` bundle
/// is gone; the `net.*` counters are read from the telemetry snapshot).
struct NetworkStats {
    sent: u64,
    delivered: u64,
    dropped: u64,
}

/// Reads the delivery counters from the unified telemetry snapshot.
fn stats(net: &Network) -> NetworkStats {
    let snap = net.telemetry().snapshot();
    NetworkStats {
        sent: snap.counter("net.sent"),
        delivered: snap.counter("net.delivered"),
        dropped: snap.counter("net.dropped"),
    }
}
use sensocial_runtime::{Scheduler, SimRng};

proptest! {
    /// Message conservation: sent = delivered + dropped (+ in-flight, which
    /// is zero once the scheduler drains).
    #[test]
    fn messages_are_conserved(
        n in 1usize..200,
        loss in 0.0f64..1.0,
        seed in 0u64..1_000,
    ) {
        let mut sched = Scheduler::new();
        let net = Network::new(seed);
        net.set_default_link(
            LinkSpec::with_latency(LatencyModel::constant_ms(10)).lossy(loss),
        );
        let received = Arc::new(Mutex::new(0u64));
        let sink = received.clone();
        net.register("b".into(), move |_s, _m| *sink.lock().unwrap() += 1);
        for _ in 0..n {
            net.send(&mut sched, &"a".into(), &"b".into(), b"x".to_vec()).unwrap();
        }
        sched.run();
        let stats = stats(&net);
        prop_assert_eq!(stats.sent, n as u64);
        prop_assert_eq!(stats.delivered + stats.dropped, n as u64);
        prop_assert_eq!(*received.lock().unwrap(), stats.delivered);
    }

    /// Latency samples are non-negative and constant models are exact.
    #[test]
    fn latency_models_behave(mean in 0.1f64..100.0, std in 0.0f64..20.0, seed in 0u64..500) {
        let mut rng = SimRng::seed_from(seed);
        let normal = LatencyModel::Normal { mean_s: mean, std_s: std, min_s: 0.0 };
        for _ in 0..50 {
            let d = normal.sample(&mut rng);
            prop_assert!(d.as_secs_f64() >= 0.0);
        }
        let exp = LatencyModel::Exponential { mean_s: mean };
        for _ in 0..50 {
            prop_assert!(exp.sample(&mut rng).as_secs_f64() >= 0.0);
        }
    }

    /// Bandwidth-limited delivery time grows monotonically with payload
    /// size.
    #[test]
    fn transmission_time_monotone_in_size(
        sizes in proptest::collection::vec(1usize..100_000, 2..10),
    ) {
        let link = LinkSpec::with_latency(LatencyModel::constant_ms(0)).bandwidth(1_000_000);
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let times: Vec<f64> = sorted.iter().map(|s| link.transmission_time_s(*s)).collect();
        for w in times.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Deterministic: the same seed produces the same delivery outcome
    /// under loss.
    #[test]
    fn same_seed_same_losses(seed in 0u64..1_000) {
        let run = |seed: u64| {
            let mut sched = Scheduler::new();
            let net = Network::new(seed);
            net.set_default_link(LinkSpec::with_latency(LatencyModel::constant_ms(5)).lossy(0.5));
            net.register("b".into(), |_s, _m| {});
            for _ in 0..50 {
                net.send(&mut sched, &"a".into(), &"b".into(), b"x".to_vec()).unwrap();
            }
            sched.run();
            stats(&net).delivered
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
