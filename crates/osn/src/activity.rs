//! User activity generators: the workload side of the OSN.

use sensocial_runtime::{Scheduler, SimDuration, SimRng, Timer, TimerHandle};
use sensocial_types::UserId;

use crate::content::{generate_post, Sentiment, TOPICS};
use crate::platform::OsnPlatform;

/// A Poisson-process model of one user's OSN activity.
#[derive(Debug, Clone)]
pub struct UserActivityModel {
    /// Mean actions per hour.
    pub actions_per_hour: f64,
    /// Probability an action is a post (vs. comment vs. like; posts then
    /// comments then likes share the remainder equally).
    pub post_fraction: f64,
    /// Probability a post is positive / negative (remainder neutral).
    pub positive_fraction: f64,
    /// Probability a post is negative.
    pub negative_fraction: f64,
}

impl Default for UserActivityModel {
    fn default() -> Self {
        UserActivityModel {
            actions_per_hour: 2.0,
            post_fraction: 0.5,
            positive_fraction: 0.35,
            negative_fraction: 0.25,
        }
    }
}

/// Handle to a running activity driver.
#[derive(Debug)]
pub struct ActivityDriverHandle {
    timer: TimerHandle,
}

impl ActivityDriverHandle {
    /// Stops generating activity.
    pub fn stop(&self) {
        self.timer.stop();
    }
}

impl UserActivityModel {
    /// Starts generating actions for `user` on `platform`.
    ///
    /// The driver ticks once a minute and draws from a Poisson distribution
    /// with the per-minute mean, so bursts are possible, as on real OSNs.
    pub fn start(
        &self,
        sched: &mut Scheduler,
        platform: &OsnPlatform,
        user: UserId,
        mut rng: SimRng,
    ) -> ActivityDriverHandle {
        let model = self.clone();
        let platform = platform.clone();
        let timer = Timer::start(sched, SimDuration::from_secs(60), move |s| {
            let n = rng.poisson(model.actions_per_hour / 60.0);
            for _ in 0..n {
                model.perform_one(s, &platform, &user, &mut rng);
            }
        });
        ActivityDriverHandle { timer }
    }

    fn perform_one(
        &self,
        sched: &mut Scheduler,
        platform: &OsnPlatform,
        user: &UserId,
        rng: &mut SimRng,
    ) {
        let topic = rng.choose(&TOPICS).copied().unwrap_or("weather");
        let r = rng.uniform(0.0, 1.0);
        if r < self.post_fraction {
            let sr = rng.uniform(0.0, 1.0);
            let sentiment = if sr < self.positive_fraction {
                Sentiment::Positive
            } else if sr < self.positive_fraction + self.negative_fraction {
                Sentiment::Negative
            } else {
                Sentiment::Neutral
            };
            let content = generate_post(rng, topic, sentiment);
            platform.post_about(sched, user, topic, &content);
        } else if r < self.post_fraction + (1.0 - self.post_fraction) / 2.0 {
            let content = generate_post(rng, topic, Sentiment::Neutral);
            platform.comment(sched, user, &content);
        } else {
            platform.like(sched, user, &format!("{topic} fan page"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensocial_types::OsnActionKind;

    #[test]
    fn generates_roughly_poisson_volume() {
        let mut sched = Scheduler::new();
        let platform = OsnPlatform::new(SimRng::seed_from(8));
        let alice = UserId::new("alice");
        platform.register_user(alice.clone());
        let model = UserActivityModel {
            actions_per_hour: 6.0,
            ..UserActivityModel::default()
        };
        let handle = model.start(&mut sched, &platform, alice, SimRng::seed_from(9));
        sched.run_for(SimDuration::from_mins(60 * 10)); // 10 hours
        handle.stop();
        let n = platform.feed().len() as f64;
        assert!((40.0..=80.0).contains(&n), "expected ~60 actions, got {n}");
    }

    #[test]
    fn mixes_action_kinds() {
        let mut sched = Scheduler::new();
        let platform = OsnPlatform::new(SimRng::seed_from(8));
        let alice = UserId::new("alice");
        platform.register_user(alice.clone());
        let model = UserActivityModel {
            actions_per_hour: 60.0,
            ..UserActivityModel::default()
        };
        let handle = model.start(&mut sched, &platform, alice, SimRng::seed_from(10));
        sched.run_for(SimDuration::from_mins(240));
        handle.stop();
        let feed = platform.feed();
        let posts = feed.iter().filter(|a| a.kind == OsnActionKind::Post).count();
        let likes = feed.iter().filter(|a| a.kind == OsnActionKind::Like).count();
        let comments = feed
            .iter()
            .filter(|a| a.kind == OsnActionKind::Comment)
            .count();
        assert!(posts > 0 && likes > 0 && comments > 0, "p={posts} l={likes} c={comments}");
        // Posts carry topics for content-based filters.
        assert!(feed
            .iter()
            .filter(|a| a.kind == OsnActionKind::Post)
            .all(|a| a.topic.is_some()));
    }

    #[test]
    fn stopped_driver_stays_quiet() {
        let mut sched = Scheduler::new();
        let platform = OsnPlatform::new(SimRng::seed_from(8));
        let alice = UserId::new("alice");
        platform.register_user(alice.clone());
        let handle = UserActivityModel::default().start(
            &mut sched,
            &platform,
            alice,
            SimRng::seed_from(11),
        );
        handle.stop();
        sched.run_for(SimDuration::from_mins(120));
        assert!(platform.feed().is_empty());
    }
}
