//! Post content generation: topics and sentiment-bearing text.
//!
//! The paper's future work plans "classifiers that are able to extract OSN
//! post topics and emotional states" (§9); our reproduction implements
//! those classifiers (in `sensocial-classify`), so the simulated platform
//! must generate content with real topical and emotional signal.

use sensocial_runtime::SimRng;

/// Topics the activity generators post about. Filter conditions like the
/// paper's "when the user posts about football" compare against these tags.
pub const TOPICS: [&str; 6] = [
    "football",
    "music",
    "food",
    "travel",
    "work",
    "weather",
];

/// Coarse sentiment of a generated post.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sentiment {
    /// Positive emotional valence.
    Positive,
    /// Negative emotional valence.
    Negative,
    /// No strong valence.
    Neutral,
}

const POSITIVE_PHRASES: [&str; 5] = [
    "love",
    "amazing",
    "great time",
    "so happy",
    "wonderful",
];

const NEGATIVE_PHRASES: [&str; 5] = [
    "hate",
    "awful",
    "terrible",
    "so sad",
    "disappointed",
];

const TOPIC_FRAGMENTS: [(&str, &str); 6] = [
    ("football", "the match tonight"),
    ("music", "this new album"),
    ("food", "dinner at the bistro"),
    ("travel", "my trip to the coast"),
    ("work", "the deadline at work"),
    ("weather", "the weather today"),
];

/// Generates a post body about `topic` with the requested sentiment.
///
/// The text embeds one of a known set of sentiment phrases so that the
/// keyword sentiment classifier has ground truth to recover.
///
/// # Example
///
/// ```
/// use sensocial_osn::{generate_post, Sentiment};
/// use sensocial_runtime::SimRng;
///
/// let mut rng = SimRng::seed_from(1);
/// let text = generate_post(&mut rng, "football", Sentiment::Positive);
/// assert!(text.contains("match"));
/// ```
pub fn generate_post(rng: &mut SimRng, topic: &str, sentiment: Sentiment) -> String {
    let fragment = TOPIC_FRAGMENTS
        .iter()
        .find(|(t, _)| *t == topic)
        .map(|(_, f)| *f)
        .unwrap_or("things in general");
    match sentiment {
        Sentiment::Positive => {
            let phrase = rng.choose(&POSITIVE_PHRASES).expect("non-empty"); // lint:allow(expect) — const array is non-empty
            format!("I {phrase} {fragment}!")
        }
        Sentiment::Negative => {
            let phrase = rng.choose(&NEGATIVE_PHRASES).expect("non-empty"); // lint:allow(expect) — const array is non-empty
            format!("I {phrase} {fragment}.")
        }
        Sentiment::Neutral => format!("Thinking about {fragment}."),
    }
}

/// The positive phrases the generator embeds (exposed so sentiment
/// classifiers and tests can align with the generator's vocabulary).
pub fn positive_phrases() -> &'static [&'static str] {
    &POSITIVE_PHRASES
}

/// The negative phrases the generator embeds.
pub fn negative_phrases() -> &'static [&'static str] {
    &NEGATIVE_PHRASES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_posts_contain_positive_phrases() {
        let mut rng = SimRng::seed_from(2);
        for _ in 0..20 {
            let text = generate_post(&mut rng, "music", Sentiment::Positive);
            assert!(
                positive_phrases().iter().any(|p| text.contains(p)),
                "{text}"
            );
            assert!(!negative_phrases().iter().any(|p| text.contains(p)));
        }
    }

    #[test]
    fn negative_posts_contain_negative_phrases() {
        let mut rng = SimRng::seed_from(3);
        let text = generate_post(&mut rng, "work", Sentiment::Negative);
        assert!(negative_phrases().iter().any(|p| text.contains(p)), "{text}");
    }

    #[test]
    fn neutral_posts_carry_no_sentiment_phrases() {
        let mut rng = SimRng::seed_from(4);
        let text = generate_post(&mut rng, "food", Sentiment::Neutral);
        assert!(!positive_phrases().iter().any(|p| text.contains(p)));
        assert!(!negative_phrases().iter().any(|p| text.contains(p)));
    }

    #[test]
    fn unknown_topic_still_generates() {
        let mut rng = SimRng::seed_from(5);
        let text = generate_post(&mut rng, "quantum", Sentiment::Neutral);
        assert!(text.contains("things in general"));
    }

    #[test]
    fn topics_are_unique() {
        let mut t = TOPICS.to_vec();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), TOPICS.len());
    }
}
