//! The social graph: users and friendship links.

use std::collections::{BTreeMap, BTreeSet};

use sensocial_types::UserId;

/// An undirected friendship graph.
///
/// The SenSocial server mirrors this structure in its MongoDB tables to
/// answer "who are A's OSN friends" for multicast streams and the Figure 2
/// scenario; the simulation's source of truth lives here on the platform.
///
/// # Example
///
/// ```
/// use sensocial_osn::SocialGraph;
/// use sensocial_types::UserId;
///
/// let mut g = SocialGraph::new();
/// let (a, c) = (UserId::new("a"), UserId::new("c"));
/// g.add_user(a.clone());
/// g.add_user(c.clone());
/// g.add_friendship(&a, &c);
/// assert!(g.are_friends(&a, &c));
/// assert_eq!(g.friends(&a), vec![c]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SocialGraph {
    adjacency: BTreeMap<UserId, BTreeSet<UserId>>,
}

impl SocialGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        SocialGraph::default()
    }

    /// Adds a user with no links. Idempotent.
    pub fn add_user(&mut self, user: UserId) {
        self.adjacency.entry(user).or_default();
    }

    /// Whether `user` exists in the graph.
    pub fn contains(&self, user: &UserId) -> bool {
        self.adjacency.contains_key(user)
    }

    /// All users, sorted.
    pub fn users(&self) -> Vec<UserId> {
        self.adjacency.keys().cloned().collect()
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the graph has no users.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Creates a friendship between `a` and `b` (adding either user if
    /// missing). Returns `false` if they were already friends or `a == b`.
    pub fn add_friendship(&mut self, a: &UserId, b: &UserId) -> bool {
        if a == b {
            return false;
        }
        let fresh = self
            .adjacency
            .entry(a.clone())
            .or_default()
            .insert(b.clone());
        self.adjacency
            .entry(b.clone())
            .or_default()
            .insert(a.clone());
        fresh
    }

    /// Removes the friendship between `a` and `b`. Returns `false` if they
    /// were not friends.
    pub fn remove_friendship(&mut self, a: &UserId, b: &UserId) -> bool {
        let removed = self
            .adjacency
            .get_mut(a)
            .map(|s| s.remove(b))
            .unwrap_or(false);
        if let Some(s) = self.adjacency.get_mut(b) {
            s.remove(a);
        }
        removed
    }

    /// Whether `a` and `b` are friends.
    pub fn are_friends(&self, a: &UserId, b: &UserId) -> bool {
        self.adjacency
            .get(a)
            .map(|s| s.contains(b))
            .unwrap_or(false)
    }

    /// `user`'s friends, sorted. Unknown users have no friends.
    pub fn friends(&self, user: &UserId) -> Vec<UserId> {
        self.adjacency
            .get(user)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// `user`'s degree (friend count).
    pub fn degree(&self, user: &UserId) -> usize {
        self.adjacency.get(user).map(|s| s.len()).unwrap_or(0)
    }

    /// Friends shared by `a` and `b`, sorted.
    pub fn mutual_friends(&self, a: &UserId, b: &UserId) -> Vec<UserId> {
        match (self.adjacency.get(a), self.adjacency.get(b)) {
            (Some(fa), Some(fb)) => fa.intersection(fb).cloned().collect(),
            _ => Vec::new(),
        }
    }

    /// Total friendship edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(|s| s.len()).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(s: &str) -> UserId {
        UserId::new(s)
    }

    #[test]
    fn friendships_are_symmetric() {
        let mut g = SocialGraph::new();
        assert!(g.add_friendship(&u("a"), &u("b")));
        assert!(g.are_friends(&u("a"), &u("b")));
        assert!(g.are_friends(&u("b"), &u("a")));
        assert!(!g.add_friendship(&u("a"), &u("b")), "duplicate edge");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_friendship_rejected() {
        let mut g = SocialGraph::new();
        assert!(!g.add_friendship(&u("a"), &u("a")));
        assert!(!g.are_friends(&u("a"), &u("a")));
    }

    #[test]
    fn removal_is_symmetric() {
        let mut g = SocialGraph::new();
        g.add_friendship(&u("a"), &u("b"));
        assert!(g.remove_friendship(&u("b"), &u("a")));
        assert!(!g.are_friends(&u("a"), &u("b")));
        assert!(!g.remove_friendship(&u("a"), &u("b")));
    }

    #[test]
    fn figure2_topology() {
        // Users A,B in Paris; C,D,E in Bordeaux; A friends with C and D.
        let mut g = SocialGraph::new();
        for name in ["a", "b", "c", "d", "e"] {
            g.add_user(u(name));
        }
        g.add_friendship(&u("a"), &u("c"));
        g.add_friendship(&u("a"), &u("d"));
        assert_eq!(g.friends(&u("a")), vec![u("c"), u("d")]);
        assert_eq!(g.degree(&u("b")), 0);
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn mutual_friends() {
        let mut g = SocialGraph::new();
        g.add_friendship(&u("a"), &u("x"));
        g.add_friendship(&u("b"), &u("x"));
        g.add_friendship(&u("a"), &u("y"));
        assert_eq!(g.mutual_friends(&u("a"), &u("b")), vec![u("x")]);
        assert!(g.mutual_friends(&u("a"), &u("ghost")).is_empty());
    }

    #[test]
    fn unknown_users() {
        let g = SocialGraph::new();
        assert!(!g.contains(&u("nobody")));
        assert!(g.friends(&u("nobody")).is_empty());
        assert_eq!(g.degree(&u("nobody")), 0);
    }
}
