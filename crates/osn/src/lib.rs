//! Simulated online social network (Facebook/Twitter substitute).
//!
//! SenSocial "implements necessary plug-ins for accessing OSN information"
//! — a Facebook application that pushes actions to a server-side script,
//! and a Twitter plug-in that "actively scans for new tweets" (paper §4).
//! Without API access to either platform, this crate simulates the whole
//! stack the plug-ins face:
//!
//! * [`SocialGraph`] — users and friendship links, with the mutation
//!   operations the server's OSN-link table tracks;
//! * [`OsnPlatform`] — the platform itself: authenticated users perform
//!   actions (posts, comments, likes, friendship changes) that land in a
//!   feed and notify registered plug-ins;
//! * [`PushPlugin`] — Facebook-style delivery: the platform notifies the
//!   plug-in's receiver after a platform-controlled delay (measured by the
//!   paper at ~46 s, the dominant term of Table 3);
//! * [`PollPlugin`] — Twitter-style delivery: the plug-in polls for new
//!   actions at a configurable period ("allows arbitrarily short delay");
//! * [`UserActivityModel`] — Poisson post/comment/like generators with
//!   topic-tagged, sentiment-bearing content, so workloads and the
//!   future-work text-mining classifiers have something real to chew on.
//!
//! # Example
//!
//! ```
//! use sensocial_osn::{OsnPlatform, PushPlugin};
//! use sensocial_runtime::{Scheduler, SimRng};
//! use sensocial_types::{OsnAction, UserId};
//! use std::sync::{Arc, Mutex};
//!
//! let mut sched = Scheduler::new();
//! let platform = OsnPlatform::new(SimRng::seed_from(1));
//! let alice = UserId::new("alice");
//! platform.register_user(alice.clone());
//!
//! let received = Arc::new(Mutex::new(Vec::new()));
//! let sink = received.clone();
//! let plugin = PushPlugin::new(&platform);
//! plugin.set_receiver(move |_s, action| sink.lock().unwrap().push(action));
//! plugin.authorize(&alice);
//!
//! platform.post(&mut sched, &alice, "hello world");
//! sched.run();
//! assert_eq!(received.lock().unwrap().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod content;
mod graph;
mod platform;
mod plugin;

pub use activity::{ActivityDriverHandle, UserActivityModel};
pub use content::{generate_post, negative_phrases, positive_phrases, Sentiment, TOPICS};
pub use graph::SocialGraph;
pub use platform::OsnPlatform;
pub use plugin::{PollPlugin, PushPlugin};
