//! The simulated OSN platform.

use std::sync::Arc;

use parking_lot::Mutex;
use sensocial_runtime::{Scheduler, SimRng, Timestamp};
use sensocial_types::{OsnAction, OsnActionKind, OsnPlatformKind, UserId};

use crate::graph::SocialGraph;

/// Listener invoked synchronously on every action (plug-ins wrap this with
/// their own delivery semantics).
type ActionListener = Arc<dyn Fn(&mut Scheduler, OsnAction) + Send + Sync>;

struct Inner {
    graph: SocialGraph,
    feed: Vec<OsnAction>,
    listeners: Vec<ActionListener>,
    rng: SimRng,
}

/// A simulated online social network: users, a social graph, a global
/// action feed and plug-in notification.
///
/// Cloneable handle. See the [crate-level example](crate).
#[derive(Clone)]
pub struct OsnPlatform {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for OsnPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("OsnPlatform")
            .field("users", &inner.graph.len())
            .field("feed_len", &inner.feed.len())
            .field("listeners", &inner.listeners.len())
            .finish()
    }
}

impl OsnPlatform {
    /// Creates an empty platform.
    pub fn new(rng: SimRng) -> Self {
        OsnPlatform {
            inner: Arc::new(Mutex::new(Inner {
                graph: SocialGraph::new(),
                feed: Vec::new(),
                listeners: Vec::new(),
                rng,
            })),
        }
    }

    /// Registers a user account. Idempotent.
    pub fn register_user(&self, user: UserId) {
        self.inner.lock().graph.add_user(user);
    }

    /// Whether `user` has an account.
    pub fn has_user(&self, user: &UserId) -> bool {
        self.inner.lock().graph.contains(user)
    }

    /// A snapshot of the social graph.
    pub fn graph(&self) -> SocialGraph {
        self.inner.lock().graph.clone()
    }

    /// Registers a raw action listener (used by plug-ins). Listeners are
    /// invoked synchronously when an action is performed; delivery delays
    /// are the plug-in's concern.
    pub(crate) fn add_listener(&self, listener: ActionListener) {
        self.inner.lock().listeners.push(listener);
    }

    /// Splits an RNG stream off the platform's seed (used by plug-ins and
    /// activity models so all OSN randomness derives from one seed).
    pub fn split_rng(&self, tag: &str) -> SimRng {
        self.inner.lock().rng.split(tag)
    }

    /// The global feed (all actions, oldest first).
    pub fn feed(&self) -> Vec<OsnAction> {
        self.inner.lock().feed.clone()
    }

    /// Actions strictly after `since` (for poll-style plug-ins).
    pub fn feed_since(&self, since: Timestamp) -> Vec<OsnAction> {
        self.inner
            .lock()
            .feed
            .iter()
            .filter(|a| a.at > since)
            .cloned()
            .collect()
    }

    /// Performs an arbitrary action on behalf of `action.user`.
    ///
    /// Unknown users' actions are silently dropped (the platform rejects
    /// them), mirroring an unauthenticated API call.
    pub fn perform(&self, sched: &mut Scheduler, action: OsnAction) {
        let listeners: Vec<ActionListener> = {
            let mut inner = self.inner.lock();
            if !inner.graph.contains(&action.user) {
                return;
            }
            // Friendship changes mutate the graph as a side effect, the way
            // the server later re-derives them from the action stream.
            if action.kind == OsnActionKind::FriendshipChange {
                let other = UserId::new(action.content.clone());
                if inner.graph.are_friends(&action.user, &other) {
                    inner.graph.remove_friendship(&action.user, &other);
                } else {
                    inner.graph.add_friendship(&action.user, &other);
                }
            }
            inner.feed.push(action.clone());
            inner.listeners.clone()
        };
        for listener in listeners {
            listener(sched, action.clone());
        }
    }

    /// Posts a status update, returning the action recorded.
    pub fn post(&self, sched: &mut Scheduler, user: &UserId, content: &str) -> OsnAction {
        let action = OsnAction {
            user: user.clone(),
            kind: OsnActionKind::Post,
            content: content.to_owned(),
            topic: None,
            at: sched.now(),
            platform: OsnPlatformKind::Push,
        };
        self.perform(sched, action.clone());
        action
    }

    /// Posts a topic-tagged status update.
    pub fn post_about(
        &self,
        sched: &mut Scheduler,
        user: &UserId,
        topic: &str,
        content: &str,
    ) -> OsnAction {
        let action = OsnAction {
            user: user.clone(),
            kind: OsnActionKind::Post,
            content: content.to_owned(),
            topic: Some(topic.to_owned()),
            at: sched.now(),
            platform: OsnPlatformKind::Push,
        };
        self.perform(sched, action.clone());
        action
    }

    /// Comments on something.
    pub fn comment(&self, sched: &mut Scheduler, user: &UserId, content: &str) -> OsnAction {
        let action = OsnAction {
            user: user.clone(),
            kind: OsnActionKind::Comment,
            content: content.to_owned(),
            topic: None,
            at: sched.now(),
            platform: OsnPlatformKind::Push,
        };
        self.perform(sched, action.clone());
        action
    }

    /// Likes a page.
    pub fn like(&self, sched: &mut Scheduler, user: &UserId, page: &str) -> OsnAction {
        let action = OsnAction {
            user: user.clone(),
            kind: OsnActionKind::Like,
            content: page.to_owned(),
            topic: None,
            at: sched.now(),
            platform: OsnPlatformKind::Push,
        };
        self.perform(sched, action.clone());
        action
    }

    /// Creates (or toggles) a friendship between `a` and `b`, emitting the
    /// FriendshipChange action plug-ins observe.
    pub fn befriend(&self, sched: &mut Scheduler, a: &UserId, b: &UserId) {
        let action = OsnAction {
            user: a.clone(),
            kind: OsnActionKind::FriendshipChange,
            content: b.as_str().to_owned(),
            topic: None,
            at: sched.now(),
            platform: OsnPlatformKind::Push,
        };
        self.perform(sched, action);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    fn fixture() -> (Scheduler, OsnPlatform, UserId) {
        let sched = Scheduler::new();
        let platform = OsnPlatform::new(SimRng::seed_from(1));
        let alice = UserId::new("alice");
        platform.register_user(alice.clone());
        (sched, platform, alice)
    }

    #[test]
    fn actions_land_in_feed_and_notify_listeners() {
        let (mut sched, platform, alice) = fixture();
        let seen = Arc::new(StdMutex::new(Vec::new()));
        let sink = seen.clone();
        platform.add_listener(Arc::new(move |_s, a| sink.lock().unwrap().push(a)));
        platform.post(&mut sched, &alice, "hi");
        platform.like(&mut sched, &alice, "Middleware 2014");
        assert_eq!(platform.feed().len(), 2);
        assert_eq!(seen.lock().unwrap().len(), 2);
        assert_eq!(seen.lock().unwrap()[1].kind, OsnActionKind::Like);
    }

    #[test]
    fn unknown_user_actions_are_dropped() {
        let (mut sched, platform, _) = fixture();
        platform.post(&mut sched, &UserId::new("stranger"), "spam");
        assert!(platform.feed().is_empty());
    }

    #[test]
    fn befriend_updates_graph_and_feed() {
        let (mut sched, platform, alice) = fixture();
        let bob = UserId::new("bob");
        platform.register_user(bob.clone());
        platform.befriend(&mut sched, &alice, &bob);
        assert!(platform.graph().are_friends(&alice, &bob));
        // Toggling removes.
        platform.befriend(&mut sched, &alice, &bob);
        assert!(!platform.graph().are_friends(&alice, &bob));
        assert_eq!(platform.feed().len(), 2);
    }

    #[test]
    fn feed_since_filters_by_time() {
        let (mut sched, platform, alice) = fixture();
        platform.post(&mut sched, &alice, "early");
        sched.run_for(sensocial_runtime::SimDuration::from_secs(10));
        platform.post(&mut sched, &alice, "late");
        let recent = platform.feed_since(Timestamp::from_secs(5));
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].content, "late");
        assert!(platform
            .feed_since(Timestamp::from_secs(10))
            .is_empty(), "boundary is strict");
    }

    #[test]
    fn topic_tagged_posts() {
        let (mut sched, platform, alice) = fixture();
        let a = platform.post_about(&mut sched, &alice, "football", "what a match");
        assert_eq!(a.topic.as_deref(), Some("football"));
    }
}
